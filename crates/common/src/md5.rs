//! A self-contained MD5 implementation (RFC 1321).
//!
//! The paper's learning optimizer avoids storing and comparing potentially
//! huge canonical step texts by keying the plan store with the MD5 hash of
//! the step text (32 hex characters; §II-C: "we avoid the potential overhead
//! of saving and retrieving of such complex text by using the MD5 hash value
//! (32 bytes) of the step text"). We implement MD5 here rather than pulling a
//! crypto dependency: it is ~100 lines, needs no hardware features, and this
//! use is content-addressing, not security.

/// Output of an MD5 computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Md5Digest(pub [u8; 16]);

impl Md5Digest {
    /// Render as the conventional 32-character lowercase hex string.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }
}

impl std::fmt::Display for Md5Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9,
    14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10, 15,
    21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Compute the MD5 digest of a byte slice.
pub fn md5(input: &[u8]) -> Md5Digest {
    let mut a0: u32 = 0x67452301;
    let mut b0: u32 = 0xefcdab89;
    let mut c0: u32 = 0x98badcfe;
    let mut d0: u32 = 0x10325476;

    // Message padding: append 0x80, zero-fill to 56 mod 64, append bit length.
    let bit_len = (input.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(input.len() + 72);
    msg.extend_from_slice(input);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                chunk[4 * i],
                chunk[4 * i + 1],
                chunk[4 * i + 2],
                chunk[4 * i + 3],
            ]);
        }

        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (mut f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            f = f
                .wrapping_add(a)
                .wrapping_add(K[i])
                .wrapping_add(m[g]);
            a = d;
            d = c;
            c = b;
            b = b.wrapping_add(f.rotate_left(S[i]));
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    Md5Digest(out)
}

/// Convenience: MD5 of a string.
pub fn md5_str(s: &str) -> Md5Digest {
    md5(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(md5_str(input).to_hex(), *expected, "input={input:?}");
        }
    }

    #[test]
    fn boundary_lengths_round_the_padding() {
        // 55, 56, 63, 64, 65 bytes cross the padding boundaries.
        for len in [55usize, 56, 63, 64, 65, 119, 120, 128] {
            let data = vec![b'x'; len];
            let d = md5(&data);
            // Determinism and self-consistency.
            assert_eq!(d, md5(&data));
            assert_eq!(d.to_hex().len(), 32);
        }
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(md5_str("scan(t1)"), md5_str("scan(t2)"));
    }
}

//! Strongly-typed identifiers used across subsystems.
//!
//! Newtypes (rather than bare integers) prevent the classic bug class of
//! passing a shard id where a transaction id is expected — particularly easy
//! to hit in the GTM-lite code where *global* and *local* transaction ids
//! coexist and must never be mixed up (paper §II-A, the `xidMap`).

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Wrap a raw id.
            pub const fn new(v: u64) -> Self {
                Self(v)
            }

            /// Unwrap to the raw id.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }
    };
}

id_newtype!(
    /// A transaction identifier. In GTM-lite both *global* XIDs (allocated by
    /// the GTM for multi-shard transactions) and *local* XIDs (allocated by a
    /// data node for every transaction touching it) are `Xid`s; the context —
    /// which snapshot they appear in — determines which namespace they belong
    /// to, exactly as in the paper's design.
    Xid,
    "xid:"
);

id_newtype!(
    /// Identifies one node (CN, DN, or GTM) in a simulated cluster.
    NodeId,
    "node:"
);

id_newtype!(
    /// Identifies one data shard (partition). With one DN per shard this is
    /// interchangeable with the owning DN's index, which is the deployment the
    /// paper's Fig 3 evaluates.
    ShardId,
    "shard:"
);

id_newtype!(
    /// Identifies a table in a catalog.
    TableId,
    "table:"
);

id_newtype!(
    /// Identifies a GMDB client (each client may run a different schema
    /// version, §III-B).
    ClientId,
    "client:"
);

id_newtype!(
    /// Identifies a device/edge/cloud replica in the edge-sync platform
    /// (§IV-B).
    DeviceId,
    "device:"
);

/// Transaction ids start here; ids below are reserved (0 = invalid/bootstrap).
pub const FIRST_XID: u64 = 3;

/// The invalid transaction id, used for "no xmax" tuple headers.
pub const INVALID_XID: Xid = Xid(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_prefix() {
        assert_eq!(Xid::new(42).to_string(), "xid:42");
        assert_eq!(ShardId::new(3).to_string(), "shard:3");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Xid::new(1) < Xid::new(2));
        assert_eq!(Xid::from(7).raw(), 7);
    }

    #[test]
    fn invalid_xid_is_zero() {
        assert_eq!(INVALID_XID.raw(), 0);
        assert!(INVALID_XID.raw() < FIRST_XID);
    }
}

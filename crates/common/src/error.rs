//! Unified error type used across the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, HdmError>;

/// Errors produced by any subsystem in the workspace.
///
/// A single enum (rather than per-crate error types) keeps cross-crate
/// plumbing simple: the MPP engine threads storage, transaction, planner and
/// executor errors through one channel, mirroring how a monolithic database
/// kernel reports errors to its client protocol layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdmError {
    /// SQL text failed to lex or parse.
    Parse(String),
    /// Catalog lookup failures: unknown table/column/schema-version, duplicate
    /// definitions, arity mismatches.
    Catalog(String),
    /// Planner/optimizer failures.
    Plan(String),
    /// Runtime execution failures (type mismatch at runtime, overflow, ...).
    Execution(String),
    /// Storage-level failures (unknown tuple, corrupt page, codec mismatch).
    Storage(String),
    /// Transaction aborted; carries the reason. Write-write conflicts,
    /// serialization failures and 2PC vote-to-abort all surface here.
    TxnAborted(String),
    /// The transaction manager rejected an operation in the current state
    /// (e.g. commit of an already-aborted transaction).
    TxnState(String),
    /// GMDB schema evolution rejected an illegal schema change
    /// (field deletion / reorder, per §III-B) or an unknown version.
    SchemaEvolution(String),
    /// Edge-sync protocol violation (gap in op log, unknown replica).
    Sync(String),
    /// Feature intentionally outside the reproduced SQL subset.
    Unsupported(String),
    /// Invalid configuration of a component.
    Config(String),
    /// I/O error message (flushing GMDB snapshots, bench output).
    Io(String),
    /// A cluster component (data node, GTM) is crashed/unreachable. The
    /// caller may retry after backoff once the component restarts.
    Unavailable(String),
}

impl HdmError {
    /// Short machine-readable class name, handy for metrics and tests.
    pub fn class(&self) -> &'static str {
        match self {
            HdmError::Parse(_) => "parse",
            HdmError::Catalog(_) => "catalog",
            HdmError::Plan(_) => "plan",
            HdmError::Execution(_) => "execution",
            HdmError::Storage(_) => "storage",
            HdmError::TxnAborted(_) => "txn_aborted",
            HdmError::TxnState(_) => "txn_state",
            HdmError::SchemaEvolution(_) => "schema_evolution",
            HdmError::Sync(_) => "sync",
            HdmError::Unsupported(_) => "unsupported",
            HdmError::Config(_) => "config",
            HdmError::Io(_) => "io",
            HdmError::Unavailable(_) => "unavailable",
        }
    }
}

impl fmt::Display for HdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdmError::Parse(m) => write!(f, "parse error: {m}"),
            HdmError::Catalog(m) => write!(f, "catalog error: {m}"),
            HdmError::Plan(m) => write!(f, "plan error: {m}"),
            HdmError::Execution(m) => write!(f, "execution error: {m}"),
            HdmError::Storage(m) => write!(f, "storage error: {m}"),
            HdmError::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            HdmError::TxnState(m) => write!(f, "transaction state error: {m}"),
            HdmError::SchemaEvolution(m) => write!(f, "schema evolution error: {m}"),
            HdmError::Sync(m) => write!(f, "sync error: {m}"),
            HdmError::Unsupported(m) => write!(f, "unsupported: {m}"),
            HdmError::Config(m) => write!(f, "config error: {m}"),
            HdmError::Io(m) => write!(f, "io error: {m}"),
            HdmError::Unavailable(m) => write!(f, "unavailable: {m}"),
        }
    }
}

impl std::error::Error for HdmError {}

impl From<std::io::Error> for HdmError {
    fn from(e: std::io::Error) -> Self {
        HdmError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = HdmError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(HdmError::TxnAborted(String::new()).class(), "txn_aborted");
        assert_eq!(
            HdmError::SchemaEvolution(String::new()).class(),
            "schema_evolution"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: HdmError = io.into();
        assert_eq!(e.class(), "io");
    }
}

//! # hdm-common
//!
//! Shared foundation types for the `huawei-dm` workspace: datums and schemas
//! for the relational layers, error types, identifiers, a deterministic RNG,
//! virtual-time types used by the discrete-event simulator, and an MD5
//! implementation used by the learning optimizer's plan store (the paper keys
//! canonical step definitions by their MD5 hash, §II-C).

pub mod error;
pub mod ids;
pub mod md5;
pub mod rng;
pub mod schema;
pub mod stats;
pub mod time;
pub mod value;

pub use error::{HdmError, Result};
pub use ids::{ClientId, DeviceId, NodeId, ShardId, TableId, Xid};
pub use rng::SplitMix64;
pub use schema::{Column, Row, Schema};
pub use time::{SimDuration, SimInstant};
pub use value::{DataType, Datum};

//! Virtual time for the discrete-event simulator.
//!
//! Fig 3's scalability experiment must be host-independent (this repo is
//! routinely built on a single-core container), so the cluster simulation
//! runs on a virtual clock measured in microseconds. `SimInstant` and
//! `SimDuration` are deliberately *not* interchangeable with
//! `std::time::{Instant, Duration}` to keep wall-clock time out of the
//! simulation by construction.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant(pub u64);

/// A span of virtual time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimInstant {
    pub const ZERO: SimInstant = SimInstant(0);

    pub fn micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating distance to an earlier instant.
    pub fn since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    pub fn micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scale by a float factor (latency jitter), rounding to nearest µs.
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration((self.0 as f64 * k).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimInstant::ZERO + SimDuration::from_millis(2);
        assert_eq!(t.micros(), 2_000);
        assert_eq!((t - SimInstant::ZERO).micros(), 2_000);
        assert_eq!(t.since(SimInstant(5_000)).micros(), 0, "saturates");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::from_micros(10).mul_f64(1.26).micros(), 13);
        assert_eq!(SimDuration::from_micros(10).mul_f64(0.0).micros(), 0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }
}

//! Runtime values (`Datum`) and logical column types (`DataType`) shared by
//! the relational storage engine, the SQL executor, and the multi-model
//! engines.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Logical column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// Microseconds since an arbitrary epoch; used by the time-series engine.
    Timestamp,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A runtime value. `Null` is a member of every type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Datum {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
    /// Microseconds since epoch.
    Timestamp(i64),
}

impl Datum {
    /// The datum's type, or `None` for `Null` (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Int(_) => Some(DataType::Int),
            Datum::Float(_) => Some(DataType::Float),
            Datum::Text(_) => Some(DataType::Text),
            Datum::Bool(_) => Some(DataType::Bool),
            Datum::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Extract an integer, coercing from float/bool where lossless enough for
    /// the engine's arithmetic (SQL-style implicit cast).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            Datum::Timestamp(v) => Some(*v),
            Datum::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Extract a float, widening from int.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Datum::Float(v) => Some(*v),
            Datum::Int(v) => Some(*v as f64),
            Datum::Timestamp(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Datum::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is NULL or the types are
    /// incomparable (three-valued logic's UNKNOWN).
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        use Datum::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Int(a), Timestamp(b)) | (Timestamp(b), Int(a)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order for sorting (ORDER BY, index keys): NULLs sort first,
    /// cross-type falls back to a type rank so sorting never panics.
    pub fn total_cmp(&self, other: &Datum) -> Ordering {
        fn rank(d: &Datum) -> u8 {
            match d {
                Datum::Null => 0,
                Datum::Bool(_) => 1,
                Datum::Int(_) => 2,
                Datum::Float(_) => 2, // comparable with Int via sql_cmp
                Datum::Timestamp(_) => 2,
                Datum::Text(_) => 3,
            }
        }
        match self.sql_cmp(other) {
            Some(o) => o,
            None => match (self, other) {
                (Datum::Null, Datum::Null) => Ordering::Equal,
                (Datum::Null, _) => Ordering::Less,
                (_, Datum::Null) => Ordering::Greater,
                (Datum::Float(a), Datum::Float(b)) => a.total_cmp(b),
                _ => rank(self).cmp(&rank(other)),
            },
        }
    }

    /// Approximate in-memory footprint in bytes, used by cost models.
    pub fn width(&self) -> usize {
        match self {
            Datum::Null => 1,
            Datum::Int(_) | Datum::Float(_) | Datum::Timestamp(_) => 8,
            Datum::Bool(_) => 1,
            Datum::Text(s) => s.len() + 4,
        }
    }

    /// A stable hash for distribution (sharding) and hash joins. NULL hashes
    /// to a fixed value; Int/Float that compare equal hash equal.
    pub fn dist_hash(&self) -> u64 {
        const SEED: u64 = 0x9e3779b97f4a7c15;
        fn mix(mut h: u64) -> u64 {
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
            h ^ (h >> 33)
        }
        match self {
            Datum::Null => mix(SEED),
            Datum::Int(v) | Datum::Timestamp(v) => mix(*v as u64 ^ SEED),
            Datum::Float(f) => {
                // Hash equal-comparing floats as their integer value when exact.
                if f.fract() == 0.0 && f.abs() < i64::MAX as f64 {
                    mix(*f as i64 as u64 ^ SEED)
                } else {
                    mix(f.to_bits() ^ SEED)
                }
            }
            Datum::Bool(b) => mix(*b as u64 ^ SEED),
            Datum::Text(s) => {
                let mut h = SEED;
                for b in s.as_bytes() {
                    h = h.wrapping_mul(0x100000001b3) ^ (*b as u64);
                }
                mix(h)
            }
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Datum {}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Datum {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Datum {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.dist_hash());
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => f.write_str("NULL"),
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v}"),
            Datum::Text(s) => write!(f, "'{s}'"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Timestamp(v) => write!(f, "ts:{v}"),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}
impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float(v)
    }
}
impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Text(v.to_string())
    }
}
impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Text(v)
    }
}
impl From<bool> for Datum {
    fn from(v: bool) -> Self {
        Datum::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Null), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Datum::Int(2).sql_cmp(&Datum::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Datum::Float(1.5).sql_cmp(&Datum::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_order_puts_null_first() {
        let mut v = [Datum::Int(3), Datum::Null, Datum::Int(1)];
        v.sort();
        assert_eq!(v[0], Datum::Null);
        assert_eq!(v[1], Datum::Int(1));
    }

    #[test]
    fn equal_int_and_float_hash_equal() {
        assert_eq!(Datum::Int(7).dist_hash(), Datum::Float(7.0).dist_hash());
    }

    #[test]
    fn text_hash_spreads() {
        let a = Datum::Text("warehouse-1".into()).dist_hash();
        let b = Datum::Text("warehouse-2".into()).dist_hash();
        assert_ne!(a, b);
    }

    #[test]
    fn width_reflects_content() {
        assert_eq!(Datum::Int(0).width(), 8);
        assert!(Datum::Text("hello".into()).width() > 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Datum::Text("x".into()).to_string(), "'x'");
        assert_eq!(Datum::Null.to_string(), "NULL");
    }
}

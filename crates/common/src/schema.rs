//! Relational schemas and rows.

use crate::value::{DataType, Datum};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Self { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Self {
            columns: pairs
                .iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect(),
        }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Validate that a row conforms: arity matches, each non-null datum has
    /// the column's type, and NOT NULL columns are non-null.
    pub fn validate_row(&self, row: &Row) -> Result<(), String> {
        if row.len() != self.columns.len() {
            return Err(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.columns.len()
            ));
        }
        for (i, (col, datum)) in self.columns.iter().zip(row.values()).enumerate() {
            match datum.data_type() {
                None => {
                    if !col.nullable {
                        return Err(format!("column {} ({}) is NOT NULL", i, col.name));
                    }
                }
                Some(t) => {
                    let compatible = t == col.data_type
                        || matches!(
                            (t, col.data_type),
                            (DataType::Int, DataType::Float)
                                | (DataType::Int, DataType::Timestamp)
                                | (DataType::Timestamp, DataType::Int)
                        );
                    if !compatible {
                        return Err(format!(
                            "column {} ({}) expects {} but got {}",
                            i, col.name, col.data_type, t
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
        }
        write!(f, ")")
    }
}

/// A materialized row of datums.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Row(Vec<Datum>);

impl Row {
    pub fn new(values: Vec<Datum>) -> Self {
        Self(values)
    }

    pub fn values(&self) -> &[Datum] {
        &self.0
    }

    pub fn values_mut(&mut self) -> &mut Vec<Datum> {
        &mut self.0
    }

    pub fn into_values(self) -> Vec<Datum> {
        self.0
    }

    pub fn get(&self, idx: usize) -> Option<&Datum> {
        self.0.get(idx)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Concatenate with another row (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = self.0.clone();
        v.extend(other.0.iter().cloned());
        Row(v)
    }

    /// Approximate byte width of the row (cost models, Fig 11 object sizing).
    pub fn width(&self) -> usize {
        self.0.iter().map(Datum::width).sum()
    }
}

impl From<Vec<Datum>> for Row {
    fn from(v: Vec<Datum>) -> Self {
        Row(v)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Build a row from literals: `row![1, "a", 2.5]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::schema::Row::new(vec![$($crate::value::Datum::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Text)])
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn validate_row_checks_arity_and_types() {
        let s = schema();
        assert!(s.validate_row(&row![1, "alice"]).is_ok());
        assert!(s.validate_row(&row![1]).is_err());
        assert!(s.validate_row(&row!["oops", "alice"]).is_err());
    }

    #[test]
    fn not_null_is_enforced() {
        let s = Schema::new(vec![Column::new("id", DataType::Int).not_null()]);
        let null_row = Row::new(vec![Datum::Null]);
        assert!(s.validate_row(&null_row).is_err());
    }

    #[test]
    fn join_concatenates_schemas_and_rows() {
        let a = schema();
        let b = Schema::from_pairs(&[("score", DataType::Float)]);
        let joined = a.join(&b);
        assert_eq!(joined.len(), 3);
        let r = row![1, "a"].concat(&row![0.5]);
        assert!(joined.validate_row(&r).is_ok());
    }

    #[test]
    fn int_allowed_in_float_column() {
        let s = Schema::from_pairs(&[("x", DataType::Float)]);
        assert!(s.validate_row(&row![3]).is_ok());
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(schema().to_string(), "(id INT, name TEXT)");
        assert_eq!(row![1, "a"].to_string(), "[1, 'a']");
    }
}

//! A small deterministic RNG (SplitMix64).
//!
//! Workload generators and simulations need reproducible randomness that does
//! not depend on crate-version-sensitive distributions. SplitMix64 passes
//! BigCrush for this use (driving synthetic workloads), is four lines long,
//! and lets every experiment in EXPERIMENTS.md be regenerated bit-for-bit
//! from a seed. The heavier `rand` crate is still used where distributions
//! (zipf-like choices) are convenient.

/// SplitMix64 PRNG state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`. `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free approximation is fine here:
        // the slight modulo bias of widening-multiply is irrelevant for
        // workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.next_below(span) as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick a uniformly random element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = SplitMix64::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let mut sum = 0.0;
        const N: usize = 100_000;
        for _ in 0..N {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SplitMix64::new(13);
        let hits = (0..100_000).filter(|_| r.chance(0.1)).count();
        assert!((8_000..12_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should almost surely move");
    }
}

//! Lightweight statistics collectors shared by benches, the simulator, and
//! the autonomous-database information store: running summaries, histograms
//! with percentile queries, and EWMA smoothing.

/// Running summary of a stream of f64 samples (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    pub fn new() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another summary into this one (parallel collection).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A latency histogram with logarithmic-ish fixed buckets (µs scale) that
/// answers percentile queries. Bounded memory regardless of sample count.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket upper bounds in µs; the last bucket is unbounded.
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new_latency_us()
    }
}

impl Histogram {
    /// Buckets tuned for latencies from 1µs to ~100s.
    pub fn new_latency_us() -> Self {
        let mut bounds = Vec::new();
        let mut b = 1u64;
        while b <= 100_000_000 {
            bounds.push(b);
            bounds.push(b * 2);
            bounds.push(b * 5);
            b *= 10;
        }
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
        }
    }

    pub fn record(&mut self, value_us: u64) {
        let idx = self
            .bounds
            .partition_point(|&bound| bound < value_us);
        self.counts[idx] += 1;
        self.total += 1;
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate percentile (`q` in [0,1]); returns the bucket upper bound.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bounds.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram shape mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// Exponentially-weighted moving average, used by the autonomous database's
/// anomaly detector (§IV-A) to smooth metric streams.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` in (0,1]: higher reacts faster.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
        Self { alpha, value: None }
    }

    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.stddev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn histogram_percentiles_bracket_values() {
        let mut h = Histogram::new_latency_us();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!((500..=1000).contains(&p50), "p50={p50}");
        assert!(p99 >= 990, "p99={p99}");
        assert!(h.percentile(0.0) >= 1);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new_latency_us();
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new_latency_us();
        let mut b = Histogram::new_latency_us();
        a.record(10);
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        let mut v = 0.0;
        for _ in 0..100 {
            v = e.update(10.0);
        }
        assert!((v - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha out of range")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }
}

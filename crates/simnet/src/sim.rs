//! The event loop: schedule callbacks at virtual instants, run to quiescence.

use hdm_common::{SimDuration, SimInstant};
use hdm_telemetry::{Counter, MetricsRegistry};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

type EventFn<W> = Box<dyn FnOnce(&mut Sim<W>, &mut W)>;

/// A discrete-event simulator over a world state `W`.
///
/// Events are `FnOnce(&mut Sim<W>, &mut W)` callbacks; an event may schedule
/// further events (at or after the current instant). Ties are broken by
/// insertion order, so the simulation is fully deterministic.
pub struct Sim<W> {
    now: SimInstant,
    seq: u64,
    // The heap stores (time, seq) keys; callbacks live in a slab so the heap
    // entries stay `Ord` without requiring the callbacks to be comparable.
    heap: BinaryHeap<Reverse<(SimInstant, u64)>>,
    slots: Vec<Option<EventFn<W>>>,
    free: Vec<usize>,
    keys: std::collections::HashMap<(u64,), usize>,
    executed: u64,
    scheduled_ctr: Option<Counter>,
    executed_ctr: Option<Counter>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    pub fn new() -> Self {
        Self {
            now: SimInstant::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            keys: std::collections::HashMap::new(),
            executed: 0,
            scheduled_ctr: None,
            executed_ctr: None,
        }
    }

    /// Register the `sim.events.scheduled` / `sim.events.executed` counters
    /// with `metrics`; subsequent scheduling and execution bump them.
    pub fn attach_telemetry(&mut self, metrics: &MetricsRegistry) {
        self.scheduled_ctr = Some(metrics.counter("sim.events.scheduled", &[]));
        self.executed_ctr = Some(metrics.counter("sim.events.executed", &[]));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Schedule `f` to run at absolute virtual instant `at`.
    ///
    /// # Panics
    /// If `at` is in the past.
    pub fn schedule_at(&mut self, at: SimInstant, f: impl FnOnce(&mut Sim<W>, &mut W) + 'static) {
        assert!(at >= self.now, "cannot schedule into the past");
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(Box::new(f));
                i
            }
            None => {
                self.slots.push(Some(Box::new(f)));
                self.slots.len() - 1
            }
        };
        let seq = self.seq;
        self.seq += 1;
        self.keys.insert((seq,), slot);
        self.heap.push(Reverse((at, seq)));
        if let Some(c) = &self.scheduled_ctr {
            c.inc();
        }
    }

    /// Schedule `f` to run `delay` after now.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) {
        let at = self.now + delay;
        self.schedule_at(at, f);
    }

    /// Run events until the queue is empty or virtual time would exceed
    /// `until`. Returns the number of events executed by this call.
    pub fn run_until(&mut self, world: &mut W, until: SimInstant) -> u64 {
        let mut n = 0;
        while let Some(Reverse((at, seq))) = self.heap.peek().copied() {
            if at > until {
                break;
            }
            self.heap.pop();
            let slot = self
                .keys
                .remove(&(seq,))
                .expect("event key must exist");
            let f = self.slots[slot].take().expect("event must be present");
            self.free.push(slot);
            self.now = at;
            f(self, world);
            self.executed += 1;
            if let Some(c) = &self.executed_ctr {
                c.inc();
            }
            n += 1;
        }
        // Advance the clock to the horizon so repeated calls are monotonic.
        if self.now < until {
            self.now = until;
        }
        n
    }

    /// Run all events to quiescence.
    pub fn run(&mut self, world: &mut W) -> u64 {
        let mut n = 0;
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            let slot = self
                .keys
                .remove(&(seq,))
                .expect("event key must exist");
            let f = self.slots[slot].take().expect("event must be present");
            self.free.push(slot);
            self.now = at;
            f(self, world);
            self.executed += 1;
            if let Some(c) = &self.executed_ctr {
                c.inc();
            }
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimInstant(30), |_, w: &mut Vec<u32>| w.push(3));
        sim.schedule_at(SimInstant(10), |_, w: &mut Vec<u32>| w.push(1));
        sim.schedule_at(SimInstant(20), |_, w: &mut Vec<u32>| w.push(2));
        sim.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimInstant(30));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        for i in 0..10 {
            sim.schedule_at(SimInstant(5), move |_, w: &mut Vec<u32>| w.push(i));
        }
        sim.run(&mut world);
        assert_eq!(world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        // A chain: each event schedules the next, 100 deep.
        struct W {
            count: u32,
        }
        fn step(sim: &mut Sim<W>, w: &mut W) {
            w.count += 1;
            if w.count < 100 {
                sim.schedule_in(SimDuration::from_micros(10), step);
            }
        }
        let mut sim = Sim::new();
        let mut world = W { count: 0 };
        sim.schedule_at(SimInstant::ZERO, step);
        sim.run(&mut world);
        assert_eq!(world.count, 100);
        assert_eq!(sim.now(), SimInstant(990));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(SimInstant(10), |_, w: &mut Vec<u32>| w.push(1));
        sim.schedule_at(SimInstant(1_000), |_, w: &mut Vec<u32>| w.push(2));
        let n = sim.run_until(&mut world, SimInstant(500));
        assert_eq!(n, 1);
        assert_eq!(world, vec![1]);
        assert_eq!(sim.now(), SimInstant(500));
        // The later event still fires on the next call.
        sim.run_until(&mut world, SimInstant(2_000));
        assert_eq!(world, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        let mut world = ();
        sim.schedule_at(SimInstant(100), |sim, _| {
            sim.schedule_at(SimInstant(50), |_, _| {});
        });
        sim.run(&mut world);
    }

    #[test]
    fn telemetry_counts_scheduled_and_executed_events() {
        let reg = MetricsRegistry::new();
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.attach_telemetry(&reg);
        let mut world = Vec::new();
        sim.schedule_at(SimInstant(10), |sim, w: &mut Vec<u32>| {
            w.push(1);
            sim.schedule_in(SimDuration::from_micros(5), |_, w: &mut Vec<u32>| w.push(2));
        });
        sim.schedule_at(SimInstant(1_000), |_, w: &mut Vec<u32>| w.push(3));
        sim.run_until(&mut world, SimInstant(100));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.events.scheduled"), 3);
        assert_eq!(snap.counter("sim.events.executed"), 2, "horizon event pending");
        sim.run(&mut world);
        assert_eq!(reg.snapshot().counter("sim.events.executed"), 3);
        assert_eq!(sim.executed(), 3);
    }

    #[test]
    fn slot_reuse_does_not_confuse_events() {
        // Interleave scheduling and running so slots are recycled.
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut world = Vec::new();
        for round in 0u64..5 {
            sim.schedule_in(SimDuration::from_micros(1), move |_, w: &mut Vec<u64>| {
                w.push(round)
            });
            sim.run(&mut world);
        }
        assert_eq!(world, vec![0, 1, 2, 3, 4]);
    }
}

//! FCFS resource timelines.
//!
//! A [`Resource`] models `k` identical servers (CPU cores, GTM worker, disk
//! spindles) with first-come-first-served queueing. Callers present requests
//! in nondecreasing arrival order; each request is granted the earliest
//! available `(start, end)` span. Because grants are computed analytically on
//! a timeline (instead of via busy/idle events) the model is exact for FCFS
//! and extremely fast — millions of grants per second — which lets Fig 3
//! sweep large virtual clusters cheaply.

use hdm_common::stats::Summary;
use hdm_common::{SimDuration, SimInstant};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A granted service span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service began (>= arrival).
    pub start: SimInstant,
    /// When service completed.
    pub end: SimInstant,
}

impl Grant {
    /// Time spent waiting in queue before service.
    pub fn queue_wait(&self, arrival: SimInstant) -> SimDuration {
        self.start - arrival
    }
}

/// A `k`-server FCFS resource.
#[derive(Debug)]
pub struct Resource {
    name: String,
    /// Earliest instant each server becomes free (min-heap).
    free_at: BinaryHeap<Reverse<SimInstant>>,
    busy: SimDuration,
    wait: Summary,
    grants: u64,
    last_arrival: SimInstant,
    last_end: SimInstant,
}

impl Resource {
    /// Create a resource with `servers` identical servers.
    ///
    /// # Panics
    /// If `servers == 0`.
    pub fn new(name: impl Into<String>, servers: usize) -> Self {
        assert!(servers > 0, "resource needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(SimInstant::ZERO));
        }
        Self {
            name: name.into(),
            free_at,
            busy: SimDuration::ZERO,
            wait: Summary::new(),
            grants: 0,
            last_arrival: SimInstant::ZERO,
            last_end: SimInstant::ZERO,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Request `service` time starting no earlier than `arrival`.
    ///
    /// Requests should be submitted in approximately nondecreasing arrival
    /// order; slightly out-of-order submissions (bounded by one transaction's
    /// duration in the cluster simulator) are accepted and serviced at
    /// `max(arrival, earliest server free)`, which preserves the exact busy
    /// time and capacity limit of true FCFS while permitting grant order to
    /// deviate locally.
    pub fn request(&mut self, arrival: SimInstant, service: SimDuration) -> Grant {
        self.last_arrival = self.last_arrival.max(arrival);
        let Reverse(free) = self.free_at.pop().expect("at least one server");
        let start = free.max(arrival);
        let end = start + service;
        self.free_at.push(Reverse(end));
        self.busy += service;
        self.wait.record((start - arrival).micros() as f64);
        self.grants += 1;
        self.last_end = self.last_end.max(end);
        Grant { start, end }
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Mean queue wait in microseconds.
    pub fn mean_wait_us(&self) -> f64 {
        self.wait.mean()
    }

    /// Total busy time across all servers.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Utilization of the resource over `[0, horizon]` (0..=1 per server).
    pub fn utilization(&self, horizon: SimInstant) -> f64 {
        if horizon.micros() == 0 {
            return 0.0;
        }
        let servers = self.free_at.len() as f64;
        (self.busy.micros() as f64 / horizon.micros() as f64 / servers).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes() {
        let mut r = Resource::new("gtm", 1);
        let a = r.request(SimInstant(0), SimDuration::from_micros(10));
        let b = r.request(SimInstant(0), SimDuration::from_micros(10));
        let c = r.request(SimInstant(5), SimDuration::from_micros(10));
        assert_eq!(a.start, SimInstant(0));
        assert_eq!(a.end, SimInstant(10));
        assert_eq!(b.start, SimInstant(10), "queued behind a");
        assert_eq!(b.end, SimInstant(20));
        assert_eq!(c.start, SimInstant(20), "queued behind b");
    }

    #[test]
    fn idle_server_starts_at_arrival() {
        let mut r = Resource::new("cpu", 1);
        r.request(SimInstant(0), SimDuration::from_micros(5));
        let g = r.request(SimInstant(100), SimDuration::from_micros(5));
        assert_eq!(g.start, SimInstant(100));
        assert_eq!(g.queue_wait(SimInstant(100)), SimDuration::ZERO);
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut r = Resource::new("dn", 2);
        let a = r.request(SimInstant(0), SimDuration::from_micros(10));
        let b = r.request(SimInstant(0), SimDuration::from_micros(10));
        let c = r.request(SimInstant(0), SimDuration::from_micros(10));
        assert_eq!(a.start, SimInstant(0));
        assert_eq!(b.start, SimInstant(0), "second server absorbs b");
        assert_eq!(c.start, SimInstant(10), "third request queues");
    }

    #[test]
    fn utilization_and_wait_stats() {
        let mut r = Resource::new("gtm", 1);
        for i in 0..10u64 {
            r.request(SimInstant(i * 10), SimDuration::from_micros(10));
        }
        // Back-to-back: busy 100us over horizon 100us.
        assert!((r.utilization(SimInstant(100)) - 1.0).abs() < 1e-9);
        assert_eq!(r.grants(), 10);
        assert_eq!(r.mean_wait_us(), 0.0);
    }

    #[test]
    fn saturation_grows_queue_wait() {
        // Offered load 2x capacity: waits must grow linearly.
        let mut r = Resource::new("gtm", 1);
        let mut last_wait = 0.0;
        for i in 0..100u64 {
            let g = r.request(SimInstant(i * 5), SimDuration::from_micros(10));
            last_wait = g.queue_wait(SimInstant(i * 5)).micros() as f64;
        }
        assert!(last_wait > 400.0, "expected deep queue, got {last_wait}");
    }

    #[test]
    fn out_of_order_arrival_is_tolerated() {
        let mut r = Resource::new("x", 1);
        let a = r.request(SimInstant(10), SimDuration::from_micros(4));
        let b = r.request(SimInstant(5), SimDuration::from_micros(4));
        // Late-submitted earlier arrival queues behind the granted work.
        assert_eq!(a.end, SimInstant(14));
        assert_eq!(b.start, SimInstant(14));
        // Total busy time is exact either way.
        assert_eq!(r.busy_time().micros(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = Resource::new("x", 0);
    }
}

//! Network latency models with deterministic jitter.

use hdm_common::{SimDuration, SplitMix64};

/// A point-to-point network link: a base one-way latency plus uniform jitter.
///
/// Defaults are calibrated to the paper's environments: FI-MPPDB clusters use
/// datacenter Ethernet (tens of µs one-way); the edge-sync experiments use
/// Bluetooth vs Internet links where the paper claims "direct communication
/// between devices based on Bluetooth is at least 10X faster" (§IV-B).
#[derive(Debug, Clone)]
pub struct NetLink {
    base: SimDuration,
    jitter_frac: f64,
    rng: SplitMix64,
}

impl NetLink {
    /// A link with `base` one-way latency and ±`jitter_frac` uniform jitter.
    pub fn new(base: SimDuration, jitter_frac: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&jitter_frac), "jitter must be in [0,1)");
        Self {
            base,
            jitter_frac,
            rng: SplitMix64::new(seed),
        }
    }

    /// Datacenter LAN: 25µs ± 20%.
    pub fn datacenter(seed: u64) -> Self {
        Self::new(SimDuration::from_micros(25), 0.2, seed)
    }

    /// Loopback / same-host IPC: 2µs ± 20%.
    pub fn local(seed: u64) -> Self {
        Self::new(SimDuration::from_micros(2), 0.2, seed)
    }

    /// Device-to-device Bluetooth-class link: 3ms ± 30%.
    pub fn bluetooth(seed: u64) -> Self {
        Self::new(SimDuration::from_millis(3), 0.3, seed)
    }

    /// Device-to-cloud Internet path: 30ms ± 30% (≈10x Bluetooth, §IV-B).
    pub fn internet(seed: u64) -> Self {
        Self::new(SimDuration::from_millis(30), 0.3, seed)
    }

    /// Sample a one-way message latency.
    pub fn one_way(&mut self) -> SimDuration {
        let jitter = (self.rng.next_f64() * 2.0 - 1.0) * self.jitter_frac;
        self.base.mul_f64(1.0 + jitter)
    }

    /// Sample a round-trip latency (two independent one-way samples).
    pub fn round_trip(&mut self) -> SimDuration {
        self.one_way() + self.one_way()
    }

    /// The deterministic mean one-way latency.
    pub fn base(&self) -> SimDuration {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stays_in_band() {
        let mut l = NetLink::new(SimDuration::from_micros(100), 0.2, 1);
        for _ in 0..1_000 {
            let d = l.one_way().micros();
            assert!((80..=120).contains(&d), "latency {d} outside ±20%");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = NetLink::datacenter(7);
        let mut b = NetLink::datacenter(7);
        for _ in 0..100 {
            assert_eq!(a.one_way(), b.one_way());
        }
    }

    #[test]
    fn internet_is_about_10x_bluetooth() {
        let bt = NetLink::bluetooth(1).base().micros() as f64;
        let inet = NetLink::internet(1).base().micros() as f64;
        assert!((inet / bt - 10.0).abs() < 0.5);
    }

    #[test]
    fn round_trip_is_two_hops() {
        let mut l = NetLink::new(SimDuration::from_micros(50), 0.0, 1);
        assert_eq!(l.round_trip().micros(), 100);
    }

    #[test]
    #[should_panic(expected = "jitter must be in [0,1)")]
    fn rejects_full_jitter() {
        let _ = NetLink::new(SimDuration::from_micros(1), 1.0, 0);
    }
}

//! # hdm-simnet
//!
//! A small discrete-event simulation kernel in virtual time.
//!
//! The paper's Fig 3 evaluates GTM-lite on physical clusters of 1–8 nodes.
//! We do not have that testbed (and the build host may have a single core),
//! so the cluster experiments run under this kernel: every CPU, network hop
//! and GTM interaction costs *virtual* microseconds, and throughput is
//! computed from virtual time. This reproduces the queueing behaviour that
//! Fig 3 is really about — a centralized GTM is a single-server queue that
//! saturates, while GTM-lite's single-shard fast path never visits it —
//! deterministically and independently of host hardware.
//!
//! Three building blocks:
//!
//! * [`Sim`] — an event loop scheduling boxed callbacks at virtual instants
//!   over a user-supplied world state.
//! * [`Resource`] — a multi-server FCFS resource *timeline* (a CPU, a disk,
//!   the GTM service loop) granting `(start, end)` spans to requests issued
//!   in arrival order.
//! * [`NetLink`] — a latency model with deterministic jitter.
//! * [`FaultPlan`] — a seeded, replayable fault schedule (message drop /
//!   duplication / delay, node and GTM crashes) injected at delivery points.
//! * [`Batcher`] — a deterministic group-commit window that coalesces
//!   concurrent requests to a serialized resource into one amortized
//!   service event.

pub mod batch;
pub mod faults;
pub mod latency;
pub mod resource;
pub mod sim;

pub use batch::{BatchStats, Batcher, ClosedBatch};
pub use faults::{CrashEvent, CrashTarget, FaultConfig, FaultPlan, MsgFate};
pub use latency::NetLink;
pub use resource::{Grant, Resource};
pub use sim::Sim;

//! Deterministic fault injection for the discrete-event simulations.
//!
//! A [`FaultPlan`] is a seeded source of faults: per-message fates (drop,
//! duplicate, extra delay) sampled at delivery points, and a crash/restart
//! schedule for data nodes and the GTM generated up front from the same
//! seed. Two plans built from the same seed and [`FaultConfig`] produce
//! bit-identical fault sequences, so a chaotic run replays exactly — the
//! property the chaos harness's trace assertions rely on.

use hdm_common::{SimDuration, SimInstant, SplitMix64};
use hdm_telemetry::{Counter, MetricsRegistry};

/// Fault-injection parameters. All probabilities are per message; crash
/// rates are expected crash counts per target over the horizon.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// P(message is dropped and must be retransmitted).
    pub drop_p: f64,
    /// P(message is delivered twice).
    pub duplicate_p: f64,
    /// P(message is delayed by extra latency).
    pub delay_p: f64,
    /// Maximum extra delay for delayed messages (uniform in (0, max]).
    pub max_extra_delay: SimDuration,
    /// Expected crashes per data node over the horizon.
    pub dn_crashes_per_node: f64,
    /// Expected GTM crashes over the horizon.
    pub gtm_crashes: f64,
    /// Downtime is uniform in [min_downtime, max_downtime].
    pub min_downtime: SimDuration,
    pub max_downtime: SimDuration,
}

impl FaultConfig {
    /// No faults at all — a plan under this config is a no-op.
    pub fn none() -> Self {
        Self {
            drop_p: 0.0,
            duplicate_p: 0.0,
            delay_p: 0.0,
            max_extra_delay: SimDuration::from_micros(0),
            dn_crashes_per_node: 0.0,
            gtm_crashes: 0.0,
            min_downtime: SimDuration::from_micros(100),
            max_downtime: SimDuration::from_micros(100),
        }
    }

    /// A moderately hostile default: a few percent message faults, about one
    /// crash per target per run.
    pub fn chaotic() -> Self {
        Self {
            drop_p: 0.02,
            duplicate_p: 0.02,
            delay_p: 0.05,
            max_extra_delay: SimDuration::from_micros(500),
            dn_crashes_per_node: 1.0,
            gtm_crashes: 1.0,
            min_downtime: SimDuration::from_micros(200),
            max_downtime: SimDuration::from_micros(2_000),
        }
    }

    /// Data-node crash/restart cycles only: [`Self::chaotic`]'s crash rate
    /// and downtimes with every message fault and GTM loss switched off.
    /// Isolates node loss from transport loss — the failover sweeps' diet.
    pub fn dn_crashes_only() -> Self {
        Self {
            drop_p: 0.0,
            duplicate_p: 0.0,
            delay_p: 0.0,
            gtm_crashes: 0.0,
            ..Self::chaotic()
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("drop_p", self.drop_p),
            ("duplicate_p", self.duplicate_p),
            ("delay_p", self.delay_p),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0,1]");
        }
        assert!(
            self.min_downtime <= self.max_downtime,
            "min_downtime must be <= max_downtime"
        );
    }
}

/// What happens to one message at its delivery point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFate {
    /// Delivered normally.
    Deliver,
    /// Lost; the sender times out and retransmits.
    Drop,
    /// Delivered twice (receiver-side idempotence is exercised).
    Duplicate,
    /// Delivered after extra latency.
    Delay(SimDuration),
}

/// Which component a crash event targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashTarget {
    DataNode(usize),
    Gtm,
}

/// One scheduled crash: the target goes down at `at` and restarts at
/// `restart_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    pub at: SimInstant,
    pub restart_at: SimInstant,
    pub target: CrashTarget,
}

/// Injection counters (`fault.msg{fate=…}`, `fault.crash{target=…}`) so a
/// chaos report can assert how many faults actually fired.
#[derive(Debug, Clone)]
struct FaultMetrics {
    drop: Counter,
    duplicate: Counter,
    delay: Counter,
    crash_dn: Counter,
    crash_gtm: Counter,
}

/// A seeded, replayable fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SplitMix64,
    messages: u64,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
    metrics: Option<FaultMetrics>,
}

impl FaultPlan {
    pub fn new(seed: u64, cfg: FaultConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            rng: SplitMix64::new(seed ^ 0xFA07_5EED),
            messages: 0,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
            metrics: None,
        }
    }

    /// Register the injection counters with `metrics`. Counting happens at
    /// sampling points, so attach before drawing fates or schedules.
    pub fn attach_telemetry(&mut self, metrics: &MetricsRegistry) {
        self.metrics = Some(FaultMetrics {
            drop: metrics.counter("fault.msg", &[("fate", "drop")]),
            duplicate: metrics.counter("fault.msg", &[("fate", "duplicate")]),
            delay: metrics.counter("fault.msg", &[("fate", "delay")]),
            crash_dn: metrics.counter("fault.crash", &[("target", "dn")]),
            crash_gtm: metrics.counter("fault.crash", &[("target", "gtm")]),
        });
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Sample the fate of the next message. Exactly one `next_f64` draw per
    /// deliverable outcome keeps the stream cheap and replayable.
    pub fn message_fate(&mut self) -> MsgFate {
        self.messages += 1;
        let roll = self.rng.next_f64();
        let c = &self.cfg;
        if roll < c.drop_p {
            self.dropped += 1;
            if let Some(m) = &self.metrics {
                m.drop.inc();
            }
            return MsgFate::Drop;
        }
        if roll < c.drop_p + c.duplicate_p {
            self.duplicated += 1;
            if let Some(m) = &self.metrics {
                m.duplicate.inc();
            }
            return MsgFate::Duplicate;
        }
        if roll < c.drop_p + c.duplicate_p + c.delay_p {
            self.delayed += 1;
            if let Some(m) = &self.metrics {
                m.delay.inc();
            }
            let max = c.max_extra_delay.micros().max(1);
            let extra = 1 + self.rng.next_below(max);
            return MsgFate::Delay(SimDuration::from_micros(extra));
        }
        MsgFate::Deliver
    }

    /// Generate the crash/restart schedule for `nodes` data nodes plus the
    /// GTM over `horizon`. Events are sorted by crash instant; a target's
    /// crashes never overlap (each restart precedes its next crash).
    pub fn crash_schedule(&mut self, nodes: usize, horizon: SimDuration) -> Vec<CrashEvent> {
        let mut events = Vec::new();
        let h = horizon.micros();
        for n in 0..nodes {
            self.schedule_target(CrashTarget::DataNode(n), self.cfg.dn_crashes_per_node, h, &mut events);
        }
        self.schedule_target(CrashTarget::Gtm, self.cfg.gtm_crashes, h, &mut events);
        events.sort_by_key(|e| (e.at, e.restart_at));
        events
    }

    fn schedule_target(
        &mut self,
        target: CrashTarget,
        expected: f64,
        horizon_us: u64,
        out: &mut Vec<CrashEvent>,
    ) {
        if expected <= 0.0 || horizon_us == 0 {
            return;
        }
        // Poisson-ish: round `expected` up or down stochastically, then
        // spread crashes over disjoint slices of the horizon so downtimes
        // cannot overlap for one target.
        let count = expected.floor() as u64
            + u64::from(self.rng.chance(expected.fract()));
        if count == 0 {
            return;
        }
        let slice = horizon_us / count;
        if slice < 2 {
            return;
        }
        for i in 0..count {
            let lo = i * slice;
            let at = lo + self.rng.next_below(slice / 2).max(1);
            let span = self.cfg.max_downtime.micros() - self.cfg.min_downtime.micros();
            let down = self.cfg.min_downtime.micros()
                + if span == 0 { 0 } else { self.rng.next_below(span + 1) };
            // Clamp the restart inside this target's slice so crashes stay
            // disjoint even with generous downtimes.
            let restart = (at + down.max(1)).min(lo + slice - 1);
            if let Some(m) = &self.metrics {
                match target {
                    CrashTarget::DataNode(_) => m.crash_dn.inc(),
                    CrashTarget::Gtm => m.crash_gtm.inc(),
                }
            }
            out.push(CrashEvent {
                at: SimInstant(at),
                restart_at: SimInstant(restart.max(at + 1)),
                target,
            });
        }
    }

    /// (messages seen, dropped, duplicated, delayed) — for reports.
    pub fn message_stats(&self) -> (u64, u64, u64, u64) {
        (self.messages, self.dropped, self.duplicated, self.delayed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaultConfig {
        FaultConfig::chaotic()
    }

    #[test]
    fn same_seed_same_fates() {
        let mut a = FaultPlan::new(42, cfg());
        let mut b = FaultPlan::new(42, cfg());
        for _ in 0..1_000 {
            assert_eq!(a.message_fate(), b.message_fate());
        }
        let h = SimDuration::from_millis(50);
        assert_eq!(a.crash_schedule(4, h), b.crash_schedule(4, h));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::new(1, cfg());
        let mut b = FaultPlan::new(2, cfg());
        let fates_a: Vec<_> = (0..100).map(|_| a.message_fate()).collect();
        let fates_b: Vec<_> = (0..100).map(|_| b.message_fate()).collect();
        assert_ne!(fates_a, fates_b);
    }

    #[test]
    fn none_config_is_a_noop() {
        let mut p = FaultPlan::new(7, FaultConfig::none());
        for _ in 0..500 {
            assert_eq!(p.message_fate(), MsgFate::Deliver);
        }
        assert!(p.crash_schedule(8, SimDuration::from_millis(100)).is_empty());
    }

    #[test]
    fn fault_rates_are_roughly_honoured() {
        let mut p = FaultPlan::new(3, cfg());
        for _ in 0..20_000 {
            p.message_fate();
        }
        let (n, drops, dups, delays) = p.message_stats();
        assert_eq!(n, 20_000);
        let frac = |x: u64| x as f64 / n as f64;
        assert!((frac(drops) - 0.02).abs() < 0.01, "drop rate {}", frac(drops));
        assert!((frac(dups) - 0.02).abs() < 0.01, "dup rate {}", frac(dups));
        assert!((frac(delays) - 0.05).abs() < 0.02, "delay rate {}", frac(delays));
    }

    #[test]
    fn crash_schedule_is_sorted_and_restarts_follow_crashes() {
        let mut p = FaultPlan::new(11, cfg());
        let h = SimDuration::from_millis(100);
        let events = p.crash_schedule(6, h);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in &events {
            assert!(e.restart_at > e.at, "{e:?} restarts before crashing");
            assert!(e.at < SimInstant::ZERO + h);
        }
    }

    #[test]
    fn per_target_crashes_do_not_overlap() {
        let mut c = cfg();
        c.dn_crashes_per_node = 3.0;
        let mut p = FaultPlan::new(13, c);
        let mut events = p.crash_schedule(2, SimDuration::from_millis(100));
        events.sort_by_key(|e| (format!("{:?}", e.target), e.at));
        for w in events.windows(2) {
            if w[0].target == w[1].target {
                assert!(
                    w[0].restart_at < w[1].at,
                    "overlapping downtime for {:?}",
                    w[0].target
                );
            }
        }
    }

    #[test]
    fn telemetry_counters_match_message_stats() {
        let reg = MetricsRegistry::new();
        let mut p = FaultPlan::new(5, cfg());
        p.attach_telemetry(&reg);
        for _ in 0..5_000 {
            p.message_fate();
        }
        let crashes = p.crash_schedule(3, SimDuration::from_millis(50));
        let (_, drops, dups, delays) = p.message_stats();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("fault.msg{fate=drop}"), drops);
        assert_eq!(snap.counter("fault.msg{fate=duplicate}"), dups);
        assert_eq!(snap.counter("fault.msg{fate=delay}"), delays);
        assert!(drops > 0 && dups > 0 && delays > 0, "chaotic cfg fires faults");
        let dn = crashes
            .iter()
            .filter(|e| matches!(e.target, CrashTarget::DataNode(_)))
            .count() as u64;
        let gtm = crashes.len() as u64 - dn;
        assert_eq!(snap.counter("fault.crash{target=dn}"), dn);
        assert_eq!(snap.counter("fault.crash{target=gtm}"), gtm);
        assert_eq!(snap.counter_total("fault.crash"), crashes.len() as u64);
    }

    #[test]
    fn delays_respect_the_cap() {
        let mut c = cfg();
        c.drop_p = 0.0;
        c.duplicate_p = 0.0;
        c.delay_p = 1.0;
        let mut p = FaultPlan::new(17, c.clone());
        for _ in 0..1_000 {
            match p.message_fate() {
                MsgFate::Delay(d) => {
                    assert!(d.micros() >= 1 && d <= c.max_extra_delay);
                }
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }
}

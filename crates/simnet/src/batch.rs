//! Deterministic group-commit batching for a serialized resource.
//!
//! The GTM is a single-server queue: every snapshot/CSN request pays the
//! full `gtm_service` cost, so the queue saturates at the per-request rate.
//! A [`Batcher`] coalesces requests arriving within a virtual-time *window*
//! into one service event whose cost is `base + Σ per-member weight`,
//! amortizing the fixed per-visit overhead across the batch — the classic
//! group-commit lever. Because windows open and close at exact virtual
//! instants and members are kept in join order, batching is bit-for-bit
//! deterministic: the same event schedule produces the same batches.
//!
//! Protocol between a batcher and its event loop:
//!
//! 1. A request calls [`Batcher::join`]. If no window is open, one opens
//!    and `join` returns `Some(close_at)` — the caller must schedule a
//!    close event at that instant. If a window is already open, the
//!    request boards it and `join` returns `None`.
//! 2. At `close_at` the caller invokes [`Batcher::close`], which issues
//!    one [`Resource::request`] for the whole batch and hands back the
//!    members (in join order) with the shared [`Grant`] so the caller can
//!    resume each member at `grant.end`.
//!
//! A zero window degenerates to a batch of exactly one request *only if
//! no other request joins at the identical instant*; callers that want
//! exact legacy (unbatched) behaviour should bypass the batcher entirely
//! when the window is zero rather than rely on that.

use crate::resource::{Grant, Resource};
use hdm_common::{SimDuration, SimInstant};

/// Running totals for reporting (`gtm.batch.*` series).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches served (windows closed with at least one member).
    pub batches: u64,
    /// Requests that travelled inside those batches.
    pub requests: u64,
    /// Largest batch seen.
    pub max_batch: u64,
}

impl BatchStats {
    /// Mean members per batch (1.0 when batching never coalesced anything).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// One closed batch: the shared service grant plus the members that rode it.
#[derive(Debug)]
pub struct ClosedBatch<M> {
    /// The single coalesced service span granted by the resource.
    pub grant: Grant,
    /// Members in join order (deterministic).
    pub members: Vec<(SimInstant, M)>,
}

impl<M> ClosedBatch<M> {
    pub fn size(&self) -> u64 {
        self.members.len() as u64
    }
}

/// A window-based request coalescer for one serialized [`Resource`].
#[derive(Debug)]
pub struct Batcher<M> {
    window: SimDuration,
    base_service: SimDuration,
    /// `(join instant, per-member service weight, member)` in join order.
    pending: Vec<(SimInstant, SimDuration, M)>,
    /// When the open window closes, if one is open.
    open_until: Option<SimInstant>,
    stats: BatchStats,
}

impl<M> Batcher<M> {
    /// `window`: how long a freshly-opened batch collects joiners.
    /// `base_service`: the fixed per-batch service cost paid once, on top
    /// of which each member adds its own weight.
    pub fn new(window: SimDuration, base_service: SimDuration) -> Self {
        Self {
            window,
            base_service,
            pending: Vec::new(),
            open_until: None,
            stats: BatchStats::default(),
        }
    }

    /// Board the open batch, or open a new one.
    ///
    /// Returns `Some(close_at)` when this join opened a window — the caller
    /// must schedule a [`Batcher::close`] at that instant. Returns `None`
    /// when the request boarded an already-open window.
    ///
    /// `weight` is this member's marginal service cost (e.g. one
    /// `gtm_batch_per_item` per GTM interaction the request replaces).
    pub fn join(&mut self, now: SimInstant, weight: SimDuration, member: M) -> Option<SimInstant> {
        self.pending.push((now, weight, member));
        match self.open_until {
            Some(_) => None,
            None => {
                let close_at = now + self.window;
                self.open_until = Some(close_at);
                Some(close_at)
            }
        }
    }

    /// Close the open window: issue one coalesced request against
    /// `resource` at `now` and return the members with the shared grant.
    ///
    /// # Panics
    /// If no window is open (a close event fired without a matching join).
    pub fn close(&mut self, now: SimInstant, resource: &mut Resource) -> ClosedBatch<M> {
        assert!(
            self.open_until.take().is_some(),
            "batch close with no open window"
        );
        let pending = std::mem::take(&mut self.pending);
        let service = pending
            .iter()
            .fold(self.base_service, |acc, (_, w, _)| acc + *w);
        let grant = resource.request(now, service);
        let size = pending.len() as u64;
        self.stats.batches += 1;
        self.stats.requests += size;
        self.stats.max_batch = self.stats.max_batch.max(size);
        ClosedBatch {
            grant,
            members: pending.into_iter().map(|(at, _, m)| (at, m)).collect(),
        }
    }

    /// Is a window currently collecting joiners?
    pub fn is_open(&self) -> bool {
        self.open_until.is_some()
    }

    /// Members waiting in the open window.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    pub fn stats(&self) -> BatchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_join_opens_later_joins_board() {
        let mut b: Batcher<u32> = Batcher::new(
            SimDuration::from_micros(10),
            SimDuration::from_micros(2),
        );
        assert_eq!(
            b.join(SimInstant(100), SimDuration::from_micros(1), 1),
            Some(SimInstant(110)),
            "first join opens the window"
        );
        assert_eq!(b.join(SimInstant(104), SimDuration::from_micros(1), 2), None);
        assert_eq!(b.join(SimInstant(109), SimDuration::from_micros(1), 3), None);
        assert!(b.is_open());
        assert_eq!(b.pending(), 3);
    }

    #[test]
    fn close_amortizes_service_and_preserves_join_order() {
        let mut b: Batcher<&str> = Batcher::new(
            SimDuration::from_micros(10),
            SimDuration::from_micros(4),
        );
        let mut gtm = Resource::new("gtm", 1);
        b.join(SimInstant(0), SimDuration::from_micros(1), "a");
        b.join(SimInstant(3), SimDuration::from_micros(2), "b");
        b.join(SimInstant(7), SimDuration::from_micros(1), "c");
        let batch = b.close(SimInstant(10), &mut gtm);
        // service = base 4 + weights 1+2+1 = 8, on an idle server.
        assert_eq!(batch.grant.start, SimInstant(10));
        assert_eq!(batch.grant.end, SimInstant(18));
        assert_eq!(batch.size(), 3);
        let names: Vec<&str> = batch.members.iter().map(|(_, m)| *m).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(!b.is_open());
        assert_eq!(b.pending(), 0);
        // Three requests cost one grant of 8us instead of three visits.
        assert_eq!(gtm.grants(), 1);
        assert_eq!(gtm.busy_time().micros(), 8);
    }

    #[test]
    fn next_join_after_close_opens_a_fresh_window() {
        let mut b: Batcher<u32> = Batcher::new(
            SimDuration::from_micros(5),
            SimDuration::from_micros(2),
        );
        let mut gtm = Resource::new("gtm", 1);
        b.join(SimInstant(0), SimDuration::ZERO, 1);
        b.close(SimInstant(5), &mut gtm);
        assert_eq!(
            b.join(SimInstant(20), SimDuration::ZERO, 2),
            Some(SimInstant(25)),
            "post-close join opens again"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut b: Batcher<u32> = Batcher::new(
            SimDuration::from_micros(5),
            SimDuration::from_micros(2),
        );
        let mut gtm = Resource::new("gtm", 1);
        b.join(SimInstant(0), SimDuration::ZERO, 1);
        b.join(SimInstant(1), SimDuration::ZERO, 2);
        b.join(SimInstant(2), SimDuration::ZERO, 3);
        b.close(SimInstant(5), &mut gtm);
        b.join(SimInstant(10), SimDuration::ZERO, 4);
        b.close(SimInstant(15), &mut gtm);
        let s = b.stats();
        assert_eq!(s.batches, 2);
        assert_eq!(s.requests, 4);
        assert_eq!(s.max_batch, 3);
        assert!((s.mean_batch_size() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no open window")]
    fn close_without_join_panics() {
        let mut b: Batcher<u32> = Batcher::new(SimDuration::ZERO, SimDuration::ZERO);
        let mut gtm = Resource::new("gtm", 1);
        b.close(SimInstant(0), &mut gtm);
    }
}

//! Scripted reproductions of the paper's two GTM-lite anomalies (§II-A).
//!
//! Each scenario returns what the multi-shard reader observed, so tests and
//! the Fig 3 harness's `--demo-anomalies` mode can show that the **naive**
//! merge exhibits the anomaly while **Algorithm 1** repairs it.

use crate::engine::{Cluster, ClusterConfig, MergePolicy, TxnOptions};
use crate::shard::make_key;
use hdm_common::Result;

/// What the reader saw in an anomaly scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyObservation {
    /// Value of `a` (the key written on DN1).
    pub a: Option<i64>,
    /// Value of `b` (the key written on DN2), where applicable.
    pub b: Option<i64>,
    /// Whether the observation is consistent (defined per scenario).
    pub consistent: bool,
}

/// Find two sharding prefixes living on different shards of a 2-shard map.
fn two_prefixes(c: &Cluster) -> (u32, u32) {
    let m = c.shard_map();
    let s0 = m.shard_of_prefix(0);
    for p in 1..64 {
        if m.shard_of_prefix(p) != s0 {
            return (0, p);
        }
    }
    unreachable!("64 prefixes must cover 2 shards");
}

/// **Anomaly 1**: "global snapshot tells one transaction is committed, but
/// local snapshot tells it is active (prepared but not committed)."
///
/// Writer W writes `a` on DN1 and `b` on DN2, prepares everywhere, commits
/// at the GTM — and the confirmation to the DNs is withheld. Reader R then
/// begins (its global snapshot sees W committed) and reads both keys.
///
/// Consistent means: R sees *both* of W's writes (the UPGRADE
/// wait-for-commit). Under the naive merge R sees *neither* (W's legs look
/// locally active), returning stale data that contradicts R's own global
/// snapshot — and worse, a second statement after the confirmations arrive
/// would see the writes, tearing R's view.
pub fn run_anomaly1(policy: MergePolicy) -> Result<AnomalyObservation> {
    let mut cfg = ClusterConfig::gtm_lite(2);
    cfg.merge_policy = policy;
    let mut c = Cluster::new(cfg);
    let (p1, p2) = two_prefixes(&c);
    let (ka, kb) = (make_key(p1, 1), make_key(p2, 1));

    // Baseline data so the reader can distinguish "old" from "missing".
    c.bump(Some(p1), ka, 0)?; // a = 0
    c.bump(Some(p2), kb, 0)?; // b = 0

    // Writer W: multi-shard update a=1, b=1; stop after the GTM commit.
    let mut w = c.begin(TxnOptions::multi())?;
    c.put(&mut w, ka, 1)?;
    c.put(&mut w, kb, 1)?;
    c.multi_prepare(&w)?;
    c.multi_commit_at_gtm(&w)?; // <- Anomaly-1 window opens here

    // Reader R begins now: global snapshot sees W as committed.
    let mut r = c.begin(TxnOptions::multi())?;
    let a = c.get(&mut r, ka)?;
    let b = c.get(&mut r, kb)?;
    c.commit(r)?;

    // Close the window (deliver confirmations).
    c.multi_finish(w)?;

    let consistent = a == Some(1) && b == Some(1);
    Ok(AnomalyObservation { a, b, consistent })
}

/// What the reader saw in the Anomaly-2 scenario. `a_versions` lists every
/// version of `a` the reader's merged snapshot exposed — the paper's tuple
/// table shows the anomalous view exposing *two* (tuple1 and tuple3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anomaly2Observation {
    pub a_versions: Vec<i64>,
    pub b: Option<i64>,
    pub consistent: bool,
}

/// **Anomaly 2** (Fig 2): "global snapshot says a writer is active (taken
/// earlier), but local snapshot says it is committed (taken later)."
///
/// T1 (multi-shard) sets `a=1` on DN1 and `b=1` on DN2. T3 (single-shard,
/// same session, after T1) sets `a=2` on DN1. Reader T2 took its global
/// snapshot *before* T1 committed, but reads DN1 *after* both T1 and T3
/// committed there.
///
/// Consistent means: T2's global snapshot predates T1, so it must read the
/// original `a=0, b=0`. The naive merge reproduces the paper's tuple table:
/// tuple1 (pre-T1 `a`) *and* tuple3 (T3's update) are both visible — T3's
/// effect without T1's. DOWNGRADE repairs it.
pub fn run_anomaly2(policy: MergePolicy) -> Result<Anomaly2Observation> {
    let mut cfg = ClusterConfig::gtm_lite(2);
    cfg.merge_policy = policy;
    let mut c = Cluster::new(cfg);
    let (p1, p2) = two_prefixes(&c);
    let (ka, kb) = (make_key(p1, 1), make_key(p2, 1));

    c.bump(Some(p1), ka, 0)?; // a = 0
    c.bump(Some(p2), kb, 0)?; // b = 0

    // T1 multi-shard: a=1, b=1 — but hold its commit until T2 has begun.
    let mut t1 = c.begin(TxnOptions::multi())?;
    c.put(&mut t1, ka, 1)?;
    c.put(&mut t1, kb, 1)?;

    // T2 begins: its global snapshot sees T1 as active.
    let mut t2 = c.begin(TxnOptions::multi())?;

    // T1 commits fully, then T3 (single-shard, same session) sets a=2.
    c.commit(t1)?;
    let mut t3 = c.begin(TxnOptions::single(p1))?;
    c.put(&mut t3, ka, 2)?;
    c.commit(t3)?;

    // T2 now reads both keys; its local snapshot on DN1 postdates T1 and T3.
    let a_versions = c.get_versions(&mut t2, ka)?;
    let b = c.get(&mut t2, kb)?;
    c.commit(t2)?;

    let consistent = a_versions == vec![0] && b == Some(0);
    Ok(Anomaly2Observation {
        a_versions,
        b,
        consistent,
    })
}

/// What the torn-read probe observed: the two keys a frozen-in-the-commit-
/// window writer updated together, as one multi-shard reader saw them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornReadObservation {
    pub a: Option<i64>,
    pub b: Option<i64>,
}

impl TornReadObservation {
    /// A consistent multi-shard read shows both keys from the same version
    /// of history.
    pub fn torn(&self) -> bool {
        self.a != self.b
    }
}

/// Scripted torn-read probe under Algorithm 1: `writers_before_read`
/// multi-shard writers fully commit `(a, b)` in lockstep, one more writer
/// freezes inside the commit window (committed at the GTM, confirmations
/// withheld), and a multi-shard reader then reads both keys. Exposes the
/// split commit steps to out-of-crate tests as a scenario instead of as
/// API surface.
pub fn run_torn_read(writers_before_read: i64) -> Result<TornReadObservation> {
    let mut c = Cluster::new(ClusterConfig::gtm_lite(2));
    let (p1, p2) = two_prefixes(&c);
    let (ka, kb) = (make_key(p1, 1), make_key(p2, 1));
    c.bump(None, ka, 0)?;
    c.bump(None, kb, 0)?;

    for i in 0..writers_before_read {
        let mut w = c.begin(TxnOptions::multi())?;
        c.put(&mut w, ka, i + 1)?;
        c.put(&mut w, kb, i + 1)?;
        c.commit(w)?;
    }
    // One writer frozen inside the commit window.
    let mut w = c.begin(TxnOptions::multi())?;
    c.put(&mut w, ka, 100)?;
    c.put(&mut w, kb, 100)?;
    c.multi_prepare(&w)?;
    c.multi_commit_at_gtm(&w)?;

    let mut r = c.begin(TxnOptions::multi())?;
    let a = c.get(&mut r, ka)?;
    let b = c.get(&mut r, kb)?;
    c.commit(r)?;
    c.multi_finish(w)?;
    Ok(TornReadObservation { a, b })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anomaly1_full_merge_reads_both_writes() {
        let obs = run_anomaly1(MergePolicy::Full).unwrap();
        assert_eq!(obs.a, Some(1));
        assert_eq!(obs.b, Some(1));
        assert!(obs.consistent);
    }

    #[test]
    fn anomaly1_naive_merge_misses_the_committed_write() {
        let obs = run_anomaly1(MergePolicy::Naive).unwrap();
        assert!(!obs.consistent, "naive merge must exhibit Anomaly 1");
        assert_eq!(obs.a, Some(0), "stale read of W's prepared write");
        assert_eq!(obs.b, Some(0));
    }

    #[test]
    fn anomaly2_full_merge_downgrades_to_consistent_prefix() {
        let obs = run_anomaly2(MergePolicy::Full).unwrap();
        assert!(obs.consistent, "DOWNGRADE hides T1 and its dependent T3");
        assert_eq!(obs.a_versions, vec![0]);
        assert_eq!(obs.b, Some(0));
    }

    #[test]
    fn anomaly2_naive_merge_sees_tuple1_and_tuple3() {
        let obs = run_anomaly2(MergePolicy::Naive).unwrap();
        assert!(!obs.consistent, "naive merge must exhibit Anomaly 2");
        // The paper's tuple table verbatim: tuple1 (a=0, pre-T1) and tuple3
        // (a=2, T3's update) both visible; tuple2 (T1's write) is not.
        assert_eq!(obs.a_versions, vec![0, 2]);
        assert_eq!(obs.b, Some(0), "T1's write on DN2 invisible (global active)");
    }
}

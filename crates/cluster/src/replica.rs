//! Per-shard DN replication: a primary plus N log-shipped followers.
//!
//! The paper's GaussDB deployments keep every shard highly available; we
//! reproduce the substrate as a **logical replication log** per shard. The
//! primary appends one record per durable transition:
//!
//! * [`LogRecord::Commit`] — a single-shard transaction's logical ops, shipped
//!   at commit time;
//! * [`LogRecord::Prepare`] — a 2PC leg's ops, shipped at *prepare* time
//!   (Raft-style: the vote-yes is only durable once replicated), so a promoted
//!   follower holds the leg **in doubt** and the existing in-doubt machinery
//!   resolves it against the GTM;
//! * [`LogRecord::Resolve`] — the 2PC decision for a prepared leg;
//! * [`LogRecord::Ddl`] — CN-side CREATE TABLE fan-out.
//!
//! A follower's **replica CSN** is the length of the log prefix it has
//! applied; applying the whole log reproduces the primary's committed state
//! exactly (value-addressed: updates and deletes locate their target tuple by
//! row equality, which is unambiguous because followers apply serially and
//! see only the committed prefix). Promotion = replay-to-head + in-doubt
//! reconstruction; see `Cluster::try_failover`.

use crate::node::DataNode;
use hdm_common::{HdmError, Result, Row, Schema, ShardId, Xid};
use std::collections::BTreeSet;

/// One logical operation of a replicated transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplOp {
    /// Upsert on the built-in kv table.
    Put { key: i64, val: i64 },
    /// Delete on the built-in kv table.
    Del { key: i64 },
    /// Insert into this shard's slice of a distributed SQL table.
    SqlInsert { table: String, row: Row },
    /// Value-addressed update: the follower rewrites its visible tuple equal
    /// to `old` into `new`.
    SqlUpdate { table: String, old: Row, new: Row },
    /// Value-addressed delete.
    SqlDelete { table: String, row: Row },
    /// Create this shard's slice of a SQL table (CN DDL fan-out).
    CreateSqlTable { table: String, schema: Schema },
    /// Create a secondary index on this shard's slice (CN DDL fan-out).
    /// Replayed before any rows on a rejoining follower, so a promoted
    /// replica serves the same probe paths as the primary it replaced.
    CreateSqlIndex { table: String, columns: Vec<usize> },
}

/// One entry of a shard's replication log. The statement tag `(id, rows)`
/// carries the CN's idempotence key so a promoted primary inherits the
/// dedup table (`DataNode::stmt_applied`) of the old one.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// DDL applied outside any transaction.
    Ddl { op: ReplOp },
    /// A committed single-shard transaction.
    Commit {
        ops: Vec<ReplOp>,
        stmt: Option<(u64, u64)>,
    },
    /// 2PC phase one of global transaction `gxid` on this shard.
    Prepare {
        gxid: Xid,
        ops: Vec<ReplOp>,
        stmt: Option<(u64, u64)>,
    },
    /// The 2PC decision for `gxid`'s leg here.
    Resolve { gxid: Xid, commit: bool },
}

/// The append-only replication log of one shard. CSN n addresses the
/// (n+1)-th record; [`Self::head`] is the CSN one past the newest record.
#[derive(Debug, Clone, Default)]
pub struct ShardLog {
    records: Vec<LogRecord>,
    /// Gxids with a `Prepare` record but no `Resolve` yet. Gates resolve
    /// appends: every `Resolve` in the log has a matching earlier `Prepare`,
    /// so serial application never resolves a leg it does not hold.
    in_flight: BTreeSet<Xid>,
}

impl ShardLog {
    pub fn append(&mut self, rec: LogRecord) {
        match &rec {
            LogRecord::Prepare { gxid, .. } => {
                self.in_flight.insert(*gxid);
            }
            LogRecord::Resolve { gxid, .. } => {
                self.in_flight.remove(gxid);
            }
            _ => {}
        }
        self.records.push(rec);
    }

    /// Does the log hold a `Prepare` for `gxid` with no `Resolve` yet?
    pub fn is_in_flight(&self, gxid: Xid) -> bool {
        self.in_flight.contains(&gxid)
    }

    /// The log head: one past the last record.
    pub fn head(&self) -> u64 {
        self.records.len() as u64
    }

    pub fn get(&self, csn: u64) -> Option<&LogRecord> {
        self.records.get(csn as usize)
    }
}

/// A log-shipped replica of one shard: a full [`DataNode`] plus the replica
/// CSN up to which it has applied the shard's log.
#[derive(Debug)]
pub struct Follower {
    pub node: DataNode,
    /// Replica CSN: length of the applied log prefix.
    pub applied: u64,
}

impl Follower {
    pub fn new(shard: ShardId) -> Self {
        Self {
            node: DataNode::new(shard),
            applied: 0,
        }
    }

    /// Apply the next unapplied log record, if any. Returns whether a record
    /// was applied. Divergence (a value-addressed op not finding its target)
    /// is a replication bug and surfaces as an error.
    pub fn apply_next(&mut self, log: &ShardLog) -> Result<bool> {
        let Some(rec) = log.get(self.applied) else {
            return Ok(false);
        };
        match rec {
            LogRecord::Ddl { op } => match op {
                ReplOp::CreateSqlTable { table, schema } => {
                    self.node.create_sql_table(table, schema.clone())?;
                }
                ReplOp::CreateSqlIndex { table, columns } => {
                    self.node.create_sql_index(table, columns.clone())?;
                }
                _ => {
                    return Err(HdmError::TxnState(format!(
                        "non-DDL op in a Ddl record: {op:?}"
                    )));
                }
            },
            LogRecord::Commit { ops, stmt } => {
                let xid = self.node.mgr_mut().begin_local();
                apply_ops(&mut self.node, xid, ops)?;
                self.node.mgr_mut().commit(xid)?;
                self.node.clear_undo(xid);
                if let Some((sid, rows)) = stmt {
                    self.node.note_stmt_applied(*sid, *rows);
                }
            }
            LogRecord::Prepare { gxid, ops, stmt } => {
                let xid = self.node.mgr_mut().begin_global(*gxid);
                apply_ops(&mut self.node, xid, ops)?;
                self.node.mgr_mut().prepare(xid)?;
                if let Some((sid, rows)) = stmt {
                    self.node.tag_statement(xid, *sid, *rows);
                }
            }
            LogRecord::Resolve { gxid, commit } => {
                let local = self.node.mgr().local_of(*gxid).ok_or_else(|| {
                    HdmError::TxnState(format!("replica has no prepared leg for {gxid}"))
                })?;
                self.node.resolve_in_doubt(local, *commit)?;
            }
        }
        self.applied += 1;
        Ok(true)
    }
}

/// Apply a record's logical ops under one replica-local transaction. The
/// snapshot is re-taken per op so value-addressed lookups see the ops already
/// applied by this very transaction (own-xid visibility).
fn apply_ops(node: &mut DataNode, xid: Xid, ops: &[ReplOp]) -> Result<()> {
    for op in ops {
        let snap = node.local_snapshot();
        match op {
            ReplOp::Put { key, val } => node.put_local(&snap, Some(xid), xid, *key, *val)?,
            ReplOp::Del { key } => {
                node.del_local(&snap, Some(xid), xid, *key)?;
            }
            ReplOp::SqlInsert { table, row } => {
                node.sql_insert(table, xid, row.clone())?;
            }
            ReplOp::SqlUpdate { table, old, new } => {
                let tid = node.sql_find_by_row(table, Some(xid), old)?.ok_or_else(|| {
                    HdmError::TxnState(format!("replica divergence: no row {old:?} in {table}"))
                })?;
                node.sql_update(table, xid, tid, new.clone())?;
            }
            ReplOp::SqlDelete { table, row } => {
                let tid = node.sql_find_by_row(table, Some(xid), row)?.ok_or_else(|| {
                    HdmError::TxnState(format!("replica divergence: no row {row:?} in {table}"))
                })?;
                node.sql_delete(table, xid, tid)?;
            }
            ReplOp::CreateSqlTable { .. } | ReplOp::CreateSqlIndex { .. } => {
                return Err(HdmError::TxnState(
                    "DDL inside a transactional record".into(),
                ));
            }
        }
    }
    Ok(())
}

/// One shard's replication group: the shared log plus its followers.
#[derive(Debug)]
pub struct ReplicaSet {
    pub log: ShardLog,
    pub followers: Vec<Follower>,
}

impl ReplicaSet {
    pub fn new(shard: ShardId, replicas: usize) -> Self {
        Self {
            log: ShardLog::default(),
            followers: (0..replicas).map(|_| Follower::new(shard)).collect(),
        }
    }

    pub fn append(&mut self, rec: LogRecord) {
        self.log.append(rec);
    }

    /// Append the 2PC decision for `gxid`'s leg, but only if the log holds
    /// an unresolved `Prepare` for it — callers on the resolution paths
    /// (finish, in-doubt recovery, UPGRADE, abort) can all report the same
    /// decision without double-logging it. Returns whether it was appended.
    pub fn resolve(&mut self, gxid: Xid, commit: bool) -> bool {
        if !self.log.is_in_flight(gxid) {
            return false;
        }
        self.log.append(LogRecord::Resolve { gxid, commit });
        true
    }

    /// Ship up to `budget` log records to each follower (the asynchronous
    /// log-shipping step; 0 = unbounded, i.e. catch every follower up to
    /// the log head). Returns the total records applied.
    pub fn pump(&mut self, budget: usize) -> Result<u64> {
        let budget = if budget == 0 { usize::MAX } else { budget };
        let mut applied = 0;
        for f in &mut self.followers {
            for _ in 0..budget {
                if !f.apply_next(&self.log)? {
                    break;
                }
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Remove the most caught-up follower and replay it to the log head —
    /// the replay-to-CSN catch-up step of promotion. Returns the promoted
    /// follower and how many records the catch-up replayed.
    pub fn take_promoted(&mut self) -> Result<Option<(Follower, u64)>> {
        let best = match (0..self.followers.len()).max_by_key(|&i| self.followers[i].applied) {
            Some(i) => i,
            None => return Ok(None),
        };
        let mut f = self.followers.remove(best);
        let behind = self.log.head() - f.applied;
        while f.apply_next(&self.log)? {}
        Ok(Some((f, behind)))
    }

    /// Replica CSNs of the followers (diagnostics / reports).
    pub fn csns(&self) -> Vec<u64> {
        self.followers.iter().map(|f| f.applied).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::{row, DataType};

    fn shard() -> ShardId {
        ShardId::new(0)
    }

    fn sql_schema() -> Schema {
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)])
    }

    fn visible_rows(node: &DataNode, table: &str) -> Vec<Row> {
        let snap = node.local_snapshot();
        let judge =
            hdm_txn::SnapshotVisibility::new(&snap, node.mgr().clog(), None);
        let mut out: Vec<Row> = node
            .sql_table(table)
            .unwrap()
            .scan(&judge)
            .map(|(_, r)| r.clone())
            .collect();
        out.sort_by_key(|r| format!("{r:?}"));
        out
    }

    #[test]
    fn commit_records_replay_to_identical_state() {
        let mut rs = ReplicaSet::new(shard(), 1);
        rs.append(LogRecord::Ddl {
            op: ReplOp::CreateSqlTable {
                table: "t".into(),
                schema: sql_schema(),
            },
        });
        rs.append(LogRecord::Commit {
            ops: vec![
                ReplOp::SqlInsert {
                    table: "t".into(),
                    row: row![1, 10],
                },
                ReplOp::SqlInsert {
                    table: "t".into(),
                    row: row![2, 20],
                },
            ],
            stmt: Some((7, 2)),
        });
        rs.append(LogRecord::Commit {
            ops: vec![ReplOp::SqlUpdate {
                table: "t".into(),
                old: row![1, 10],
                new: row![1, 11],
            }],
            stmt: None,
        });
        assert_eq!(rs.pump(100).unwrap(), 3);
        let f = &rs.followers[0];
        assert_eq!(f.applied, 3, "replica CSN tracks the applied prefix");
        assert_eq!(visible_rows(&f.node, "t"), vec![row![1, 11], row![2, 20]]);
        assert_eq!(f.node.stmt_applied(7), Some(2), "dedup table shipped");
    }

    #[test]
    fn prepare_stays_invisible_until_resolve() {
        let mut rs = ReplicaSet::new(shard(), 1);
        rs.append(LogRecord::Ddl {
            op: ReplOp::CreateSqlTable {
                table: "t".into(),
                schema: sql_schema(),
            },
        });
        rs.append(LogRecord::Prepare {
            gxid: Xid(9000),
            ops: vec![ReplOp::SqlInsert {
                table: "t".into(),
                row: row![5, 50],
            }],
            stmt: Some((3, 1)),
        });
        rs.pump(100).unwrap();
        let f = &rs.followers[0];
        assert!(visible_rows(&f.node, "t").is_empty(), "prepared is invisible");
        assert_eq!(
            f.node.in_doubt_legs(),
            vec![(f.node.mgr().local_of(Xid(9000)).unwrap(), Some(Xid(9000)))],
            "the leg is reconstructed in doubt"
        );
        rs.append(LogRecord::Resolve {
            gxid: Xid(9000),
            commit: true,
        });
        rs.pump(100).unwrap();
        let f = &rs.followers[0];
        assert_eq!(visible_rows(&f.node, "t"), vec![row![5, 50]]);
        assert_eq!(f.node.stmt_applied(3), Some(1), "tag published on resolve");
        assert_eq!(f.node.undo_len(), 0);
    }

    #[test]
    fn resolve_abort_rolls_the_leg_back() {
        let mut rs = ReplicaSet::new(shard(), 1);
        rs.append(LogRecord::Commit {
            ops: vec![ReplOp::Put { key: 1, val: 10 }],
            stmt: None,
        });
        rs.append(LogRecord::Prepare {
            gxid: Xid(9001),
            ops: vec![ReplOp::Put { key: 1, val: 99 }],
            stmt: None,
        });
        rs.append(LogRecord::Resolve {
            gxid: Xid(9001),
            commit: false,
        });
        rs.pump(100).unwrap();
        let f = &rs.followers[0];
        let snap = f.node.local_snapshot();
        assert_eq!(f.node.get_local(&snap, None, 1).unwrap(), Some(10));
        assert_eq!(f.node.undo_len(), 0, "aborted leg releases its undo");
    }

    #[test]
    fn promotion_picks_the_most_caught_up_and_replays_to_head() {
        let mut rs = ReplicaSet::new(shard(), 2);
        for i in 0..6 {
            rs.append(LogRecord::Commit {
                ops: vec![ReplOp::Put { key: i, val: i * 10 }],
                stmt: None,
            });
        }
        // Ship 4 records to follower 0 only.
        for _ in 0..4 {
            let log = &rs.log;
            rs.followers[0].apply_next(log).unwrap();
        }
        let (f, behind) = rs.take_promoted().unwrap().unwrap();
        assert_eq!(behind, 2, "catch-up replayed exactly the missing suffix");
        assert_eq!(f.applied, 6);
        let snap = f.node.local_snapshot();
        for i in 0..6 {
            assert_eq!(f.node.get_local(&snap, None, i).unwrap(), Some(i * 10));
        }
        assert_eq!(rs.followers.len(), 1, "one follower remains");
        assert_eq!(rs.followers[0].applied, 0);
    }

    #[test]
    fn value_addressed_delete_matches_one_row() {
        let mut rs = ReplicaSet::new(shard(), 1);
        rs.append(LogRecord::Ddl {
            op: ReplOp::CreateSqlTable {
                table: "t".into(),
                schema: sql_schema(),
            },
        });
        rs.append(LogRecord::Commit {
            ops: vec![
                ReplOp::SqlInsert {
                    table: "t".into(),
                    row: row![1, 10],
                },
                ReplOp::SqlInsert {
                    table: "t".into(),
                    row: row![1, 20],
                },
            ],
            stmt: None,
        });
        rs.append(LogRecord::Commit {
            ops: vec![ReplOp::SqlDelete {
                table: "t".into(),
                row: row![1, 20],
            }],
            stmt: None,
        });
        rs.pump(100).unwrap();
        assert_eq!(visible_rows(&rs.followers[0].node, "t"), vec![row![1, 10]]);
    }
}

//! A data node: one shard's storage plus its local transaction machinery.
//!
//! The node stores a transactional key→value table (the OLTP surface Fig 3
//! exercises), tracks per-transaction undo information for aborts, and keeps
//! the "pending commit" set that UPGRADE waits resolve against: a multi-shard
//! transaction that is decided-commit at the GTM but whose confirmation has
//! not yet been applied here can be *finished* on demand by a reader.

use crate::replica::ReplOp;

/// Redo drained from a finished transaction for the shard's replication
/// log: the logical ops plus the statement idempotence tag
/// `(stmt_id, rowcount)`, if the statement asked for one.
pub type DrainedRedo = (Vec<ReplOp>, Option<(u64, u64)>);
use hdm_common::{row, Datum, HdmError, Result, Row, Schema, ShardId, Xid};
use hdm_storage::heap::TupleId;
use hdm_storage::mvcc::Visibility;
use hdm_storage::{Table, TableStats};
use hdm_txn::{LocalTxnManager, Snapshot, SnapshotVisibility};
use std::collections::{BTreeMap, HashMap};

/// One undoable write.
#[derive(Debug, Clone)]
enum UndoOp {
    /// We inserted this version; abort neutralizes it.
    Insert(TupleId),
    /// We stamped this version dead; abort clears the stamp.
    Delete(TupleId),
    /// Insert into a named SQL table shard.
    SqlInsert(String, TupleId),
    /// Delete stamp on a named SQL table shard.
    SqlDelete(String, TupleId),
}

/// A data node holding one shard.
#[derive(Debug)]
pub struct DataNode {
    id: ShardId,
    mgr: LocalTxnManager,
    table: Table,
    /// Shard-local slices of distributed SQL tables, keyed by canonical
    /// (lowercased) table name. Created by the CN's `CREATE TABLE` fan-out;
    /// each holds only the rows routed to this shard.
    sql: BTreeMap<String, Table>,
    /// Undo log per writing XID (local XID under GTM-lite, global XID under
    /// the baseline protocol — the node is agnostic).
    undo: HashMap<u64, Vec<UndoOp>>,
    /// Local XIDs prepared here whose global decision is commit, awaiting
    /// the confirmation message. Readers' UPGRADE may finish them early.
    pending_commit: HashMap<u64, ()>,
    /// Logical redo per writing XID, recorded only while `record_redo` is on
    /// (the shard has log-shipped followers). Drained into the replication
    /// log at commit (single-shard) or prepare (2PC leg) time.
    redo: HashMap<u64, Vec<ReplOp>>,
    record_redo: bool,
    /// CN statement tag per writing XID: (statement id, statement rowcount).
    /// Moves into `applied_stmts` when the transaction commits; dropped on
    /// abort. This is the DN half of idempotent statement retry.
    stmt_tags: HashMap<u64, (u64, u64)>,
    /// Statement id -> rowcount for statements that committed here. A
    /// retried write leg that finds its id here is a duplicate and must not
    /// re-apply.
    applied_stmts: HashMap<u64, u64>,
}

impl DataNode {
    pub fn new(id: ShardId) -> Self {
        let mut table = Table::new(
            format!("kv@{id}"),
            hdm_common::Schema::from_pairs(&[
                ("k", hdm_common::DataType::Int),
                ("v", hdm_common::DataType::Int),
            ]),
        );
        table.create_index(vec![0]).expect("static index def");
        Self {
            id,
            mgr: LocalTxnManager::new(),
            table,
            sql: BTreeMap::new(),
            undo: HashMap::new(),
            pending_commit: HashMap::new(),
            redo: HashMap::new(),
            record_redo: false,
            stmt_tags: HashMap::new(),
            applied_stmts: HashMap::new(),
        }
    }

    /// Turn logical redo recording on (the shard has followers to ship to).
    /// Off by default so replication-free clusters pay nothing on the write
    /// path.
    pub fn set_record_redo(&mut self, on: bool) {
        self.record_redo = on;
    }

    fn push_redo(&mut self, xid: Xid, op: ReplOp) {
        if self.record_redo {
            self.redo.entry(xid.raw()).or_default().push(op);
        }
    }

    /// Tag `xid`'s writes with the CN's idempotence key: statement id plus
    /// the statement's total rowcount (the same total on every leg, so any
    /// surviving leg can answer a duplicate in full).
    pub fn tag_statement(&mut self, xid: Xid, stmt_id: u64, rows: u64) {
        self.stmt_tags.insert(xid.raw(), (stmt_id, rows));
    }

    /// Rowcount of `stmt_id` if a transaction carrying it committed here.
    pub fn stmt_applied(&self, stmt_id: u64) -> Option<u64> {
        self.applied_stmts.get(&stmt_id).copied()
    }

    /// Record a committed statement directly (follower apply path).
    pub fn note_stmt_applied(&mut self, stmt_id: u64, rows: u64) {
        self.applied_stmts.insert(stmt_id, rows);
    }

    /// Publish `xid`'s statement tag into the committed-statement table.
    fn publish_stmt(&mut self, xid: Xid) {
        if let Some((sid, rows)) = self.stmt_tags.remove(&xid.raw()) {
            self.applied_stmts.insert(sid, rows);
        }
    }

    pub fn id(&self) -> ShardId {
        self.id
    }

    pub fn mgr(&self) -> &LocalTxnManager {
        &self.mgr
    }

    pub fn mgr_mut(&mut self) -> &mut LocalTxnManager {
        &mut self.mgr
    }

    pub fn stats(&self) -> Option<&TableStats> {
        self.table.stats()
    }

    /// The built-in kv table (exposed read-only for distributed scans).
    pub fn kv_table(&self) -> &Table {
        &self.table
    }

    /// Create this shard's slice of a distributed SQL table. Idempotent on
    /// name collisions only if the existing slice is empty of versions.
    pub fn create_sql_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        if self.sql.contains_key(name) {
            return Err(HdmError::Catalog(format!(
                "table {name} already exists on {}",
                self.id
            )));
        }
        let mut table = Table::new(format!("{name}@{}", self.id), schema);
        // Every distributed table is hash-distributed on its first column,
        // so index it: point queries pinned to the shard key probe instead
        // of scanning. Replicas replay the same DDL through this method and
        // build the identical index, so failover keeps the probe path.
        table.create_index(vec![0]).expect("static index def");
        self.sql.insert(name.to_string(), table);
        Ok(())
    }

    /// Create a secondary index on this shard's slice of SQL table `name`.
    /// Idempotent: replica replay may re-apply the DDL after a rejoin, and
    /// the shard-key index created by [`Self::create_sql_table`] may already
    /// cover the same columns.
    pub fn create_sql_index(&mut self, name: &str, columns: Vec<usize>) -> Result<usize> {
        let t = self
            .sql
            .get_mut(name)
            .ok_or_else(|| HdmError::Catalog(format!("no table {name} on {}", self.id)))?;
        if let Some(ix) = t
            .indexes()
            .iter()
            .position(|ix| ix.key_columns() == columns.as_slice())
        {
            return Ok(ix);
        }
        t.create_index(columns)
    }

    /// This shard's slice of SQL table `name`.
    pub fn sql_table(&self, name: &str) -> Result<&Table> {
        self.sql
            .get(name)
            .ok_or_else(|| HdmError::Catalog(format!("no table {name} on {}", self.id)))
    }

    /// Statistics for this shard's slice of SQL table `name` (last ANALYZE).
    pub fn sql_stats(&self, name: &str) -> Option<&TableStats> {
        self.sql.get(name).and_then(Table::stats)
    }

    /// Insert `row` into SQL table `name` as `xid`, with undo recorded.
    pub fn sql_insert(&mut self, name: &str, xid: Xid, row: Row) -> Result<TupleId> {
        let t = self
            .sql
            .get_mut(name)
            .ok_or_else(|| HdmError::Catalog(format!("no table {name} on {}", self.id)))?;
        let tid = t.insert(xid, row.clone())?;
        self.undo
            .entry(xid.raw())
            .or_default()
            .push(UndoOp::SqlInsert(name.to_string(), tid));
        self.push_redo(
            xid,
            ReplOp::SqlInsert {
                table: name.to_string(),
                row,
            },
        );
        Ok(tid)
    }

    /// Update tuple `tid` of SQL table `name` as `xid`, with undo recorded.
    pub fn sql_update(&mut self, name: &str, xid: Xid, tid: TupleId, row: Row) -> Result<TupleId> {
        let t = self
            .sql
            .get_mut(name)
            .ok_or_else(|| HdmError::Catalog(format!("no table {name} on {}", self.id)))?;
        let old_row = if self.record_redo {
            Some(t.heap().row(tid)?.clone())
        } else {
            None
        };
        let new_tid = t.update(xid, tid, row.clone())?;
        let u = self.undo.entry(xid.raw()).or_default();
        u.push(UndoOp::SqlDelete(name.to_string(), tid));
        u.push(UndoOp::SqlInsert(name.to_string(), new_tid));
        if let Some(old) = old_row {
            self.push_redo(
                xid,
                ReplOp::SqlUpdate {
                    table: name.to_string(),
                    old,
                    new: row,
                },
            );
        }
        Ok(new_tid)
    }

    /// Delete tuple `tid` of SQL table `name` as `xid`, with undo recorded.
    pub fn sql_delete(&mut self, name: &str, xid: Xid, tid: TupleId) -> Result<()> {
        let t = self
            .sql
            .get_mut(name)
            .ok_or_else(|| HdmError::Catalog(format!("no table {name} on {}", self.id)))?;
        let row = if self.record_redo {
            Some(t.heap().row(tid)?.clone())
        } else {
            None
        };
        t.delete(xid, tid)?;
        self.undo
            .entry(xid.raw())
            .or_default()
            .push(UndoOp::SqlDelete(name.to_string(), tid));
        if let Some(row) = row {
            self.push_redo(
                xid,
                ReplOp::SqlDelete {
                    table: name.to_string(),
                    row,
                },
            );
        }
        Ok(())
    }

    /// The visible tuple of `name` whose row equals `row`, judged by the
    /// node's current snapshot (plus `own`-xid visibility) — the follower's
    /// value-addressed lookup for replicated updates and deletes.
    pub fn sql_find_by_row(
        &self,
        name: &str,
        own: Option<Xid>,
        row: &Row,
    ) -> Result<Option<TupleId>> {
        let snap = self.mgr.local_snapshot();
        let judge = SnapshotVisibility::new(&snap, self.mgr.clog(), own);
        let t = self.sql_table(name)?;
        let found = t.scan(&judge).find(|(_, r)| *r == row).map(|(tid, _)| tid);
        Ok(found)
    }

    /// ANALYZE every table on this node (kv + SQL slices) under the node's
    /// current local snapshot — the per-DN half of a distributed ANALYZE.
    pub fn analyze_all(&mut self) {
        let snap = self.mgr.local_snapshot();
        let judge = SnapshotVisibility::new(&snap, self.mgr.clog(), None);
        self.table.analyze(&judge);
        for t in self.sql.values_mut() {
            t.analyze(&judge);
        }
    }

    /// Read `key` under the caller's visibility judge.
    pub fn get<V: Visibility + ?Sized>(&self, judge: &V, key: i64) -> Result<Option<i64>> {
        let hits = self.table.probe(0, &vec![Datum::Int(key)], judge)?;
        match hits.len() {
            0 => Ok(None),
            1 => Ok(hits[0].1.get(1).and_then(Datum::as_int)),
            n => Err(HdmError::Execution(format!(
                "key {key} resolves to {n} visible versions on {}",
                self.id
            ))),
        }
    }

    /// Upsert `key = val` as transaction `xid`. The visible old version (if
    /// any) is judged with `judge`; a write-write conflict aborts.
    pub fn put<V: Visibility + ?Sized>(
        &mut self,
        judge: &V,
        xid: Xid,
        key: i64,
        val: i64,
    ) -> Result<()> {
        let old = {
            let hits = self.table.probe(0, &vec![Datum::Int(key)], judge)?;
            hits.first().map(|(tid, _)| *tid)
        };
        self.apply_put(xid, old, key, val)
    }

    /// Delete `key` as transaction `xid`. Returns whether a version existed.
    pub fn del<V: Visibility + ?Sized>(
        &mut self,
        judge: &V,
        xid: Xid,
        key: i64,
    ) -> Result<bool> {
        let old = {
            let hits = self.table.probe(0, &vec![Datum::Int(key)], judge)?;
            hits.first().map(|(tid, _)| *tid)
        };
        match old {
            None => Ok(false),
            Some(tid) => {
                self.table.delete(xid, tid)?;
                self.undo.entry(xid.raw()).or_default().push(UndoOp::Delete(tid));
                self.push_redo(xid, ReplOp::Del { key });
                Ok(true)
            }
        }
    }

    /// [`Self::get`] judged by this node's *own* snapshot machinery
    /// (GTM-lite path): `snap` is a local or merged snapshot in this node's
    /// XID namespace, checked against this node's commit log.
    pub fn get_local(&self, snap: &Snapshot, own: Option<Xid>, key: i64) -> Result<Option<i64>> {
        let judge = SnapshotVisibility::new(snap, self.mgr.clog(), own);
        let hits = self.table.probe(0, &vec![Datum::Int(key)], &judge)?;
        match hits.len() {
            0 => Ok(None),
            1 => Ok(hits[0].1.get(1).and_then(Datum::as_int)),
            n => Err(HdmError::Execution(format!(
                "key {key} resolves to {n} visible versions on {}",
                self.id
            ))),
        }
    }

    /// All visible values for `key` under this node's own snapshot
    /// machinery. A consistent snapshot yields at most one; an inconsistent
    /// merged view (the paper's Anomaly 2 tuple table) can yield several —
    /// this method exists so that scenario is observable.
    pub fn get_versions_local(
        &self,
        snap: &Snapshot,
        own: Option<Xid>,
        key: i64,
    ) -> Result<Vec<i64>> {
        let judge = SnapshotVisibility::new(snap, self.mgr.clog(), own);
        let hits = self.table.probe(0, &vec![Datum::Int(key)], &judge)?;
        Ok(hits
            .iter()
            .filter_map(|(_, r)| r.get(1).and_then(Datum::as_int))
            .collect())
    }

    /// [`Self::put`] judged by this node's own snapshot machinery.
    pub fn put_local(
        &mut self,
        snap: &Snapshot,
        own: Option<Xid>,
        xid: Xid,
        key: i64,
        val: i64,
    ) -> Result<()> {
        let old = {
            let judge = SnapshotVisibility::new(snap, self.mgr.clog(), own);
            self.table
                .probe(0, &vec![Datum::Int(key)], &judge)?
                .first()
                .map(|(tid, _)| *tid)
        };
        self.apply_put(xid, old, key, val)
    }

    /// [`Self::del`] judged by this node's own snapshot machinery.
    pub fn del_local(
        &mut self,
        snap: &Snapshot,
        own: Option<Xid>,
        xid: Xid,
        key: i64,
    ) -> Result<bool> {
        let old = {
            let judge = SnapshotVisibility::new(snap, self.mgr.clog(), own);
            self.table
                .probe(0, &vec![Datum::Int(key)], &judge)?
                .first()
                .map(|(tid, _)| *tid)
        };
        match old {
            None => Ok(false),
            Some(tid) => {
                self.table.delete(xid, tid)?;
                self.undo.entry(xid.raw()).or_default().push(UndoOp::Delete(tid));
                self.push_redo(xid, ReplOp::Del { key });
                Ok(true)
            }
        }
    }

    fn apply_put(&mut self, xid: Xid, old: Option<TupleId>, key: i64, val: i64) -> Result<()> {
        match old {
            Some(tid) => {
                let new_tid = self.table.update(xid, tid, row![key, val])?;
                let u = self.undo.entry(xid.raw()).or_default();
                u.push(UndoOp::Delete(tid));
                u.push(UndoOp::Insert(new_tid));
            }
            None => {
                let tid = self.table.insert(xid, row![key, val])?;
                self.undo.entry(xid.raw()).or_default().push(UndoOp::Insert(tid));
            }
        }
        self.push_redo(xid, ReplOp::Put { key, val });
        Ok(())
    }

    /// Roll back every write `xid` made here.
    pub fn rollback_writes(&mut self, xid: Xid) -> Result<()> {
        self.redo.remove(&xid.raw());
        self.stmt_tags.remove(&xid.raw());
        if let Some(ops) = self.undo.remove(&xid.raw()) {
            for op in ops.into_iter().rev() {
                match op {
                    UndoOp::Insert(tid) => self.table.undo_insert(xid, tid)?,
                    UndoOp::Delete(tid) => self.table.undo_delete(xid, tid)?,
                    UndoOp::SqlInsert(name, tid) => {
                        if let Some(t) = self.sql.get_mut(&name) {
                            t.undo_insert(xid, tid)?;
                        }
                    }
                    UndoOp::SqlDelete(name, tid) => {
                        if let Some(t) = self.sql.get_mut(&name) {
                            t.undo_delete(xid, tid)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Forget undo info after a successful commit.
    pub fn clear_undo(&mut self, xid: Xid) {
        self.undo.remove(&xid.raw());
    }

    /// Commit a single-shard transaction here: clog commit, undo released,
    /// logical redo drained for the shard's replication log, and the
    /// statement tag (if any) published to the dedup table. Returns the
    /// drained `(ops, stmt_tag)` for the `Commit` log record.
    pub fn commit_local(&mut self, xid: Xid) -> Result<DrainedRedo> {
        self.mgr.commit(xid)?;
        self.clear_undo(xid);
        let ops = self.redo.remove(&xid.raw()).unwrap_or_default();
        let stmt = self.stmt_tags.remove(&xid.raw());
        if let Some((sid, rows)) = stmt {
            self.applied_stmts.insert(sid, rows);
        }
        Ok((ops, stmt))
    }

    /// 2PC phase one on this shard: prepare the leg and drain its redo for
    /// the `Prepare` log record — the leg's ops ship to followers at
    /// prepare time, so a promoted follower holds the leg in doubt. The
    /// statement tag stays here until the decision resolves it.
    pub fn prepare_leg(&mut self, xid: Xid) -> Result<DrainedRedo> {
        self.mgr.prepare(xid)?;
        let ops = self.redo.remove(&xid.raw()).unwrap_or_default();
        let stmt = self.stmt_tags.get(&xid.raw()).copied();
        Ok((ops, stmt))
    }

    /// Record that `local_xid` (prepared here) is decided-commit globally but
    /// unconfirmed locally — the Anomaly-1 window for this node.
    pub fn mark_pending_commit(&mut self, local_xid: Xid) {
        self.pending_commit.insert(local_xid.raw(), ());
    }

    /// Apply the commit confirmation for `local_xid`. Idempotent: a reader's
    /// UPGRADE wait and the writer's own confirmation may race benignly.
    /// Returns whether this call performed the transition (so the caller
    /// appends exactly one `Resolve` record to the replication log).
    pub fn finish_commit(&mut self, local_xid: Xid) -> Result<bool> {
        if self.pending_commit.remove(&local_xid.raw()).is_some() {
            self.mgr.commit(local_xid)?;
            self.clear_undo(local_xid);
            self.publish_stmt(local_xid);
            return Ok(true);
        }
        Ok(false)
    }

    /// Is this local XID in the decided-but-unconfirmed window?
    pub fn is_pending_commit(&self, local_xid: Xid) -> bool {
        self.pending_commit.contains_key(&local_xid.raw())
    }

    /// Simulate this node's process dying.
    ///
    /// Durable across the crash: the MVCC heap, the clog (including
    /// `Prepared` records — 2PC logs prepare before voting yes), the xidMap
    /// and the LCO. Lost with the process: every in-progress transaction
    /// (aborted; its writes are undone as crash recovery would) and the
    /// volatile pending-commit markers (the decision messages that set them
    /// were in memory). Prepared transactions become **in-doubt**: their
    /// locks and undo are retained until [`Self::resolve_in_doubt`].
    pub fn crash(&mut self) {
        for xid in self.mgr.crash_volatile() {
            self.rollback_writes(xid)
                .expect("crash rollback of in-progress txn");
        }
        self.pending_commit.clear();
        // Undo entries for transactions the clog already shows terminal are
        // garbage from lost confirmations; drop them. In-doubt (prepared)
        // undo stays — recovery may still need to roll those writes back.
        let mgr = &self.mgr;
        self.undo.retain(|&xid, _| {
            matches!(
                mgr.status(Xid(xid)),
                hdm_txn::TxnStatus::InProgress | hdm_txn::TxnStatus::Prepared
            )
        });
        // Volatile redo dies with the process; prepared legs' redo already
        // shipped in their Prepare log records. Statement tags of prepared
        // legs are durable (they rode the prepare record); the committed-
        // statement dedup table is durable state.
        self.redo.retain(|&xid, _| mgr.status(Xid(xid)) == hdm_txn::TxnStatus::Prepared);
        self.stmt_tags
            .retain(|&xid, _| mgr.status(Xid(xid)) == hdm_txn::TxnStatus::Prepared);
    }

    /// The in-doubt transactions after a restart: local XIDs prepared here
    /// whose global decision this node does not know, with their gxids.
    pub fn in_doubt_legs(&self) -> Vec<(Xid, Option<Xid>)> {
        self.mgr
            .prepared_xids()
            .into_iter()
            .map(|x| (x, self.mgr.gxid_of(x)))
            .collect()
    }

    /// Resolve one in-doubt leg with the decision recovered from the
    /// coordinator's commit log: commit applies the leg and releases its
    /// undo; abort rolls its writes back. Either way the leg's locks die.
    pub fn resolve_in_doubt(&mut self, local_xid: Xid, commit: bool) -> Result<()> {
        if !self.mgr.clog().is_prepared(local_xid) {
            return Err(HdmError::TxnState(format!(
                "{local_xid} is not in doubt on {}",
                self.id
            )));
        }
        // Resolution supersedes any still-pending decision marker; clearing
        // it keeps a later finish retransmission a clean no-op.
        self.pending_commit.remove(&local_xid.raw());
        if commit {
            self.mgr.commit(local_xid)?;
            self.clear_undo(local_xid);
            self.publish_stmt(local_xid);
        } else {
            self.rollback_writes(local_xid)?;
            self.mgr.abort(local_xid)?;
        }
        Ok(())
    }

    /// Number of transactions holding undo here (leak detector for tests).
    pub fn undo_len(&self) -> usize {
        self.undo.len()
    }

    /// Number of decided-but-unconfirmed legs (leak detector for tests).
    pub fn pending_commit_len(&self) -> usize {
        self.pending_commit.len()
    }

    /// A local snapshot as of now.
    pub fn local_snapshot(&self) -> Snapshot {
        self.mgr.local_snapshot()
    }

    /// ANALYZE the node's table under `judge`.
    pub fn analyze<V: Visibility + ?Sized>(&mut self, judge: &V) {
        self.table.analyze(judge);
    }

    /// Count of all tuple versions (storage growth metric).
    pub fn version_count(&self) -> usize {
        self.table.heap().version_count()
    }

    /// All `(key, value)` pairs visible to `judge` — the HTAP replica-sync
    /// read path (a consistent snapshot scan of the shard).
    pub fn snapshot_rows<V: Visibility + ?Sized>(&self, judge: &V) -> Vec<(i64, i64)> {
        let mut out: Vec<(i64, i64)> = self
            .table
            .scan(judge)
            .filter_map(|(_, r)| {
                Some((
                    r.get(0)?.as_int()?,
                    r.get(1)?.as_int()?,
                ))
            })
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> DataNode {
        DataNode::new(ShardId::new(0))
    }

    /// Helper: run a committed single-statement write.
    fn committed_put(n: &mut DataNode, key: i64, val: i64) {
        let x = n.mgr_mut().begin_local();
        let snap = n.local_snapshot();
        n.put_local(&snap, Some(x), x, key, val).unwrap();
        n.mgr_mut().commit(x).unwrap();
    }

    fn read_latest(n: &DataNode, key: i64) -> Option<i64> {
        let snap = n.local_snapshot();
        n.get_local(&snap, None, key).unwrap()
    }

    #[test]
    fn put_get_within_own_transaction() {
        let mut n = node();
        let x = n.mgr_mut().begin_local();
        let snap = n.local_snapshot();
        n.put_local(&snap, Some(x), x, 1, 100).unwrap();
        assert_eq!(n.get_local(&snap, Some(x), 1).unwrap(), Some(100));
        // Another reader with the same snapshot sees nothing yet.
        assert_eq!(n.get_local(&snap, None, 1).unwrap(), None);
        n.mgr_mut().commit(x).unwrap();
        assert_eq!(read_latest(&n, 1), Some(100));
    }

    #[test]
    fn update_in_place_and_read_back() {
        let mut n = node();
        committed_put(&mut n, 5, 1);
        committed_put(&mut n, 5, 2);
        assert_eq!(read_latest(&n, 5), Some(2));
        assert_eq!(n.version_count(), 2, "two MVCC versions exist");
    }

    #[test]
    fn rollback_restores_previous_value() {
        let mut n = node();
        committed_put(&mut n, 9, 1);
        let b = n.mgr_mut().begin_local();
        let snap = n.local_snapshot();
        n.put_local(&snap, Some(b), b, 9, 2).unwrap();
        n.rollback_writes(b).unwrap();
        n.mgr_mut().abort(b).unwrap();
        assert_eq!(read_latest(&n, 9), Some(1));
    }

    #[test]
    fn rollback_of_fresh_insert_removes_it() {
        let mut n = node();
        let b = n.mgr_mut().begin_local();
        let snap = n.local_snapshot();
        n.put_local(&snap, Some(b), b, 3, 30).unwrap();
        n.rollback_writes(b).unwrap();
        n.mgr_mut().abort(b).unwrap();
        assert_eq!(read_latest(&n, 3), None);
    }

    #[test]
    fn write_write_conflict_reported() {
        let mut n = node();
        committed_put(&mut n, 7, 1);
        let b = n.mgr_mut().begin_local();
        let c = n.mgr_mut().begin_local();
        let snap = n.local_snapshot();
        n.put_local(&snap, Some(b), b, 7, 2).unwrap();
        let err = n.put_local(&snap, Some(c), c, 7, 3).unwrap_err();
        assert_eq!(err.class(), "txn_aborted");
    }

    #[test]
    fn pending_commit_finish_is_idempotent() {
        let mut n = node();
        let x = n.mgr_mut().begin_global(Xid(900));
        n.mgr_mut().prepare(x).unwrap();
        n.mark_pending_commit(x);
        assert!(n.is_pending_commit(x));
        n.finish_commit(x).unwrap();
        assert!(!n.is_pending_commit(x));
        n.finish_commit(x).unwrap(); // second call: no-op
        assert_eq!(n.mgr().lco(), &[x]);
    }

    #[test]
    fn crash_rolls_back_in_progress_and_keeps_in_doubt() {
        let mut n = node();
        committed_put(&mut n, 1, 10);
        // An in-progress writer and a prepared multi-shard leg.
        let plain = n.mgr_mut().begin_local();
        let snap = n.local_snapshot();
        n.put_local(&snap, Some(plain), plain, 1, 99).unwrap();
        let leg = n.mgr_mut().begin_global(Xid(800));
        let snap = n.local_snapshot();
        n.put_local(&snap, Some(leg), leg, 2, 20).unwrap();
        n.mgr_mut().prepare(leg).unwrap();
        n.mark_pending_commit(leg);

        n.crash();

        // The in-progress write is gone; its undo is released.
        assert_eq!(read_latest(&n, 1), Some(10));
        // Volatile pending-commit markers died with the process.
        assert_eq!(n.pending_commit_len(), 0);
        // The prepared leg is in doubt, undo retained, locks held.
        assert_eq!(n.in_doubt_legs(), vec![(leg, Some(Xid(800)))]);
        assert_eq!(n.undo_len(), 1);
    }

    #[test]
    fn in_doubt_resolution_commits_or_aborts() {
        // Commit path.
        let mut n = node();
        let leg = n.mgr_mut().begin_global(Xid(801));
        let snap = n.local_snapshot();
        n.put_local(&snap, Some(leg), leg, 5, 50).unwrap();
        n.mgr_mut().prepare(leg).unwrap();
        n.crash();
        n.resolve_in_doubt(leg, true).unwrap();
        assert_eq!(read_latest(&n, 5), Some(50));
        assert_eq!(n.undo_len(), 0, "undo released on commit");
        assert!(n.in_doubt_legs().is_empty());

        // Abort path (presumed abort: GTM never recorded the commit).
        let mut n = node();
        committed_put(&mut n, 6, 1);
        let leg = n.mgr_mut().begin_global(Xid(802));
        let snap = n.local_snapshot();
        n.put_local(&snap, Some(leg), leg, 6, 999).unwrap();
        n.mgr_mut().prepare(leg).unwrap();
        n.crash();
        n.resolve_in_doubt(leg, false).unwrap();
        assert_eq!(read_latest(&n, 6), Some(1), "prepared write rolled back");
        assert_eq!(n.undo_len(), 0, "undo released on abort");
        // Resolution is one-shot.
        assert!(n.resolve_in_doubt(leg, false).is_err());
    }

    #[test]
    fn delete_then_read_none() {
        let mut n = node();
        committed_put(&mut n, 4, 44);
        let b = n.mgr_mut().begin_local();
        let snap = n.local_snapshot();
        assert!(n.del_local(&snap, Some(b), b, 4).unwrap());
        assert!(!n.del_local(&snap, Some(b), b, 4).unwrap(), "already dead to b");
        n.mgr_mut().commit(b).unwrap();
        assert_eq!(read_latest(&n, 4), None);
    }

    #[test]
    fn snapshot_isolation_across_statements() {
        let mut n = node();
        committed_put(&mut n, 8, 1);
        // Reader takes its snapshot, then a writer commits.
        let early = n.local_snapshot();
        committed_put(&mut n, 8, 2);
        assert_eq!(n.get_local(&early, None, 8).unwrap(), Some(1));
        assert_eq!(read_latest(&n, 8), Some(2));
    }
}

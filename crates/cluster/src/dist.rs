//! Distributed SQL execution: the CN plans, the DNs run scan fragments.
//!
//! [`DistDb`] is the coordinator-side SQL facade over a GTM-lite
//! [`Cluster`]. It keeps a **shadow catalog** — table schemas plus
//! per-shard-merged statistics — plans every query with `hdm-sql`'s planner
//! against that shadow, then *annotates* the plan for distribution: each
//! base-table scan becomes a [`PlanOp::Exchange`] leaf whose shard list is
//! computed by **pruning** the scan predicate against the cluster's
//! [`ShardMap`] (an equality conjunct on the distribution column collapses
//! the scatter to one DN leg; a top-level OR defeats pruning).
//!
//! Transaction scope follows the annotated plan, which is the paper's
//! GTM-lite payoff carried up into SQL (§II-A): a statement whose every
//! fragment lands on one shard opens a single-shard transaction — **zero GTM
//! interactions** — while a multi-shard statement opens a global transaction
//! whose per-DN legs get Algorithm-1 merged snapshots and whose commit runs
//! 2PC. Fragments execute through [`DistExec`], an [`ExecBackend`] whose
//! `scan_shards` visits each DN's MVCC storage under the leg's snapshot and
//! wraps every fragment in a `plan.fragment` telemetry span.
//!
//! The learning-optimizer loop keys on **distributed** canonical text: an
//! annotated scan renders as `EXCHANGE(SCAN(...), SHARDS(...))`, so captured
//! cardinalities feed back into exactly the shard-pruned shape that produced
//! them, never cross-contaminating single-node plans.

use crate::engine::{Cluster, Protocol, Txn, TxnOptions};
use crate::retry::RetryPolicy;
use crate::shard::key_prefix;
use hdm_common::{DataType, Datum, HdmError, Result, Row, Schema, ShardId, Xid};
use hdm_sql::ast::{BinOp, Expr, SelectStmt, Statement};
use hdm_sql::db::{CardinalityHints, QueryResult, StepObserver, TableFunction};
use hdm_sql::expr::{bind, BoundSchema, SExpr};
use hdm_sql::plan::{ExchangeProbe, PlanNode, PlanOp, StepKind, StepObservation};
use hdm_sql::planner::{and_all, Planner, PlanningInfo, TempRels};
use hdm_sql::prepared::{
    bind_slots, canonicalize, collect_param_types, count_params, drift_exceeds, rehint_plan,
    substitute_statement_params, ExecOptions, PlanCache, QueryApi, StmtHandle, PLAN_CACHE_CAP,
};
use hdm_sql::profile::{observations, render_analyze};
use hdm_sql::sys::{self, PlanStoreDump, SysSnapshot};
use hdm_sql::{Catalog, ExecBackend, Profiler};
use hdm_storage::heap::TupleId;
use hdm_storage::{ColumnStats, TableStats, Visibility};
use hdm_telemetry::{
    CaptureInput, OpProfile, ShardLeg, SharedClock, SharedHistory, SharedRecorder,
    ShardWindowStat, StatementProfile, Telemetry, WallClock,
};
use hdm_txn::SnapshotVisibility;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::Arc;

/// One scripted fault against a data node, named by its raw shard id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Crash the shard's primary.
    Crash(u64),
    /// Restart the crashed machine (it rejoins as an empty follower when the
    /// shard already failed over to a replica).
    Restart(u64),
}

/// A deterministic crash/restart script keyed by CN-side *execution ticks*.
/// A tick elapses at every fragment dispatch and every retry attempt, so
/// scripted faults land mid-statement at exactly the same point on every
/// same-seed run — no wall clock involved. Replication log shipping is
/// pumped on the same tick, giving followers a bounded, deterministic lag.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    /// tick → operations applied when that tick is reached.
    pub schedule: BTreeMap<u64, Vec<FaultOp>>,
    /// Ticks consumed so far. A fault-free run with an empty schedule counts
    /// ticks here, calibrating where to place faults in a scripted twin.
    pub tick: u64,
}

/// Replication records shipped per execution tick while a fault script is
/// installed (kept small so followers visibly lag a busy primary).
const REPL_RECORDS_PER_TICK: usize = 4;

/// How a table's rows map to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// The distribution column's value *is* the application sharding prefix
    /// (truncated to `u32`) — the default for CN-created SQL tables.
    HashValue,
    /// The distribution column holds packed `make_key(prefix, local)` keys —
    /// the built-in `kv` table's convention.
    PackedKey,
}

/// CN-side distribution metadata for one table.
#[derive(Debug, Clone, Copy)]
struct DistMeta {
    shard_col: usize,
    route: Route,
}

/// Observable distributed-execution activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistCounters {
    /// Exchange leaves pruned to exactly one shard.
    pub pruned_scans: u64,
    /// Exchange leaves that scattered to more than one shard.
    pub scatter_scans: u64,
    /// Scan fragments shipped to data nodes.
    pub fragments_run: u64,
    /// Rows gathered from data nodes to the CN.
    pub rows_exchanged: u64,
    /// Exchange fragments answered via a DN-local index probe or range walk
    /// instead of a full shard scan.
    pub index_probes: u64,
    /// Statements that ran as single-shard (GTM-free) transactions.
    pub single_shard_stmts: u64,
    /// Statements that ran as multi-shard (GTM + 2PC) transactions.
    pub multi_shard_stmts: u64,
    /// Follower promotions driven by this CN (inline or between retries).
    pub failovers: u64,
    /// Statement attempts retried after a retryable error.
    pub stmt_retries: u64,
    /// Retried/duplicate statements answered from a DN's idempotence table
    /// without re-applying writes.
    pub dedup_hits: u64,
    /// Simulated-time backoff served across all statement retries.
    pub backoff_us: u64,
}

/// The statement's transaction scope, decided from the annotated plan (or
/// the DML rows' routing): single-shard with its sharding prefix, or multi.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    Single(u32),
    Multi,
}

/// One cached distributed statement: the **pre-annotation** logical plan
/// (shard pruning re-runs per execution once parameters are bound — the
/// shard list is a function of the bound values, not the statement text),
/// the inferred parameter types, and a fast program for linear scan shapes.
struct CachedDistStmt {
    plan: PlanNode,
    param_types: Vec<Option<DataType>>,
    fast: Option<FastSelect>,
    /// Precomputed re-plan-on-drift probes: (candidate store keys, planning
    /// estimate) per canonical node. Planner `SCAN(...)` keys are expanded
    /// to the per-shard `EXCHANGE(...)` spellings the plan store observes
    /// under, so the per-execution check is a few hash lookups; see
    /// [`hdm_sql::prepared::max_drift`].
    drift: Vec<(Vec<String>, f64)>,
    /// Last `(store generation, drifted?)` verdict, so quiescent stores skip
    /// the keyed lookups; see [`hdm_sql::prepared::drift_exceeds`].
    drift_state: Cell<Option<(u64, bool)>>,
}

/// A compiled linear SELECT (`Project? → SeqScan` of one distributed
/// table): everything the scatter/gather loop needs without walking a plan
/// tree through the boxed executor.
struct FastSelect {
    table: String,
    meta: DistMeta,
    /// Scan predicate template (may reference parameters).
    pred: Option<SExpr>,
    /// The whole predicate pre-lowered to `column = ?N`: execution then
    /// needs no expression substitution and no generic pruning walk at all —
    /// the bound datum routes the shard and filters rows directly.
    param_eq: Option<(usize, u16)>,
    /// Projection expressions over the scan schema, if any.
    project: Option<Vec<SExpr>>,
    /// Canonical text of the un-annotated scan; the `EXCHANGE(..)` plan-store
    /// key is assembled around it per execution once the shard list is known.
    scan_canon: String,
    /// Pre-rendered `EXCHANGE(.., SHARDS(..))` observation texts: one per
    /// single-shard outcome (keyed by raw shard id) plus the scatter form.
    ex_single: Vec<(u64, String)>,
    ex_all: String,
    /// The planner's compile-time scan estimate (rehinted before each run).
    est_rows: f64,
    columns: Vec<String>,
}

impl FastSelect {
    /// Op count surfaced by `sys.prepared`: the scan plus an optional
    /// projection.
    fn op_count(&self) -> usize {
        1 + self.project.is_some() as usize
    }
}

/// A distributed SQL database: coordinator planning over cluster storage.
pub struct DistDb {
    cluster: Cluster,
    /// CN-side schemas + merged statistics. Holds no rows.
    shadow: Catalog,
    meta: HashMap<String, DistMeta>,
    hints: Option<Rc<dyn CardinalityHints>>,
    observer: Option<Rc<dyn StepObserver>>,
    table_funcs: HashMap<String, Box<dyn TableFunction>>,
    tel: Option<Telemetry>,
    counters: DistCounters,
    /// Clock the query profiler stamps operator and fragment times with.
    clock: SharedClock,
    recorder: Option<SharedRecorder>,
    profiling: bool,
    misestimate_ratio: f64,
    /// Backoff schedule for [`Self::execute_idempotent`]; `None` (default)
    /// keeps the legacy fail-fast behaviour.
    retry: Option<RetryPolicy>,
    /// The statement id the currently-executing statement carries for
    /// idempotent dedup, threaded into error messages and leg tags.
    cur_stmt: Option<u64>,
    /// Next auto-assigned statement id for [`Self::execute_retrying`].
    next_stmt_id: u64,
    /// Scripted crash/restart plan ticked at every fragment dispatch.
    faults: Option<Rc<RefCell<FaultScript>>>,
    /// Learned-cardinality dump served through the `sys.plan_store` view.
    sys_plan_store: Option<Rc<dyn PlanStoreDump>>,
    /// Canonical text → cached logical plan + fast program, invalidated on
    /// DDL and ANALYZE (merged statistics change plan choices).
    cache: PlanCache<Rc<CachedDistStmt>>,
    /// Workload-history snapshot engine backing `sys.history_*`; regressions
    /// detected at capture are journaled as `history.regression` events.
    history: Option<SharedHistory>,
    /// Cached `HistoryConfig::every_stmts` (0 = clock-driven windows). In
    /// stride mode the per-statement hook is a plain counter bump on
    /// `history_pending` — no clock read, no lock — flushed into the engine
    /// only when a window is cut.
    history_stride: u64,
    /// Statements completed since the last flush into the snapshot engine.
    history_pending: u64,
}

impl DistDb {
    /// Wrap a GTM-lite cluster. The built-in per-shard `kv` table is
    /// pre-registered (read-only through SQL) so its per-DN statistics feed
    /// the distributed planner.
    pub fn new(cluster: Cluster) -> Result<Self> {
        if cluster.config().protocol != Protocol::GtmLite {
            return Err(HdmError::Unsupported(
                "DistDb requires the GTM-lite protocol".into(),
            ));
        }
        let mut shadow = Catalog::new();
        shadow.create_table(
            "kv",
            Schema::from_pairs(&[
                ("k", hdm_common::DataType::Int),
                ("v", hdm_common::DataType::Int),
            ]),
        )?;
        let mut meta = HashMap::new();
        meta.insert(
            "kv".to_string(),
            DistMeta {
                shard_col: 0,
                route: Route::PackedKey,
            },
        );
        Ok(Self {
            cluster,
            shadow,
            meta,
            hints: None,
            observer: None,
            table_funcs: HashMap::new(),
            tel: None,
            counters: DistCounters::default(),
            clock: Arc::new(WallClock::new()),
            recorder: None,
            profiling: false,
            misestimate_ratio: 2.0,
            retry: None,
            cur_stmt: None,
            next_stmt_id: 1,
            faults: None,
            sys_plan_store: None,
            cache: PlanCache::new(PLAN_CACHE_CAP),
            history: None,
            history_stride: 0,
            history_pending: 0,
        })
    }

    /// Use `clock` for profiler timestamps (share the cluster telemetry's
    /// virtual clock for deterministic profiles).
    pub fn set_clock(&mut self, clock: SharedClock) {
        self.clock = clock;
    }

    /// Record every statement's profile into `recorder` (implies profiling).
    pub fn attach_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = Some(recorder);
    }

    /// Profile every SELECT even without a recorder attached, surfacing
    /// [`QueryResult::profile`] with GTM/2PC counts and per-shard legs.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Ratio at which `EXPLAIN ANALYZE` flags a misestimate (default 2.0,
    /// the plan store's capture threshold).
    pub fn set_misestimate_ratio(&mut self, ratio: f64) {
        self.misestimate_ratio = ratio;
    }

    fn profiling_enabled(&self) -> bool {
        self.profiling || self.recorder.is_some()
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    pub fn counters(&self) -> DistCounters {
        self.counters
    }

    /// Install the learning plan store (consumer + producer), exactly as on
    /// the embedded [`hdm_sql::Database`].
    pub fn set_plan_store(
        &mut self,
        hints: Rc<dyn CardinalityHints>,
        observer: Rc<dyn StepObserver>,
    ) {
        self.hints = Some(hints);
        self.observer = Some(observer);
    }

    pub fn clear_plan_store(&mut self) {
        self.hints = None;
        self.observer = None;
    }

    /// Expose a plan-store dump through the `sys.plan_store` view (usually
    /// the same shared store installed with [`Self::set_plan_store`]).
    pub fn attach_sys_plan_store(&mut self, dump: Rc<dyn PlanStoreDump>) {
        self.sys_plan_store = Some(dump);
    }

    /// Wire fragments (and the underlying cluster) to a telemetry bundle.
    /// An installed retry policy reports its backoffs as `cn.backoff`.
    pub fn attach_telemetry(&mut self, tel: &Telemetry) {
        self.cluster.attach_telemetry(tel);
        if let Some(p) = &mut self.retry {
            p.attach_telemetry(&tel.metrics);
        }
        self.tel = Some(tel.clone());
    }

    /// Give the coordinator a retry loop: [`Self::execute_idempotent`]
    /// retries `unavailable`/`txn_aborted` statements under this policy's
    /// backoff, failing crashed shards over to replicas between attempts.
    /// `None` (the default) preserves the legacy fail-fast behaviour.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
        if let (Some(p), Some(tel)) = (&mut self.retry, &self.tel) {
            p.attach_telemetry(&tel.metrics);
        }
    }

    /// Install (or clear) a deterministic crash/restart script. The script
    /// is shared `Rc` so the harness that built it can inspect the tick
    /// counter afterwards.
    pub fn set_fault_script(&mut self, script: Option<Rc<RefCell<FaultScript>>>) {
        self.faults = script;
    }

    /// Record AWR-style workload-history windows into `history` (which also
    /// backs `sys.history_*`). Observation-only: statements are counted at
    /// this facade, a window is cut after the statement that crosses the
    /// configured boundary, and regressions the capture detects against the
    /// trailing baseline are journaled as `history.regression` events.
    /// Statement/co-access detail appears only while a recorder is attached;
    /// without one the fast point path stays untouched.
    pub fn attach_history(&mut self, history: SharedHistory) {
        self.history_stride = history.with(|e| e.config().every_stmts);
        self.history_pending = 0;
        self.history = Some(history);
    }

    /// Stop capturing workload history. Statements executed since the last
    /// window cut are discarded rather than flushed into a partial window.
    pub fn detach_history(&mut self) {
        self.history = None;
        self.history_stride = 0;
        self.history_pending = 0;
    }

    /// Force a window capture now (harnesses cut windows at deterministic
    /// points; no-op without an attached history engine).
    pub fn capture_history_now(&mut self) {
        if let Some(h) = self.history.clone() {
            self.capture_history(&h);
        }
    }

    /// The attached workload-history handle, if any.
    pub fn history(&self) -> Option<&SharedHistory> {
        self.history.as_ref()
    }

    fn history_capture_input(&self) -> CaptureInput {
        let (cache_hits, cache_misses) = self.cache.stats();
        let lags = self.cluster.shard_lags();
        let shards = self
            .cluster
            .shard_map()
            .all()
            .map(|shard| {
                let i = shard.raw() as usize;
                ShardWindowStat {
                    shard: shard.raw(),
                    up: self.cluster.is_node_up(shard),
                    epoch: self.cluster.epoch_of(shard),
                    lag: lags.get(i).copied().unwrap_or(0),
                }
            })
            .collect();
        CaptureInput {
            now_us: self.clock.now_us(),
            metrics: self.tel.as_ref().map(|t| t.metrics.snapshot()),
            shards,
            cache_hits,
            cache_misses,
            cache_len: self.cache.len() as u64,
            plan_store_len: self
                .sys_plan_store
                .as_ref()
                .map(|d| d.dump_entries().len() as u64)
                .unwrap_or(0),
        }
    }

    fn capture_history(&mut self, h: &SharedHistory) {
        let pending = std::mem::take(&mut self.history_pending);
        let input = self.history_capture_input();
        let regressions = h.with(|e| {
            if pending > 0 {
                e.note_statements(pending, input.now_us);
            }
            e.capture(input, self.recorder.as_ref())
        });
        for r in regressions {
            self.cluster.journal_event(
                "history.regression",
                r.shard,
                format!("kind={} window={} {}", r.kind.as_str(), r.window, r.detail),
            );
        }
    }

    /// Per-statement history hook: count the statement and cut a window
    /// when one is due. In stride mode the hot path is a single local
    /// counter bump; clock-driven mode reads the clock and asks the engine.
    /// Either way the capture itself runs once per window.
    fn maybe_capture_history(&mut self) {
        if self.history.is_none() {
            return;
        }
        if self.history_stride > 0 {
            self.history_pending += 1;
            if self.history_pending < self.history_stride {
                return;
            }
            let h = self.history.clone().expect("checked above");
            self.capture_history(&h);
        } else {
            let now = self.clock.now_us();
            let h = self.history.clone().expect("checked above");
            if h.with(|e| e.note_statement(now)) {
                self.capture_history(&h);
            }
        }
    }

    /// Execute one SQL statement on the cluster. Cacheable SELECTs are
    /// canonicalized (literals lifted to parameters) and served through the
    /// plan cache, skipping the parser and planner on repeats.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let result = if let Some(c) = canonicalize(sql)? {
            self.execute_canonical(&c.text, &c.slots, &[], sql)
        } else {
            let mut stmt = hdm_sql::parser::parse(sql)?;
            hdm_sql::rewrite::rewrite_statement(&mut stmt);
            self.execute_statement(&stmt, Some(sql))
        }?;
        self.maybe_capture_history();
        Ok(result)
    }

    /// Convenience: execute and return rows.
    #[deprecated(note = "use `execute(sql)?.rows`")]
    pub fn query(&mut self, sql: &str) -> Result<Vec<Row>> {
        Ok(self.execute(sql)?.rows)
    }

    /// Idempotent retrying execution with an auto-assigned statement id.
    #[deprecated(note = "use `execute_opts(sql, ExecOptions::retrying())`")]
    pub fn execute_retrying(&mut self, sql: &str) -> Result<QueryResult> {
        self.run_retrying(sql)
    }

    fn run_retrying(&mut self, sql: &str) -> Result<QueryResult> {
        let id = self.next_stmt_id;
        self.next_stmt_id += 1;
        self.run_idempotent(sql, id)
    }

    /// Execute one statement at-most-once under crash failover. `stmt_id`
    /// is the statement's idempotence key: a write statement tags every leg
    /// with `(stmt_id, total rowcount)` before commit, and a later attempt
    /// (or an outright duplicate submission) first asks the routed shards
    /// whether the id already committed — so a retried write is never
    /// double-applied, and a duplicate answers with the original rowcount.
    ///
    /// Retries cover the `unavailable` and `txn_aborted` error classes only
    /// (crashed/fenced shards and 2PC aborts); every attempt re-routes
    /// against the bound values so post-failover routing takes effect.
    /// Without a retry policy this is plain [`Self::execute`] with dedup
    /// tagging.
    #[deprecated(note = "use `execute_opts(sql, ExecOptions::idempotent(stmt_id))`")]
    pub fn execute_idempotent(&mut self, sql: &str, stmt_id: u64) -> Result<QueryResult> {
        self.run_idempotent(sql, stmt_id)
    }

    fn run_idempotent(&mut self, sql: &str, stmt_id: u64) -> Result<QueryResult> {
        let run_once = |db: &mut Self| {
            db.cur_stmt = Some(stmt_id);
            let r = db.execute(sql);
            db.cur_stmt = None;
            r
        };
        let Some(mut policy) = self.retry.take() else {
            return run_once(self);
        };
        let mut attempt: u32 = 0;
        let result = loop {
            // Scripted faults and follower catch-up advance between attempts
            // too, so a retry storm can't freeze the cluster's timeline.
            if let Err(e) = self.tick_faults().and_then(|()| self.failover_down_shards()) {
                break Err(e);
            }
            match run_once(self) {
                Ok(r) => break Ok(r),
                Err(e) if matches!(e.class(), "unavailable" | "txn_aborted") => {
                    attempt += 1;
                    if !policy.allows(attempt) {
                        break Err(HdmError::Unavailable(format!(
                            "{e}; gave up after {attempt} attempts"
                        )));
                    }
                    self.counters.stmt_retries += 1;
                    self.counters.backoff_us += policy.backoff(attempt - 1).micros();
                    self.cluster.record_retry();
                }
                Err(e) => break Err(e),
            }
        };
        self.retry = Some(policy);
        result
    }

    /// Promote a caught-up follower for every down shard. Called between
    /// retry attempts so the next attempt finds live primaries.
    fn failover_down_shards(&mut self) -> Result<()> {
        for shard in self.cluster.down_shards() {
            if self.cluster.try_failover(shard)? {
                self.counters.failovers += 1;
            }
        }
        Ok(())
    }

    /// Advance the fault script by one tick (applying any scripted
    /// crash/restart ops) and ship a bounded batch of replication records.
    fn tick_faults(&mut self) -> Result<()> {
        tick_faults(&mut self.cluster, self.faults.as_ref())
    }

    /// Idempotence check for a statement about to write `shards`: if any
    /// routed shard remembers `stmt_id` as committed, the whole statement
    /// already applied (every leg carries the statement-*total* rowcount).
    fn stmt_dedup(
        &mut self,
        shards: impl IntoIterator<Item = ShardId>,
        stmt_id: u64,
    ) -> Option<u64> {
        let n = shards
            .into_iter()
            .find_map(|s| self.cluster.stmt_applied_on(s, stmt_id))?;
        self.counters.dedup_hits += 1;
        Some(n)
    }

    fn execute_statement(&mut self, stmt: &Statement, sql: Option<&str>) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable { name, columns } => self.run_create_table(name, columns),
            Statement::CreateIndex { table, columns } => self.run_create_index(table, columns),
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.run_insert(table, columns.as_deref(), rows),
            Statement::Update {
                table,
                sets,
                where_clause,
            } => self.run_update(table, sets, where_clause.as_ref()),
            Statement::Delete {
                table,
                where_clause,
            } => self.run_delete(table, where_clause.as_ref()),
            Statement::Analyze { table } => self.run_analyze(table.as_deref()),
            Statement::Select(s) => self.run_select(s, sql),
            Statement::Explain { analyze, stmt } => {
                let Statement::Select(s) = stmt.as_ref() else {
                    return Err(HdmError::Unsupported("EXPLAIN supports SELECT only".into()));
                };
                if *analyze {
                    // Execute for real (observing into the plan store as
                    // usual) and render the annotated tree: per-operator
                    // actuals, per-shard Exchange legs, GTM/2PC footer.
                    let r = self.run_select_profiled(s, sql)?;
                    let profile = r.profile.expect("profiled select carries a profile");
                    let rows: Vec<Row> = render_analyze(&profile, self.misestimate_ratio)
                        .into_iter()
                        .map(|l| Row::new(vec![Datum::Text(l)]))
                        .collect();
                    return Ok(QueryResult {
                        columns: vec!["plan".into()],
                        rows,
                        affected: 0,
                        steps: r.steps,
                        planning: r.planning,
                        profile: Some(profile),
                    });
                }
                let sys_snap = self.sys_snapshot_for(s);
                let (plan, planning, _) = self.plan_distributed(s, sys_snap.as_ref())?;
                let rows: Vec<Row> = plan
                    .explain()
                    .lines()
                    .map(|l| Row::new(vec![Datum::Text(l.to_string())]))
                    .collect();
                Ok(QueryResult {
                    columns: vec!["plan".into()],
                    rows,
                    affected: 0,
                    steps: vec![],
                    planning,
                    profile: None,
                })
            }
        }
    }

    fn run_create_table(
        &mut self,
        name: &str,
        columns: &[hdm_sql::ast::ColumnDef],
    ) -> Result<QueryResult> {
        if sys::is_sys_name(name) {
            return Err(HdmError::Catalog(format!(
                "the sys. namespace is reserved for system views (cannot create {name})"
            )));
        }
        let schema = Schema::new(
            columns
                .iter()
                .map(|c| {
                    let col = hdm_common::Column::new(c.name.clone(), c.data_type);
                    if c.not_null {
                        col.not_null()
                    } else {
                        col
                    }
                })
                .collect(),
        );
        // Distribution column: the first column, hash-distributed by value.
        match schema.columns().first().map(|c| c.data_type) {
            Some(hdm_common::DataType::Int) => {}
            _ => {
                return Err(HdmError::Unsupported(format!(
                    "distributed table {name} needs an INT first column (the distribution key)"
                )))
            }
        }
        self.shadow.create_table(name, schema.clone())?;
        let canon = name.to_ascii_lowercase();
        for shard in self.cluster.shard_map().all().collect::<Vec<_>>() {
            // Routed through the cluster so the DDL also lands on the
            // shard's replication log (replicas replay it before any rows).
            self.cluster
                .create_sql_table_on(shard, &canon, schema.clone())?;
        }
        self.meta.insert(
            canon,
            DistMeta {
                shard_col: 0,
                route: Route::HashValue,
            },
        );
        self.cache.bump_epoch();
        Ok(empty_result())
    }

    /// Distributed CREATE INDEX: register the index on the CN's shadow
    /// catalog (making it planner-visible) and create the backing index on
    /// every shard's data node, routed through the cluster so the DDL also
    /// lands on each shard's replication log — a promoted replica replays
    /// it before any rows and keeps the probe path intact after failover.
    fn run_create_index(&mut self, table: &str, columns: &[String]) -> Result<QueryResult> {
        sys::check_read_only(table)?;
        let canon = table.to_ascii_lowercase();
        let meta = self.dist_meta(&canon)?;
        if meta.route == Route::PackedKey {
            return Err(HdmError::Unsupported(
                "the built-in kv table is read-only through SQL".into(),
            ));
        }
        let t = self.shadow.get_mut(&canon)?;
        let idxs: Vec<usize> = columns
            .iter()
            .map(|c| {
                t.schema()
                    .index_of(c)
                    .ok_or_else(|| HdmError::Catalog(format!("no column {c} in {table}")))
            })
            .collect::<Result<_>>()?;
        t.create_index(idxs.clone())?;
        for shard in self.cluster.shard_map().all().collect::<Vec<_>>() {
            self.cluster.create_sql_index_on(shard, &canon, idxs.clone())?;
        }
        // A new access path changes plan choices; cached plans are stale.
        self.cache.bump_epoch();
        Ok(empty_result())
    }

    /// The shard a distribution-column value routes to, with the sharding
    /// prefix that names it in [`TxnOptions::single`].
    fn route_value(&self, meta: DistMeta, v: i64) -> (ShardId, u32) {
        match meta.route {
            Route::HashValue => {
                let prefix = v as u32;
                (self.cluster.shard_map().shard_of_prefix(prefix), prefix)
            }
            Route::PackedKey => {
                let prefix = key_prefix(v);
                (self.cluster.shard_map().shard_of_prefix(prefix), prefix)
            }
        }
    }

    fn dist_meta(&self, canon: &str) -> Result<DistMeta> {
        self.meta.get(canon).copied().ok_or_else(|| {
            HdmError::Catalog(format!("{canon} is not a distributed table"))
        })
    }

    fn run_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<Expr>],
    ) -> Result<QueryResult> {
        sys::check_read_only(table)?;
        let canon = table.to_ascii_lowercase();
        let meta = self.dist_meta(&canon)?;
        if meta.route == Route::PackedKey {
            return Err(HdmError::Unsupported(
                "the built-in kv table is read-only through SQL".into(),
            ));
        }
        // Materialize every row CN-side before writing anything (same
        // protocol as the embedded engine).
        let t = self.shadow.get(table)?;
        let width = t.schema().len();
        let col_map: Vec<usize> = match columns {
            None => (0..width).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| {
                    t.schema()
                        .index_of(c)
                        .ok_or_else(|| HdmError::Catalog(format!("no column {c} in {table}")))
                })
                .collect::<Result<_>>()?,
        };
        let empty = BoundSchema::default();
        let mut routed: Vec<(ShardId, u32, Row)> = Vec::with_capacity(rows.len());
        for r in rows {
            if r.len() != col_map.len() {
                return Err(HdmError::Execution(format!(
                    "INSERT row has {} values, expected {}",
                    r.len(),
                    col_map.len()
                )));
            }
            let mut vals = vec![Datum::Null; width];
            for (expr, &slot) in r.iter().zip(&col_map) {
                vals[slot] = bind(expr, &empty)?.eval(&[])?;
            }
            let Some(dv) = vals[meta.shard_col].as_int() else {
                return Err(HdmError::Execution(format!(
                    "distribution column of {table} must be a non-null INT"
                )));
            };
            let (shard, prefix) = self.route_value(meta, dv);
            routed.push((shard, prefix, Row::new(vals)));
        }
        let shards: BTreeSet<u64> = routed.iter().map(|(s, _, _)| s.raw()).collect();
        if let Some(sid) = self.cur_stmt {
            if let Some(n) = self.stmt_dedup(shards.iter().map(|&s| ShardId::new(s)), sid) {
                return Ok(QueryResult {
                    affected: n,
                    ..empty_result()
                });
            }
        }
        let scope = match (shards.len(), routed.first()) {
            (1, Some((_, prefix, _))) => Scope::Single(*prefix),
            _ => Scope::Multi,
        };
        let mut txn = self.begin_scoped(scope)?;
        let mut n = 0u64;
        for (shard, _, row) in routed {
            let res = self
                .fragment_ctx(&mut txn, shard)
                .and_then(|(xid, snap)| {
                    let _ = snap;
                    self.cluster
                        .node_mut(shard)
                        .sql_insert(&canon, xid, row)
                });
            match res {
                Ok(_) => n += 1,
                Err(e) => {
                    self.cluster.abort(txn)?;
                    return Err(e);
                }
            }
        }
        if let Some(sid) = self.cur_stmt {
            self.cluster.tag_statement(&txn, sid, n);
        }
        self.cluster.commit(txn)?;
        Ok(QueryResult {
            affected: n,
            ..empty_result()
        })
    }

    fn run_update(
        &mut self,
        table: &str,
        sets: &[(String, Expr)],
        where_clause: Option<&Expr>,
    ) -> Result<QueryResult> {
        sys::check_read_only(table)?;
        let canon = table.to_ascii_lowercase();
        let meta = self.dist_meta(&canon)?;
        if meta.route == Route::PackedKey {
            return Err(HdmError::Unsupported(
                "the built-in kv table is read-only through SQL".into(),
            ));
        }
        let t = self.shadow.get(table)?;
        let bschema = BoundSchema::from_table(&canon, &canon, t.schema());
        let pred = where_clause.map(|w| bind(w, &bschema)).transpose()?;
        let set_bound: Vec<(usize, SExpr)> = sets
            .iter()
            .map(|(c, e)| {
                let idx = t
                    .schema()
                    .index_of(c)
                    .ok_or_else(|| HdmError::Catalog(format!("no column {c} in {table}")))?;
                Ok((idx, bind(e, &bschema)?))
            })
            .collect::<Result<_>>()?;
        if set_bound.iter().any(|(idx, _)| *idx == meta.shard_col) {
            return Err(HdmError::Unsupported(format!(
                "updating the distribution column of {table} would move rows between shards"
            )));
        }
        let name = canon.clone();
        self.run_dml_scan(&canon, meta, pred, move |node, xid, tid, old| {
            let mut vals = old.into_values();
            for (idx, e) in &set_bound {
                vals[*idx] = e.eval(&vals)?;
            }
            node.sql_update(&name, xid, tid, Row::new(vals)).map(|_| ())
        })
    }

    fn run_delete(&mut self, table: &str, where_clause: Option<&Expr>) -> Result<QueryResult> {
        sys::check_read_only(table)?;
        let canon = table.to_ascii_lowercase();
        let meta = self.dist_meta(&canon)?;
        if meta.route == Route::PackedKey {
            return Err(HdmError::Unsupported(
                "the built-in kv table is read-only through SQL".into(),
            ));
        }
        let t = self.shadow.get(table)?;
        let bschema = BoundSchema::from_table(&canon, &canon, t.schema());
        let pred = where_clause.map(|w| bind(w, &bschema)).transpose()?;
        let name = canon.clone();
        self.run_dml_scan(&canon, meta, pred, move |node, xid, tid, _old| {
            node.sql_delete(&name, xid, tid)
        })
    }

    /// Shared UPDATE/DELETE driver: prune target shards from the predicate,
    /// open the narrowest transaction, then per shard collect the matching
    /// tuples under the leg's snapshot and apply `write` to each.
    fn run_dml_scan(
        &mut self,
        canon: &str,
        meta: DistMeta,
        pred: Option<SExpr>,
        write: impl Fn(&mut crate::node::DataNode, hdm_common::Xid, TupleId, Row) -> Result<()>,
    ) -> Result<QueryResult> {
        let pruned = self.prune_shards(meta, pred.as_ref());
        let scope = match &pruned {
            Pruned::Single(_, prefix) => Scope::Single(*prefix),
            Pruned::All => Scope::Multi,
        };
        let shards = self.pruned_list(&pruned);
        if let Some(sid) = self.cur_stmt {
            if let Some(n) = self.stmt_dedup(shards.iter().copied(), sid) {
                return Ok(QueryResult {
                    affected: n,
                    ..empty_result()
                });
            }
        }
        let mut txn = self.begin_scoped(scope)?;
        let mut n = 0u64;
        for shard in shards {
            let res = (|| {
                let (xid, snap) = self.fragment_ctx(&mut txn, shard)?;
                let node = self.cluster.node(shard);
                let targets: Vec<(TupleId, Row)> = {
                    let judge = SnapshotVisibility::new(&snap, node.mgr().clog(), Some(xid));
                    let t = node.sql_table(canon)?;
                    let mut v = Vec::new();
                    for (tid, row) in t.scan(&judge) {
                        let hit = match &pred {
                            None => true,
                            Some(p) => p.eval_filter(row.values())?,
                        };
                        if hit {
                            v.push((tid, row.clone()));
                        }
                    }
                    v
                };
                let node = self.cluster.node_mut(shard);
                for (tid, old) in targets {
                    write(node, xid, tid, old)?;
                    n += 1;
                }
                Ok(())
            })();
            if let Err(e) = res {
                self.cluster.abort(txn)?;
                return Err(e);
            }
        }
        if let Some(sid) = self.cur_stmt {
            self.cluster.tag_statement(&txn, sid, n);
        }
        self.cluster.commit(txn)?;
        Ok(QueryResult {
            affected: n,
            ..empty_result()
        })
    }

    /// Distributed ANALYZE: every up node recomputes its local statistics,
    /// then the CN merges the per-shard blocks onto its shadow catalog so
    /// the planner costs from data-node truth.
    fn run_analyze(&mut self, table: Option<&str>) -> Result<QueryResult> {
        let shards: Vec<ShardId> = self.cluster.shard_map().all().collect();
        for &shard in &shards {
            if self.cluster.is_node_up(shard) {
                self.cluster.node_mut(shard).analyze_all();
            }
        }
        let names: Vec<String> = match table {
            Some(t) => vec![t.to_ascii_lowercase()],
            None => self.meta.keys().cloned().collect(),
        };
        for name in names {
            let mut per_shard: Vec<&TableStats> = Vec::new();
            for &shard in &shards {
                if !self.cluster.is_node_up(shard) {
                    continue;
                }
                let node = self.cluster.node(shard);
                let s = if name == "kv" {
                    node.stats()
                } else {
                    node.sql_stats(&name)
                };
                if let Some(s) = s {
                    per_shard.push(s);
                }
            }
            let merged = merge_stats(&per_shard);
            self.shadow.get_mut(&name)?.set_stats(merged);
        }
        // Fresh merged statistics change plan choices; cached plans are stale.
        self.cache.bump_epoch();
        Ok(empty_result())
    }

    /// Materialize the `sys.*` views a SELECT references, frozen from live
    /// cluster state at statement start. `None` when the statement touches
    /// no system view — the common case, which pays nothing.
    fn sys_snapshot_for(&self, s: &SelectStmt) -> Option<SysSnapshot> {
        let wanted = sys::referenced_views_in_select(s);
        if wanted.is_empty() {
            return None;
        }
        let mut snap = SysSnapshot::new();
        for view in wanted {
            let rows = match view.as_str() {
                "sys.metrics" => self.metric_rows(),
                "sys.statements" => self
                    .recorder
                    .as_ref()
                    .map(sys::statement_rows)
                    .unwrap_or_default(),
                "sys.shards" => self.shard_rows(),
                "sys.txns" => self.txn_rows(),
                "sys.events" => self.event_rows(),
                "sys.plan_store" => self
                    .sys_plan_store
                    .as_ref()
                    .map(|d| sys::plan_store_rows(d.as_ref()))
                    .unwrap_or_default(),
                "sys.prepared" => self.prepared_rows(),
                "sys.indexes" => self.index_rows(),
                "sys.config" => self.config_rows(),
                "sys.history_windows" => self
                    .history
                    .as_ref()
                    .map(sys::history_window_rows)
                    .unwrap_or_default(),
                "sys.history_metrics" => self
                    .history
                    .as_ref()
                    .map(sys::history_metric_rows)
                    .unwrap_or_default(),
                "sys.history_statements" => self
                    .history
                    .as_ref()
                    .map(sys::history_statement_rows)
                    .unwrap_or_default(),
                "sys.history_coaccess" => self
                    .history
                    .as_ref()
                    .map(sys::history_coaccess_rows)
                    .unwrap_or_default(),
                _ => Vec::new(),
            };
            snap.insert(&view, rows);
        }
        Some(snap)
    }

    /// `sys.metrics` rows: the telemetry registry snapshot, plus the
    /// synthetic bounded-ring eviction counters (`recorder.dropped` when a
    /// recorder is attached, `events.dropped` always — the journal always
    /// exists here). The registry itself is untouched, so telemetry exports
    /// stay byte-identical.
    fn metric_rows(&self) -> Vec<Row> {
        let mut snap = self
            .tel
            .as_ref()
            .map(|t| t.metrics.snapshot())
            .unwrap_or_default();
        snap.counters
            .insert("events.dropped".into(), self.cluster.events_dropped());
        if let Some(r) = &self.recorder {
            snap.counters.insert("recorder.dropped".into(), r.dropped());
        }
        sys::metrics_rows(&snap)
    }

    /// `sys.config` rows: the effective cluster and engine knobs, one row
    /// per knob in a fixed order (cluster, then engine, then telemetry,
    /// then history) — experiments are self-describing from SQL.
    fn config_rows(&self) -> Vec<Row> {
        let cc = self.cluster.config();
        let mut rows = vec![
            sys::config_row("cluster.health_monitor", cc.health_monitor, "bool", "cluster"),
            sys::config_row(
                "cluster.lco_prune_horizon",
                cc.lco_prune_horizon,
                "int",
                "cluster",
            ),
            sys::config_row(
                "cluster.merge_policy",
                format!("{:?}", cc.merge_policy).to_ascii_lowercase(),
                "text",
                "cluster",
            ),
            sys::config_row(
                "cluster.protocol",
                format!("{:?}", cc.protocol).to_ascii_lowercase(),
                "text",
                "cluster",
            ),
            sys::config_row("cluster.replicas", cc.replicas, "int", "cluster"),
            sys::config_row("cluster.shards", cc.shards, "int", "cluster"),
            sys::config_row("cluster.snapshot_cache", cc.snapshot_cache, "bool", "cluster"),
            sys::config_row(
                "events.capacity",
                crate::health::EVENT_JOURNAL_CAP,
                "int",
                "cluster",
            ),
            sys::config_row("misestimate_ratio", self.misestimate_ratio, "float", "engine"),
            sys::config_row("plan_cache.cap", PLAN_CACHE_CAP, "int", "engine"),
            sys::config_row("profiling", self.profiling, "bool", "engine"),
            sys::config_row("retry_policy", self.retry.is_some(), "bool", "engine"),
        ];
        if let Some(r) = &self.recorder {
            let (cap, slow) = r.with(|r| (r.config().capacity, r.config().slow_threshold_us));
            rows.push(sys::config_row("recorder.capacity", cap, "int", "telemetry"));
            rows.push(sys::config_row(
                "recorder.slow_threshold_us",
                slow,
                "int",
                "telemetry",
            ));
        }
        if let Some(h) = &self.history {
            let cfg = h.with(|e| e.config());
            rows.push(sys::config_row("history.baseline", cfg.baseline, "int", "history"));
            rows.push(sys::config_row("history.capacity", cfg.capacity, "int", "history"));
            rows.push(sys::config_row(
                "history.every_stmts",
                cfg.every_stmts,
                "int",
                "history",
            ));
            rows.push(sys::config_row("history.top_k", cfg.top_k, "int", "history"));
            rows.push(sys::config_row("history.window_us", cfg.window_us, "int", "history"));
        }
        rows
    }

    /// `sys.shards` rows: per-shard liveness, primary epoch, replication log
    /// head, follower count, slowest-follower CSN and the derived lag.
    /// `replica_csn` is NULL with replication off (nothing ships a log).
    fn shard_rows(&self) -> Vec<Row> {
        let heads = self.cluster.log_heads();
        let csns = self.cluster.replica_csns();
        let lags = self.cluster.shard_lags();
        self.cluster
            .shard_map()
            .all()
            .map(|shard| {
                let i = shard.raw() as usize;
                let followers = csns.get(i).map_or(0, |f| f.len());
                let slowest = csns.get(i).and_then(|f| f.iter().min().copied());
                Row::new(vec![
                    Datum::Int(shard.raw() as i64),
                    Datum::Int(self.cluster.is_node_up(shard) as i64),
                    Datum::Int(self.cluster.epoch_of(shard) as i64),
                    Datum::Int(heads.get(i).copied().unwrap_or(0) as i64),
                    Datum::Int(followers as i64),
                    slowest.map_or(Datum::Null, |c| Datum::Int(c as i64)),
                    Datum::Int(lags.get(i).copied().unwrap_or(0) as i64),
                ])
            })
            .collect()
    }

    /// `sys.txns` rows: every data node's in-flight local transactions with
    /// their 2PC state and global transaction id (NULL for single-shard).
    fn txn_rows(&self) -> Vec<Row> {
        let mut out = Vec::new();
        for shard in self.cluster.shard_map().all() {
            let mgr = self.cluster.node(shard).mgr();
            for xid in &mgr.local_snapshot().active {
                let state = match mgr.status(*xid) {
                    hdm_txn::TxnStatus::InProgress => "in_progress",
                    hdm_txn::TxnStatus::Prepared => "prepared",
                    hdm_txn::TxnStatus::Committed => "committed",
                    hdm_txn::TxnStatus::Aborted => "aborted",
                };
                let gxid = mgr
                    .gxid_of(*xid)
                    .map(|g| Datum::Int(g.raw() as i64))
                    .unwrap_or(Datum::Null);
                out.push(Row::new(vec![
                    Datum::Int(shard.raw() as i64),
                    Datum::Int(xid.raw() as i64),
                    gxid,
                    Datum::Text(state.into()),
                ]));
            }
        }
        out
    }

    /// `sys.indexes` rows: one per planner-visible secondary index on the
    /// shadow catalog, sorted by table name then index id. Entry counts sum
    /// across the up data nodes, matched by key columns — DN-local index
    /// ids differ from shadow ids because data nodes auto-index their shard
    /// key. The backing shard set is every shard hosting the table.
    fn index_rows(&self) -> Vec<Row> {
        let mut names: Vec<&str> = self.shadow.names().collect();
        names.sort_unstable();
        let shards: Vec<ShardId> = self.cluster.shard_map().all().collect();
        let shard_list = shards
            .iter()
            .map(|s| s.raw().to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut rows = Vec::new();
        for name in names {
            let Ok(t) = self.shadow.get(name) else {
                continue;
            };
            for (ix_id, ix) in t.indexes().iter().enumerate() {
                let mut entries = 0i64;
                for &shard in &shards {
                    if !self.cluster.is_node_up(shard) {
                        continue;
                    }
                    let node = self.cluster.node(shard);
                    let dn = if name == "kv" {
                        Some(node.kv_table())
                    } else {
                        node.sql_table(name).ok()
                    };
                    if let Some(di) = dn.and_then(|dt| {
                        dt.indexes()
                            .iter()
                            .find(|di| di.key_columns() == ix.key_columns())
                    }) {
                        entries += di.len() as i64;
                    }
                }
                let cols: Vec<&str> = ix
                    .key_columns()
                    .iter()
                    .map(|&c| t.schema().columns()[c].name.as_str())
                    .collect();
                rows.push(Row::new(vec![
                    Datum::Text(format!("{name}_ix{ix_id}")),
                    Datum::Text(name.to_string()),
                    Datum::Text(cols.join(",")),
                    Datum::Int(entries),
                    Datum::Text(shard_list.clone()),
                ]));
            }
        }
        rows
    }

    /// `sys.events` rows from the engine's crash/recovery journal.
    fn event_rows(&self) -> Vec<Row> {
        self.cluster
            .events()
            .map(|e| {
                Row::new(vec![
                    Datum::Int(e.seq as i64),
                    Datum::Int(e.time_us as i64),
                    Datum::Text(e.kind.clone()),
                    e.shard.map_or(Datum::Null, |s| Datum::Int(s as i64)),
                    Datum::Text(e.detail.clone()),
                ])
            })
            .collect()
    }

    /// Plan a SELECT and annotate it for distribution. Returns the plan,
    /// planning info (including distributed-key hint hits), and the
    /// transaction scope the fragments imply.
    fn plan_distributed(
        &mut self,
        s: &SelectStmt,
        sys_snap: Option<&SysSnapshot>,
    ) -> Result<(PlanNode, PlanningInfo, Scope)> {
        // Materialize CTEs first, each as its own scoped statement.
        let mut temp: TempRels = TempRels::new();
        for (name, sub) in &s.with {
            let (plan, _, scope) = self.plan_annotated(sub, &temp, sys_snap)?;
            let (rows, steps) = self.execute_plan(&plan, scope, sys_snap)?;
            if let Some(o) = &self.observer {
                o.observe(&steps);
            }
            temp.insert(name.to_ascii_lowercase(), (plan.schema.clone(), rows));
        }
        self.plan_annotated(s, &temp, sys_snap)
    }

    fn plan_annotated(
        &mut self,
        s: &SelectStmt,
        temp: &TempRels,
        sys_snap: Option<&SysSnapshot>,
    ) -> Result<(PlanNode, PlanningInfo, Scope)> {
        let dh = self.dist_hints();
        let mut p = Planner::new(
            &self.shadow,
            dh.as_ref().map(|h| h as &dyn CardinalityHints),
            &self.table_funcs,
        )
        .with_sys(sys_snap);
        let mut plan = p.plan_select(s, temp)?;
        let mut info = p.info;
        drop(dh);
        let scope = self.annotate_plan(&mut plan, &mut info);
        Ok((plan, info, scope))
    }

    /// The hint view distributed planning consults: the raw store bridged
    /// through [`DistHints`] so `EXCHANGE(...)`-keyed actuals reach the
    /// planner's scan-level estimates (and thereby its access-path and
    /// join-order decisions). `None` with no plan store installed.
    fn dist_hints(&self) -> Option<DistHints<'_>> {
        let inner = self.hints.as_deref()?;
        Some(DistHints {
            inner,
            shard_sets: self.shard_set_strings(),
        })
    }

    /// The shard-set spellings a `SCAN(...)` key may appear under in the
    /// plan store: the full scatter set first, then each single shard.
    fn shard_set_strings(&self) -> Vec<String> {
        let all: Vec<String> = self
            .cluster
            .shard_map()
            .all()
            .map(|s| s.raw().to_string())
            .collect();
        let mut shard_sets = vec![all.join(",")];
        shard_sets.extend(all);
        shard_sets
    }

    /// Precompute the drift probes for a freshly planned statement: every
    /// planner `SCAN(...)` key is expanded to the `EXCHANGE(...)` spellings
    /// the distributed observer captures under.
    fn drift_probes_for(&self, plan: &PlanNode) -> Vec<(Vec<String>, f64)> {
        let shard_sets = self.shard_set_strings();
        hdm_sql::prepared::drift_probes(plan)
            .into_iter()
            .map(|(mut keys, est)| {
                let text = keys[0].clone();
                if text.starts_with("SCAN(") {
                    keys.extend(
                        shard_sets
                            .iter()
                            .map(|set| format!("EXCHANGE({text}, SHARDS({set}))")),
                    );
                }
                (keys, est)
            })
            .collect()
    }

    /// Annotate a logical plan for distribution — base-table scans become
    /// pruned `Exchange` leaves — re-consult hints under the *distributed*
    /// canonical keys (the plan store learns `EXCHANGE(...)` cardinalities
    /// separately from local `SCAN(...)` ones), and derive the statement's
    /// transaction scope.
    fn annotate_plan(&self, plan: &mut PlanNode, info: &mut PlanningInfo) -> Scope {
        let mut single: Vec<(ShardId, u32)> = Vec::new();
        let mut scattered = false;
        annotate(
            plan,
            &|canon, predicate| {
                let meta = self.meta.get(canon)?;
                Some(match self.prune_shards(*meta, predicate) {
                    Pruned::Single(shard, prefix) => (vec![shard.raw()], Some((shard, prefix))),
                    Pruned::All => (
                        self.cluster.shard_map().all().map(|s| s.raw()).collect(),
                        None,
                    ),
                })
            },
            &|table, ix_id| {
                Some(
                    self.shadow
                        .get(table)
                        .ok()?
                        .indexes()
                        .get(ix_id)?
                        .key_columns()
                        .to_vec(),
                )
            },
            &mut single,
            &mut scattered,
        );
        if let Some(h) = &self.hints {
            rehint_exchanges(plan, h.as_ref(), info);
        }
        match (&single[..], scattered) {
            ([], false) => Scope::Multi, // no distributed scans at all
            (all_single, false) => {
                let first = all_single[0];
                if all_single.iter().all(|(s, _)| *s == first.0) {
                    Scope::Single(first.1)
                } else {
                    Scope::Multi
                }
            }
            (_, true) => Scope::Multi,
        }
    }

    /// Fetch (or build) the cache entry for canonical statement text. The
    /// cached plan is logical and **un-annotated**: canonicalizable
    /// statements reference no `sys.*` views and no CTEs, and pruning must
    /// wait for bound parameter values anyway.
    fn ensure_cached(&mut self, canonical: &str) -> Result<Rc<CachedDistStmt>> {
        if let Some(e) = self.cache.get(canonical) {
            return Ok(e);
        }
        let mut stmt = hdm_sql::parser::parse(canonical)?;
        hdm_sql::rewrite::rewrite_statement(&mut stmt);
        let n_params = count_params(&stmt);
        let Statement::Select(s) = stmt else {
            return Err(HdmError::Plan(
                "plan cache holds SELECT statements only".into(),
            ));
        };
        let dh = self.dist_hints();
        let mut p = Planner::new(
            &self.shadow,
            dh.as_ref().map(|h| h as &dyn CardinalityHints),
            &self.table_funcs,
        );
        let plan = p.plan_select(&s, &TempRels::new())?;
        drop(dh);
        let entry = Rc::new(CachedDistStmt {
            param_types: collect_param_types(&plan, n_params),
            fast: self.compile_fast(&plan),
            drift: self.drift_probes_for(&plan),
            drift_state: Cell::new(None),
            plan,
        });
        self.cache.insert(canonical.to_string(), Rc::clone(&entry));
        Ok(entry)
    }

    /// Lower a cached plan to a [`FastSelect`] when the shape is a linear
    /// `Project? → SeqScan` over one distributed table. Anything else
    /// (joins, aggregates, sorts, limits, temp rels) keeps the tree
    /// executor — still without re-parsing or re-planning.
    fn compile_fast(&self, plan: &PlanNode) -> Option<FastSelect> {
        let (project, scan) = match &plan.op {
            PlanOp::Project { exprs } => (Some(exprs.clone()), &plan.children[0]),
            _ => (None, plan),
        };
        let PlanOp::SeqScan { table, predicate } = &scan.op else {
            return None;
        };
        let meta = *self.meta.get(table)?;
        let param_eq = predicate.as_ref().and_then(|p| match p {
            SExpr::Binary(BinOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
                (SExpr::Col(c), SExpr::Param(i)) | (SExpr::Param(i), SExpr::Col(c)) => {
                    Some((*c, *i))
                }
                _ => None,
            },
            _ => None,
        });
        let scan_canon = scan.canonical()?;
        let all: Vec<u64> = self.cluster.shard_map().all().map(|s| s.raw()).collect();
        let ex_text = |shards: &[u64]| {
            let list: Vec<String> = shards.iter().map(u64::to_string).collect();
            format!("EXCHANGE({scan_canon}, SHARDS({}))", list.join(","))
        };
        Some(FastSelect {
            table: table.clone(),
            meta,
            pred: predicate.clone(),
            param_eq,
            project,
            ex_single: all.iter().map(|&r| (r, ex_text(&[r]))).collect(),
            ex_all: ex_text(&all),
            scan_canon,
            est_rows: scan.est_rows(),
            columns: plan.schema.cols.iter().map(|c| c.name.clone()).collect(),
        })
    }

    /// Execute a canonicalized statement through the plan cache: bind the
    /// lifted/user parameters, then either run the fast scatter/gather
    /// program (profiling, telemetry and fault scripts all off — those
    /// paths need the tree executor's spans and tick cadence) or substitute
    /// into the cached logical plan, re-prune, and run the tree.
    fn execute_canonical(
        &mut self,
        text: &str,
        slots: &[Option<Datum>],
        user_params: &[Datum],
        sql: &str,
    ) -> Result<QueryResult> {
        let mut cached = self.ensure_cached(text)?;
        // Re-plan on drift: when captured actuals (under the distributed
        // EXCHANGE keys, bridged by [`DistHints`]) diverge from the cached
        // plan's planning-time estimates past the misestimate ratio, the
        // cached access-path and join-order choices are suspect — drop the
        // entry and plan fresh, adopting the observed cardinalities.
        let mut replans = 0u64;
        let drifted = self.hints.as_deref().is_some_and(|h| {
            drift_exceeds(&cached.drift, &cached.drift_state, h, self.misestimate_ratio)
        });
        if drifted {
            self.cache.remove(text);
            cached = self.ensure_cached(text)?;
            replans = 1;
        }
        let params = bind_slots(slots, &cached.param_types, user_params)?;
        if let Some(fast) = &cached.fast {
            if !self.profiling_enabled() && self.tel.is_none() && self.faults.is_none() {
                return self.run_fast(fast, &params, replans);
            }
        }
        if self.profiling_enabled() {
            return self.run_cached_profiled(&cached, &params, sql, replans);
        }
        let mut plan = cached.plan.substitute_params(&params)?;
        let mut info = PlanningInfo {
            replans,
            ..Default::default()
        };
        if let Some(h) = &self.hints {
            rehint_plan(&mut plan, h.as_ref(), &mut info);
        }
        let scope = self.annotate_plan(&mut plan, &mut info);
        let (rows, steps) = self.execute_plan(&plan, scope, None)?;
        if let Some(o) = &self.observer {
            o.observe(&steps);
        }
        Ok(QueryResult {
            columns: plan.schema.cols.iter().map(|c| c.name.clone()).collect(),
            rows,
            affected: 0,
            steps,
            planning: info,
            profile: None,
        })
    }

    /// The profiled flavor of cached execution: identical substitution and
    /// re-pruning to the unprofiled tree path, with the same clock and
    /// profiler call sequence as [`Self::run_select_profiled`], so recorded
    /// profiles are indistinguishable from fresh-planned ones.
    fn run_cached_profiled(
        &mut self,
        cached: &CachedDistStmt,
        params: &[Datum],
        sql: &str,
        replans: u64,
    ) -> Result<QueryResult> {
        let start = self.clock.now_us();
        let mut plan = cached.plan.substitute_params(params)?;
        let mut planning = PlanningInfo {
            replans,
            ..Default::default()
        };
        if let Some(h) = &self.hints {
            rehint_plan(&mut plan, h.as_ref(), &mut planning);
        }
        let scope = self.annotate_plan(&mut plan, &mut planning);
        let planned = self.clock.now_us();
        let (rows, steps, stats) = self.execute_plan_profiled(&plan, scope, None)?;
        let done = self.clock.now_us();
        let profile = StatementProfile {
            sql: sql.to_string(),
            scope: match scope {
                Scope::Single(_) => "single",
                Scope::Multi => "multi",
            }
            .to_string(),
            start_us: start,
            plan_us: planned.saturating_sub(start),
            exec_us: done.saturating_sub(planned),
            total_us: done.saturating_sub(start),
            rows_out: rows.len() as u64,
            gtm_interactions: stats.gtm,
            twopc_legs: stats.twopc_legs,
            root: stats.root,
        };
        let derived = observations(profile.root.as_ref());
        debug_assert_eq!(derived, steps, "profile must derive the executor's own observations");
        if let Some(o) = &self.observer {
            o.observe(&derived);
        }
        if let Some(r) = &self.recorder {
            r.record(profile.clone());
        }
        Ok(QueryResult {
            columns: plan.schema.cols.iter().map(|c| c.name.clone()).collect(),
            rows,
            affected: 0,
            steps: derived,
            planning,
            profile: Some(profile),
        })
    }

    /// The compiled hot path: prune from the bound predicate, open the
    /// narrowest transaction, and scatter/gather with a direct heap scan per
    /// leg — no plan tree, no boxed executor. Counters, observations and
    /// hint accounting mirror the tree path exactly.
    fn run_fast(&mut self, fast: &FastSelect, params: &[Datum], replans: u64) -> Result<QueryResult> {
        // The pre-lowered `col = ?N` shape skips expression substitution
        // entirely: the bound datum is the comparison value and the shard
        // route. Everything else substitutes and re-prunes generically.
        let (pred, fast_eq): (Option<SExpr>, Option<(usize, Datum)>) = match fast.param_eq {
            // NULL never satisfies `=`, so a NULL binding falls through to
            // the generic evaluator rather than comparing datums directly.
            Some((col, idx)) if !params[idx as usize].is_null() => {
                (None, Some((col, params[idx as usize].clone())))
            }
            _ => {
                let pred = match &fast.pred {
                    Some(p) if p.has_params() => Some(p.substitute_params(params)?),
                    other => other.clone(),
                };
                let eq = pred
                    .as_ref()
                    .and_then(col_eq_value)
                    .filter(|(_, v)| !v.is_null())
                    .map(|(c, v)| (c, v.clone()));
                (pred, eq)
            }
        };
        let project = match &fast.project {
            Some(exprs) if exprs.iter().any(SExpr::has_params) => Some(
                exprs
                    .iter()
                    .map(|e| e.substitute_params(params))
                    .collect::<Result<Vec<_>>>()?,
            ),
            other => other.clone(),
        };
        let pruned = match &fast_eq {
            Some((col, Datum::Int(v))) if *col == fast.meta.shard_col => {
                let (shard, prefix) = self.route_value(fast.meta, *v);
                Pruned::Single(shard, prefix)
            }
            _ if fast.param_eq.is_some() => Pruned::All,
            _ => self.prune_shards(fast.meta, pred.as_ref()),
        };
        let (scope, shards) = match &pruned {
            Pruned::Single(s, prefix) => (Scope::Single(*prefix), vec![s.raw()]),
            Pruned::All => (
                Scope::Multi,
                self.cluster.shard_map().all().map(|s| s.raw()).collect(),
            ),
        };
        if shards.len() <= 1 {
            self.counters.pruned_scans += 1;
        } else {
            self.counters.scatter_scans += 1;
        }
        let mut txn = self.begin_scoped(scope)?;
        let mut scan_rows: Vec<Row> = Vec::new();
        for &raw in &shards {
            let shard = ShardId::new(raw);
            let res = (|| -> Result<()> {
                if !self.cluster.is_node_up(shard) {
                    if leg_failover(&mut self.cluster, &txn, shard)? {
                        self.counters.failovers += 1;
                    } else {
                        return Err(shard_down(shard, self.cur_stmt));
                    }
                }
                if !txn.is_single_shard() {
                    self.cluster.ensure_leg(&mut txn, shard)?;
                }
                let (xid, snap) = txn.lite_ctx(shard).ok_or_else(|| {
                    HdmError::TxnState(format!(
                        "fragment on {shard} outside the transaction's scope"
                    ))
                })?;
                let node = self.cluster.node(shard);
                let judge = MemoVisibility::new(SnapshotVisibility::new(
                    &snap,
                    node.mgr().clog(),
                    Some(xid),
                ));
                let t = if fast.table == "kv" {
                    node.kv_table()
                } else {
                    node.sql_table(&fast.table)?
                };
                let mut fragment_rows = 0u64;
                match &fast_eq {
                    Some((col, v)) => {
                        if let Some(ix) =
                            t.indexes().iter().position(|ix| ix.key_columns() == [*col])
                        {
                            let mut hits = t.probe(ix, &vec![v.clone()], &judge)?;
                            // Ascending tid = heap-scan order, so probe and
                            // scan yield byte-identical results.
                            hits.sort_unstable_by_key(|&(tid, _)| tid);
                            for (_tid, row) in hits {
                                scan_rows.push(row.clone());
                                fragment_rows += 1;
                            }
                        } else {
                            for (_tid, row) in t.scan(&judge) {
                                if row.values().get(*col) == Some(v) {
                                    scan_rows.push(row.clone());
                                    fragment_rows += 1;
                                }
                            }
                        }
                    }
                    None => {
                        for (_tid, row) in t.scan(&judge) {
                            let keep = match &pred {
                                None => true,
                                Some(p) => p.eval_filter(row.values())?,
                            };
                            if keep {
                                scan_rows.push(row.clone());
                                fragment_rows += 1;
                            }
                        }
                    }
                }
                self.counters.fragments_run += 1;
                self.counters.rows_exchanged += fragment_rows;
                Ok(())
            })();
            if let Err(e) = res {
                self.cluster.abort(txn)?;
                return Err(e);
            }
        }
        self.cluster.commit(txn)?;
        let actual = scan_rows.len() as u64;
        let rows = match &project {
            None => scan_rows,
            Some(exprs) => {
                let mut out = Vec::with_capacity(scan_rows.len());
                for r in &scan_rows {
                    let vals: Vec<Datum> = exprs
                        .iter()
                        .map(|e| e.eval(r.values()))
                        .collect::<Result<_>>()?;
                    out.push(Row::new(vals));
                }
                out
            }
        };
        // Observation texts were rendered at compile time; per-shard lookup
        // keeps the hot loop free of string formatting.
        let ex_text = if let [only] = shards[..] {
            fast.ex_single
                .iter()
                .find(|(r, _)| *r == only)
                .map(|(_, t)| t.clone())
                .unwrap_or_else(|| format!("EXCHANGE({}, SHARDS({only}))", fast.scan_canon))
        } else {
            fast.ex_all.clone()
        };
        let mut est = fast.est_rows;
        let mut planning = PlanningInfo {
            replans,
            ..Default::default()
        };
        if let Some(h) = &self.hints {
            // The per-node consult the planner would do (local SCAN key)...
            match h.lookup(&fast.scan_canon) {
                Some(v) => {
                    planning.hint_hits += 1;
                    est = v as f64;
                }
                None => planning.hint_misses += 1,
            }
            // ...then the distributed rehint under the EXCHANGE key (hits
            // only, matching `rehint_exchanges`).
            if let Some(v) = h.lookup(&ex_text) {
                planning.hint_hits += 1;
                est = v as f64;
            }
        }
        let steps = vec![StepObservation {
            kind: StepKind::Scan,
            text: ex_text,
            estimated: est,
            actual,
        }];
        if let Some(o) = &self.observer {
            o.observe(&steps);
        }
        Ok(QueryResult {
            columns: fast.columns.clone(),
            rows,
            affected: 0,
            steps,
            planning,
            profile: None,
        })
    }

    /// `sys.prepared` rows: one per cached plan, sorted by canonical text.
    /// `ops` is the fast program's op count, or 0 for plans that execute
    /// through the tree.
    fn prepared_rows(&self) -> Vec<Row> {
        self.cache
            .snapshot()
            .into_iter()
            .map(|(text, e)| {
                let ops = e.payload.fast.as_ref().map_or(0, FastSelect::op_count);
                Row::new(vec![
                    Datum::Text(text.to_string()),
                    Datum::Int(e.hits as i64),
                    Datum::Int(ops as i64),
                    Datum::Int(e.last_used as i64),
                ])
            })
            .collect()
    }

    fn run_select(&mut self, s: &SelectStmt, sql: Option<&str>) -> Result<QueryResult> {
        if self.profiling_enabled() {
            return self.run_select_profiled(s, sql);
        }
        let sys_snap = self.sys_snapshot_for(s);
        let (plan, planning, scope) = self.plan_distributed(s, sys_snap.as_ref())?;
        let (rows, steps) = self.execute_plan(&plan, scope, sys_snap.as_ref())?;
        if let Some(o) = &self.observer {
            o.observe(&steps);
        }
        Ok(QueryResult {
            columns: plan.schema.cols.iter().map(|c| c.name.clone()).collect(),
            rows,
            affected: 0,
            steps,
            planning,
            profile: None,
        })
    }

    /// The profiled SELECT path: identical plan, rows and observation list
    /// to the plain path, plus a [`StatementProfile`] carrying per-operator
    /// actuals, per-shard Exchange legs, the statement's GTM-interaction
    /// delta and its 2PC leg count. The plan store is fed from the
    /// profile-derived observations — the same artifact `EXPLAIN ANALYZE`
    /// and the flight recorder expose.
    fn run_select_profiled(&mut self, s: &SelectStmt, sql: Option<&str>) -> Result<QueryResult> {
        let start = self.clock.now_us();
        let sys_snap = self.sys_snapshot_for(s);
        let (plan, planning, scope) = self.plan_distributed(s, sys_snap.as_ref())?;
        let planned = self.clock.now_us();
        let (rows, steps, stats) = self.execute_plan_profiled(&plan, scope, sys_snap.as_ref())?;
        let done = self.clock.now_us();
        let profile = StatementProfile {
            sql: sql.unwrap_or("").to_string(),
            scope: match scope {
                Scope::Single(_) => "single",
                Scope::Multi => "multi",
            }
            .to_string(),
            start_us: start,
            plan_us: planned.saturating_sub(start),
            exec_us: done.saturating_sub(planned),
            total_us: done.saturating_sub(start),
            rows_out: rows.len() as u64,
            gtm_interactions: stats.gtm,
            twopc_legs: stats.twopc_legs,
            root: stats.root,
        };
        let derived = observations(profile.root.as_ref());
        debug_assert_eq!(derived, steps, "profile must derive the executor's own observations");
        if let Some(o) = &self.observer {
            o.observe(&derived);
        }
        if let Some(r) = &self.recorder {
            r.record(profile.clone());
        }
        Ok(QueryResult {
            columns: plan.schema.cols.iter().map(|c| c.name.clone()).collect(),
            rows,
            affected: 0,
            steps: derived,
            planning,
            profile: Some(profile),
        })
    }

    /// Plan (and annotate) a SELECT without executing — exposes the
    /// distributed shape to tests and the bench harness.
    pub fn plan_only(&mut self, sql: &str) -> Result<PlanNode> {
        let mut stmt = hdm_sql::parser::parse(sql)?;
        hdm_sql::rewrite::rewrite_statement(&mut stmt);
        let Statement::Select(s) = stmt else {
            return Err(HdmError::Plan("plan_only expects SELECT".into()));
        };
        let sys_snap = self.sys_snapshot_for(&s);
        Ok(self.plan_distributed(&s, sys_snap.as_ref())?.0)
    }

    fn begin_scoped(&mut self, scope: Scope) -> Result<Txn> {
        match scope {
            Scope::Single(prefix) => {
                self.counters.single_shard_stmts += 1;
                self.cluster.begin(TxnOptions::single(prefix))
            }
            Scope::Multi => {
                self.counters.multi_shard_stmts += 1;
                self.cluster.begin(TxnOptions::multi())
            }
        }
    }

    /// The `(local xid, snapshot)` a fragment on `shard` runs under, opening
    /// the multi-shard leg on first touch. A down shard first gets one
    /// inline failover chance (iff the transaction holds no leg there yet).
    fn fragment_ctx(
        &mut self,
        txn: &mut Txn,
        shard: ShardId,
    ) -> Result<(hdm_common::Xid, hdm_txn::Snapshot)> {
        tick_faults(&mut self.cluster, self.faults.as_ref())?;
        if !self.cluster.is_node_up(shard) {
            if leg_failover(&mut self.cluster, txn, shard)? {
                self.counters.failovers += 1;
            } else {
                return Err(shard_down(shard, self.cur_stmt));
            }
        }
        if !txn.is_single_shard() {
            self.cluster.ensure_leg(txn, shard)?;
        }
        txn.lite_ctx(shard).ok_or_else(|| {
            HdmError::TxnState(format!(
                "fragment on {shard} outside the transaction's scope"
            ))
        })
    }

    fn execute_plan(
        &mut self,
        plan: &PlanNode,
        scope: Scope,
        sys_snap: Option<&SysSnapshot>,
    ) -> Result<(Vec<Row>, Vec<StepObservation>)> {
        let mut txn = self.begin_scoped(scope)?;
        let mut steps = Vec::new();
        let res = {
            let mut be = DistExec {
                cluster: &mut self.cluster,
                txn: &mut txn,
                tel: self.tel.as_ref(),
                counters: &mut self.counters,
                clock: None,
                exchange_legs: Vec::new(),
                cur_stmt: self.cur_stmt,
                faults: self.faults.clone(),
                sys: sys_snap,
            };
            hdm_sql::exec::execute(plan, &mut be, &mut steps)
        };
        match res {
            Ok(rows) => {
                self.cluster.commit(txn)?;
                Ok((rows, steps))
            }
            Err(e) => {
                self.cluster.abort(txn)?;
                Err(e)
            }
        }
    }

    /// [`Self::execute_plan`] with the operator profiler riding along:
    /// additionally returns the profile tree, the statement's GTM-interaction
    /// delta (commit included) and the number of 2PC legs its commit drove.
    fn execute_plan_profiled(
        &mut self,
        plan: &PlanNode,
        scope: Scope,
        sys_snap: Option<&SysSnapshot>,
    ) -> Result<(Vec<Row>, Vec<StepObservation>, ExecStats)> {
        let gtm_before = self.cluster.counters().gtm_interactions;
        let mut txn = self.begin_scoped(scope)?;
        let mut steps = Vec::new();
        let mut prof = Profiler::new(self.clock.clone());
        let res = {
            let mut be = DistExec {
                cluster: &mut self.cluster,
                txn: &mut txn,
                tel: self.tel.as_ref(),
                counters: &mut self.counters,
                clock: Some(self.clock.clone()),
                exchange_legs: Vec::new(),
                cur_stmt: self.cur_stmt,
                faults: self.faults.clone(),
                sys: sys_snap,
            };
            hdm_sql::exec::execute_with_profiler(plan, &mut be, &mut steps, &mut prof)
        };
        match res {
            Ok(rows) => {
                let twopc_legs = if txn.is_single_shard() {
                    0
                } else {
                    txn.legs().len() as u64
                };
                self.cluster.commit(txn)?;
                let stats = ExecStats {
                    root: prof.finish(),
                    gtm: self
                        .cluster
                        .counters()
                        .gtm_interactions
                        .saturating_sub(gtm_before),
                    twopc_legs,
                };
                Ok((rows, steps, stats))
            }
            Err(e) => {
                self.cluster.abort(txn)?;
                Err(e)
            }
        }
    }

    /// Shard pruning (the tentpole rule): walk the predicate's top-level AND
    /// conjuncts; an equality between the distribution column and an INT
    /// literal pins the scan to one shard. A top-level OR — or no usable
    /// conjunct — scatters to every shard.
    fn prune_shards(&self, meta: DistMeta, predicate: Option<&SExpr>) -> Pruned {
        let Some(pred) = predicate else {
            return Pruned::All;
        };
        let mut conjuncts = Vec::new();
        collect_conjuncts(pred, &mut conjuncts);
        for c in conjuncts {
            if let SExpr::Binary(BinOp::Eq, l, r) = c {
                let col_lit = match (l.as_ref(), r.as_ref()) {
                    (SExpr::Col(c), SExpr::Lit(Datum::Int(v)))
                    | (SExpr::Lit(Datum::Int(v)), SExpr::Col(c)) => Some((*c, *v)),
                    _ => None,
                };
                if let Some((col, v)) = col_lit {
                    if col == meta.shard_col {
                        let (shard, prefix) = self.route_value(meta, v);
                        return Pruned::Single(shard, prefix);
                    }
                }
            }
        }
        Pruned::All
    }

    fn pruned_list(&self, pruned: &Pruned) -> Vec<ShardId> {
        match pruned {
            Pruned::Single(s, _) => vec![*s],
            Pruned::All => self.cluster.shard_map().all().collect(),
        }
    }
}

impl QueryApi for DistDb {
    fn prepare_handle(&mut self, sql: &str) -> Result<StmtHandle> {
        if let Some(c) = canonicalize(sql)? {
            self.ensure_cached(&c.text)?;
            let n_open = c.open_params();
            return Ok(StmtHandle::Cached {
                canonical: c.text,
                slots: c.slots,
                n_open,
            });
        }
        let mut stmt = hdm_sql::parser::parse(sql)?;
        hdm_sql::rewrite::rewrite_statement(&mut stmt);
        let n_params = count_params(&stmt);
        Ok(StmtHandle::Ast {
            stmt: Box::new(stmt),
            n_params,
            sql: sql.to_string(),
        })
    }

    fn execute_prepared(&mut self, handle: &StmtHandle, params: &[Datum]) -> Result<QueryResult> {
        let result = match handle {
            StmtHandle::Cached {
                canonical, slots, ..
            } => self.execute_canonical(canonical, slots, params, canonical),
            StmtHandle::Ast {
                stmt,
                n_params,
                sql,
            } => {
                if params.len() != *n_params {
                    return Err(HdmError::Execution(format!(
                        "statement has {n_params} parameters; got {}",
                        params.len()
                    )));
                }
                let bound = substitute_statement_params(stmt, params)?;
                self.execute_statement(&bound, Some(sql))
            }
        }?;
        self.maybe_capture_history();
        Ok(result)
    }

    fn execute_opts(&mut self, sql: &str, opts: ExecOptions) -> Result<QueryResult> {
        match opts.stmt_id {
            Some(id) => self.run_idempotent(sql, id),
            None if opts.retry || opts.idempotent => self.run_retrying(sql),
            None => self.execute(sql),
        }
    }
}

/// Pruning outcome for one scan.
enum Pruned {
    Single(ShardId, u32),
    All,
}

/// The one construction site for "shard is down" errors, carrying the
/// statement's idempotence key when the coordinator has one. Without a
/// statement id the text is byte-identical to the pre-replication error —
/// regression-pinned by `tests/dist_failover.rs`.
fn shard_down(shard: ShardId, stmt: Option<u64>) -> HdmError {
    HdmError::Unavailable(match stmt {
        Some(id) => format!("{shard} is down (stmt {id})"),
        None => format!("{shard} is down"),
    })
}

/// A fragment headed for a down shard may fail over inline **iff** the
/// transaction holds no leg there yet — an open leg's XID lives in the dead
/// primary's local namespace and cannot migrate to the promoted replica, so
/// such statements abort and retry instead. Returns whether a follower was
/// promoted (with replicas disabled this is always `false`).
fn leg_failover(cluster: &mut Cluster, txn: &Txn, shard: ShardId) -> Result<bool> {
    if txn.lite_ctx(shard).is_some() {
        return Ok(false);
    }
    cluster.try_failover(shard)
}

/// Match a whole predicate of shape `col = literal` (either operand order)
/// so the fast path can compare datums directly instead of walking the
/// expression evaluator per row.
fn col_eq_value(e: &SExpr) -> Option<(usize, &Datum)> {
    let SExpr::Binary(BinOp::Eq, l, r) = e else {
        return None;
    };
    match (l.as_ref(), r.as_ref()) {
        (SExpr::Col(c), SExpr::Lit(v)) | (SExpr::Lit(v), SExpr::Col(c)) => Some((*c, v)),
        _ => None,
    }
}

/// [`SnapshotVisibility`] with a one-entry memo on `sees_committed`: a
/// point-query fragment judges a run of tuples that overwhelmingly share
/// one creating transaction, so the commit-log probe hits the memo on
/// nearly every row. Visibility answers are snapshot-stable within a
/// statement, so memoizing cannot change results.
struct MemoVisibility<'a> {
    inner: SnapshotVisibility<'a>,
    last: Cell<Option<(Xid, bool)>>,
}

impl<'a> MemoVisibility<'a> {
    fn new(inner: SnapshotVisibility<'a>) -> Self {
        Self {
            inner,
            last: Cell::new(None),
        }
    }
}

impl Visibility for MemoVisibility<'_> {
    fn sees_committed(&self, xid: Xid) -> bool {
        if let Some((x, ans)) = self.last.get() {
            if x == xid {
                return ans;
            }
        }
        let ans = self.inner.sees_committed(xid);
        self.last.set(Some((xid, ans)));
        ans
    }

    fn is_own(&self, xid: Xid) -> bool {
        self.inner.is_own(xid)
    }
}

/// Advance an installed fault script by one execution tick: apply the ops
/// scheduled for this tick, then ship a bounded batch of replication
/// records so followers catch up on the same deterministic cadence.
fn tick_faults(cluster: &mut Cluster, faults: Option<&Rc<RefCell<FaultScript>>>) -> Result<()> {
    let Some(script) = faults else {
        return Ok(());
    };
    let ops = {
        let mut s = script.borrow_mut();
        let t = s.tick;
        s.tick += 1;
        s.schedule.remove(&t)
    };
    if let Some(ops) = ops {
        for op in ops {
            match op {
                FaultOp::Crash(s) => cluster.crash_node(ShardId::new(s)),
                FaultOp::Restart(s) => cluster.restart_node(ShardId::new(s)),
            }
        }
    }
    cluster.pump_replication(REPL_RECORDS_PER_TICK)?;
    Ok(())
}

/// Pruning oracle passed to [`annotate`]: shard list plus the single-shard
/// pin (if the predicate pinned the scan), or `None` for non-distributed
/// relations (CTEs, temp rels) which stay as local scans.
type ShardsOf<'a> = dyn Fn(&str, Option<&SExpr>) -> Option<(Vec<u64>, Option<(ShardId, u32)>)> + 'a;

/// Index oracle passed to [`annotate`]: the key columns of a shadow-catalog
/// index, so the `Exchange` probe is keyed by column positions — DN-local
/// index ids differ from shadow ids (data nodes auto-index their shard key)
/// and each leg re-resolves its own index by key columns.
type KeyColsOf<'a> = dyn Fn(&str, usize) -> Option<Vec<usize>> + 'a;

/// Rewrite every base-table scan on a distributed table into an `Exchange`
/// leaf, recording the single-shard pins and whether anything scattered.
/// Index access paths become Exchanges carrying a probe, with the consumed
/// conjuncts folded back into the leg predicate — pruning, canonical text
/// and result rows stay identical to the sequential rendering, the probe
/// only changes how each DN leg fetches candidates.
fn annotate(
    node: &mut PlanNode,
    shards_of: &ShardsOf<'_>,
    key_cols: &KeyColsOf<'_>,
    single: &mut Vec<(ShardId, u32)>,
    scattered: &mut bool,
) {
    for c in &mut node.children {
        annotate(c, shards_of, key_cols, single, scattered);
    }
    let mut pin = |p: Option<(ShardId, u32)>, single: &mut Vec<(ShardId, u32)>| match p {
        Some(p) => single.push(p),
        None => *scattered = true,
    };
    let replacement = match &node.op {
        PlanOp::SeqScan { table, predicate } => {
            shards_of(table, predicate.as_ref()).map(|(shards, p)| {
                pin(p, single);
                PlanOp::Exchange {
                    table: table.clone(),
                    predicate: predicate.clone(),
                    shards,
                    probe: None,
                }
            })
        }
        PlanOp::IndexScan {
            table,
            index_id,
            key_exprs,
            key_values,
            residual,
        } => {
            let mut conj = key_exprs.clone();
            conj.extend(residual.clone());
            let predicate = and_all(conj);
            shards_of(table, predicate.as_ref()).map(|(shards, p)| {
                pin(p, single);
                PlanOp::Exchange {
                    table: table.clone(),
                    predicate,
                    shards,
                    probe: key_cols(table, *index_id).map(|columns| ExchangeProbe::Eq {
                        columns,
                        key: key_values.clone(),
                    }),
                }
            })
        }
        PlanOp::IndexRange {
            table,
            index_id,
            bound_exprs,
            lo,
            hi,
            residual,
        } => {
            let mut conj = bound_exprs.clone();
            conj.extend(residual.clone());
            let predicate = and_all(conj);
            shards_of(table, predicate.as_ref()).map(|(shards, p)| {
                pin(p, single);
                PlanOp::Exchange {
                    table: table.clone(),
                    predicate,
                    shards,
                    probe: key_cols(table, *index_id)
                        .and_then(|columns| columns.first().copied())
                        .map(|column| ExchangeProbe::Range {
                            column,
                            lo: lo.clone(),
                            hi: hi.clone(),
                        }),
                }
            })
        }
        _ => None,
    };
    if let Some(op) = replacement {
        node.op = op;
    }
}

/// Bridge the plan store's distributed keys back into scan-level planning.
///
/// The planner consults local `SCAN(...)` canonical texts, but distributed
/// executions observe under `EXCHANGE(SCAN(...), SHARDS(...))` keys. On a
/// miss of the local key, retry under each shard-set rendering this cluster
/// can produce — the full scatter set first, then each single shard — so
/// captured actuals reach the planner's access-path and join-order
/// decisions, and a drift-triggered re-plan adopts them (converging the
/// drift ratio back to 1).
struct DistHints<'a> {
    inner: &'a dyn CardinalityHints,
    /// Pre-rendered shard lists: `"0,1,2,3"`, then `"0"`, `"1"`, ...
    shard_sets: Vec<String>,
}

impl CardinalityHints for DistHints<'_> {
    fn generation(&self) -> Option<u64> {
        self.inner.generation()
    }

    fn lookup(&self, step_text: &str) -> Option<u64> {
        if let Some(v) = self.inner.lookup(step_text) {
            return Some(v);
        }
        if !step_text.starts_with("SCAN(") {
            return None;
        }
        self.shard_sets
            .iter()
            .find_map(|s| self.inner.lookup(&format!("EXCHANGE({step_text}, SHARDS({s}))")))
    }
}

/// Second hint pass over the annotated plan: look each `Exchange` up under
/// its distributed canonical text and adopt the observed cardinality.
fn rehint_exchanges(node: &mut PlanNode, hints: &dyn CardinalityHints, info: &mut PlanningInfo) {
    for c in &mut node.children {
        rehint_exchanges(c, hints, info);
    }
    if matches!(node.op, PlanOp::Exchange { .. }) {
        if let Some(text) = node.canonical() {
            if let Some(actual) = hints.lookup(&text) {
                node.set_est_rows(actual as f64);
                info.hint_hits += 1;
            }
        }
    }
}

fn collect_conjuncts<'a>(e: &'a SExpr, out: &mut Vec<&'a SExpr>) {
    match e {
        SExpr::Binary(BinOp::And, l, r) => {
            collect_conjuncts(l, out);
            collect_conjuncts(r, out);
        }
        other => out.push(other),
    }
}

/// Merge per-shard statistics into one CN-side block: row and null counts
/// sum, min/max widen, distinct counts sum (an upper bound — shards hash-
/// partition rows, so a value lives on one shard and the sum is exact for
/// the distribution column, pessimistic elsewhere) capped at the row count.
fn merge_stats(per_shard: &[&TableStats]) -> TableStats {
    let mut merged = TableStats::default();
    for s in per_shard {
        merged.row_count += s.row_count;
        if merged.columns.len() < s.columns.len() {
            merged.columns.resize_with(s.columns.len(), ColumnStats::default);
        }
        for (m, c) in merged.columns.iter_mut().zip(&s.columns) {
            m.distinct += c.distinct;
            m.null_count += c.null_count;
            m.min = match (m.min.take(), c.min.clone()) {
                (Some(a), Some(b)) => Some(if b < a { b } else { a }),
                (a, b) => a.or(b),
            };
            m.max = match (m.max.take(), c.max.clone()) {
                (Some(a), Some(b)) => Some(if b > a { b } else { a }),
                (a, b) => a.or(b),
            };
        }
    }
    for m in &mut merged.columns {
        m.distinct = m.distinct.min(merged.row_count);
    }
    merged
}

fn empty_result() -> QueryResult {
    QueryResult {
        columns: vec![],
        rows: vec![],
        affected: 0,
        steps: vec![],
        planning: PlanningInfo::default(),
        profile: None,
    }
}

/// Statement-level execution stats the profiled path collects around the
/// transaction: profile tree + GTM/2PC accounting.
struct ExecStats {
    root: Option<OpProfile>,
    gtm: u64,
    twopc_legs: u64,
}

/// The CN-side scatter-gather backend: `Exchange` leaves fan out to data
/// nodes, everything above them (joins, aggregation, sorts) runs on the CN
/// over the gathered rows.
struct DistExec<'a> {
    cluster: &'a mut Cluster,
    txn: &'a mut Txn,
    tel: Option<&'a Telemetry>,
    counters: &'a mut DistCounters,
    /// Present when the statement is profiled: fragment times are stamped
    /// on it and per-shard legs accumulate in `exchange_legs`.
    clock: Option<SharedClock>,
    exchange_legs: Vec<ShardLeg>,
    /// The statement's idempotence key, threaded into `shard is down`
    /// errors so retried statements are traceable end to end.
    cur_stmt: Option<u64>,
    /// Fault script ticked per fragment dispatch (shared with the DistDb).
    faults: Option<Rc<RefCell<FaultScript>>>,
    /// The statement's frozen `sys.*` snapshot; sys scans stay CN-local
    /// (they never annotate into Exchange legs) and are served from here.
    sys: Option<&'a SysSnapshot>,
}

impl ExecBackend for DistExec<'_> {
    fn scan(&mut self, table: &str, predicate: Option<&SExpr>) -> Result<Vec<Row>> {
        if let Some(snapshot) = self.sys {
            if sys::is_sys_view(table) {
                return hdm_sql::backend::scan_sys_rows(snapshot, table, predicate);
            }
        }
        Err(HdmError::Plan(format!(
            "un-annotated local scan of {table} reached the distributed backend"
        )))
    }

    fn point_get(
        &mut self,
        table: &str,
        _index_id: usize,
        _key_values: &[Datum],
        _residual: Option<&SExpr>,
    ) -> Result<Vec<Row>> {
        Err(HdmError::Plan(format!(
            "index probe of {table} reached the distributed backend"
        )))
    }

    fn scan_shards(
        &mut self,
        table: &str,
        predicate: Option<&SExpr>,
        shards: &[u64],
        probe: Option<&ExchangeProbe>,
    ) -> Result<Vec<Row>> {
        if shards.len() <= 1 {
            self.counters.pruned_scans += 1;
        } else {
            self.counters.scatter_scans += 1;
        }
        self.exchange_legs.clear();
        let mut out = Vec::new();
        for &raw in shards {
            let shard = ShardId::new(raw);
            tick_faults(self.cluster, self.faults.as_ref())?;
            if !self.cluster.is_node_up(shard) {
                if leg_failover(self.cluster, self.txn, shard)? {
                    self.counters.failovers += 1;
                } else {
                    return Err(shard_down(shard, self.cur_stmt));
                }
            }
            if !self.txn.is_single_shard() {
                self.cluster.ensure_leg(self.txn, shard)?;
            }
            let (xid, snap) = self.txn.lite_ctx(shard).ok_or_else(|| {
                HdmError::TxnState(format!(
                    "fragment on {shard} outside the transaction's scope"
                ))
            })?;
            let span = self.tel.map(|t| {
                let s = t.tracer.begin("plan.fragment");
                t.tracer.field(s, "shard", shard);
                t.tracer.field(s, "table", table);
                s
            });
            let leg_start = self.clock.as_ref().map(|c| c.now_us());
            let node = self.cluster.node(shard);
            let judge = SnapshotVisibility::new(&snap, node.mgr().clog(), Some(xid));
            let t = if table == "kv" {
                node.kv_table()
            } else {
                node.sql_table(table)?
            };
            let mut fragment_rows = 0u64;
            // Resolve the CN-chosen probe against this DN's own index set:
            // the probe names key *columns*, and each leg looks up whichever
            // local index serves them (ids differ per node — data nodes
            // auto-index their shard key). A leg without a matching index
            // (e.g. a follower promoted before the DDL replayed) falls back
            // to the full scan; the predicate below keeps results identical.
            let local_ix = probe.and_then(|p| {
                let want: &[usize] = match p {
                    ExchangeProbe::Eq { columns, .. } => columns,
                    ExchangeProbe::Range { column, .. } => std::slice::from_ref(column),
                };
                t.indexes().iter().position(|ix| ix.key_columns() == want)
            });
            let candidates: Option<Vec<(TupleId, &Row)>> = match (probe, local_ix) {
                (Some(ExchangeProbe::Eq { key, .. }), Some(ix)) => {
                    Some(t.probe(ix, key, &judge)?)
                }
                (Some(ExchangeProbe::Range { lo, hi, .. }), Some(ix)) => {
                    let lo_k = hdm_sql::backend::bound_key(lo);
                    let hi_k = hdm_sql::backend::bound_key(hi);
                    Some(t.range_probe(
                        ix,
                        hdm_sql::backend::bound_ref(&lo_k),
                        hdm_sql::backend::bound_ref(&hi_k),
                        &judge,
                    )?)
                }
                _ => None,
            };
            match candidates {
                Some(mut hits) => {
                    // Ascending tid = heap-scan order, so probed legs yield
                    // byte-identical rows to scanned ones.
                    hits.sort_unstable_by_key(|&(tid, _)| tid);
                    for (_tid, row) in hits {
                        let keep = match predicate {
                            None => true,
                            Some(p) => p.eval_filter(row.values())?,
                        };
                        if keep {
                            out.push(row.clone());
                            fragment_rows += 1;
                        }
                    }
                    self.counters.index_probes += 1;
                }
                None => {
                    for (_tid, row) in t.scan(&judge) {
                        let keep = match predicate {
                            None => true,
                            Some(p) => p.eval_filter(row.values())?,
                        };
                        if keep {
                            out.push(row.clone());
                            fragment_rows += 1;
                        }
                    }
                }
            }
            self.counters.fragments_run += 1;
            self.counters.rows_exchanged += fragment_rows;
            if let (Some(c), Some(start)) = (self.clock.as_ref(), leg_start) {
                self.exchange_legs.push(ShardLeg {
                    shard: raw,
                    rows: fragment_rows,
                    time_us: c.now_us().saturating_sub(start),
                });
            }
            if let (Some(t), Some(s)) = (self.tel, span) {
                t.tracer.field(s, "rows", fragment_rows);
                t.tracer.end(s);
            }
        }
        Ok(out)
    }

    fn take_exchange_profile(&mut self) -> Vec<ShardLeg> {
        std::mem::take(&mut self.exchange_legs)
    }

    fn insert(&mut self, table: &str, _rows: Vec<Row>) -> Result<u64> {
        Err(HdmError::Plan(format!(
            "DML on {table} must route through DistDb, not the executor"
        )))
    }

    fn update(
        &mut self,
        table: &str,
        _sets: &[(usize, SExpr)],
        _predicate: Option<&SExpr>,
    ) -> Result<u64> {
        Err(HdmError::Plan(format!(
            "DML on {table} must route through DistDb, not the executor"
        )))
    }

    fn delete(&mut self, table: &str, _predicate: Option<&SExpr>) -> Result<u64> {
        Err(HdmError::Plan(format!(
            "DML on {table} must route through DistDb, not the executor"
        )))
    }

    fn stats(&self, _table: &str) -> Option<TableStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClusterConfig;

    fn dist(shards: usize) -> DistDb {
        DistDb::new(Cluster::new(ClusterConfig::gtm_lite(shards))).unwrap()
    }

    fn seed_orders(db: &mut DistDb) {
        db.execute("create table orders (cust int, amount int)").unwrap();
        let values: Vec<String> = (0..200i64)
            .map(|i| format!("({}, {})", i % 16, i * 10))
            .collect();
        db.execute(&format!("insert into orders values {}", values.join(", ")))
            .unwrap();
    }

    #[test]
    fn baseline_cluster_rejected() {
        let c = Cluster::new(ClusterConfig::baseline(2));
        assert!(DistDb::new(c).is_err());
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut db = dist(4);
        seed_orders(&mut db);
        let total = db
            .execute("select count(*) from orders")
            .unwrap()
            .rows[0]
            .get(0)
            .and_then(Datum::as_int);
        assert_eq!(total, Some(200));
    }

    #[test]
    fn rows_actually_spread_across_shards() {
        let mut db = dist(4);
        seed_orders(&mut db);
        let populated = db
            .cluster()
            .shard_map()
            .all()
            .filter(|&s| {
                db.cluster()
                    .node(s)
                    .sql_table("orders")
                    .unwrap()
                    .heap()
                    .version_count()
                    > 0
            })
            .count();
        assert!(populated > 1, "hash routing left all rows on one shard");
    }

    #[test]
    fn shard_key_equality_prunes_to_one_leg() {
        let mut db = dist(4);
        seed_orders(&mut db);
        let plan = db.plan_only("select amount from orders where cust = 3").unwrap();
        let text = plan.explain();
        assert!(text.contains("Exchange"), "no exchange in:\n{text}");
        let before = db.cluster().counters().gtm_interactions;
        let expected = (0..200i64).filter(|i| i % 16 == 3).count() as i64;
        let rows = db
            .execute("select count(*) from orders where cust = 3")
            .unwrap()
            .rows;
        assert_eq!(rows[0].get(0).and_then(Datum::as_int), Some(expected));
        assert_eq!(
            db.cluster().counters().gtm_interactions,
            before,
            "single-shard SELECT must not visit the GTM"
        );
        assert!(db.counters().pruned_scans >= 1);
    }

    #[test]
    fn multi_shard_aggregate_commits_via_2pc() {
        let mut db = dist(4);
        seed_orders(&mut db);
        let before = db.cluster().counters().multi_shard_commits;
        let rows = db.execute("select sum(amount) from orders").unwrap().rows;
        assert_eq!(
            rows[0].get(0).and_then(Datum::as_int),
            Some((0..200i64).map(|i| i * 10).sum())
        );
        assert!(
            db.cluster().counters().multi_shard_commits > before,
            "scatter-gather must commit through 2PC"
        );
        assert!(db.counters().scatter_scans >= 1);
    }

    #[test]
    fn update_and_delete_route_by_predicate() {
        let mut db = dist(4);
        seed_orders(&mut db);
        let expected = (0..200i64).filter(|i| i % 16 == 5).count() as u64;
        let r = db.execute("update orders set amount = 1 where cust = 5").unwrap();
        assert_eq!(r.affected, expected);
        let rows = db
            .execute("select sum(amount) from orders where cust = 5")
            .unwrap()
            .rows;
        assert_eq!(
            rows[0].get(0).and_then(Datum::as_int),
            Some(expected as i64)
        );
        let r = db.execute("delete from orders where cust = 5").unwrap();
        assert_eq!(r.affected, expected);
        let rows = db.execute("select count(*) from orders").unwrap().rows;
        assert_eq!(
            rows[0].get(0).and_then(Datum::as_int),
            Some(200 - expected as i64)
        );
    }

    #[test]
    fn dml_abort_rolls_back_every_leg() {
        let mut db = dist(4);
        db.execute("create table t (k int, v int not null)").unwrap();
        db.execute("insert into t values (1, 10), (2, 20), (3, 30)").unwrap();
        // NULL into a NOT NULL column fails row 3 of 3 after earlier writes.
        let err = db.execute("insert into t values (4, 40), (5, null)");
        assert!(err.is_err());
        let rows = db.execute("select count(*) from t").unwrap().rows;
        assert_eq!(rows[0].get(0).and_then(Datum::as_int), Some(3));
    }

    #[test]
    fn analyze_merges_per_shard_stats_into_planner_estimates() {
        let mut db = dist(4);
        seed_orders(&mut db);
        db.execute("analyze").unwrap();
        let stats = db.shadow.get("orders").unwrap().stats().unwrap().clone();
        assert_eq!(stats.row_count, 200);
        assert_eq!(stats.columns[0].distinct, 16, "hash-partitioned NDV is exact");
        let plan = db.plan_only("select * from orders").unwrap();
        assert_eq!(plan.est_rows(), 200.0, "planner estimates from merged stats");
    }

    #[test]
    fn kv_table_visible_and_read_only() {
        let mut db = dist(2);
        let mut txn = db.cluster_mut().begin(TxnOptions::multi()).unwrap();
        let key = crate::shard::make_key(7, 1);
        db.cluster_mut().put(&mut txn, key, 42).unwrap();
        db.cluster_mut().commit(txn).unwrap();
        let rows = db
            .execute(&format!("select v from kv where k = {key}"))
            .unwrap()
            .rows;
        assert_eq!(rows[0].get(0).and_then(Datum::as_int), Some(42));
        assert!(db.execute("insert into kv values (1, 1)").is_err());
    }

    #[test]
    fn exchange_canonical_text_names_the_shard_set() {
        let mut db = dist(4);
        seed_orders(&mut db);
        let plan = db.plan_only("select * from orders where cust = 3").unwrap();
        fn find_exchange(n: &PlanNode) -> Option<String> {
            if matches!(n.op, PlanOp::Exchange { .. }) {
                return n.canonical();
            }
            n.children.iter().find_map(find_exchange)
        }
        let text = find_exchange(&plan).expect("annotated plan has an exchange");
        assert!(text.starts_with("EXCHANGE(SCAN(ORDERS"), "got {text}");
        assert!(text.contains("SHARDS("), "got {text}");
    }

    #[test]
    fn or_on_shard_key_defeats_pruning() {
        let mut db = dist(4);
        seed_orders(&mut db);
        let plan = db
            .plan_only("select * from orders where cust = 3 or cust = 4")
            .unwrap();
        fn exchange_fanout(n: &PlanNode) -> Option<usize> {
            if let PlanOp::Exchange { shards, .. } = &n.op {
                return Some(shards.len());
            }
            n.children.iter().find_map(exchange_fanout)
        }
        assert_eq!(exchange_fanout(&plan), Some(4), "OR must scatter");
    }
}

//! The cluster health plane: a bounded event journal (the source of the
//! `sys.events` view) and the per-shard health classification the
//! `HealthMonitor` derives on each `pump_replication` tick.
//!
//! Everything here is **observation-only**: the journal and the health
//! gauges never influence routing, failover, retries, or any other control
//! flow, which is what lets the chaos-dist perturbation test pin that
//! enabling the monitor leaves a faulted sweep's replay byte-identical.
//! Event timestamps come from the attached telemetry clock (0 when no
//! telemetry is attached), so runs under a `VirtualClock` are golden-file
//! pinnable.

use std::collections::VecDeque;

/// One recorded cluster life-cycle moment (crash, restart, promotion,
/// rejoin, in-doubt resolution, health transition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysEvent {
    /// Monotonic journal sequence (survives eviction: older events fall off
    /// the ring but sequence numbers keep climbing).
    pub seq: u64,
    /// Telemetry-clock timestamp at append (0 without telemetry).
    pub time_us: u64,
    /// Event class: `crash` / `restart` / `rejoin` / `promote` /
    /// `in_doubt.resolved` / `health.degraded` / `health.recovered`.
    pub kind: String,
    /// The shard involved, when the event is shard-scoped (GTM events are
    /// cluster-scoped).
    pub shard: Option<u64>,
    /// Free-form detail (e.g. `replayed=4 in_doubt=1` for a promotion).
    pub detail: String,
}

/// Default journal capacity: enough for every event of a 20-seed chaos
/// sweep's worst run while staying a bounded ring.
pub const EVENT_JOURNAL_CAP: usize = 256;

/// A bounded ring of [`SysEvent`]s, appended by the engine at crash /
/// recovery / promotion moments (always) and by the health monitor at
/// state transitions (when enabled).
#[derive(Debug, Clone)]
pub struct EventJournal {
    cap: usize,
    next_seq: u64,
    events: VecDeque<SysEvent>,
    /// Events evicted from the bounded ring — the `events.dropped` counter
    /// `sys.metrics` exposes, so overflow is visible instead of silent.
    dropped: u64,
}

impl Default for EventJournal {
    fn default() -> Self {
        Self::new(EVENT_JOURNAL_CAP)
    }
}

impl EventJournal {
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            next_seq: 0,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Append one event, evicting the oldest when the ring is full.
    pub fn append(&mut self, time_us: u64, kind: &str, shard: Option<u64>, detail: String) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(SysEvent {
            seq: self.next_seq,
            time_us,
            kind: kind.to_string(),
            shard,
            detail,
        });
        self.next_seq += 1;
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SysEvent> {
        self.events.iter()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that fell off the bounded ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Replication lag (log records not yet applied by the slowest follower) at
/// or above which a shard is classified degraded. Small enough that a shard
/// that stops applying shows up within a few ticks, large enough that the
/// steady-state pump (which catches followers up every tick) never flaps.
pub const HEALTH_LAG_THRESHOLD: u64 = 8;

/// Per-shard health classification, re-derived on every
/// `pump_replication` tick: a shard is healthy while its primary is up and
/// its slowest follower lags by less than [`HEALTH_LAG_THRESHOLD`] records.
/// State *transitions* (not levels) feed the event journal.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    healthy: Vec<bool>,
}

impl HealthMonitor {
    pub fn new(shards: usize) -> Self {
        Self {
            healthy: vec![true; shards],
        }
    }

    /// Classify shard `i` given its liveness and current lag; returns
    /// `Some(now_healthy)` on a transition (to be journaled), `None` while
    /// the state is unchanged.
    pub fn observe(&mut self, i: usize, up: bool, lag: u64) -> Option<bool> {
        let ok = up && lag < HEALTH_LAG_THRESHOLD;
        if ok == self.healthy[i] {
            return None;
        }
        self.healthy[i] = ok;
        Some(ok)
    }

    pub fn is_healthy(&self, i: usize) -> bool {
        self.healthy[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_is_a_bounded_ring_with_monotonic_seqs() {
        let mut j = EventJournal::new(3);
        for i in 0..5u64 {
            j.append(i * 10, "crash", Some(i), format!("n={i}"));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2, "evictions are counted, not silent");
        let seqs: Vec<u64> = j.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(j.iter().next().unwrap().time_us, 20);
    }

    #[test]
    fn monitor_reports_transitions_only() {
        let mut m = HealthMonitor::new(2);
        assert_eq!(m.observe(0, true, 0), None);
        assert_eq!(m.observe(0, true, HEALTH_LAG_THRESHOLD), Some(false));
        assert_eq!(m.observe(0, true, HEALTH_LAG_THRESHOLD + 5), None);
        assert_eq!(m.observe(0, true, 0), Some(true));
        assert_eq!(m.observe(1, false, 0), Some(false));
        assert!(!m.is_healthy(1));
        assert!(m.is_healthy(0));
    }
}

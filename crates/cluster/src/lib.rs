//! # hdm-cluster
//!
//! The sharded OLTP cluster of §II-A: coordinator-routed transactions over
//! data nodes with either the **baseline** centralized-GTM protocol or
//! **GTM-lite**.
//!
//! * [`shard`] — application sharding (key prefix → shard placement).
//! * [`node`] — a data node: MVCC KV table + local transaction manager +
//!   pending-commit window.
//! * [`engine`] — the functional engine implementing both protocols with a
//!   split multi-shard commit for anomaly scripting.
//! * [`anomaly`] — scripted reproductions of the paper's Anomaly 1 and
//!   Anomaly 2 (Fig 2), runnable under the naive and full merge policies.
//! * [`sim`] — the timed Fig 3 experiment: a closed-loop TPC-C-style driver
//!   over the discrete-event kernel, reporting throughput per cluster size.
//! * [`retry`] — CN-side capped-exponential backoff with seeded jitter.
//! * [`chaos`] — the fault-injection harness: a bank-transfer workload under
//!   seeded message faults and node/GTM crashes, with a shadow-ledger audit.
//! * [`dist`] — distributed SQL: the CN plans shard-pruned scatter-gather
//!   plans over the data nodes through `hdm-sql`'s pluggable backend.
//! * [`replica`] — per-shard log-shipped followers (replica CSN, promotion
//!   catch-up, in-doubt reconstruction) backing automatic DN failover.
//! * [`chaos_dist`] — the chaos-dist sweep: the dist_equivalence corpus under
//!   scripted DN crash/restart with a fault-free twin as shadow ledger.
//! * [`health`] — the cluster health plane: the bounded `sys.events`
//!   journal and the per-shard lag/health monitor driven by
//!   `pump_replication` ticks.

pub mod anomaly;
pub mod chaos;
pub mod chaos_dist;
pub mod dist;
pub mod engine;
pub mod health;
pub mod node;
pub mod replica;
pub mod retry;
pub mod shard;
pub mod sim;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport, FaultPlanBuilder};
pub use chaos_dist::{run_chaos_dist, ChaosDistConfig, ChaosDistReport};
pub use dist::{DistCounters, DistDb, FaultOp, FaultScript};
pub use engine::{Cluster, ClusterConfig, ClusterCounters, MergePolicy, Protocol, Txn, TxnOptions};
pub use health::{EventJournal, HealthMonitor, SysEvent};
pub use node::DataNode;
pub use replica::{Follower, LogRecord, ReplOp, ReplicaSet, ShardLog};
pub use retry::RetryPolicy;
pub use shard::{key_local, key_prefix, make_key, ShardMap};
pub use sim::{SimConfig, SimReport, WorkloadMix};

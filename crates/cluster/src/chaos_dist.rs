//! The chaos-dist sweep: distributed SQL under DN crash/restart chaos.
//!
//! [`run_chaos_dist`] drives a seeded statement corpus (the
//! dist_equivalence shape: shard-key-pruned SELECTs, scattered aggregates,
//! cross-shard joins, plus a seeded DML mix) through a replicated
//! [`DistDb`] **twice**:
//!
//! 1. A **fault-free twin** with an empty [`FaultScript`] installed. Its
//!    per-statement results become the shadow ledger, and the ticks it
//!    consumes calibrate where scripted faults land in tick space.
//! 2. The **faulted run**: the same statements under the same seed, with
//!    the shared [`FaultPlanBuilder`]'s DN crash/restart schedule mapped
//!    proportionally from its time horizon into the twin's tick range, so
//!    crashes land *mid-statement*. Statements go through
//!    [`DistDb::execute_idempotent`]; a seeded ~10% of write statements are
//!    submitted twice (same statement id) to exercise DN-side dedup — in
//!    both runs, so the ledger stays comparable.
//!
//! The audit asserts zero lost and zero double-applied rows: every
//! statement's result (rows as a multiset, or the affected-count) must
//! match the twin's, and after healing the cluster the full table contents
//! must match row for row. [`ChaosDistReport`] compares equal across
//! same-seed runs (wall-clock timing fields are excluded from `PartialEq`),
//! which is what the replay-determinism test pins.

use crate::chaos::FaultPlanBuilder;
use crate::dist::{DistDb, FaultOp, FaultScript};
use crate::engine::{Cluster, ClusterConfig};
use crate::retry::RetryPolicy;
use hdm_common::{Result, Row, SplitMix64};
use hdm_sql::prepared::{ExecOptions, QueryApi};
use hdm_simnet::CrashTarget;
use hdm_telemetry::{
    HistoryConfig, RecorderConfig, SharedHistory, SharedRecorder, Telemetry, WorkloadSnapshot,
};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

/// Configuration for one chaos-dist run.
#[derive(Debug, Clone)]
pub struct ChaosDistConfig {
    pub seed: u64,
    pub shards: usize,
    /// Log-shipped followers per shard. With 0 the faulted run degrades to
    /// the legacy fail-fast `Unavailable` behaviour (statements error once
    /// the retry policy exhausts).
    pub replicas: usize,
    /// Seeded `orders` rows loaded fault-free before the corpus runs.
    pub orders: usize,
    /// Seeded `custs` rows.
    pub custs: usize,
    /// Corpus statements in the faulted phase (SELECT/DML mix).
    pub statements: usize,
    /// Fraction of write statements submitted twice under one statement id.
    pub duplicate_fraction: f64,
    pub telemetry: Option<Telemetry>,
    /// Enable the [`crate::health::HealthMonitor`] on both runs. The monitor
    /// is observation-only, so the report must compare equal with it on or
    /// off — pinned by the perturbation test.
    pub health_monitor: bool,
    /// Capture AWR-style workload-history windows on both runs. The chaos
    /// shape uses the statement-count stride (clock-free cadence) and a
    /// top_k large enough to keep every statement, so the wall-time top-K
    /// ordering never picks winners and same-seed replays agree. History is
    /// observation-only: the deterministic report fields must compare equal
    /// with it on or off — pinned by the perturbation test.
    pub history: bool,
}

impl ChaosDistConfig {
    /// The standard sweep shape: 4 shards, 1 follower each, dist_equivalence
    /// data sizes, 60 statements, 10% duplicate submissions.
    pub fn standard(seed: u64) -> Self {
        Self {
            seed,
            shards: 4,
            replicas: 1,
            orders: 400,
            custs: 40,
            statements: 60,
            duplicate_fraction: 0.1,
            telemetry: None,
            health_monitor: false,
            history: false,
        }
    }
}

/// What one chaos-dist run did and found. Two same-seed runs compare equal
/// (`PartialEq` skips the wall-clock `*_wall_us` fields) — the replay
/// determinism contract.
#[derive(Debug, Clone, Default)]
pub struct ChaosDistReport {
    pub seed: u64,
    /// Corpus statements executed (duplicate submissions not double-counted).
    pub statements: u64,
    /// Write statements submitted a second time under the same id.
    pub duplicates: u64,
    /// DN crash / restart faults actually applied from the script.
    pub crashes: u64,
    pub restarts: u64,
    /// Followers promoted to primary (engine counter).
    pub promotions: u64,
    /// Crashed ex-primaries re-seeded as empty followers.
    pub rejoins: u64,
    /// CN-driven failovers (inline at a fragment + between retry attempts).
    pub failovers: u64,
    /// Statement attempts retried after a retryable error.
    pub stmt_retries: u64,
    /// Statements answered from the DN idempotence table without
    /// re-applying writes (duplicates + post-crash retries of committed
    /// statements).
    pub dedup_hits: u64,
    /// Simulated backoff served across all retries.
    pub backoff_us: u64,
    /// Statements whose outcome diverged from the fault-free twin
    /// (client-visible errors count as divergence).
    pub mismatches: u64,
    /// Rows differing in the final table audit after healing (lost or
    /// double-applied rows — the headline invariant is 0).
    pub audit_diffs: u64,
    /// Execution ticks the faulted run consumed.
    pub ticks: u64,
    // ---- wall-clock latency decomposition (excluded from PartialEq) ----
    /// Wall time of the fault-free twin phase.
    pub twin_wall_us: u64,
    /// Wall time of the faulted phase.
    pub fault_wall_us: u64,
    /// Wall time of statements whose execution drove >= 1 promotion — the
    /// measured failover cost, isolatable from plain statement latency.
    pub failover_wall_us: u64,
    /// Statements that drove >= 1 promotion.
    pub failover_stmts: u64,
    /// Workload-history windows the faulted run captured (empty unless
    /// `history` is on). Compared via [`WorkloadSnapshot`]'s `PartialEq`,
    /// which excludes the clock-valued fields — so same-seed replays must
    /// agree on every window's statements, co-access sets, 2PC legs and
    /// shard states.
    pub history_windows: Vec<WorkloadSnapshot>,
}

impl PartialEq for ChaosDistReport {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed
            && self.statements == other.statements
            && self.duplicates == other.duplicates
            && self.crashes == other.crashes
            && self.restarts == other.restarts
            && self.promotions == other.promotions
            && self.rejoins == other.rejoins
            && self.failovers == other.failovers
            && self.stmt_retries == other.stmt_retries
            && self.dedup_hits == other.dedup_hits
            && self.backoff_us == other.backoff_us
            && self.mismatches == other.mismatches
            && self.audit_diffs == other.audit_diffs
            && self.ticks == other.ticks
            && self.history_windows == other.history_windows
    }
}

/// One scripted corpus statement.
#[derive(Debug, Clone)]
struct Stmt {
    sql: String,
    id: u64,
    /// Submitted twice under the same id.
    duplicate: bool,
}

/// One statement's outcome, comparable across runs. Rows compare as
/// multisets (gather order differs between plans).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Rows(Vec<String>),
    Affected(u64),
    Error(&'static str),
}

fn sorted(rows: Vec<Row>) -> Vec<String> {
    let mut out: Vec<String> = rows.into_iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

/// The seeded statement script: dist_equivalence-shaped SELECTs interleaved
/// with single- and multi-shard DML.
fn build_script(cfg: &ChaosDistConfig) -> Vec<Stmt> {
    let mut rng = SplitMix64::new(cfg.seed ^ 0xC0A5_D157);
    let custs = cfg.custs as u64;
    let mut out = Vec::with_capacity(cfg.statements);
    for i in 0..cfg.statements {
        let id = i as u64 + 1;
        let (sql, write) = match rng.next_below(10) {
            0 | 1 => {
                let k = rng.next_below(custs);
                (format!("select * from orders where cust = {k}"), false)
            }
            2 => {
                let k = rng.next_below(custs);
                (
                    format!("select count(*), sum(amount) from orders where cust = {k}"),
                    false,
                )
            }
            3 => {
                let t = rng.range_i64(100, 900);
                (
                    format!(
                        "select region, count(*) from orders where amount > {t} group by region"
                    ),
                    false,
                )
            }
            4 => (
                "select o.amount, c.tier from orders o, custs c \
                 where o.cust = c.cust and o.amount > 500"
                    .to_string(),
                false,
            ),
            5 => {
                let a = rng.next_below(custs);
                let b = rng.next_below(custs);
                (
                    format!("select * from orders where cust = {a} or cust = {b}"),
                    false,
                )
            }
            6 | 7 => {
                // Small insert; spans 1–3 shards.
                let n = 1 + rng.next_below(3);
                let vals: Vec<String> = (0..n)
                    .map(|_| {
                        format!(
                            "({}, {}, {})",
                            rng.next_below(custs),
                            rng.next_below(8),
                            rng.range_i64(1, 1_000)
                        )
                    })
                    .collect();
                (format!("insert into orders values {}", vals.join(",")), true)
            }
            8 => {
                let k = rng.next_below(custs);
                let d = rng.range_i64(1, 50);
                (
                    format!("update orders set amount = amount + {d} where cust = {k}"),
                    true,
                )
            }
            _ => {
                let t = rng.range_i64(900, 990);
                (format!("delete from orders where amount > {t}"), true)
            }
        };
        let duplicate = write && rng.chance(cfg.duplicate_fraction);
        out.push(Stmt { sql, id, duplicate });
    }
    out
}

/// Build a replicated DistDb, load the seeded data fault-free, and install
/// the retry policy + fault script.
fn build_db(cfg: &ChaosDistConfig, script: Rc<RefCell<FaultScript>>) -> Result<DistDb> {
    let mut cc = ClusterConfig::gtm_lite(cfg.shards);
    cc.replicas = cfg.replicas;
    cc.health_monitor = cfg.health_monitor;
    let mut db = DistDb::new(Cluster::new(cc))?;
    if let Some(tel) = &cfg.telemetry {
        db.attach_telemetry(tel);
    }
    if cfg.history {
        // A recorder big enough that nothing is evicted between window
        // captures, and a top_k that keeps every statement: both keep the
        // wall-clock out of window *content* so replays compare equal.
        db.attach_recorder(SharedRecorder::new(RecorderConfig {
            capacity: 256,
            ..RecorderConfig::default()
        }));
        db.attach_history(SharedHistory::new(HistoryConfig {
            every_stmts: 16,
            top_k: 1024,
            ..HistoryConfig::default()
        }));
    }
    db.execute("create table orders (cust int, region int, amount int)")?;
    db.execute("create table custs (cust int, tier int)")?;
    let mut rng = SplitMix64::new(cfg.seed ^ 0x10AD);
    let mut batch: Vec<String> = Vec::new();
    for _ in 0..cfg.orders {
        batch.push(format!(
            "({}, {}, {})",
            rng.next_below(cfg.custs as u64),
            rng.next_below(8),
            rng.range_i64(1, 1_000)
        ));
        if batch.len() == 200 {
            db.execute(&format!("insert into orders values {}", batch.join(",")))?;
            batch.clear();
        }
    }
    if !batch.is_empty() {
        db.execute(&format!("insert into orders values {}", batch.join(",")))?;
    }
    let custs: Vec<String> = (0..cfg.custs).map(|i| format!("({i}, {})", i % 3)).collect();
    db.execute(&format!("insert into custs values {}", custs.join(",")))?;
    db.execute("analyze")?;
    // Catch followers fully up before the corpus phase: the fault window
    // stresses steady-state lag, not the bulk load.
    db.cluster_mut().pump_replication(0)?;
    db.set_retry_policy(Some(RetryPolicy::chaos(cfg.seed)));
    db.set_fault_script(Some(script));
    Ok(db)
}

/// Run the scripted corpus, recording one [`Outcome`] per statement.
/// Duplicate-marked writes are submitted a second time under the same id;
/// the second submission must answer with the first's rowcount.
fn run_script(
    db: &mut DistDb,
    script: &[Stmt],
    report: &mut ChaosDistReport,
    timed: bool,
) -> Vec<Outcome> {
    let mut outcomes = Vec::with_capacity(script.len());
    for s in script {
        let promos_before = db.cluster().counters().promotions;
        let start = timed.then(Instant::now);
        let mut res = db.execute_opts(&s.sql, ExecOptions::idempotent(s.id));
        if s.duplicate {
            let dup = db.execute_opts(&s.sql, ExecOptions::idempotent(s.id));
            // The duplicate's answer must agree with the original's; keep
            // whichever succeeded so a crash between the two submissions
            // still records the committed outcome.
            if res.is_err() {
                res = dup;
            }
        }
        if let Some(t) = start {
            let us = t.elapsed().as_micros() as u64;
            if db.cluster().counters().promotions > promos_before {
                report.failover_wall_us += us;
                report.failover_stmts += 1;
            }
        }
        outcomes.push(match res {
            Ok(r) if r.columns.is_empty() => Outcome::Affected(r.affected),
            Ok(r) => Outcome::Rows(sorted(r.rows)),
            Err(e) => Outcome::Error(e.class()),
        });
    }
    outcomes
}

/// Map the crash schedule from its time horizon into the twin's tick range:
/// an event at time `t` of horizon `h` fires at tick `t/h * ticks`.
fn schedule_in_ticks(
    builder: &FaultPlanBuilder,
    shards: usize,
    ticks: u64,
) -> (BTreeMap<u64, Vec<FaultOp>>, u64, u64) {
    let mut plan = builder.plan();
    let events = builder.schedule(&mut plan, shards);
    let horizon = builder.horizon.micros().max(1);
    let to_tick = |us: u64| (us.saturating_mul(ticks) / horizon).min(ticks.saturating_sub(1));
    let mut schedule: BTreeMap<u64, Vec<FaultOp>> = BTreeMap::new();
    let (mut crashes, mut restarts) = (0u64, 0u64);
    for ev in events {
        let CrashTarget::DataNode(n) = ev.target else {
            continue; // the dn-only fault mix schedules no GTM loss
        };
        let at = to_tick(ev.at.micros());
        // A restart strictly after its crash, even when both round to the
        // same tick.
        let back = to_tick(ev.restart_at.micros()).max(at + 1);
        schedule.entry(at).or_default().push(FaultOp::Crash(n as u64));
        schedule.entry(back).or_default().push(FaultOp::Restart(n as u64));
        crashes += 1;
        restarts += 1;
    }
    (schedule, crashes, restarts)
}

/// Run the chaos-dist sweep for one seed. Returns the audit report; the
/// caller asserts `mismatches == 0 && audit_diffs == 0` (with replicas) and
/// `report == same-seed rerun` for replay determinism.
pub fn run_chaos_dist(cfg: &ChaosDistConfig) -> Result<ChaosDistReport> {
    let stmts = build_script(cfg);
    let mut report = ChaosDistReport {
        seed: cfg.seed,
        statements: stmts.len() as u64,
        duplicates: stmts.iter().filter(|s| s.duplicate).count() as u64,
        ..ChaosDistReport::default()
    };

    // Phase 1: the fault-free twin. Empty script counts ticks; outcomes
    // become the shadow ledger.
    let twin_script = Rc::new(RefCell::new(FaultScript::default()));
    let mut twin = build_db(cfg, twin_script.clone())?;
    let twin_start = Instant::now();
    let expected = run_script(&mut twin, &stmts, &mut report, false);
    report.twin_wall_us = twin_start.elapsed().as_micros() as u64;
    let ticks = twin_script.borrow().tick.max(1);
    let twin_tables = audit_tables(&mut twin)?;

    // Phase 2: the faulted run under the shared fault-plan builder's DN
    // crash schedule, mapped into tick space.
    let builder = FaultPlanBuilder::dn_crashes_only(cfg.seed);
    let (schedule, crashes, restarts) = schedule_in_ticks(&builder, cfg.shards, ticks);
    report.crashes = crashes;
    report.restarts = restarts;
    let fault_script = Rc::new(RefCell::new(FaultScript {
        schedule,
        tick: 0,
    }));
    let mut db = build_db(cfg, fault_script.clone())?;
    let fault_start = Instant::now();
    let actual = run_script(&mut db, &stmts, &mut report, true);
    report.fault_wall_us = fault_start.elapsed().as_micros() as u64;
    report.ticks = fault_script.borrow().tick;

    // Per-statement ledger audit.
    for (e, a) in expected.iter().zip(&actual) {
        if e != a {
            report.mismatches += 1;
        }
    }

    // Heal: promote or restart whatever the script left down, then compare
    // final table contents row for row (lost or double-applied rows shows
    // up here even if every per-statement answer matched).
    for shard in db.cluster().down_shards() {
        if !db.cluster_mut().try_failover(shard)? {
            db.cluster_mut().restart_node(shard);
        }
    }
    db.cluster_mut().pump_replication(0)?;
    db.set_fault_script(None);
    let final_tables = audit_tables(&mut db)?;
    for (t, f) in twin_tables.iter().zip(&final_tables) {
        if t != f {
            report.audit_diffs += t.len().abs_diff(f.len()).max(1) as u64;
        }
    }

    let c = db.cluster().counters();
    report.promotions = c.promotions;
    report.rejoins = c.rejoins;
    let d = db.counters();
    report.failovers = d.failovers;
    report.stmt_retries = d.stmt_retries;
    report.dedup_hits = d.dedup_hits;
    report.backoff_us = d.backoff_us;

    // Flush the partial window so the trailing statements (including the
    // heal-phase audit SELECTs) land in the report too.
    db.capture_history_now();
    if let Some(h) = db.history() {
        report.history_windows = h.with(|e| e.windows().cloned().collect());
    }
    Ok(report)
}

/// Full contents of both corpus tables as sorted multisets.
fn audit_tables(db: &mut DistDb) -> Result<Vec<Vec<String>>> {
    Ok(vec![
        sorted(db.execute("select * from orders")?.rows),
        sorted(db.execute("select * from custs")?.rows),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_twin_matches_itself() {
        // replicas=0 and no crashes: the sweep machinery itself must be
        // invariant (every statement matches the twin trivially).
        let mut cfg = ChaosDistConfig::standard(7);
        cfg.replicas = 0;
        cfg.statements = 12;
        cfg.orders = 80;
        // With no replicas the faulted run degrades to fail-fast errors on
        // down shards; mismatches count them. Crashes still fire.
        let r = run_chaos_dist(&cfg).unwrap();
        assert_eq!(r.statements, 12);
        assert!(r.crashes > 0, "dn-only plan must schedule crashes");
    }

    #[test]
    fn health_monitor_is_a_pure_observer() {
        // Perturbation test: the monitor derives gauges/events but touches
        // no control flow, so a faulted sweep replays identically with it
        // enabled — every deterministic report field must match.
        let mut on = ChaosDistConfig::standard(0xBEEF);
        on.statements = 24;
        on.orders = 120;
        let off = on.clone();
        on.health_monitor = true;
        let r_on = run_chaos_dist(&on).unwrap();
        let r_off = run_chaos_dist(&off).unwrap();
        assert_eq!(r_on, r_off, "health monitor perturbed the sweep");
    }

    #[test]
    fn history_is_a_pure_observer() {
        // Perturbation test: the snapshot engine counts statements and cuts
        // windows but touches no control flow, so a faulted sweep replays
        // identically with it enabled. The captured windows themselves are
        // cleared before comparing — they only exist on the history-on run.
        let mut on = ChaosDistConfig::standard(0xBEEF);
        on.statements = 24;
        on.orders = 120;
        let off = on.clone();
        on.history = true;
        let mut r_on = run_chaos_dist(&on).unwrap();
        let r_off = run_chaos_dist(&off).unwrap();
        assert!(!r_on.history_windows.is_empty(), "history-on run captured nothing");
        r_on.history_windows.clear();
        assert_eq!(r_on, r_off, "history capture perturbed the sweep");
    }

    #[test]
    fn history_windows_replay_bit_identical() {
        let mut cfg = ChaosDistConfig::standard(0xA11CE);
        cfg.statements = 24;
        cfg.orders = 120;
        cfg.history = true;
        let r1 = run_chaos_dist(&cfg).unwrap();
        let r2 = run_chaos_dist(&cfg).unwrap();
        assert!(!r1.history_windows.is_empty());
        assert!(r1.history_windows.iter().any(|w| !w.statements.is_empty()));
        assert_eq!(r1, r2, "same-seed replay diverged with history on");
    }

    #[test]
    fn replicated_sweep_loses_nothing() {
        let r = run_chaos_dist(&ChaosDistConfig::standard(0xD157_0E55)).unwrap();
        assert_eq!(r.mismatches, 0);
        assert_eq!(r.audit_diffs, 0);
    }
}

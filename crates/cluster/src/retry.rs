//! CN-side retry with capped exponential backoff and seeded jitter.
//!
//! When a request hits a crashed participant (or the GTM during an outage)
//! the coordinating CN does not fail the client: it backs off and retries.
//! Backoff doubles per attempt up to a cap, and every delay is jittered by a
//! deterministic per-policy RNG so that colliding retriers deterministically
//! de-synchronize — the chaos harness replays bit-for-bit from its seed.

use hdm_common::{SimDuration, SplitMix64};
use hdm_telemetry::{Counter, MetricsRegistry};

/// Exponential-backoff schedule for one retry loop.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    base: SimDuration,
    cap: SimDuration,
    max_attempts: u32,
    rng: SplitMix64,
    backoffs: u64,
    backoff_ctr: Option<Counter>,
}

impl RetryPolicy {
    pub fn new(base: SimDuration, cap: SimDuration, max_attempts: u32, seed: u64) -> Self {
        assert!(base.micros() > 0, "zero base backoff would busy-spin");
        assert!(cap >= base, "cap below base");
        Self {
            base,
            cap,
            max_attempts,
            rng: SplitMix64::new(seed ^ 0xB0FF_0FF5),
            backoffs: 0,
            backoff_ctr: None,
        }
    }

    /// Register the `cn.backoff` counter with `metrics`; each computed
    /// backoff delay bumps it, so chaos reports can assert how many waits
    /// the retry loop actually served.
    pub fn attach_telemetry(&mut self, metrics: &MetricsRegistry) {
        self.backoff_ctr = Some(metrics.counter("cn.backoff", &[]));
    }

    /// How many backoff delays this policy has handed out.
    pub fn backoffs_served(&self) -> u64 {
        self.backoffs
    }

    /// A schedule suited to the chaos harness: first retry after 100µs,
    /// doubling to a 2ms cap — past the longest injected outage slice, so a
    /// retrier always lands after the restart it is waiting for.
    pub fn chaos(seed: u64) -> Self {
        Self::new(
            SimDuration::from_micros(100),
            SimDuration::from_micros(2_000),
            1_000,
            seed,
        )
    }

    /// May attempt number `attempt` (0-based) still run?
    pub fn allows(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The delay to wait before attempt `attempt` (0-based; attempt 0 is the
    /// first *retry*). Exponential with a cap, jittered into
    /// `[half, full]` of the nominal value so the expected delay stays
    /// three-quarters of nominal while retriers decorrelate.
    pub fn backoff(&mut self, attempt: u32) -> SimDuration {
        self.backoffs += 1;
        if let Some(c) = &self.backoff_ctr {
            c.inc();
        }
        let doubled = self
            .base
            .micros()
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cap.micros());
        let jitter = 0.5 + 0.5 * self.rng.next_f64();
        SimDuration::from_micros(doubled).mul_f64(jitter).max(self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let mut p = RetryPolicy::new(
            SimDuration::from_micros(100),
            SimDuration::from_micros(1_000),
            10,
            7,
        );
        let delays: Vec<u64> = (0..8).map(|a| p.backoff(a).micros()).collect();
        // Within the jittered envelope: [half, full] of min(100 << a, 1000).
        for (a, d) in delays.iter().enumerate() {
            let nominal = (100u64 << a).min(1_000);
            assert!(
                *d >= nominal / 2 && *d <= nominal,
                "attempt {a}: delay {d} outside [{}, {nominal}]",
                nominal / 2
            );
        }
        assert!(delays.iter().all(|d| *d <= 1_000), "cap respected");
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = RetryPolicy::chaos(42);
        let mut b = RetryPolicy::chaos(42);
        for attempt in 0..20 {
            assert_eq!(a.backoff(attempt), b.backoff(attempt));
        }
    }

    #[test]
    fn attempt_budget_is_enforced() {
        let p = RetryPolicy::new(
            SimDuration::from_micros(10),
            SimDuration::from_micros(10),
            3,
            1,
        );
        assert!(p.allows(0) && p.allows(2));
        assert!(!p.allows(3));
    }

    #[test]
    fn backoff_counter_tracks_served_delays() {
        let reg = MetricsRegistry::new();
        let mut p = RetryPolicy::chaos(9);
        p.attach_telemetry(&reg);
        for attempt in 0..5 {
            p.backoff(attempt);
        }
        assert_eq!(p.backoffs_served(), 5);
        assert_eq!(reg.snapshot().counter("cn.backoff"), 5);
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let mut p = RetryPolicy::chaos(3);
        let d = p.backoff(u32::MAX);
        assert!(d.micros() <= 2_000);
    }
}

//! Key → shard placement.
//!
//! "In many practical application systems, database is designed with
//! application sharding in mind and the majority of transactions in such
//! systems are single-sharded" (§II-A). We reproduce TPC-C-style application
//! sharding: a 64-bit key packs a *sharding prefix* (warehouse id) in its
//! upper 32 bits and a local identifier below, and placement hashes only the
//! prefix — so all keys of one warehouse land on one shard.

use hdm_common::ShardId;

/// Pack a (prefix, local) pair into a cluster key.
pub fn make_key(prefix: u32, local: u32) -> i64 {
    ((prefix as i64) << 32) | local as i64
}

/// The sharding prefix of a key.
pub fn key_prefix(key: i64) -> u32 {
    (key >> 32) as u32
}

/// The local identifier of a key.
pub fn key_local(key: i64) -> u32 {
    (key & 0xffff_ffff) as u32
}

/// Static hash placement of sharding prefixes onto `n` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// # Panics
    /// If `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "cluster needs at least one shard");
        Self {
            shards: shards as u32,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// Placement of a packed key.
    pub fn shard_of_key(&self, key: i64) -> ShardId {
        self.shard_of_prefix(key_prefix(key))
    }

    /// Placement of a sharding prefix (e.g. a warehouse id).
    pub fn shard_of_prefix(&self, prefix: u32) -> ShardId {
        // Fibonacci hashing spreads sequential warehouse ids evenly.
        let h = (prefix as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 32;
        ShardId::new(h % self.shards as u64)
    }

    /// All shard ids.
    pub fn all(&self) -> impl Iterator<Item = ShardId> {
        (0..self.shards as u64).map(ShardId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_packing_round_trips() {
        let k = make_key(7, 42);
        assert_eq!(key_prefix(k), 7);
        assert_eq!(key_local(k), 42);
        let k = make_key(u32::MAX, u32::MAX);
        assert_eq!(key_prefix(k), u32::MAX);
        assert_eq!(key_local(k), u32::MAX);
    }

    #[test]
    fn same_prefix_same_shard() {
        let m = ShardMap::new(8);
        let s = m.shard_of_key(make_key(3, 0));
        for local in 0..100 {
            assert_eq!(m.shard_of_key(make_key(3, local)), s);
        }
    }

    #[test]
    fn prefixes_spread_over_shards() {
        let m = ShardMap::new(8);
        let mut counts = [0usize; 8];
        for w in 0..800u32 {
            counts[m.shard_of_prefix(w).raw() as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (60..=140).contains(c),
                "shard {i} got {c}/800, expected near 100"
            );
        }
    }

    #[test]
    fn single_shard_cluster_maps_everything_to_zero() {
        let m = ShardMap::new(1);
        assert_eq!(m.shard_of_prefix(12345), ShardId::new(0));
        assert_eq!(m.all().count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardMap::new(0);
    }
}

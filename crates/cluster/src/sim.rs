//! The timed Fig 3 experiment.
//!
//! "We deployed the database on various cluster sizes from 1 node, 2 nodes,
//! 4 nodes up to 8 nodes. We modified the TPC-C benchmark to issue 100%
//! single-shard (SS) or 90% single-shard transactions (MS)" (§II-A).
//!
//! We reproduce the deployment as a closed-loop discrete-event simulation:
//! clients pinned to home warehouses issue short read-write transactions
//! against the *functional* cluster engine, while CPU, network and GTM time
//! are charged on virtual-time resources. Execution is fully event-staged —
//! every resource request is issued by an event scheduled at its arrival
//! instant, so FCFS queues see arrivals in order and queueing behaviour is
//! exact. Because the GTM is a single-server resource charged per
//! interaction, the baseline protocol saturates at
//! `1 / (interactions_per_txn × gtm_service)` regardless of cluster size —
//! the flattening curve of Fig 3 — while GTM-lite's single-shard fast path
//! scales with node count.
//!
//! Cost-model defaults are calibrated to a commodity 10 GbE cluster (25 µs
//! one-way LAN latency, ~50 µs of DN CPU per short transaction) and are all
//! configurable; EXPERIMENTS.md records the values each figure used.
//!
//! One modelling simplification: a transaction's *functional* reads/writes
//! execute against the cluster engine when the transaction starts, while
//! its *timing* plays out over the event chain. Fig 3 measures throughput
//! and protocol traffic, which are unaffected; the anomaly interleavings
//! are exercised by the untimed scripted scenarios instead.

use crate::engine::{Cluster, ClusterConfig, Protocol, TxnOptions};
use crate::shard::make_key;
use hdm_common::stats::Histogram;
use hdm_common::{SimDuration, SimInstant, SplitMix64, Xid};
use hdm_simnet::{Batcher, FaultConfig, FaultPlan, MsgFate, NetLink, Resource, Sim};
use hdm_telemetry::{HistogramHandle, SpanId, Telemetry};

/// Transaction mix parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadMix {
    /// Fraction of transactions that are single-shard (1.0 = "SS", 0.9 = "MS").
    pub single_shard_fraction: f64,
    /// Key reads per transaction.
    pub reads_per_txn: u32,
    /// Key writes per transaction.
    pub writes_per_txn: u32,
    /// Shards a multi-shard transaction spreads its keys over.
    pub multi_shard_legs: u32,
}

impl WorkloadMix {
    /// The paper's "SS" workload: 100% single-shard.
    pub fn ss() -> Self {
        Self {
            single_shard_fraction: 1.0,
            reads_per_txn: 2,
            writes_per_txn: 2,
            multi_shard_legs: 2,
        }
    }

    /// The paper's "MS" workload: 90% single-shard.
    pub fn ms() -> Self {
        Self {
            single_shard_fraction: 0.9,
            ..Self::ss()
        }
    }

    /// A custom single-shard fraction (ablation sweeps).
    pub fn with_fraction(f: f64) -> Self {
        Self {
            single_shard_fraction: f,
            ..Self::ss()
        }
    }
}

/// Full experiment configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub nodes: usize,
    pub protocol: Protocol,
    pub mix: WorkloadMix,
    pub clients_per_node: usize,
    pub warehouses_per_node: usize,
    pub keys_per_warehouse: u32,
    /// Virtual experiment duration.
    pub horizon: SimDuration,
    pub seed: u64,
    // --- cost model (virtual time) ---
    pub cn_service: SimDuration,
    pub cn_cores_per_node: usize,
    pub dn_service_per_op: SimDuration,
    pub dn_commit_service: SimDuration,
    pub dn_prepare_service: SimDuration,
    pub dn_finish_service: SimDuration,
    /// Extra DN time to run Algorithm 1 on a multi-shard leg.
    pub merge_service: SimDuration,
    pub dn_cores_per_node: usize,
    /// GTM service time per interaction (XID, snapshot, or commit).
    pub gtm_service: SimDuration,
    /// Group-commit window for GTM requests. Zero (the default) disables
    /// batching — every request pays its own FCFS visit, bit-identical to
    /// the pre-batching model. Nonzero: the first request to reach an idle
    /// batcher opens a window; everything arriving within it rides one
    /// coalesced service event costing `gtm_service` (paid once per batch)
    /// plus `gtm_batch_per_item` per batched interaction.
    pub gtm_batch_window: SimDuration,
    /// Marginal GTM service per batched interaction (see `gtm_batch_window`).
    pub gtm_batch_per_item: SimDuration,
    /// CN-side snapshot-epoch cache: a multi-shard begin whose cached
    /// snapshot epoch still equals the latest published CSN skips the
    /// snapshot interaction (1× instead of 2× `gtm_service`). The timed
    /// layer tracks its own CSN, bumped when a commit/decide request
    /// *enters* the GTM queue — a conservative publication point, so the
    /// cache never over-hits. Visibility safety is the functional engine's
    /// argument (see `Cluster::begin`); here only the timing is modelled,
    /// so the functional cluster keeps its own cache off.
    pub snapshot_cache: bool,
    pub net_one_way: SimDuration,
    pub net_jitter: f64,
    /// Message-fault injection on every network hop (`None` = pristine
    /// network, bit-identical to the pre-fault model). Crash faults are the
    /// chaos harness's job; here only the latency cost of drops, duplicates
    /// and delays is charged.
    pub faults: Option<FaultConfig>,
    /// Attach a [`Telemetry`] bundle (virtual-clock) to trace every
    /// transaction as a root `txn` span with contiguous child segments
    /// (`cn.parse` → `gtm.begin` → `leg.exec` → `leg.prepare` →
    /// `gtm.decide` → `leg.finish`; the single-shard path is `cn.parse` →
    /// `dn.exec`), labelled `path=single|distributed`, plus `txn.latency`
    /// and GTM wait/service histograms. `None` = zero-overhead run.
    pub telemetry: Option<Telemetry>,
}

impl SimConfig {
    /// Calibrated defaults for `nodes` nodes under `protocol` and `mix`.
    pub fn new(nodes: usize, protocol: Protocol, mix: WorkloadMix) -> Self {
        Self {
            nodes,
            protocol,
            mix,
            clients_per_node: 48,
            warehouses_per_node: 16,
            keys_per_warehouse: 1 << 10,
            horizon: SimDuration::from_millis(250),
            seed: 0xF163,
            cn_service: SimDuration::from_micros(8),
            cn_cores_per_node: 4,
            dn_service_per_op: SimDuration::from_micros(12),
            dn_commit_service: SimDuration::from_micros(8),
            dn_prepare_service: SimDuration::from_micros(10),
            dn_finish_service: SimDuration::from_micros(5),
            merge_service: SimDuration::from_micros(3),
            dn_cores_per_node: 4,
            gtm_service: SimDuration::from_micros(2),
            gtm_batch_window: SimDuration::ZERO,
            gtm_batch_per_item: SimDuration::from_micros(1),
            snapshot_cache: false,
            net_one_way: SimDuration::from_micros(25),
            net_jitter: 0.2,
            faults: None,
            telemetry: None,
        }
    }
}

/// Results of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    pub committed: u64,
    pub aborted: u64,
    /// Committed transactions per virtual second.
    pub throughput_tps: f64,
    pub p50_latency_us: u64,
    pub p99_latency_us: u64,
    /// Total GTM interactions (protocol traffic).
    pub gtm_interactions: u64,
    /// GTM busy fraction over the horizon (1.0 = the bottleneck).
    pub gtm_utilization: f64,
    /// Mean queueing delay at the GTM in µs.
    pub gtm_mean_wait_us: f64,
    /// Snapshot merges / upgrades / downgrades observed (GTM-lite only).
    pub merges: u64,
    pub upgrade_waits: u64,
    pub downgrades: u64,
    /// (messages, dropped, duplicated, delayed) on the simulated network.
    pub net_fault_stats: (u64, u64, u64, u64),
    /// GTM group-commit batches served (0 when `gtm_batch_window` is zero).
    pub gtm_batches: u64,
    /// Requests that rode those batches.
    pub gtm_batched_requests: u64,
    /// Mean members per batch (0.0 when batching never ran).
    pub gtm_mean_batch_size: f64,
    /// Timed-layer snapshot-epoch cache hits (0 when the cache is off).
    pub snapshot_cache_hits: u64,
    /// Timed-layer snapshot-epoch cache misses.
    pub snapshot_cache_misses: u64,
}

/// In-flight timing state of one transaction.
struct InFlight {
    home_wh: u32,
    start: SimInstant,
    ok: bool,
    single: bool,
    /// DN indexes of multi-shard legs (empty for single-shard).
    shards: Vec<usize>,
    /// Fan-out bookkeeping: legs not yet joined, and the join high-water.
    pending: usize,
    join_at: SimInstant,
    /// Root `txn` span and the currently-open segment (telemetry runs only).
    span: Option<SpanId>,
    seg: Option<SpanId>,
}

/// Pre-resolved telemetry handles for the timed harness.
struct SimTel {
    tel: Telemetry,
    lat_single: HistogramHandle,
    lat_distributed: HistogramHandle,
    gtm_wait: HistogramHandle,
    gtm_service: HistogramHandle,
}

struct World {
    cfg: SimConfig,
    cluster: Cluster,
    cn: Resource,
    dns: Vec<Resource>,
    gtm: Resource,
    net: NetLink,
    faults: Option<FaultPlan>,
    rng: SplitMix64,
    horizon: SimInstant,
    committed: u64,
    aborted: u64,
    latency: Histogram,
    txns: Vec<Option<InFlight>>,
    free: Vec<usize>,
    tel: Option<SimTel>,
    /// Group-commit coalescer for GTM requests (unused when the window is
    /// zero); members carry their op and marginal service weight.
    batcher: Batcher<(GtmOp, SimDuration)>,
    /// Timed-layer CSN: bumped when a commit/decide request enters the GTM
    /// queue. Drives the snapshot-epoch cache below.
    timed_csn: u64,
    /// CSN epoch of the snapshot the CNs currently hold, if any.
    cached_epoch: Option<u64>,
    cache_hits: u64,
    cache_misses: u64,
}

impl World {
    fn new(cfg: SimConfig) -> Self {
        let mut ccfg = match cfg.protocol {
            Protocol::Baseline => ClusterConfig::baseline(cfg.nodes),
            Protocol::GtmLite => ClusterConfig::gtm_lite(cfg.nodes),
        };
        // Long runs need bounded LCO for bounded merge cost.
        ccfg.lco_prune_horizon = 4096;
        let mut cluster = Cluster::new(ccfg);
        let tel = cfg.telemetry.clone().map(|tel| SimTel {
            lat_single: tel.metrics.histogram("txn.latency", &[("path", "single")]),
            lat_distributed: tel
                .metrics
                .histogram("txn.latency", &[("path", "distributed")]),
            gtm_wait: tel.metrics.histogram("gtm.wait_us", &[]),
            gtm_service: tel.metrics.histogram("gtm.service_us", &[]),
            tel,
        });
        if let Some(st) = &tel {
            cluster.attach_telemetry(&st.tel);
        }
        let dns = (0..cfg.nodes)
            .map(|i| Resource::new(format!("dn{i}"), cfg.dn_cores_per_node))
            .collect();
        Self {
            cn: Resource::new("cn-pool", cfg.cn_cores_per_node * cfg.nodes),
            dns,
            gtm: Resource::new("gtm", 1),
            net: NetLink::new(cfg.net_one_way, cfg.net_jitter, cfg.seed ^ 0x9e37),
            faults: cfg.faults.clone().map(|f| {
                let mut plan = FaultPlan::new(cfg.seed ^ 0xFA17, f);
                if let Some(st) = &tel {
                    plan.attach_telemetry(&st.tel.metrics);
                }
                plan
            }),
            tel,
            rng: SplitMix64::new(cfg.seed),
            horizon: SimInstant::ZERO + cfg.horizon,
            committed: 0,
            aborted: 0,
            latency: Histogram::new_latency_us(),
            txns: Vec::new(),
            free: Vec::new(),
            batcher: Batcher::new(cfg.gtm_batch_window, cfg.gtm_service),
            timed_csn: 0,
            cached_epoch: None,
            cache_hits: 0,
            cache_misses: 0,
            cluster,
            cfg,
        }
    }

    fn alloc(&mut self, t: InFlight) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.txns[i] = Some(t);
                i
            }
            None => {
                self.txns.push(Some(t));
                self.txns.len() - 1
            }
        }
    }

    fn release(&mut self, id: usize) -> InFlight {
        self.free.push(id);
        self.txns[id].take().expect("in-flight txn")
    }

    /// Close transaction `id`'s current trace segment and open `next` as a
    /// sibling — segments stay contiguous, so the txn timeline decomposes
    /// ~100% of end-to-end latency. No-op without telemetry.
    fn advance_seg(&mut self, id: usize, now: SimInstant, next: Option<&str>) {
        let Some(st) = &self.tel else {
            return;
        };
        st.tel.set_time_us(now.micros());
        let t = self.txns[id].as_mut().expect("in-flight");
        if let Some(seg) = t.seg.take() {
            st.tel.tracer.end(seg);
        }
        if let (Some(root), Some(name)) = (t.span, next) {
            t.seg = Some(st.tel.tracer.begin_child(root, name));
        }
    }

    /// Record one GTM visit's queueing and service time.
    fn record_gtm_visit(&self, arrival: SimInstant, wait: SimDuration, svc: SimDuration) {
        if let Some(st) = &self.tel {
            st.tel.set_time_us(arrival.micros());
            st.gtm_wait.record(wait.micros());
            st.gtm_service.record(svc.micros());
        }
    }

    /// How many GTM interactions this begin pays: 2 (gxid + snapshot), or 1
    /// when the CN-side epoch cache still holds a snapshot for the latest
    /// published CSN. A miss refreshes the cache to the current epoch.
    fn begin_interactions(&mut self) -> u64 {
        if !self.cfg.snapshot_cache {
            return 2;
        }
        if self.cached_epoch == Some(self.timed_csn) {
            self.cache_hits += 1;
            1
        } else {
            self.cache_misses += 1;
            self.cached_epoch = Some(self.timed_csn);
            2
        }
    }

    /// One network hop's latency, with fault injection when configured.
    /// Drops cost a sender timeout (4× nominal one-way) plus the
    /// retransmission's own flight time; delays add the sampled extra;
    /// duplicates are suppressed at the transport (dedup by sequence
    /// number) and cost nothing beyond the count.
    fn hop(&mut self) -> SimDuration {
        let flight = self.net.one_way();
        let Some(plan) = self.faults.as_mut() else {
            return flight;
        };
        match plan.message_fate() {
            MsgFate::Deliver | MsgFate::Duplicate => flight,
            MsgFate::Delay(extra) => flight + extra,
            MsgFate::Drop => flight + self.cfg.net_one_way.mul_f64(4.0) + self.net.one_way(),
        }
    }

    fn pick_key(&mut self, wh: u32) -> i64 {
        let local = self.rng.next_below(self.cfg.keys_per_warehouse as u64) as u32;
        make_key(wh, local)
    }

    /// Run the functional transaction now; returns (ok, leg shard indexes,
    /// global xid if the protocol allocated one).
    fn run_functional(&mut self, home_wh: u32, single: bool) -> (bool, Vec<usize>, Option<Xid>) {
        let mix = self.cfg.mix;
        if single {
            let mut txn = self.cluster.begin(TxnOptions::single(home_wh).retry_on_unavailable(false)).expect("unchecked begin is infallible");
            let mut ok = true;
            for _ in 0..mix.reads_per_txn {
                let k = self.pick_key(home_wh);
                if self.cluster.get(&mut txn, k).is_err() {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..mix.writes_per_txn {
                    let k = self.pick_key(home_wh);
                    let v = (self.rng.next_u64() & 0xffff) as i64;
                    if self.cluster.put(&mut txn, k, v).is_err() {
                        ok = false;
                        break;
                    }
                }
            }
            let gxid = txn.gxid();
            let ok = if ok {
                self.cluster.commit(txn).is_ok()
            } else {
                let _ = self.cluster.abort(txn);
                false
            };
            let shard = self.cluster.shard_map().shard_of_prefix(home_wh).raw() as usize;
            (ok, vec![shard], gxid)
        } else {
            let total_whs = (self.cfg.warehouses_per_node * self.cfg.nodes) as u32;
            let mut whs = vec![home_wh];
            let mut guard = 0;
            while whs.len() < mix.multi_shard_legs as usize && guard < 64 {
                guard += 1;
                let w = self.rng.next_below(total_whs as u64) as u32;
                if !whs.contains(&w) {
                    whs.push(w);
                }
            }
            let mut txn = self.cluster.begin(TxnOptions::multi().retry_on_unavailable(false)).expect("unchecked begin is infallible");
            let mut ok = true;
            'work: for (i, &w) in whs.iter().enumerate() {
                let reads = if i == 0 { mix.reads_per_txn } else { 0 };
                for _ in 0..reads {
                    let k = self.pick_key(w);
                    if self.cluster.get(&mut txn, k).is_err() {
                        ok = false;
                        break 'work;
                    }
                }
                let k = self.pick_key(w);
                let v = (self.rng.next_u64() & 0xffff) as i64;
                if self.cluster.put(&mut txn, k, v).is_err() {
                    ok = false;
                    break 'work;
                }
            }
            let gxid = txn.gxid();
            let ok = if ok {
                self.cluster.commit(txn).is_ok()
            } else {
                let _ = self.cluster.abort(txn);
                false
            };
            let shards: Vec<usize> = whs
                .iter()
                .map(|&w| self.cluster.shard_map().shard_of_prefix(w).raw() as usize)
                .collect();
            (ok, shards, gxid)
        }
    }
}

type S = Sim<World>;

/// A client becomes ready to issue its next transaction.
fn client_start(sim: &mut S, w: &mut World, home_wh: u32) {
    let now = sim.now();
    if now >= w.horizon {
        return;
    }
    let single = w.rng.chance(w.cfg.mix.single_shard_fraction);
    if let Some(st) = &w.tel {
        st.tel.set_time_us(now.micros());
    }
    let (ok, shards, gxid) = w.run_functional(home_wh, single);
    let id = w.alloc(InFlight {
        home_wh,
        start: now,
        ok,
        single,
        shards,
        pending: 0,
        join_at: now,
        span: None,
        seg: None,
    });
    if let Some(st) = &w.tel {
        let root = st.tel.tracer.begin("txn");
        st.tel
            .tracer
            .field(root, "path", if single { "single" } else { "distributed" });
        if let Some(g) = gxid {
            st.tel.tracer.field(root, "gxid", g.raw());
        }
        st.tel.tracer.field(root, "ok", ok);
        let seg = st.tel.tracer.begin_child(root, "cn.parse");
        let t = w.txns[id].as_mut().expect("in-flight");
        t.span = Some(root);
        t.seg = Some(seg);
    }
    // CN parse/route, at the CN pool.
    let grant = w.cn.request(now, w.cfg.cn_service);
    let single2 = single;
    sim.schedule_at(grant.end, move |sim, w| after_cn(sim, w, id, single2));
}

/// CN work done: route by protocol.
fn after_cn(sim: &mut S, w: &mut World, id: usize, single: bool) {
    match (w.cfg.protocol, single) {
        // GTM-lite single-shard: straight to the DN.
        (Protocol::GtmLite, true) => {
            w.advance_seg(id, sim.now(), Some("dn.exec"));
            let hop = w.hop();
            sim.schedule_in(hop, move |sim, w| single_dn_arrive(sim, w, id));
        }
        // Everything else starts with GTM begin+snapshot (2 interactions,
        // 1 on a snapshot-epoch cache hit).
        _ => {
            w.advance_seg(id, sim.now(), Some("gtm.begin"));
            let hop = w.hop();
            sim.schedule_in(hop, move |sim, w| {
                gtm_arrive(sim, w, GtmOp::Begin { id, single })
            });
        }
    }
}

/// One request headed for the GTM, resumed by [`gtm_reply`] once served.
#[derive(Clone, Copy)]
enum GtmOp {
    /// Begin + snapshot (2 interactions; 1 on an epoch-cache hit).
    Begin { id: usize, single: bool },
    /// Baseline single-shard commit report (1 interaction).
    CommitSingle { id: usize },
    /// Multi-shard 2PC decision (1 interaction).
    Decide { id: usize },
}

/// A request arrives at the GTM. With a zero batch window this is the
/// legacy path — one FCFS visit per request, bit-identical to the
/// pre-batching model. With a nonzero window the request boards the
/// group-commit batcher and is resumed when its batch is served.
fn gtm_arrive(sim: &mut S, w: &mut World, op: GtmOp) {
    let arrival = sim.now();
    let interactions = match op {
        GtmOp::Begin { .. } => w.begin_interactions(),
        GtmOp::CommitSingle { .. } | GtmOp::Decide { .. } => {
            // The commit is published here: a conservative CSN bump at
            // enqueue time, so no later begin over-trusts the cache.
            w.timed_csn += 1;
            1
        }
    };
    if w.cfg.gtm_batch_window.micros() == 0 {
        let svc = SimDuration::from_micros(w.cfg.gtm_service.micros() * interactions);
        let grant = w.gtm.request(arrival, svc);
        w.record_gtm_visit(arrival, grant.queue_wait(arrival), svc);
        let back = w.hop();
        sim.schedule_at(grant.end + back, move |sim, w| gtm_reply(sim, w, op));
    } else {
        let weight = SimDuration::from_micros(w.cfg.gtm_batch_per_item.micros() * interactions);
        if let Some(close_at) = w.batcher.join(arrival, weight, (op, weight)) {
            sim.schedule_at(close_at, close_gtm_batch);
        }
    }
}

/// A GTM reply reaches the CN: resume the transaction's next stage.
fn gtm_reply(sim: &mut S, w: &mut World, op: GtmOp) {
    match op {
        GtmOp::Begin { id, single } => {
            if single {
                w.advance_seg(id, sim.now(), Some("dn.exec"));
                let hop = w.hop();
                sim.schedule_in(hop, move |sim, w| single_dn_arrive(sim, w, id));
            } else {
                fan_out(sim, w, id, Phase::Exec);
            }
        }
        GtmOp::CommitSingle { id } => txn_done(sim, w, id),
        GtmOp::Decide { id } => fan_out(sim, w, id, Phase::Finish),
    }
}

/// The open group-commit window elapsed: serve the whole batch as one
/// coalesced GTM event and resume every member when it completes.
fn close_gtm_batch(sim: &mut S, w: &mut World) {
    let now = sim.now();
    let batch = w.batcher.close(now, &mut w.gtm);
    let size = batch.size();
    w.cluster.note_gtm_batch(size);
    if let Some(st) = &w.tel {
        st.tel.set_time_us(now.micros());
        let span = st.tel.tracer.begin("gtm.batch");
        st.tel.tracer.field(span, "size", size);
        st.tel.set_time_us(batch.grant.end.micros());
        st.tel.tracer.end(span);
    }
    for (arrival, (op, weight)) in batch.members {
        w.record_gtm_visit(arrival, batch.grant.start - arrival, weight);
        let back = w.hop();
        sim.schedule_at(batch.grant.end + back, move |sim, w| gtm_reply(sim, w, op));
    }
}

/// Single-shard execution at the home DN (execute + commit in one visit).
fn single_dn_arrive(sim: &mut S, w: &mut World, id: usize) {
    let txn = w.txns[id].as_ref().expect("in-flight");
    let shard = txn.shards[0];
    let ops = (w.cfg.mix.reads_per_txn + w.cfg.mix.writes_per_txn) as u64;
    let svc = SimDuration::from_micros(w.cfg.dn_service_per_op.micros() * ops)
        + w.cfg.dn_commit_service;
    let grant = w.dns[shard].request(sim.now(), svc);
    let back = w.hop();
    sim.schedule_at(grant.end + back, move |sim, w| match w.cfg.protocol {
        // Reply to client directly.
        Protocol::GtmLite => txn_done(sim, w, id),
        // Baseline reports the commit to the GTM first (1 interaction).
        Protocol::Baseline => {
            w.advance_seg(id, sim.now(), Some("gtm.commit"));
            let hop = w.hop();
            sim.schedule_in(hop, move |sim, w| {
                gtm_arrive(sim, w, GtmOp::CommitSingle { id })
            });
        }
    });
}

/// Multi-shard phases.
#[derive(Clone, Copy, PartialEq)]
enum Phase {
    Exec,
    Prepare,
    Finish,
}

/// Fan a round of per-leg DN visits out from the CN.
fn fan_out(sim: &mut S, w: &mut World, id: usize, phase: Phase) {
    let seg_name = match phase {
        Phase::Exec => "leg.exec",
        Phase::Prepare => "leg.prepare",
        Phase::Finish => "leg.finish",
    };
    w.advance_seg(id, sim.now(), Some(seg_name));
    let shards = w.txns[id].as_ref().expect("in-flight").shards.clone();
    {
        let t = w.txns[id].as_mut().expect("in-flight");
        t.pending = shards.len();
        t.join_at = sim.now();
    }
    for (i, &shard) in shards.iter().enumerate() {
        let hop = w.hop();
        let first_leg = i == 0;
        sim.schedule_in(hop, move |sim, w| {
            let svc = match phase {
                Phase::Exec => {
                    let mix = w.cfg.mix;
                    let ops = if first_leg {
                        (mix.reads_per_txn + 1) as u64
                    } else {
                        1
                    };
                    let mut svc =
                        SimDuration::from_micros(w.cfg.dn_service_per_op.micros() * ops);
                    if matches!(w.cfg.protocol, Protocol::GtmLite) {
                        svc += w.cfg.merge_service;
                    }
                    svc
                }
                Phase::Prepare => w.cfg.dn_prepare_service,
                Phase::Finish => w.cfg.dn_finish_service,
            };
            let grant = w.dns[shard].request(sim.now(), svc);
            let back = w.hop();
            sim.schedule_at(grant.end + back, move |sim, w| leg_joined(sim, w, id, phase));
        });
    }
}

/// One leg's reply reached the CN.
fn leg_joined(sim: &mut S, w: &mut World, id: usize, phase: Phase) {
    let done = {
        let t = w.txns[id].as_mut().expect("in-flight");
        t.pending -= 1;
        t.join_at = t.join_at.max(sim.now());
        t.pending == 0
    };
    if !done {
        return;
    }
    match phase {
        Phase::Exec => fan_out(sim, w, id, Phase::Prepare),
        Phase::Prepare => {
            // Decision at the GTM (1 interaction), then confirm to legs.
            w.advance_seg(id, sim.now(), Some("gtm.decide"));
            let hop = w.hop();
            sim.schedule_in(hop, move |sim, w| gtm_arrive(sim, w, GtmOp::Decide { id }));
        }
        Phase::Finish => txn_done(sim, w, id),
    }
}

/// The transaction's reply reached the client.
fn txn_done(sim: &mut S, w: &mut World, id: usize) {
    let now = sim.now();
    w.advance_seg(id, now, None);
    let t = w.release(id);
    w.latency.record((now - t.start).micros());
    if let Some(st) = &w.tel {
        if let Some(root) = t.span {
            st.tel.tracer.end(root);
        }
        let h = if t.single {
            &st.lat_single
        } else {
            &st.lat_distributed
        };
        h.record((now - t.start).micros());
    }
    if t.ok {
        w.committed += 1;
    } else {
        w.aborted += 1;
    }
    if now < w.horizon {
        let home = t.home_wh;
        sim.schedule_at(now, move |sim, w| client_start(sim, w, home));
    }
}

/// Run the Fig 3 experiment for one configuration.
pub fn run_sim(cfg: SimConfig) -> SimReport {
    let mut world = World::new(cfg.clone());
    let mut sim: S = Sim::new();
    if let Some(st) = &world.tel {
        sim.attach_telemetry(&st.tel.metrics);
    }
    let clients = cfg.clients_per_node * cfg.nodes;
    let total_whs = (cfg.warehouses_per_node * cfg.nodes) as u32;
    for c in 0..clients {
        let home_wh = (c as u32) % total_whs;
        // Stagger starts over the first 500µs to avoid a thundering herd.
        let start = SimInstant((c as u64 * 7) % 500);
        sim.schedule_at(start, move |sim, w| client_start(sim, w, home_wh));
    }
    let horizon = world.horizon;
    // Run past the horizon so in-flight transactions drain (they stop
    // rescheduling once now >= horizon); only horizon-time completions count
    // toward throughput because client_start stops issuing there.
    sim.run(&mut world);
    let _ = horizon;

    let horizon_s = cfg.horizon.as_secs_f64();
    let counters = world.cluster.counters();
    let batch_stats = world.batcher.stats();
    SimReport {
        committed: world.committed,
        aborted: world.aborted,
        throughput_tps: world.committed as f64 / horizon_s,
        p50_latency_us: world.latency.percentile(0.5),
        p99_latency_us: world.latency.percentile(0.99),
        gtm_interactions: counters.gtm_interactions,
        gtm_utilization: world.gtm.utilization(horizon),
        gtm_mean_wait_us: world.gtm.mean_wait_us(),
        merges: counters.merges,
        upgrade_waits: counters.upgrade_waits,
        downgrades: counters.downgrades,
        net_fault_stats: world
            .faults
            .as_ref()
            .map(FaultPlan::message_stats)
            .unwrap_or_default(),
        gtm_batches: batch_stats.batches,
        gtm_batched_requests: batch_stats.requests,
        gtm_mean_batch_size: batch_stats.mean_batch_size(),
        snapshot_cache_hits: world.cache_hits,
        snapshot_cache_misses: world.cache_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tps(nodes: usize, protocol: Protocol, mix: WorkloadMix) -> f64 {
        let mut cfg = SimConfig::new(nodes, protocol, mix);
        cfg.horizon = SimDuration::from_millis(100);
        run_sim(cfg).throughput_tps
    }

    #[test]
    fn gtm_lite_ss_scales_nearly_linearly() {
        let t1 = tps(1, Protocol::GtmLite, WorkloadMix::ss());
        let t4 = tps(4, Protocol::GtmLite, WorkloadMix::ss());
        assert!(
            t4 > 3.0 * t1,
            "expected near-linear scaling: 1 node {t1:.0}, 4 nodes {t4:.0}"
        );
    }

    #[test]
    fn baseline_saturates_at_the_gtm() {
        let t4 = tps(4, Protocol::Baseline, WorkloadMix::ss());
        let t8 = tps(8, Protocol::Baseline, WorkloadMix::ss());
        assert!(
            t8 < 1.3 * t4,
            "baseline should flatten: 4 nodes {t4:.0}, 8 nodes {t8:.0}"
        );
    }

    #[test]
    fn gtm_lite_beats_baseline_at_scale() {
        let lite = tps(8, Protocol::GtmLite, WorkloadMix::ss());
        let base = tps(8, Protocol::Baseline, WorkloadMix::ss());
        assert!(
            lite > 1.5 * base,
            "GTM-lite {lite:.0} vs baseline {base:.0} at 8 nodes"
        );
    }

    #[test]
    fn ss_beats_ms_under_gtm_lite() {
        let ss = tps(4, Protocol::GtmLite, WorkloadMix::ss());
        let ms = tps(4, Protocol::GtmLite, WorkloadMix::ms());
        assert!(ss > ms, "SS {ss:.0} should beat MS {ms:.0}");
    }

    #[test]
    fn lite_ss_produces_zero_gtm_traffic() {
        let cfg = {
            let mut c = SimConfig::new(2, Protocol::GtmLite, WorkloadMix::ss());
            c.horizon = SimDuration::from_millis(20);
            c
        };
        let r = run_sim(cfg);
        assert_eq!(r.gtm_interactions, 0);
        assert!(r.committed > 0);
    }

    #[test]
    fn baseline_gtm_is_busy_at_scale() {
        let mut cfg = SimConfig::new(8, Protocol::Baseline, WorkloadMix::ss());
        cfg.horizon = SimDuration::from_millis(50);
        let r = run_sim(cfg);
        assert!(
            r.gtm_utilization > 0.7,
            "baseline at 8 nodes should saturate the GTM: {:.2}",
            r.gtm_utilization
        );
    }

    #[test]
    fn reports_are_deterministic_per_seed() {
        let mk = || {
            let mut c = SimConfig::new(2, Protocol::GtmLite, WorkloadMix::ms());
            c.horizon = SimDuration::from_millis(20);
            c
        };
        let a = run_sim(mk());
        let b = run_sim(mk());
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.gtm_interactions, b.gtm_interactions);
    }

    #[test]
    fn network_faults_cost_latency_but_not_correctness() {
        let mut cfg = SimConfig::new(2, Protocol::GtmLite, WorkloadMix::ms());
        cfg.horizon = SimDuration::from_millis(20);
        let clean = run_sim(cfg.clone());
        cfg.faults = Some(FaultConfig {
            drop_p: 0.05,
            delay_p: 0.10,
            ..FaultConfig::chaotic()
        });
        let faulty = run_sim(cfg);
        let (msgs, drops, _, delays) = faulty.net_fault_stats;
        assert!(msgs > 0 && drops > 0 && delays > 0, "faults fired: {msgs} msgs");
        assert!(faulty.committed > 0);
        // Lossy hops slow the closed loop down, they don't break it.
        assert!(faulty.p99_latency_us >= clean.p99_latency_us);
        assert_eq!(clean.net_fault_stats, (0, 0, 0, 0));
    }

    #[test]
    fn faulty_runs_replay_deterministically() {
        let mk = || {
            let mut c = SimConfig::new(2, Protocol::GtmLite, WorkloadMix::ms());
            c.horizon = SimDuration::from_millis(10);
            c.faults = Some(FaultConfig::chaotic());
            c
        };
        let a = run_sim(mk());
        let b = run_sim(mk());
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.net_fault_stats, b.net_fault_stats);
        assert_eq!(a.p99_latency_us, b.p99_latency_us);
    }

    #[test]
    fn telemetry_decomposes_latency_into_contiguous_segments() {
        let tel = Telemetry::simulated();
        let mut cfg = SimConfig::new(2, Protocol::GtmLite, WorkloadMix::ms());
        cfg.horizon = SimDuration::from_millis(10);
        cfg.telemetry = Some(tel.clone());
        let r = run_sim(cfg);
        assert!(r.committed > 0);

        // Every span closed: no transaction left a dangling segment.
        assert_eq!(tel.tracer.open_count(), 0, "all spans must be closed");

        let spans = tel.tracer.finished();
        let report = hdm_telemetry::timeline::decompose(&spans, "txn");
        let single = report.paths.get("single").expect("single-shard path traced");
        let multi = report
            .paths
            .get("distributed")
            .expect("distributed path traced");
        // Contiguous segments decompose essentially all of the latency.
        assert!(
            single.coverage >= 0.95,
            "single coverage {:.3} < 0.95",
            single.coverage
        );
        assert!(
            multi.coverage >= 0.95,
            "distributed coverage {:.3} < 0.95",
            multi.coverage
        );
        // The distributed path shows the 2PC legs; the lite single path
        // never touches the GTM.
        let multi_segs: Vec<&str> = multi.segments.iter().map(|(n, _)| n.as_str()).collect();
        assert!(multi_segs.contains(&"leg.prepare"), "segs: {multi_segs:?}");
        assert!(multi_segs.contains(&"gtm.decide"), "segs: {multi_segs:?}");
        let single_segs: Vec<&str> = single.segments.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(single_segs, ["cn.parse", "dn.exec"]);

        // Histograms and event-loop counters populated.
        let snap = tel.metrics.snapshot();
        let lat = snap
            .histograms
            .get("txn.latency{path=single}")
            .expect("single latency histogram");
        assert!(lat.count > 0);
        assert!(snap.counter("sim.events.executed") > 0);
    }

    #[test]
    fn telemetry_runs_match_untelemetered_results() {
        let mk = |tel: Option<Telemetry>| {
            let mut c = SimConfig::new(2, Protocol::Baseline, WorkloadMix::ms());
            c.horizon = SimDuration::from_millis(10);
            c.telemetry = tel;
            c
        };
        let plain = run_sim(mk(None));
        let traced = run_sim(mk(Some(Telemetry::simulated())));
        // Observation must not perturb the simulation.
        assert_eq!(plain.committed, traced.committed);
        assert_eq!(plain.p99_latency_us, traced.p99_latency_us);
        assert_eq!(plain.gtm_interactions, traced.gtm_interactions);
    }

    #[test]
    fn batching_coalesces_and_lifts_a_saturated_gtm() {
        let mut cfg = SimConfig::new(8, Protocol::Baseline, WorkloadMix::ss());
        cfg.horizon = SimDuration::from_millis(50);
        let plain = run_sim(cfg.clone());
        cfg.gtm_batch_window = SimDuration::from_micros(10);
        let batched = run_sim(cfg);
        assert_eq!(plain.gtm_batches, 0, "zero window must never batch");
        assert_eq!(plain.snapshot_cache_hits + plain.snapshot_cache_misses, 0);
        assert!(batched.gtm_batches > 0);
        assert!(
            batched.gtm_mean_batch_size > 1.5,
            "a saturated GTM should coalesce: mean {:.2}",
            batched.gtm_mean_batch_size
        );
        // Baseline SS at 8 nodes is GTM-bound (see baseline_gtm_is_busy_at_
        // scale); amortizing the per-visit cost must move the ceiling.
        assert!(
            batched.throughput_tps > 1.2 * plain.throughput_tps,
            "batched {:.0} vs plain {:.0} tps",
            batched.throughput_tps,
            plain.throughput_tps
        );
    }

    #[test]
    fn batched_runs_are_deterministic() {
        let mk = || {
            let mut c = SimConfig::new(4, Protocol::Baseline, WorkloadMix::ms());
            c.horizon = SimDuration::from_millis(20);
            c.gtm_batch_window = SimDuration::from_micros(8);
            c.snapshot_cache = true;
            c
        };
        let a = run_sim(mk());
        let b = run_sim(mk());
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.gtm_batches, b.gtm_batches);
        assert_eq!(a.gtm_batched_requests, b.gtm_batched_requests);
        assert_eq!(a.snapshot_cache_hits, b.snapshot_cache_hits);
        assert_eq!(a.p99_latency_us, b.p99_latency_us);
    }

    #[test]
    fn snapshot_cache_skips_snapshot_interactions() {
        let mut cfg = SimConfig::new(4, Protocol::GtmLite, WorkloadMix::ms());
        cfg.horizon = SimDuration::from_millis(50);
        cfg.snapshot_cache = true;
        let r = run_sim(cfg);
        assert!(r.snapshot_cache_misses > 0, "first begin must miss");
        assert!(
            r.snapshot_cache_hits > 0,
            "concurrent multi-shard begins between commits should reuse the epoch"
        );
    }

    #[test]
    fn batching_and_cache_do_not_perturb_telemetry_runs() {
        let mk = |tel: Option<Telemetry>| {
            let mut c = SimConfig::new(2, Protocol::Baseline, WorkloadMix::ms());
            c.horizon = SimDuration::from_millis(10);
            c.gtm_batch_window = SimDuration::from_micros(8);
            c.snapshot_cache = true;
            c.telemetry = tel;
            c
        };
        let plain = run_sim(mk(None));
        let tel = Telemetry::simulated();
        let traced = run_sim(mk(Some(tel.clone())));
        assert!(plain.gtm_batches > 0);
        assert_eq!(plain.committed, traced.committed);
        assert_eq!(plain.gtm_batches, traced.gtm_batches);
        assert_eq!(plain.p99_latency_us, traced.p99_latency_us);
        // Every gtm.batch span closed, and the functional GTM's batch
        // series saw every coalesced service event.
        assert_eq!(tel.tracer.open_count(), 0);
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("gtm.batch.count"), traced.gtm_batches);
        let sizes = snap
            .histograms
            .get("gtm.batch.size")
            .expect("batch size histogram");
        assert_eq!(sizes.count, traced.gtm_batches);
    }

    #[test]
    fn latencies_are_plausible() {
        let mut cfg = SimConfig::new(2, Protocol::GtmLite, WorkloadMix::ss());
        cfg.horizon = SimDuration::from_millis(50);
        let r = run_sim(cfg);
        // One CN visit + one DN round trip ≈ 100-300µs unloaded; allow for
        // queueing but reject pathological serialization.
        assert!(
            r.p50_latency_us < 2_000,
            "p50 {}us suggests a modelling bug",
            r.p50_latency_us
        );
    }
}

//! The chaos harness: a bank-transfer workload under deterministic faults.
//!
//! Clients move money between accounts through the functional cluster while
//! a seeded [`FaultPlan`] injects message drops, duplicates and delays and
//! crashes data nodes and the GTM on a precomputed schedule. Every client
//! request is one "message": its fate is sampled at the delivery point, a
//! dropped request is retransmitted after capped-exponential backoff, and a
//! duplicated finish is actually delivered twice (exercising receiver-side
//! idempotence). The whole run executes on the discrete-event kernel, so a
//! seed replays bit-for-bit — [`ChaosReport`] is `PartialEq` precisely so
//! tests can assert two runs of one seed are identical.
//!
//! Safety is checked against a shadow ledger: a transfer is applied to the
//! ledger only when the client *confirms* the commit (all legs finished and
//! the GTM's final verdict is commit — the coordinator's linearization
//! point). At quiescence the cluster's visible state must equal the ledger
//! exactly: no committed write lost, no aborted write leaked, total balance
//! conserved, and every lock, undo entry and pending-commit marker released.

use crate::engine::{Cluster, ClusterConfig, ClusterCounters, Txn, TxnOptions};
use crate::retry::RetryPolicy;
use crate::shard::make_key;
use hdm_common::{Result, ShardId, SimDuration, SimInstant, SplitMix64, Xid};
use hdm_simnet::{CrashEvent, FaultConfig, FaultPlan, MsgFate, Sim};
use hdm_telemetry::{MetricsSnapshot, SpanId, Telemetry};
use std::collections::BTreeMap;

/// Fixed service gap between a transaction's protocol steps.
const STEP_GAP: SimDuration = SimDuration::from_micros(20);

/// The one construction site for fault plans and crash schedules, shared by
/// the bank-transfer harness ([`ChaosConfig`]) and the chaos-dist sweep
/// (`chaos_dist`) — so the crash-window constants (fault mix, horizon) are
/// never duplicated between harnesses.
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    pub seed: u64,
    pub faults: FaultConfig,
    /// Horizon the crash schedule is spread over.
    pub horizon: SimDuration,
}

impl FaultPlanBuilder {
    /// The standard chaotic window: every fault class on, 8ms horizon.
    pub fn standard(seed: u64) -> Self {
        Self {
            seed,
            faults: FaultConfig::chaotic(),
            horizon: SimDuration::from_millis(8),
        }
    }

    /// Same window, data-node crash/restart cycles only — the chaos-dist
    /// sweep's diet (its statement transport is reliable; node loss is the
    /// fault under test).
    pub fn dn_crashes_only(seed: u64) -> Self {
        Self {
            faults: FaultConfig::dn_crashes_only(),
            ..Self::standard(seed)
        }
    }

    /// The seeded fault plan. Attach telemetry *before* drawing schedules —
    /// injection counters fire at sampling points.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed, self.faults.clone())
    }

    /// The crash/restart schedule for `nodes` data nodes over the window.
    pub fn schedule(&self, plan: &mut FaultPlan, nodes: usize) -> Vec<CrashEvent> {
        plan.crash_schedule(nodes, self.horizon)
    }
}

/// Chaos run parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    pub seed: u64,
    pub shards: usize,
    /// Accounts per prefix group (one group per shard index).
    pub accounts_per_group: u32,
    pub initial_balance: i64,
    pub clients: usize,
    pub transfers_per_client: usize,
    /// Fraction of transfers that cross prefix groups (multi-shard path).
    pub cross_fraction: f64,
    pub faults: FaultConfig,
    /// Horizon the crash schedule is spread over.
    pub fault_horizon: SimDuration,
    /// Enable the CN-side snapshot-epoch cache on the functional cluster,
    /// so the sweep exercises cached-begin visibility under crashes (the
    /// cache is invalidated whenever the GTM dies or restarts).
    pub snapshot_cache: bool,
    /// Attach a virtual-clock [`Telemetry`] bundle: one `transfer` root span
    /// per transfer (fields `cid`, `kind`, retry/abort events) plus the
    /// engine, GTM, fault-plan and retry-policy counters. The attach happens
    /// *after* the fault-free seeding preamble so metrics cover only the
    /// chaotic phase. `None` = zero-overhead run.
    pub telemetry: Option<Telemetry>,
}

impl ChaosConfig {
    /// The standard chaotic run: every fault class enabled, crash window
    /// from the shared [`FaultPlanBuilder`].
    pub fn standard(seed: u64) -> Self {
        let plan = FaultPlanBuilder::standard(seed);
        Self {
            seed,
            shards: 4,
            accounts_per_group: 8,
            initial_balance: 1_000,
            clients: 6,
            transfers_per_client: 30,
            cross_fraction: 0.6,
            faults: plan.faults,
            fault_horizon: plan.horizon,
            snapshot_cache: false,
            telemetry: None,
        }
    }

    /// The fault-plan builder this configuration implies (tests may have
    /// overridden `faults`/`fault_horizon` after construction).
    pub fn fault_plan(&self) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed: self.seed,
            faults: self.faults.clone(),
            horizon: self.fault_horizon,
        }
    }

    /// Same workload, no faults — the control run.
    pub fn fault_free(seed: u64) -> Self {
        Self {
            faults: FaultConfig::none(),
            ..Self::standard(seed)
        }
    }

    fn total_accounts(&self) -> i64 {
        self.shards as i64 * self.accounts_per_group as i64
    }
}

/// Everything a chaos run observed. `PartialEq` so replay tests can assert
/// bit-identical traces (event counts, protocol counters, fault stats).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    pub committed: u64,
    /// Transaction attempts that ended aborted and were retried.
    pub txn_aborts: u64,
    /// Clients that exhausted their retry budget (livelock detector; 0 in
    /// any healthy run).
    pub gave_up: u64,
    /// Events the simulator executed — the replay-determinism fingerprint.
    pub events: u64,
    pub counters: ClusterCounters,
    /// (messages, dropped, duplicated, delayed) at the fault plan.
    pub message_stats: (u64, u64, u64, u64),
    pub final_total: i64,
    /// Safety violations detected at quiescence (empty in a correct run).
    pub violations: Vec<String>,
    /// Point-in-time metrics at quiescence (telemetry runs only). Part of
    /// the `PartialEq` fingerprint: same seed ⇒ identical counters.
    pub metrics: Option<MetricsSnapshot>,
}

/// Where a client currently is in its transaction's protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Begin,
    Exec,
    CommitSingle,
    Prepare,
    Decide,
    Finish,
    Confirm,
}

/// The transfer a client is currently pushing through.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    from: i64,
    to: i64,
    amount: i64,
    /// `Some(prefix)` when both accounts share a prefix group (single-shard
    /// fast path); `None` for cross-group transfers.
    single_prefix: Option<u32>,
}

struct ClientState {
    remaining: usize,
    attempt: u32,
    policy: RetryPolicy,
    rng: SplitMix64,
    transfer: Transfer,
    txn: Option<Txn>,
    legs: Vec<(ShardId, Xid)>,
    next_leg: usize,
    /// Open `transfer` root span (telemetry runs only).
    span: Option<SpanId>,
}

struct World {
    cfg: ChaosConfig,
    cluster: Cluster,
    plan: FaultPlan,
    clients: Vec<ClientState>,
    /// Confirmed-commit shadow state: key -> balance.
    ledger: BTreeMap<i64, i64>,
    committed: u64,
    txn_aborts: u64,
    gave_up: u64,
    violations: Vec<String>,
    tel: Option<Telemetry>,
}

type S = Sim<World>;

fn exec_transfer(cluster: &mut Cluster, txn: &mut Txn, t: Transfer) -> Result<()> {
    let from_val = cluster.get(txn, t.from)?.unwrap_or(0);
    let to_val = cluster.get(txn, t.to)?.unwrap_or(0);
    cluster.put(txn, t.from, from_val - t.amount)?;
    cluster.put(txn, t.to, to_val + t.amount)?;
    Ok(())
}

impl World {
    fn pick_transfer(&mut self, cid: usize) -> Transfer {
        let groups = self.cfg.shards as u64;
        let per = self.cfg.accounts_per_group as u64;
        let cross_fraction = self.cfg.cross_fraction;
        let rng = &mut self.clients[cid].rng;
        let cross = rng.chance(cross_fraction);
        let p1 = rng.next_below(groups) as u32;
        let p2 = if cross && groups > 1 {
            let mut p = rng.next_below(groups) as u32;
            if p == p1 {
                p = (p + 1) % groups as u32;
            }
            p
        } else {
            p1
        };
        let from = make_key(p1, rng.next_below(per) as u32);
        let to = loop {
            let k = make_key(p2, rng.next_below(per) as u32);
            if k != from {
                break k;
            }
        };
        Transfer {
            from,
            to,
            amount: 1 + rng.next_below(10) as i64,
            single_prefix: (p1 == p2).then_some(p1),
        }
    }

    /// Note `name` on client `cid`'s open transfer span. No-op without
    /// telemetry.
    fn trace_event(&self, cid: usize, now: SimInstant, name: &str, fields: &[(&str, &str)]) {
        if let (Some(tel), Some(span)) = (&self.tel, self.clients[cid].span) {
            tel.set_time_us(now.micros());
            tel.tracer.event(span, name, fields);
        }
    }
}

/// A client picks its next transfer and sends the first request.
fn txn_start(sim: &mut S, w: &mut World, cid: usize) {
    if w.clients[cid].remaining == 0 {
        return;
    }
    let t = w.pick_transfer(cid);
    let span = w.tel.as_ref().map(|tel| {
        tel.set_time_us(sim.now().micros());
        let span = tel.tracer.begin("transfer");
        tel.tracer.field(span, "cid", cid);
        tel.tracer.field(
            span,
            "kind",
            if t.single_prefix.is_some() { "single" } else { "cross" },
        );
        span
    });
    let c = &mut w.clients[cid];
    c.transfer = t;
    c.attempt = 0;
    c.txn = None;
    c.legs.clear();
    c.next_leg = 0;
    c.span = span;
    sim.schedule_in(STEP_GAP, move |sim, w| deliver(sim, w, cid, Step::Begin));
}

/// A request hits the wire: sample its fate, then (maybe) execute it.
fn deliver(sim: &mut S, w: &mut World, cid: usize, step: Step) {
    match w.plan.message_fate() {
        MsgFate::Drop => {
            // The request is lost; the client times out and retransmits.
            backoff(sim, w, cid, step);
        }
        MsgFate::Delay(extra) => {
            sim.schedule_in(extra, move |sim, w| execute(sim, w, cid, step, false));
        }
        MsgFate::Duplicate => {
            // Transport-level dedup protects the non-idempotent steps (CN
            // session sequence numbers); the finish confirmation really is
            // delivered twice to exercise receiver idempotence.
            let dup = step == Step::Finish;
            execute(sim, w, cid, step, dup);
        }
        MsgFate::Deliver => execute(sim, w, cid, step, false),
    }
}

/// Schedule the next protocol step after the per-step service gap.
fn next(sim: &mut S, cid: usize, step: Step) {
    sim.schedule_in(STEP_GAP, move |sim, w| deliver(sim, w, cid, step));
}

/// Back off (charging a retry) and retransmit `step`.
fn backoff(sim: &mut S, w: &mut World, cid: usize, step: Step) {
    let c = &mut w.clients[cid];
    if !c.policy.allows(c.attempt) {
        // Retry budget exhausted: clean up and move on. This is a liveness
        // failure, surfaced by the report, never a safety one.
        if let Some(txn) = w.clients[cid].txn.take() {
            let _ = w.cluster.abort(txn);
        }
        w.gave_up += 1;
        w.trace_event(cid, sim.now(), "gave_up", &[]);
        finish_transfer(sim, w, cid);
        return;
    }
    let delay = c.policy.backoff(c.attempt);
    c.attempt += 1;
    w.cluster.record_retry();
    let attempt = (w.clients[cid].attempt - 1).to_string();
    w.trace_event(cid, sim.now(), "backoff", &[("attempt", &attempt)]);
    sim.schedule_in(delay, move |sim, w| deliver(sim, w, cid, step));
}

/// Abort the in-flight attempt (if any) and retry the transfer from Begin.
fn abort_and_retry(sim: &mut S, w: &mut World, cid: usize) {
    if let Some(txn) = w.clients[cid].txn.take() {
        let _ = w.cluster.abort(txn);
    }
    w.txn_aborts += 1;
    w.clients[cid].legs.clear();
    w.clients[cid].next_leg = 0;
    w.trace_event(cid, sim.now(), "abort_retry", &[]);
    backoff(sim, w, cid, Step::Begin);
}

/// The transfer confirmed: apply it to the shadow ledger.
fn confirm_commit(sim: &mut S, w: &mut World, cid: usize) {
    let t = w.clients[cid].transfer;
    *w.ledger.entry(t.from).or_insert(0) -= t.amount;
    *w.ledger.entry(t.to).or_insert(0) += t.amount;
    w.committed += 1;
    finish_transfer(sim, w, cid);
}

fn finish_transfer(sim: &mut S, w: &mut World, cid: usize) {
    if let (Some(tel), Some(span)) = (&w.tel, w.clients[cid].span.take()) {
        tel.set_time_us(sim.now().micros());
        tel.tracer.end(span);
    }
    let c = &mut w.clients[cid];
    c.remaining -= 1;
    c.txn = None;
    if c.remaining > 0 {
        sim.schedule_in(STEP_GAP, move |sim, w| txn_start(sim, w, cid));
    }
}

fn is_unavailable(e: &hdm_common::HdmError) -> bool {
    e.class() == "unavailable"
}

/// Execute one delivered request against the cluster.
fn execute(sim: &mut S, w: &mut World, cid: usize, step: Step, dup: bool) {
    match step {
        Step::Begin => {
            let res = match w.clients[cid].transfer.single_prefix {
                Some(p) => w.cluster.begin(TxnOptions::single(p)),
                None => w.cluster.begin(TxnOptions::multi()),
            };
            match res {
                Ok(txn) => {
                    w.clients[cid].txn = Some(txn);
                    next(sim, cid, Step::Exec);
                }
                // Home node or GTM down: wait out the outage.
                Err(_) => backoff(sim, w, cid, Step::Begin),
            }
        }
        Step::Exec => {
            let t = w.clients[cid].transfer;
            let Some(mut txn) = w.clients[cid].txn.take() else {
                return; // stale event after a give-up
            };
            match exec_transfer(&mut w.cluster, &mut txn, t) {
                Ok(()) => {
                    let following = if txn.is_single_shard() {
                        Step::CommitSingle
                    } else {
                        Step::Prepare
                    };
                    w.clients[cid].txn = Some(txn);
                    next(sim, cid, following);
                }
                // Conflict or mid-statement outage: roll everything back and
                // start over.
                Err(_) => {
                    w.clients[cid].txn = Some(txn);
                    abort_and_retry(sim, w, cid);
                }
            }
        }
        Step::CommitSingle => {
            let Some(txn) = w.clients[cid].txn.take() else {
                return;
            };
            match w.cluster.commit(txn) {
                Ok(()) => confirm_commit(sim, w, cid),
                // The home node crashed since exec: the in-progress state
                // died with it (writes already undone), so just retry.
                Err(_) => {
                    w.txn_aborts += 1;
                    backoff(sim, w, cid, Step::Begin);
                }
            }
        }
        Step::Prepare => {
            let Some(txn) = w.clients[cid].txn.take() else {
                return;
            };
            let res = w.cluster.multi_prepare(&txn);
            w.clients[cid].txn = Some(txn);
            match res {
                Ok(()) => next(sim, cid, Step::Decide),
                // A no vote (conflict or crashed participant) decides abort.
                Err(_) => abort_and_retry(sim, w, cid),
            }
        }
        Step::Decide => {
            let Some(txn) = w.clients[cid].txn.take() else {
                return;
            };
            let res = w.cluster.multi_commit_at_gtm(&txn);
            let legs = txn.legs();
            w.clients[cid].txn = Some(txn);
            match res {
                Ok(()) => {
                    w.clients[cid].legs = legs;
                    w.clients[cid].next_leg = 0;
                    next(sim, cid, Step::Finish);
                }
                Err(e) if is_unavailable(&e) => {
                    // GTM outage mid-2PC: locks stay held, keep asking.
                    backoff(sim, w, cid, Step::Decide);
                }
                // The gxid was presumed-aborted by recovery before we could
                // commit it — the 2PC race the GTM's forced-abort rule
                // closes. Abort our side and retry.
                Err(_) => abort_and_retry(sim, w, cid),
            }
        }
        Step::Finish => {
            let i = w.clients[cid].next_leg;
            let Some(&(shard, xid)) = w.clients[cid].legs.get(i) else {
                next(sim, cid, Step::Confirm);
                return;
            };
            match w.cluster.finish_leg(shard, xid) {
                Ok(()) => {
                    if dup {
                        // Second delivery of the same confirmation must be a
                        // clean no-op.
                        if let Err(e) = w.cluster.finish_leg(shard, xid) {
                            w.violations
                                .push(format!("duplicate finish on {shard} errored: {e}"));
                        }
                    }
                    w.clients[cid].next_leg += 1;
                    if w.clients[cid].next_leg == w.clients[cid].legs.len() {
                        next(sim, cid, Step::Confirm);
                    } else {
                        next(sim, cid, Step::Finish);
                    }
                }
                Err(e) if is_unavailable(&e) => backoff(sim, w, cid, Step::Finish),
                Err(e) => {
                    w.violations
                        .push(format!("finish_leg({shard}, {xid}) failed: {e}"));
                    abort_and_retry(sim, w, cid);
                }
            }
        }
        Step::Confirm => {
            let gxid = w.clients[cid]
                .txn
                .as_ref()
                .and_then(Txn::gxid)
                .expect("multi txn has a gxid");
            match w.cluster.gtm_commit_status(gxid) {
                Ok(true) => {
                    w.clients[cid].txn = None;
                    confirm_commit(sim, w, cid);
                }
                // Recovery presumed the abort before any leg committed; the
                // client never confirmed, so retrying is safe.
                Ok(false) => abort_and_retry(sim, w, cid),
                Err(_) => backoff(sim, w, cid, Step::Confirm),
            }
        }
    }
}

/// Run one chaos configuration to quiescence and audit the final state.
pub fn run_chaos(cfg: ChaosConfig) -> ChaosReport {
    let mut ccfg = ClusterConfig::gtm_lite(cfg.shards);
    ccfg.snapshot_cache = cfg.snapshot_cache;
    let mut cluster = Cluster::new(ccfg);
    let mut ledger = BTreeMap::new();

    // Seed every account with its initial balance (fault-free preamble).
    for p in 0..cfg.shards as u32 {
        for a in 0..cfg.accounts_per_group {
            let key = make_key(p, a);
            cluster
                .bump(Some(p), key, cfg.initial_balance)
                .expect("seeding cannot fail on a healthy cluster");
            ledger.insert(key, cfg.initial_balance);
        }
    }

    // Telemetry attaches *after* the seeding preamble: metrics cover only
    // the chaotic phase, never the deterministic account setup.
    if let Some(tel) = &cfg.telemetry {
        cluster.attach_telemetry(tel);
    }

    let builder = cfg.fault_plan();
    let mut plan = builder.plan();
    if let Some(tel) = &cfg.telemetry {
        plan.attach_telemetry(&tel.metrics);
    }
    let schedule = builder.schedule(&mut plan, cfg.shards);

    let clients = (0..cfg.clients)
        .map(|cid| {
            let mut policy = RetryPolicy::chaos(cfg.seed ^ (cid as u64).wrapping_mul(0x9E37_79B9));
            if let Some(tel) = &cfg.telemetry {
                policy.attach_telemetry(&tel.metrics);
            }
            ClientState {
                remaining: cfg.transfers_per_client,
                attempt: 0,
                policy,
                rng: SplitMix64::new(cfg.seed ^ (0xC11E_0000 + cid as u64)),
                transfer: Transfer {
                    from: 0,
                    to: 0,
                    amount: 0,
                    single_prefix: None,
                },
                txn: None,
                legs: Vec::new(),
                next_leg: 0,
                span: None,
            }
        })
        .collect();

    let mut world = World {
        cluster,
        plan,
        clients,
        ledger,
        committed: 0,
        txn_aborts: 0,
        gave_up: 0,
        violations: Vec::new(),
        tel: cfg.telemetry.clone(),
        cfg: cfg.clone(),
    };
    let mut sim: S = Sim::new();
    if let Some(tel) = &world.tel {
        sim.attach_telemetry(&tel.metrics);
    }

    for ev in schedule {
        use hdm_simnet::CrashTarget;
        match ev.target {
            CrashTarget::DataNode(n) => {
                let shard = ShardId::new(n as u64);
                sim.schedule_at(ev.at, move |_, w| w.cluster.crash_node(shard));
                sim.schedule_at(ev.restart_at, move |_, w| w.cluster.restart_node(shard));
            }
            CrashTarget::Gtm => {
                sim.schedule_at(ev.at, |_, w| w.cluster.crash_gtm());
                sim.schedule_at(ev.restart_at, |_, w| w.cluster.restart_gtm());
            }
        }
    }
    for cid in 0..cfg.clients {
        sim.schedule_at(SimInstant(1 + 13 * cid as u64), move |sim, w| {
            txn_start(sim, w, cid)
        });
    }

    sim.run(&mut world);
    audit(&mut world);

    ChaosReport {
        committed: world.committed,
        txn_aborts: world.txn_aborts,
        gave_up: world.gave_up,
        events: sim.executed(),
        counters: world.cluster.counters(),
        message_stats: world.plan.message_stats(),
        final_total: world
            .cluster
            .snapshot_all()
            .iter()
            .map(|(_, v)| *v)
            .sum(),
        violations: world.violations,
        metrics: world.tel.as_ref().map(|tel| tel.metrics.snapshot()),
    }
}

/// Post-quiescence safety audit; failures land in `world.violations`.
fn audit(w: &mut World) {
    let cfg = &w.cfg;
    if !w.cluster.is_gtm_up() {
        w.violations.push("GTM still down at quiescence".into());
    }
    if w.cluster.gtm().active_count() != 0 {
        w.violations.push(format!(
            "{} gxids leaked in the GTM active list",
            w.cluster.gtm().active_count()
        ));
    }
    for s in 0..cfg.shards as u64 {
        let shard = ShardId::new(s);
        if !w.cluster.is_node_up(shard) {
            w.violations.push(format!("{shard} still down at quiescence"));
        }
        let node = w.cluster.node(shard);
        if node.mgr().active_count() != 0 {
            w.violations.push(format!(
                "{shard}: {} local txns leaked active (locks held)",
                node.mgr().active_count()
            ));
        }
        if !node.in_doubt_legs().is_empty() {
            w.violations
                .push(format!("{shard}: unresolved in-doubt legs remain"));
        }
        if node.undo_len() != 0 {
            w.violations
                .push(format!("{shard}: {} undo entries leaked", node.undo_len()));
        }
        if node.pending_commit_len() != 0 {
            w.violations.push(format!(
                "{shard}: {} pending-commit markers leaked",
                node.pending_commit_len()
            ));
        }
    }
    // The visible state must be exactly the confirmed ledger: any divergence
    // is a lost committed write or a leaked aborted write.
    let visible = w.cluster.snapshot_all();
    let expect: Vec<(i64, i64)> = w.ledger.iter().map(|(&k, &v)| (k, v)).collect();
    if visible != expect {
        let diffs: Vec<String> = expect
            .iter()
            .zip(visible.iter())
            .filter(|(e, v)| e != v)
            .take(5)
            .map(|(e, v)| format!("key {}: expected {}, visible {}", e.0, e.1, v.1))
            .collect();
        w.violations.push(format!(
            "visible state diverges from confirmed ledger ({} vs {} rows): {}",
            visible.len(),
            expect.len(),
            diffs.join("; ")
        ));
    }
    let total: i64 = visible.iter().map(|(_, v)| *v).sum();
    let expected_total = cfg.total_accounts() * cfg.initial_balance;
    if total != expected_total {
        w.violations.push(format!(
            "total balance not conserved: {total} != {expected_total}"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_commits_everything() {
        let r = run_chaos(ChaosConfig::fault_free(1));
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
        assert_eq!(r.gave_up, 0);
        // Conflicts may force retries, but every transfer eventually lands.
        assert_eq!(r.committed, 6 * 30);
        assert_eq!(r.message_stats.1, 0, "no drops without faults");
        assert_eq!(r.counters.dn_crashes, 0);
    }

    #[test]
    fn chaotic_run_stays_safe() {
        let r = run_chaos(ChaosConfig::standard(0xC0FFEE));
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
        assert_eq!(r.gave_up, 0, "no client exhausted its retry budget");
        assert!(r.committed > 0);
    }

    #[test]
    fn chaotic_replay_is_bit_identical() {
        let a = run_chaos(ChaosConfig::standard(7));
        let b = run_chaos(ChaosConfig::standard(7));
        assert_eq!(a, b);
    }

    #[test]
    fn telemetry_counters_mirror_the_report() {
        let tel = Telemetry::simulated();
        let mut cfg = ChaosConfig::standard(0xBEEF);
        cfg.telemetry = Some(tel.clone());
        let r = run_chaos(cfg);
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);

        // Every transfer span was closed.
        assert_eq!(tel.tracer.open_count(), 0);
        let spans = tel.tracer.finished();
        let transfers = spans.iter().filter(|s| s.name == "transfer").count() as u64;
        assert_eq!(transfers, r.committed + r.gave_up);

        // Counters agree with the report's own bookkeeping.
        let snap = r.metrics.as_ref().expect("snapshot attached");
        let (_, drops, dups, delays) = r.message_stats;
        assert_eq!(snap.counter("fault.msg{fate=drop}"), drops);
        assert_eq!(snap.counter("fault.msg{fate=duplicate}"), dups);
        assert_eq!(snap.counter("fault.msg{fate=delay}"), delays);
        assert_eq!(snap.counter("cn.retry"), r.counters.retries);
        assert!(snap.counter("cn.backoff") >= r.counters.retries);
        assert!(snap.counter_total("txn.begin") >= r.committed);
        assert!(snap.counter("sim.events.executed") > 0);
    }

    #[test]
    fn telemetry_replay_is_bit_identical() {
        let run = || {
            let mut cfg = ChaosConfig::standard(77);
            cfg.telemetry = Some(Telemetry::simulated());
            run_chaos(cfg)
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics, b.metrics, "same seed must yield identical metrics");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_take_different_paths() {
        let a = run_chaos(ChaosConfig::standard(100));
        let b = run_chaos(ChaosConfig::standard(101));
        // Both safe, but the traces differ.
        assert!(a.violations.is_empty() && b.violations.is_empty());
        assert_ne!(
            (a.events, a.message_stats),
            (b.events, b.message_stats),
            "two seeds produced identical traces"
        );
    }
}

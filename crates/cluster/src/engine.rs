//! The functional (untimed) sharded OLTP engine.
//!
//! Implements both transaction-management protocols of §II-A over the same
//! storage nodes:
//!
//! * **Baseline** — "applications interact with a sharded OLTP system by
//!   sending queries … A global transaction manager (GTM) generates
//!   ascending global transaction ID (XID) for transactions and dispatches
//!   snapshots". *Every* transaction — single- or multi-shard — takes a
//!   global XID and a global snapshot, and reports its commit to the GTM.
//!   Tuples are stamped with global XIDs; DNs judge visibility against the
//!   GTM's commit log.
//! * **GTM-lite** — single-shard transactions never talk to the GTM: "CN
//!   sends transaction to DN, then DN uses local XID and local snapshot to
//!   execute and commit transaction locally." Multi-shard transactions take
//!   a GXID + global snapshot, obtain a local XID + local snapshot per DN,
//!   and judge visibility through the merged snapshot of Algorithm 1,
//!   committing via 2PC (GTM first, then DNs — the Anomaly-1 ordering).
//!
//! The engine exposes both the one-call [`Cluster::commit`] and the split
//! multi-shard commit steps ([`Cluster::multi_prepare`] /
//! [`Cluster::multi_commit_at_gtm`] / [`Cluster::multi_finish`]) so tests
//! can stand inside the commit window and reproduce the paper's anomalies.
//! [`MergePolicy::Naive`] disables UPGRADE/DOWNGRADE to *exhibit* the
//! anomalies; [`MergePolicy::Full`] is Algorithm 1.

use crate::node::DataNode;
use crate::shard::ShardMap;
use hdm_common::{HdmError, Result, ShardId, Xid};
use hdm_txn::{
    merge_with_manager, Decision, Gtm, Snapshot, SnapshotVisibility, TwoPcCoordinator,
};
use std::collections::{BTreeMap, BTreeSet};

/// Which transaction-management protocol the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Centralized: every transaction interacts with the GTM.
    Baseline,
    /// GTM-lite: only multi-shard transactions interact with the GTM.
    GtmLite,
}

/// How multi-shard readers combine global and local snapshots (GTM-lite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Algorithm 1 with UPGRADE and DOWNGRADE.
    Full,
    /// Union of active sets only (lines 1–4). Exhibits Anomalies 1 and 2;
    /// exists for tests and the merge-overhead ablation.
    Naive,
}

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub shards: usize,
    pub protocol: Protocol,
    pub merge_policy: MergePolicy,
    /// Prune each DN's LCO to this many entries after multi-shard commits
    /// (0 = never prune; scripted tests use 0).
    pub lco_prune_horizon: usize,
}

impl ClusterConfig {
    pub fn baseline(shards: usize) -> Self {
        Self {
            shards,
            protocol: Protocol::Baseline,
            merge_policy: MergePolicy::Full,
            lco_prune_horizon: 0,
        }
    }

    pub fn gtm_lite(shards: usize) -> Self {
        Self {
            shards,
            protocol: Protocol::GtmLite,
            merge_policy: MergePolicy::Full,
            lco_prune_horizon: 0,
        }
    }
}

/// Observable protocol activity, reported by Fig 3's harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterCounters {
    /// Messages that had to visit the GTM (the baseline's bottleneck).
    pub gtm_interactions: u64,
    pub single_shard_commits: u64,
    pub multi_shard_commits: u64,
    pub aborts: u64,
    /// Snapshot merges performed (multi-shard statements under GTM-lite).
    pub merges: u64,
    /// UPGRADE wait-for-commit events (Anomaly-1 repairs).
    pub upgrade_waits: u64,
    /// Local commits DOWNGRADEd in some reader's merged view.
    pub downgrades: u64,
}

/// One leg of a multi-shard GTM-lite transaction on a particular DN.
#[derive(Debug, Clone)]
struct Leg {
    xid: Xid,
    merged: Snapshot,
}

#[derive(Debug, Clone)]
enum TxnKind {
    Baseline {
        gxid: Xid,
        gsnap: Snapshot,
        touched: BTreeSet<u64>,
    },
    LiteSingle {
        shard: ShardId,
        xid: Xid,
        snap: Snapshot,
    },
    LiteMulti {
        gxid: Xid,
        gsnap: Snapshot,
        legs: BTreeMap<u64, Leg>,
    },
}

/// An open transaction handle.
#[derive(Debug, Clone)]
pub struct Txn {
    kind: TxnKind,
}

impl Txn {
    /// The global XID, if this transaction has one.
    pub fn gxid(&self) -> Option<Xid> {
        match &self.kind {
            TxnKind::Baseline { gxid, .. } | TxnKind::LiteMulti { gxid, .. } => Some(*gxid),
            TxnKind::LiteSingle { .. } => None,
        }
    }

    /// Is this a single-shard fast-path transaction?
    pub fn is_single_shard(&self) -> bool {
        matches!(self.kind, TxnKind::LiteSingle { .. })
    }
}

/// The sharded OLTP cluster: one GTM, N data nodes.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    map: ShardMap,
    gtm: Gtm,
    nodes: Vec<DataNode>,
    counters: ClusterCounters,
}

impl Cluster {
    pub fn new(cfg: ClusterConfig) -> Self {
        let map = ShardMap::new(cfg.shards);
        let nodes = map.all().map(DataNode::new).collect();
        Self {
            cfg,
            map,
            gtm: Gtm::new(),
            nodes,
            counters: ClusterCounters::default(),
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    pub fn counters(&self) -> ClusterCounters {
        self.counters
    }

    pub fn gtm(&self) -> &Gtm {
        &self.gtm
    }

    pub fn node(&self, shard: ShardId) -> &DataNode {
        &self.nodes[shard.raw() as usize]
    }

    /// Begin a transaction the application knows is single-sharded (keys
    /// share the sharding prefix `prefix`).
    pub fn begin_single(&mut self, prefix: u32) -> Txn {
        let shard = self.map.shard_of_prefix(prefix);
        match self.cfg.protocol {
            Protocol::Baseline => self.begin_baseline(),
            Protocol::GtmLite => {
                let node = &mut self.nodes[shard.raw() as usize];
                let xid = node.mgr_mut().begin_local();
                let snap = node.local_snapshot();
                Txn {
                    kind: TxnKind::LiteSingle { shard, xid, snap },
                }
            }
        }
    }

    /// Begin a transaction that may touch several shards.
    pub fn begin_multi(&mut self) -> Txn {
        match self.cfg.protocol {
            Protocol::Baseline => self.begin_baseline(),
            Protocol::GtmLite => {
                let gxid = self.gtm.begin();
                let gsnap = self.gtm.snapshot();
                self.counters.gtm_interactions += 2;
                Txn {
                    kind: TxnKind::LiteMulti {
                        gxid,
                        gsnap,
                        legs: BTreeMap::new(),
                    },
                }
            }
        }
    }

    fn begin_baseline(&mut self) -> Txn {
        let gxid = self.gtm.begin();
        let gsnap = self.gtm.snapshot();
        self.counters.gtm_interactions += 2;
        Txn {
            kind: TxnKind::Baseline {
                gxid,
                gsnap,
                touched: BTreeSet::new(),
            },
        }
    }

    /// Read `key` in `txn`.
    pub fn get(&mut self, txn: &mut Txn, key: i64) -> Result<Option<i64>> {
        let shard = self.map.shard_of_key(key);
        match &mut txn.kind {
            TxnKind::Baseline {
                gxid,
                gsnap,
                touched,
            } => {
                touched.insert(shard.raw());
                let judge = SnapshotVisibility::new(gsnap, self.gtm.clog(), Some(*gxid));
                self.nodes[shard.raw() as usize].get(&judge, key)
            }
            TxnKind::LiteSingle {
                shard: own_shard,
                xid,
                snap,
            } => {
                if shard != *own_shard {
                    return Err(HdmError::TxnState(format!(
                        "single-shard transaction on {own_shard} touched key {key} on {shard}"
                    )));
                }
                self.nodes[shard.raw() as usize].get_local(snap, Some(*xid), key)
            }
            TxnKind::LiteMulti { .. } => {
                self.ensure_leg(txn, shard)?;
                let TxnKind::LiteMulti { legs, .. } = &txn.kind else {
                    unreachable!()
                };
                let leg = &legs[&shard.raw()];
                self.nodes[shard.raw() as usize].get_local(&leg.merged, Some(leg.xid), key)
            }
        }
    }

    /// All visible values for `key` in a GTM-lite multi-shard `txn` — the
    /// anomaly-observable read: a consistent view returns at most one value,
    /// the naive merge can return several (paper Fig 2's tuple table).
    pub fn get_versions(&mut self, txn: &mut Txn, key: i64) -> Result<Vec<i64>> {
        let shard = self.map.shard_of_key(key);
        match &txn.kind {
            TxnKind::LiteMulti { .. } => {
                self.ensure_leg(txn, shard)?;
                let TxnKind::LiteMulti { legs, .. } = &txn.kind else {
                    unreachable!()
                };
                let leg = &legs[&shard.raw()];
                self.nodes[shard.raw() as usize].get_versions_local(
                    &leg.merged,
                    Some(leg.xid),
                    key,
                )
            }
            _ => self.get(txn, key).map(|v| v.into_iter().collect()),
        }
    }

    /// Upsert `key = val` in `txn`.
    pub fn put(&mut self, txn: &mut Txn, key: i64, val: i64) -> Result<()> {
        let shard = self.map.shard_of_key(key);
        match &mut txn.kind {
            TxnKind::Baseline {
                gxid,
                gsnap,
                touched,
            } => {
                touched.insert(shard.raw());
                let judge = SnapshotVisibility::new(gsnap, self.gtm.clog(), Some(*gxid));
                let gxid = *gxid;
                self.nodes[shard.raw() as usize].put(&judge, gxid, key, val)
            }
            TxnKind::LiteSingle {
                shard: own_shard,
                xid,
                snap,
            } => {
                if shard != *own_shard {
                    return Err(HdmError::TxnState(format!(
                        "single-shard transaction on {own_shard} touched key {key} on {shard}"
                    )));
                }
                let (xid, snap) = (*xid, snap.clone());
                self.nodes[shard.raw() as usize].put_local(&snap, Some(xid), xid, key, val)
            }
            TxnKind::LiteMulti { .. } => {
                self.ensure_leg(txn, shard)?;
                let TxnKind::LiteMulti { legs, .. } = &txn.kind else {
                    unreachable!()
                };
                let leg = legs[&shard.raw()].clone();
                self.nodes[shard.raw() as usize].put_local(
                    &leg.merged,
                    Some(leg.xid),
                    leg.xid,
                    key,
                    val,
                )
            }
        }
    }

    /// First touch of `shard` by a multi-shard GTM-lite transaction: begin
    /// the local leg, take the local snapshot, and run Algorithm 1 (or the
    /// naive union under [`MergePolicy::Naive`]). UPGRADE waits are resolved
    /// by finishing the pending commits and re-merging.
    fn ensure_leg(&mut self, txn: &mut Txn, shard: ShardId) -> Result<()> {
        let TxnKind::LiteMulti { gxid, gsnap, legs } = &mut txn.kind else {
            return Err(HdmError::TxnState("ensure_leg on non-multi txn".into()));
        };
        if legs.contains_key(&shard.raw()) {
            return Ok(());
        }
        let node = &mut self.nodes[shard.raw() as usize];
        let xid = node.mgr_mut().begin_global(*gxid);

        let merged = match self.cfg.merge_policy {
            MergePolicy::Naive => {
                // Lines 1–4 only: union the active sets, skip both repairs.
                let local = node.local_snapshot();
                let mut active = local.active.clone();
                for g in &gsnap.active {
                    if let Some(l) = node.mgr().local_of(*g) {
                        active.insert(l);
                    }
                }
                let mut s = Snapshot {
                    xmin: local.xmin,
                    xmax: local.xmax,
                    active,
                };
                s.normalize();
                self.counters.merges += 1;
                s
            }
            MergePolicy::Full => {
                let mut rounds = 0;
                loop {
                    rounds += 1;
                    if rounds > 10 {
                        return Err(HdmError::TxnState(
                            "UPGRADE did not quiesce after 10 rounds".into(),
                        ));
                    }
                    let local = node.local_snapshot();
                    let out =
                        merge_with_manager(gsnap, &local, node.mgr(), |g| self.gtm.is_committed(g));
                    self.counters.merges += 1;
                    self.counters.downgrades += out.downgraded.len() as u64;
                    if out.upgrade_waits.is_empty() {
                        break out.merged;
                    }
                    // The paper's wait-for-commit: the decision is already
                    // durable at the GTM, so the reader completes the local
                    // commits instead of blocking.
                    self.counters.upgrade_waits += out.upgrade_waits.len() as u64;
                    for w in out.upgrade_waits {
                        if !node.is_pending_commit(w) {
                            return Err(HdmError::TxnState(format!(
                                "UPGRADE wait on {w} which is not pending-commit"
                            )));
                        }
                        node.finish_commit(w)?;
                    }
                }
            }
        };
        legs.insert(shard.raw(), Leg { xid, merged });
        Ok(())
    }

    /// Commit `txn` (all phases).
    pub fn commit(&mut self, txn: Txn) -> Result<()> {
        match txn.kind {
            TxnKind::Baseline { .. } => self.commit_baseline(txn),
            TxnKind::LiteSingle { shard, xid, .. } => {
                let node = &mut self.nodes[shard.raw() as usize];
                node.mgr_mut().commit(xid)?;
                node.clear_undo(xid);
                self.counters.single_shard_commits += 1;
                Ok(())
            }
            TxnKind::LiteMulti { .. } => {
                self.multi_prepare(&txn)?;
                self.multi_commit_at_gtm(&txn)?;
                self.multi_finish(txn)
            }
        }
    }

    fn commit_baseline(&mut self, txn: Txn) -> Result<()> {
        let TxnKind::Baseline { gxid, touched, .. } = txn.kind else {
            unreachable!()
        };
        // Multi-shard baseline pays 2PC prepare round-trips (counted as DN
        // work, not GTM work) and then one GTM commit interaction; visibility
        // flips atomically because all DNs consult the GTM's commit log.
        self.gtm.commit(gxid)?;
        self.counters.gtm_interactions += 1;
        for s in &touched {
            self.nodes[*s as usize].clear_undo(gxid);
        }
        if touched.len() > 1 {
            self.counters.multi_shard_commits += 1;
        } else {
            self.counters.single_shard_commits += 1;
        }
        Ok(())
    }

    /// 2PC phase 1 for a GTM-lite multi-shard transaction: prepare every leg.
    pub fn multi_prepare(&mut self, txn: &Txn) -> Result<()> {
        let TxnKind::LiteMulti { legs, .. } = &txn.kind else {
            return Err(HdmError::TxnState("multi_prepare on non-multi txn".into()));
        };
        if legs.is_empty() {
            return Ok(());
        }
        let participants: Vec<ShardId> =
            legs.keys().map(|&s| ShardId::new(s)).collect();
        let mut coord = TwoPcCoordinator::new(participants.clone());
        for (&s, leg) in legs {
            let vote_yes = self.nodes[s as usize].mgr_mut().prepare(leg.xid).is_ok();
            if let Some(Decision::Abort) = coord.vote(ShardId::new(s), vote_yes)? {
                return Err(HdmError::TxnAborted(format!(
                    "prepare failed on shard {s}"
                )));
            }
        }
        Ok(())
    }

    /// Commit decision at the GTM ("transactions are marked committed in GTM
    /// first and then on all nodes"). Legs become pending on their DNs; the
    /// Anomaly-1 window is open until [`Cluster::multi_finish`].
    pub fn multi_commit_at_gtm(&mut self, txn: &Txn) -> Result<()> {
        let TxnKind::LiteMulti { gxid, legs, .. } = &txn.kind else {
            return Err(HdmError::TxnState(
                "multi_commit_at_gtm on non-multi txn".into(),
            ));
        };
        self.gtm.commit(*gxid)?;
        self.counters.gtm_interactions += 1;
        for (&s, leg) in legs {
            self.nodes[s as usize].mark_pending_commit(leg.xid);
        }
        Ok(())
    }

    /// Deliver the commit confirmations to every leg's DN, closing the
    /// window. Idempotent per leg (a reader's UPGRADE may have finished some
    /// legs already).
    pub fn multi_finish(&mut self, txn: Txn) -> Result<()> {
        let TxnKind::LiteMulti { legs, .. } = txn.kind else {
            return Err(HdmError::TxnState("multi_finish on non-multi txn".into()));
        };
        for (&s, leg) in &legs {
            let node = &mut self.nodes[s as usize];
            node.finish_commit(leg.xid)?;
            if self.cfg.lco_prune_horizon > 0 {
                node.mgr_mut().prune_lco(self.cfg.lco_prune_horizon);
            }
        }
        self.counters.multi_shard_commits += 1;
        Ok(())
    }

    /// Abort `txn`, rolling back its writes everywhere.
    pub fn abort(&mut self, txn: Txn) -> Result<()> {
        self.counters.aborts += 1;
        match txn.kind {
            TxnKind::Baseline { gxid, touched, .. } => {
                for s in &touched {
                    self.nodes[*s as usize].rollback_writes(gxid)?;
                }
                self.gtm.abort(gxid)?;
                self.counters.gtm_interactions += 1;
                Ok(())
            }
            TxnKind::LiteSingle { shard, xid, .. } => {
                let node = &mut self.nodes[shard.raw() as usize];
                node.rollback_writes(xid)?;
                node.mgr_mut().abort(xid)?;
                Ok(())
            }
            TxnKind::LiteMulti { gxid, legs, .. } => {
                for (&s, leg) in &legs {
                    let node = &mut self.nodes[s as usize];
                    node.rollback_writes(leg.xid)?;
                    node.mgr_mut().abort(leg.xid)?;
                }
                self.gtm.abort(gxid)?;
                self.counters.gtm_interactions += 1;
                Ok(())
            }
        }
    }

    /// A consistent snapshot of every shard's visible `(key, value)` pairs
    /// — the HTAP replica-sync read path ("eliminating the analytic latency
    /// and data movement across OLAP and OLTP database management systems",
    /// §II-A: the analytical side reads the transactional state directly).
    pub fn snapshot_all(&self) -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        match self.cfg.protocol {
            Protocol::Baseline => {
                let snap = self.gtm.peek_snapshot();
                for node in &self.nodes {
                    let judge = SnapshotVisibility::new(&snap, self.gtm.clog(), None);
                    out.extend(node.snapshot_rows(&judge));
                }
            }
            Protocol::GtmLite => {
                for node in &self.nodes {
                    let snap = node.local_snapshot();
                    let judge = SnapshotVisibility::new(&snap, node.mgr().clog(), None);
                    out.extend(node.snapshot_rows(&judge));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Convenience for benches/tests: run a read-your-writes transaction
    /// that bumps `key` by `delta`, committing it. Returns the new value.
    pub fn bump(&mut self, single_prefix: Option<u32>, key: i64, delta: i64) -> Result<i64> {
        let mut txn = match single_prefix {
            Some(p) => self.begin_single(p),
            None => self.begin_multi(),
        };
        let old = match self.get(&mut txn, key) {
            Ok(v) => v.unwrap_or(0),
            Err(e) => {
                self.abort(txn)?;
                return Err(e);
            }
        };
        let new = old + delta;
        if let Err(e) = self.put(&mut txn, key, new) {
            self.abort(txn)?;
            return Err(e);
        }
        self.commit(txn)?;
        Ok(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::make_key;

    fn lite(shards: usize) -> Cluster {
        Cluster::new(ClusterConfig::gtm_lite(shards))
    }

    fn baseline(shards: usize) -> Cluster {
        Cluster::new(ClusterConfig::baseline(shards))
    }

    #[test]
    fn lite_single_shard_never_touches_gtm() {
        let mut c = lite(4);
        for w in 0..8u32 {
            c.bump(Some(w), make_key(w, 1), 5).unwrap();
        }
        assert_eq!(c.counters().gtm_interactions, 0);
        assert_eq!(c.counters().single_shard_commits, 8);
        assert_eq!(c.gtm().counters().total(), 0);
    }

    #[test]
    fn baseline_always_touches_gtm() {
        let mut c = baseline(4);
        for w in 0..8u32 {
            c.bump(Some(w), make_key(w, 1), 5).unwrap();
        }
        // 2 interactions at begin (+1 at commit) per transaction.
        assert_eq!(c.counters().gtm_interactions, 8 * 3);
    }

    #[test]
    fn lite_multi_shard_reads_own_writes_and_commits() {
        let mut c = lite(4);
        let mut t = c.begin_multi();
        let (k1, k2) = (make_key(0, 1), make_key(1, 1));
        c.put(&mut t, k1, 10).unwrap();
        c.put(&mut t, k2, 20).unwrap();
        assert_eq!(c.get(&mut t, k1).unwrap(), Some(10));
        c.commit(t).unwrap();

        let mut r = c.begin_multi();
        assert_eq!(c.get(&mut r, k1).unwrap(), Some(10));
        assert_eq!(c.get(&mut r, k2).unwrap(), Some(20));
        c.commit(r).unwrap();
        // Both the writer and the reader committed as multi-shard.
        assert_eq!(c.counters().multi_shard_commits, 2);
    }

    #[test]
    fn values_survive_protocol_mix_of_readers_and_writers() {
        let mut c = lite(2);
        let k = make_key(3, 9);
        c.bump(Some(3), k, 7).unwrap();
        c.bump(None, k, 3).unwrap(); // multi-shard writer on same key
        assert_eq!(c.bump(Some(3), k, 0).unwrap(), 10);
    }

    #[test]
    fn abort_rolls_back_across_shards() {
        let mut c = lite(4);
        let (k1, k2) = (make_key(0, 1), make_key(1, 1));
        c.bump(None, k1, 1).unwrap();
        c.bump(None, k2, 2).unwrap();

        let mut t = c.begin_multi();
        c.put(&mut t, k1, 100).unwrap();
        c.put(&mut t, k2, 200).unwrap();
        c.abort(t).unwrap();

        let mut r = c.begin_multi();
        assert_eq!(c.get(&mut r, k1).unwrap(), Some(1));
        assert_eq!(c.get(&mut r, k2).unwrap(), Some(2));
        c.commit(r).unwrap();
    }

    #[test]
    fn single_shard_txn_rejects_foreign_keys() {
        let mut c = lite(4);
        // Find two prefixes on different shards.
        let (a, b) = {
            let m = c.shard_map();
            let mut found = (0u32, 0u32);
            'outer: for x in 0..16 {
                for y in 0..16 {
                    if m.shard_of_prefix(x) != m.shard_of_prefix(y) {
                        found = (x, y);
                        break 'outer;
                    }
                }
            }
            found
        };
        let mut t = c.begin_single(a);
        let err = c.get(&mut t, make_key(b, 0)).unwrap_err();
        assert_eq!(err.class(), "txn_state");
    }

    #[test]
    fn baseline_multi_shard_is_atomic() {
        let mut c = baseline(4);
        let (k1, k2) = (make_key(0, 1), make_key(1, 1));
        let mut t = c.begin_multi();
        c.put(&mut t, k1, 5).unwrap();
        c.put(&mut t, k2, 6).unwrap();
        c.commit(t).unwrap();
        let mut r = c.begin_multi();
        assert_eq!(c.get(&mut r, k1).unwrap(), Some(5));
        assert_eq!(c.get(&mut r, k2).unwrap(), Some(6));
        c.commit(r).unwrap();
    }

    #[test]
    fn write_write_conflict_aborts_loser() {
        let mut c = lite(1);
        let k = make_key(0, 1);
        c.bump(Some(0), k, 1).unwrap();
        let mut t1 = c.begin_single(0);
        let mut t2 = c.begin_single(0);
        c.put(&mut t1, k, 10).unwrap();
        let err = c.put(&mut t2, k, 20).unwrap_err();
        assert_eq!(err.class(), "txn_aborted");
        c.abort(t2).unwrap();
        c.commit(t1).unwrap();
        assert_eq!(c.bump(Some(0), k, 0).unwrap(), 10);
    }

    #[test]
    fn lco_pruning_keeps_merges_bounded() {
        let mut cfg = ClusterConfig::gtm_lite(2);
        cfg.lco_prune_horizon = 16;
        let mut c = Cluster::new(cfg);
        for i in 0..100 {
            c.bump(None, make_key(0, i), 1).unwrap();
        }
        assert!(c.node(ShardId::new(0)).mgr().lco().len() <= 16 + 1);
    }
}

//! The functional (untimed) sharded OLTP engine.
//!
//! Implements both transaction-management protocols of §II-A over the same
//! storage nodes:
//!
//! * **Baseline** — "applications interact with a sharded OLTP system by
//!   sending queries … A global transaction manager (GTM) generates
//!   ascending global transaction ID (XID) for transactions and dispatches
//!   snapshots". *Every* transaction — single- or multi-shard — takes a
//!   global XID and a global snapshot, and reports its commit to the GTM.
//!   Tuples are stamped with global XIDs; DNs judge visibility against the
//!   GTM's commit log.
//! * **GTM-lite** — single-shard transactions never talk to the GTM: "CN
//!   sends transaction to DN, then DN uses local XID and local snapshot to
//!   execute and commit transaction locally." Multi-shard transactions take
//!   a GXID + global snapshot, obtain a local XID + local snapshot per DN,
//!   and judge visibility through the merged snapshot of Algorithm 1,
//!   committing via 2PC (GTM first, then DNs — the Anomaly-1 ordering).
//!
//! The public transaction surface is deliberately small: [`Cluster::begin`]
//! with a [`TxnOptions`] builder opens any transaction, and the one-call
//! [`Cluster::commit`] routes single-shard vs 2PC internally. The split
//! multi-shard commit steps (`multi_prepare` / `multi_commit_at_gtm` /
//! `multi_finish` / `finish_leg`) are crate-private; in-crate harnesses
//! (`anomaly`, `chaos`, `sim`) use them to stand inside the commit window
//! and reproduce the paper's anomalies. [`MergePolicy::Naive`] disables
//! UPGRADE/DOWNGRADE to *exhibit* the anomalies; [`MergePolicy::Full`] is
//! Algorithm 1.
//!
//! With [`ClusterConfig::snapshot_cache`] enabled, the CN reuses the last
//! global snapshot while the GTM's commit sequence number (CSN) is
//! unchanged: commits are the only events that alter which tuples a fresh
//! snapshot would expose (visibility = snapshot finished ∧ clog committed,
//! so begins/aborts cancel out), making the cached snapshot
//! visibility-equivalent and saving the snapshot interaction per begin.

use crate::health::{EventJournal, HealthMonitor, SysEvent};
use crate::node::DataNode;
use crate::replica::{Follower, LogRecord, ReplOp, ReplicaSet};
use crate::shard::ShardMap;
use hdm_common::{HdmError, Result, Schema, ShardId, Xid};
use hdm_telemetry::{Counter, Gauge, Telemetry};
use hdm_txn::{
    merge_with_manager, Decision, Gtm, Snapshot, SnapshotVisibility, TwoPcCoordinator, TxnStatus,
};
use std::collections::{BTreeMap, BTreeSet};

/// Which transaction-management protocol the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Centralized: every transaction interacts with the GTM.
    Baseline,
    /// GTM-lite: only multi-shard transactions interact with the GTM.
    GtmLite,
}

/// How multi-shard readers combine global and local snapshots (GTM-lite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Algorithm 1 with UPGRADE and DOWNGRADE.
    Full,
    /// Union of active sets only (lines 1–4). Exhibits Anomalies 1 and 2;
    /// exists for tests and the merge-overhead ablation.
    Naive,
}

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub shards: usize,
    pub protocol: Protocol,
    pub merge_policy: MergePolicy,
    /// Prune each DN's LCO to this many entries after multi-shard commits
    /// (0 = never prune; scripted tests use 0).
    pub lco_prune_horizon: usize,
    /// Reuse the last global snapshot while the GTM's CSN is unchanged,
    /// skipping the per-begin snapshot interaction. Off by default so the
    /// legacy interaction counts stay bit-identical.
    pub snapshot_cache: bool,
    /// Log-shipped followers per shard (0 = replication off, the legacy
    /// single-copy behaviour: a crashed DN stays `Unavailable` until its
    /// scheduled restart). With replicas, a crashed primary can be failed
    /// over via [`Cluster::try_failover`].
    pub replicas: usize,
    /// Derive per-shard replication-lag and health gauges on every
    /// [`Cluster::pump_replication`] tick, journaling health transitions
    /// into `sys.events`. Strictly observation-only (no control-flow
    /// impact); off by default so legacy telemetry stays byte-identical.
    pub health_monitor: bool,
}

impl ClusterConfig {
    pub fn baseline(shards: usize) -> Self {
        Self {
            shards,
            protocol: Protocol::Baseline,
            merge_policy: MergePolicy::Full,
            lco_prune_horizon: 0,
            snapshot_cache: false,
            replicas: 0,
            health_monitor: false,
        }
    }

    pub fn gtm_lite(shards: usize) -> Self {
        Self {
            shards,
            protocol: Protocol::GtmLite,
            merge_policy: MergePolicy::Full,
            lco_prune_horizon: 0,
            snapshot_cache: false,
            replicas: 0,
            health_monitor: false,
        }
    }
}

/// How a transaction should be opened — the builder consumed by
/// [`Cluster::begin`], replacing the old
/// `try_begin_single`/`begin_single`/`try_begin_multi`/`begin_multi`
/// quartet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnOptions {
    scope: TxnScope,
    retry_on_unavailable: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnScope {
    /// All keys share this sharding prefix (the GTM-lite fast path).
    Single(u32),
    /// May touch several shards.
    Multi,
}

impl TxnOptions {
    /// A transaction the application knows is single-sharded (every key
    /// shares the sharding prefix `prefix`).
    pub fn single(prefix: u32) -> Self {
        Self {
            scope: TxnScope::Single(prefix),
            retry_on_unavailable: true,
        }
    }

    /// A transaction that may touch several shards.
    pub fn multi() -> Self {
        Self {
            scope: TxnScope::Multi,
            retry_on_unavailable: true,
        }
    }

    /// Whether [`Cluster::begin`] should precheck the liveness of the
    /// coordinator this transaction needs (its home node, or the GTM) and
    /// fail fast with `Unavailable` so a retrying CN can back off —
    /// `true` by default. With `false` the begin is unchecked and
    /// infallible, matching the legacy `begin_single`/`begin_multi`
    /// behaviour scripted tests rely on.
    pub fn retry_on_unavailable(mut self, yes: bool) -> Self {
        self.retry_on_unavailable = yes;
        self
    }
}

/// Observable protocol activity, reported by Fig 3's harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterCounters {
    /// Messages that had to visit the GTM (the baseline's bottleneck).
    pub gtm_interactions: u64,
    pub single_shard_commits: u64,
    pub multi_shard_commits: u64,
    pub aborts: u64,
    /// Snapshot merges performed (multi-shard statements under GTM-lite).
    pub merges: u64,
    /// UPGRADE wait-for-commit events (Anomaly-1 repairs).
    pub upgrade_waits: u64,
    /// Local commits DOWNGRADEd in some reader's merged view.
    pub downgrades: u64,
    /// CN-side transaction retries after faults (backoff applied per retry).
    pub retries: u64,
    /// Data-node crash / restart events injected.
    pub dn_crashes: u64,
    pub dn_restarts: u64,
    /// GTM crash / restart events injected.
    pub gtm_crashes: u64,
    pub gtm_restarts: u64,
    /// In-doubt legs resolved at recovery, by outcome.
    pub in_doubt_commits: u64,
    pub in_doubt_aborts: u64,
    /// Begins that reused the cached global snapshot (CSN unchanged) /
    /// refreshed it from the GTM. Both zero unless
    /// [`ClusterConfig::snapshot_cache`] is on.
    pub snapshot_cache_hits: u64,
    pub snapshot_cache_misses: u64,
    /// Followers promoted to primary after a crash / crashed ex-primaries
    /// re-seeded as empty followers. Both zero unless
    /// [`ClusterConfig::replicas`] > 0.
    pub promotions: u64,
    pub rejoins: u64,
}

/// Pre-resolved metric handles + the tracer, attached once via
/// [`Cluster::attach_telemetry`] so hot paths bump atomics without registry
/// lookups. Crash/restart/in-doubt moments additionally land in the trace as
/// instantaneous spans.
#[derive(Debug, Clone)]
struct EngineTelemetry {
    tel: Telemetry,
    begin_single: Counter,
    begin_distributed: Counter,
    commit_single: Counter,
    commit_distributed: Counter,
    aborts: Counter,
    prepare_yes: Counter,
    prepare_no: Counter,
    leg_finish: Counter,
    restart_dn: Counter,
    restart_gtm: Counter,
    retries: Counter,
    snap_cache_hit: Counter,
    snap_cache_miss: Counter,
    /// Registered only when replication is on, so legacy configurations
    /// export a byte-identical metric set.
    promote: Option<Counter>,
    rejoin: Option<Counter>,
    replica_apply: Option<Counter>,
    /// Worst-shard replication lag (log head − slowest follower CSN),
    /// refreshed on every `pump_replication` tick. Registered only when
    /// replication is on.
    replica_lag: Option<Gauge>,
    /// Per-shard lag and health (1 = healthy) gauges — the
    /// [`ClusterConfig::health_monitor`] plane; absent when it is off.
    shard_lag: Option<Vec<Gauge>>,
    shard_health: Option<Vec<Gauge>>,
}

/// One leg of a multi-shard GTM-lite transaction on a particular DN.
#[derive(Debug, Clone)]
struct Leg {
    xid: Xid,
    merged: Snapshot,
    /// The shard's primary epoch when the leg opened. A promotion bumps the
    /// epoch, fencing the leg: its local XID belongs to the dead primary's
    /// namespace and must never be replayed against the promoted node.
    epoch: u64,
}

#[derive(Debug, Clone)]
enum TxnKind {
    Baseline {
        gxid: Xid,
        gsnap: Snapshot,
        touched: BTreeSet<u64>,
    },
    LiteSingle {
        shard: ShardId,
        xid: Xid,
        snap: Snapshot,
        /// Primary epoch at begin — same fencing rule as [`Leg::epoch`].
        epoch: u64,
    },
    LiteMulti {
        gxid: Xid,
        gsnap: Snapshot,
        legs: BTreeMap<u64, Leg>,
    },
}

/// An open transaction handle.
#[derive(Debug, Clone)]
pub struct Txn {
    kind: TxnKind,
}

impl Txn {
    /// The global XID, if this transaction has one.
    pub fn gxid(&self) -> Option<Xid> {
        match &self.kind {
            TxnKind::Baseline { gxid, .. } | TxnKind::LiteMulti { gxid, .. } => Some(*gxid),
            TxnKind::LiteSingle { .. } => None,
        }
    }

    /// Is this a single-shard fast-path transaction?
    pub fn is_single_shard(&self) -> bool {
        matches!(self.kind, TxnKind::LiteSingle { .. })
    }

    /// The `(shard, local xid)` legs of a GTM-lite multi-shard transaction
    /// (empty for other kinds). Lets a fault-aware coordinator drive the
    /// 2PC finish phase per leg, retransmitting to crashed participants.
    pub fn legs(&self) -> Vec<(ShardId, Xid)> {
        match &self.kind {
            TxnKind::LiteMulti { legs, .. } => legs
                .iter()
                .map(|(&s, leg)| (ShardId::new(s), leg.xid))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// The `(local xid, snapshot)` a GTM-lite fragment on `shard` must run
    /// under: the single-shard txn's own context, or the opened leg's merged
    /// view. `None` when the leg is not open (call `ensure_leg` first) or
    /// the transaction is baseline-protocol.
    pub(crate) fn lite_ctx(&self, shard: ShardId) -> Option<(Xid, Snapshot)> {
        match &self.kind {
            TxnKind::LiteSingle {
                shard: own,
                xid,
                snap,
                ..
            } => (*own == shard).then(|| (*xid, snap.clone())),
            TxnKind::LiteMulti { legs, .. } => legs
                .get(&shard.raw())
                .map(|leg| (leg.xid, leg.merged.clone())),
            TxnKind::Baseline { .. } => None,
        }
    }
}

/// The sharded OLTP cluster: one GTM, N data nodes.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    map: ShardMap,
    gtm: Gtm,
    nodes: Vec<DataNode>,
    /// Per-node liveness: a down node rejects every request until restarted.
    down: Vec<bool>,
    gtm_up: bool,
    /// `(csn at capture, snapshot)` — the CN-side epoch cache, populated
    /// only when [`ClusterConfig::snapshot_cache`] is on and dropped on any
    /// GTM crash/restart (a recovered GTM restarts its epoch).
    snap_cache: Option<(u64, Snapshot)>,
    counters: ClusterCounters,
    tel: Option<EngineTelemetry>,
    /// Per-shard replication state: the commit log + log-shipped followers.
    /// Present but empty-followed when [`ClusterConfig::replicas`] is 0.
    replicas: Vec<ReplicaSet>,
    /// Per-shard primary epoch, bumped by each promotion. Stays 0 for every
    /// shard when replication is off, so legacy behaviour is bit-identical.
    epochs: Vec<u64>,
    /// Shards whose scheduled restart should re-seed the returning machine
    /// as an empty follower (a promotion already replaced it as primary).
    rejoining: Vec<bool>,
    /// Bounded crash/recovery/promotion journal — the `sys.events` source.
    journal: EventJournal,
    /// Per-shard health classifier, present when
    /// [`ClusterConfig::health_monitor`] is on.
    health: Option<HealthMonitor>,
}

impl Cluster {
    pub fn new(cfg: ClusterConfig) -> Self {
        let map = ShardMap::new(cfg.shards);
        let mut nodes: Vec<DataNode> = map.all().map(DataNode::new).collect();
        if cfg.replicas > 0 {
            for node in &mut nodes {
                node.set_record_redo(true);
            }
        }
        let replicas = map.all().map(|s| ReplicaSet::new(s, cfg.replicas)).collect();
        let down = vec![false; nodes.len()];
        let epochs = vec![0; nodes.len()];
        let rejoining = vec![false; nodes.len()];
        let health = cfg.health_monitor.then(|| HealthMonitor::new(nodes.len()));
        Self {
            cfg,
            map,
            gtm: Gtm::new(),
            nodes,
            down,
            gtm_up: true,
            snap_cache: None,
            counters: ClusterCounters::default(),
            tel: None,
            replicas,
            epochs,
            rejoining,
            journal: EventJournal::default(),
            health,
        }
    }

    /// The telemetry clock's current reading, for journal timestamps (0
    /// without telemetry — deterministic either way).
    fn journal_now_us(&self) -> u64 {
        self.tel.as_ref().map(|t| t.tel.now_us()).unwrap_or(0)
    }

    /// Wire this cluster (and its GTM) to a [`Telemetry`] bundle. Metric
    /// handles are resolved once here; protocol activity lands as `txn.*`,
    /// `twopc.*`, `recovery.*` and `cn.retry` series, and crash/restart and
    /// in-doubt moments appear in the trace as instantaneous spans. The
    /// timed harnesses attach before driving load.
    pub fn attach_telemetry(&mut self, tel: &Telemetry) {
        let m = &tel.metrics;
        self.tel = Some(EngineTelemetry {
            tel: tel.clone(),
            begin_single: m.counter("txn.begin", &[("path", "single")]),
            begin_distributed: m.counter("txn.begin", &[("path", "distributed")]),
            commit_single: m.counter("txn.commit", &[("path", "single")]),
            commit_distributed: m.counter("txn.commit", &[("path", "distributed")]),
            aborts: m.counter("txn.abort", &[]),
            prepare_yes: m.counter("twopc.leg.prepare", &[("vote", "yes")]),
            prepare_no: m.counter("twopc.leg.prepare", &[("vote", "no")]),
            leg_finish: m.counter("twopc.leg.finish", &[]),
            restart_dn: m.counter("recovery.restart", &[("target", "dn")]),
            restart_gtm: m.counter("recovery.restart", &[("target", "gtm")]),
            retries: m.counter("cn.retry", &[]),
            snap_cache_hit: m.counter("gtm.snapshot_cache", &[("result", "hit")]),
            snap_cache_miss: m.counter("gtm.snapshot_cache", &[("result", "miss")]),
            promote: (self.cfg.replicas > 0).then(|| m.counter("replica.promote", &[])),
            rejoin: (self.cfg.replicas > 0).then(|| m.counter("replica.rejoin", &[])),
            replica_apply: (self.cfg.replicas > 0)
                .then(|| m.counter("replica.apply", &[])),
            replica_lag: (self.cfg.replicas > 0).then(|| m.gauge("replica.lag", &[])),
            shard_lag: self.cfg.health_monitor.then(|| {
                self.map
                    .all()
                    .map(|s| m.gauge("replica.lag", &[("shard", &s.raw().to_string())]))
                    .collect()
            }),
            shard_health: self.cfg.health_monitor.then(|| {
                self.map
                    .all()
                    .map(|s| m.gauge("shard.health", &[("shard", &s.raw().to_string())]))
                    .collect()
            }),
        });
        self.gtm.attach_telemetry(m);
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    pub fn counters(&self) -> ClusterCounters {
        self.counters
    }

    pub fn gtm(&self) -> &Gtm {
        &self.gtm
    }

    pub fn node(&self, shard: ShardId) -> &DataNode {
        &self.nodes[shard.raw() as usize]
    }

    /// Mutable node access for the in-crate distributed SQL layer (fragment
    /// execution writes through the node's SQL tables).
    pub(crate) fn node_mut(&mut self, shard: ShardId) -> &mut DataNode {
        &mut self.nodes[shard.raw() as usize]
    }

    pub fn is_node_up(&self, shard: ShardId) -> bool {
        !self.down[shard.raw() as usize]
    }

    pub fn is_gtm_up(&self) -> bool {
        self.gtm_up
    }

    fn check_node(&self, shard: ShardId) -> Result<()> {
        if self.down[shard.raw() as usize] {
            return Err(HdmError::Unavailable(format!("{shard} is down")));
        }
        Ok(())
    }

    fn check_gtm(&self) -> Result<()> {
        if !self.gtm_up {
            return Err(HdmError::Unavailable("GTM is down".into()));
        }
        Ok(())
    }

    /// Fencing: a local XID minted by a since-replaced primary must never be
    /// replayed against the promoted node (it would alias a fresh XID in the
    /// new primary's namespace). Stale transactions fail over by retrying
    /// from `begin`. No-op while replication is off (epochs never move).
    fn check_epoch(&self, shard: ShardId, epoch: u64) -> Result<()> {
        if self.cfg.replicas > 0 && self.epochs[shard.raw() as usize] != epoch {
            return Err(HdmError::Unavailable(format!(
                "{shard} failed over (epoch {} fences leg epoch {epoch})",
                self.epochs[shard.raw() as usize]
            )));
        }
        Ok(())
    }

    /// Kill a data node's process. In-progress transactions there die with
    /// their volatile state (writes undone, locks released); prepared legs
    /// survive durably as in-doubt. The node rejects requests until
    /// [`Self::restart_node`].
    pub fn crash_node(&mut self, shard: ShardId) {
        let i = shard.raw() as usize;
        if self.down[i] {
            return;
        }
        self.down[i] = true;
        self.counters.dn_crashes += 1;
        self.nodes[i].crash();
        let now = self.journal_now_us();
        self.journal
            .append(now, "crash", Some(i as u64), "dn process killed".into());
        if let Some(t) = &self.tel {
            t.tel
                .tracer
                .instant("crash", &[("target", "dn"), ("shard", &i.to_string())]);
        }
    }

    /// Restart a crashed data node. Its in-doubt (prepared) legs are
    /// resolved against the coordinator's commit log — presumed abort unless
    /// the GTM positively recorded the commit — releasing their locks and
    /// undo. If the GTM is itself down, the legs stay in doubt (still
    /// holding locks, as 2PC requires) until [`Self::restart_gtm`] resolves
    /// them.
    pub fn restart_node(&mut self, shard: ShardId) {
        let i = shard.raw() as usize;
        if self.rejoining[i] {
            // A promotion already replaced this machine as primary; the
            // returning process discards its stale state and rejoins as an
            // empty follower, re-seeding from the shard log.
            self.rejoining[i] = false;
            self.counters.dn_restarts += 1;
            self.counters.rejoins += 1;
            self.replicas[i].followers.push(Follower::new(shard));
            let now = self.journal_now_us();
            self.journal.append(
                now,
                "rejoin",
                Some(i as u64),
                "ex-primary re-seeded as empty follower".into(),
            );
            if let Some(t) = &self.tel {
                t.restart_dn.inc();
                if let Some(c) = &t.rejoin {
                    c.inc();
                }
                t.tel
                    .tracer
                    .instant("replica.rejoin", &[("shard", &i.to_string())]);
            }
            return;
        }
        if !self.down[i] {
            return;
        }
        self.down[i] = false;
        self.counters.dn_restarts += 1;
        let now = self.journal_now_us();
        self.journal
            .append(now, "restart", Some(i as u64), "dn restarted".into());
        if let Some(t) = &self.tel {
            t.restart_dn.inc();
            t.tel
                .tracer
                .instant("restart", &[("target", "dn"), ("shard", &i.to_string())]);
        }
        if self.gtm_up {
            self.resolve_in_doubt_on(i);
        }
    }

    /// Resolve every in-doubt leg on node `i` against the GTM's commit log.
    fn resolve_in_doubt_on(&mut self, i: usize) {
        for (local, gxid) in self.nodes[i].in_doubt_legs() {
            // A prepared leg with no gxid mapping cannot be vouched for by
            // any coordinator: presumed abort.
            let commit = gxid
                .map(|g| self.gtm.resolve_in_doubt(g) == Decision::Commit)
                .unwrap_or(false);
            self.counters.gtm_interactions += 1;
            self.nodes[i]
                .resolve_in_doubt(local, commit)
                .expect("in-doubt leg is resolvable");
            if self.cfg.replicas > 0 {
                if let Some(g) = gxid {
                    self.replicas[i].resolve(g, commit);
                }
            }
            if commit {
                self.counters.in_doubt_commits += 1;
            } else {
                self.counters.in_doubt_aborts += 1;
            }
            let now = self.journal_now_us();
            self.journal.append(
                now,
                "in_doubt.resolved",
                Some(i as u64),
                format!("outcome={}", if commit { "commit" } else { "abort" }),
            );
            if let Some(t) = &self.tel {
                t.tel.tracer.instant(
                    "in_doubt.resolved",
                    &[
                        ("shard", &i.to_string()),
                        ("outcome", if commit { "commit" } else { "abort" }),
                    ],
                );
            }
        }
    }

    /// Kill the GTM. Multi-shard begins/commits fail until
    /// [`Self::restart_gtm`]; GTM-lite single-shard traffic is unaffected —
    /// the availability half of the GTM-lite argument.
    pub fn crash_gtm(&mut self) {
        if !self.gtm_up {
            return;
        }
        self.gtm_up = false;
        // The epoch the cache was validated against died with the GTM.
        self.snap_cache = None;
        self.counters.gtm_crashes += 1;
        let now = self.journal_now_us();
        self.journal
            .append(now, "crash", None, "gtm process killed".into());
        if let Some(t) = &self.tel {
            t.tel.tracer.instant("crash", &[("target", "gtm")]);
        }
    }

    /// Restart the GTM, rebuilding its commit log from the data nodes'
    /// durable clogs (commit-at-GTM-first makes a locally-committed leg
    /// proof of a GTM commit; everything else is presumed abort). Once
    /// rebuilt, in-doubt legs on every *running* node are resolved; nodes
    /// that are themselves down resolve on their own restart.
    pub fn restart_gtm(&mut self) {
        if self.gtm_up {
            return;
        }
        let mut observations = Vec::new();
        for node in &self.nodes {
            // Durable per-DN state (clog + xidMap) survives even if the
            // node's process is currently down — recovery reads the logs.
            // A *live* node additionally reports its received-but-unapplied
            // commit decisions (pending markers): it heard the lost GTM
            // decide commit, and that knowledge must not be recovered away.
            for (&gxid, &local) in node.mgr().xid_map() {
                let committed =
                    node.mgr().clog().is_committed(local) || node.is_pending_commit(local);
                observations.push((gxid, committed));
            }
        }
        self.gtm = Gtm::recover_from_observations(observations);
        self.gtm_up = true;
        // A recovered GTM restarts its CSN epoch: never validate a cached
        // snapshot from the previous incarnation against it.
        self.snap_cache = None;
        self.counters.gtm_restarts += 1;
        let now = self.journal_now_us();
        self.journal
            .append(now, "restart", None, "gtm recovered from dn clogs".into());
        if let Some(t) = &self.tel {
            // The recovered instance is a fresh `Gtm`: re-resolve its metric
            // handles so its interactions keep landing in the same series.
            self.gtm.attach_telemetry(&t.tel.metrics);
            t.restart_gtm.inc();
            t.tel.tracer.instant("restart", &[("target", "gtm")]);
        }
        for i in 0..self.nodes.len() {
            if !self.down[i] {
                self.resolve_in_doubt_on(i);
            }
        }
    }

    /// Promote the most caught-up follower of a down shard to primary:
    /// replay the shard log to its head (so no committed write is lost),
    /// reconstruct in-doubt 2PC legs from the shipped `Prepare` records,
    /// bump the shard's epoch (fencing every leg opened against the dead
    /// primary), and resolve the reconstructed in-doubt legs against the
    /// GTM. The dead machine rejoins as an empty follower at its scheduled
    /// restart. Returns `true` if a promotion happened; `false` when the
    /// shard is up, replication is off, or no follower exists.
    pub fn try_failover(&mut self, shard: ShardId) -> Result<bool> {
        let i = shard.raw() as usize;
        if self.cfg.replicas == 0 || !self.down[i] {
            return Ok(false);
        }
        let Some((follower, replayed)) = self.replicas[i].take_promoted()? else {
            return Ok(false);
        };
        let mut node = follower.node;
        node.set_record_redo(true);
        let in_doubt = node.in_doubt_legs().len();
        self.nodes[i] = node;
        self.down[i] = false;
        self.epochs[i] += 1;
        self.rejoining[i] = true;
        self.counters.promotions += 1;
        let now = self.journal_now_us();
        self.journal.append(
            now,
            "promote",
            Some(i as u64),
            format!(
                "replayed={replayed} in_doubt={in_doubt} epoch={}",
                self.epochs[i]
            ),
        );
        if let Some(t) = &self.tel {
            if let Some(c) = &t.promote {
                c.inc();
            }
            t.tel.tracer.instant(
                "replica.promote",
                &[
                    ("shard", &i.to_string()),
                    ("replayed", &replayed.to_string()),
                    ("in_doubt", &in_doubt.to_string()),
                ],
            );
        }
        if self.gtm_up {
            self.resolve_in_doubt_on(i);
        }
        Ok(true)
    }

    /// Ship up to `budget` log records to each follower of every shard —
    /// the asynchronous log-shipping step, driven by harnesses at
    /// deterministic points (0 = unbounded, i.e. catch every follower up to
    /// the log head). Returns the number of records applied.
    pub fn pump_replication(&mut self, budget: usize) -> Result<u64> {
        let mut applied = 0;
        for rs in &mut self.replicas {
            applied += rs.pump(budget)?;
        }
        if applied > 0 {
            if let Some(t) = &self.tel {
                if let Some(c) = &t.replica_apply {
                    c.add(applied);
                }
            }
        }
        if self.cfg.replicas > 0 {
            self.health_tick();
        }
        Ok(applied)
    }

    /// The per-tick health plane: refresh the worst-shard `replica.lag`
    /// gauge, and (with [`ClusterConfig::health_monitor`] on) the per-shard
    /// lag/health gauges plus journal entries for health transitions.
    /// Observation-only by construction — nothing here feeds back into
    /// routing or recovery.
    fn health_tick(&mut self) {
        let lags = self.shard_lags();
        if let Some(t) = &self.tel {
            if let Some(g) = &t.replica_lag {
                g.set(lags.iter().copied().max().unwrap_or(0) as i64);
            }
        }
        let Some(mut health) = self.health.take() else {
            return;
        };
        for (i, &lag) in lags.iter().enumerate() {
            let up = !self.down[i];
            let transition = health.observe(i, up, lag);
            if let Some(t) = &self.tel {
                if let Some(gs) = &t.shard_lag {
                    gs[i].set(lag as i64);
                }
                if let Some(gs) = &t.shard_health {
                    gs[i].set(health.is_healthy(i) as i64);
                }
            }
            if let Some(now_ok) = transition {
                let now = self.journal_now_us();
                self.journal.append(
                    now,
                    if now_ok {
                        "health.recovered"
                    } else {
                        "health.degraded"
                    },
                    Some(i as u64),
                    format!("lag={lag} up={up}"),
                );
            }
        }
        self.health = Some(health);
    }

    /// Per-shard replication lag: log head minus the slowest follower's
    /// CSN (0 with no followers — nothing is waiting on replication).
    pub fn shard_lags(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .map(|r| {
                let head = r.log.head();
                let slowest = r.csns().into_iter().min().unwrap_or(head);
                head.saturating_sub(slowest)
            })
            .collect()
    }

    /// The crash/recovery/promotion journal (the `sys.events` source).
    pub fn events(&self) -> impl Iterator<Item = &SysEvent> {
        self.journal.iter()
    }

    /// Events evicted from the bounded journal ring (the `events.dropped`
    /// counter `sys.metrics` exposes).
    pub fn events_dropped(&self) -> u64 {
        self.journal.dropped()
    }

    /// Append an observation-only event from an outer layer (the SQL facade
    /// journals `history.regression` findings here). Timestamped from the
    /// telemetry clock like every other journal entry; never feeds back
    /// into routing or recovery.
    pub fn journal_event(&mut self, kind: &str, shard: Option<u64>, detail: String) {
        let now = self.journal_now_us();
        self.journal.append(now, kind, shard, detail);
    }

    /// Per-shard follower CSNs (applied log-prefix lengths) — outer index
    /// is the shard, inner the follower. Empty inner vecs when replication
    /// is off.
    pub fn replica_csns(&self) -> Vec<Vec<u64>> {
        self.replicas.iter().map(|r| r.csns()).collect()
    }

    /// Per-shard commit-log heads.
    pub fn log_heads(&self) -> Vec<u64> {
        self.replicas.iter().map(|r| r.log.head()).collect()
    }

    /// Every shard currently rejecting requests.
    pub fn down_shards(&self) -> Vec<ShardId> {
        self.map
            .all()
            .filter(|s| self.down[s.raw() as usize])
            .collect()
    }

    /// The current primary epoch of `shard` (0 until a promotion).
    pub fn epoch_of(&self, shard: ShardId) -> u64 {
        self.epochs[shard.raw() as usize]
    }

    /// Tag every open leg of `txn` with the statement identity `(stmt_id,
    /// rows)` — the idempotence key published to the DN's dedup table at
    /// commit, and shipped to followers so a promoted primary still answers
    /// duplicates. `rows` is the statement-*total* rowcount: any single
    /// surviving leg can answer a duplicate in full.
    pub(crate) fn tag_statement(&mut self, txn: &Txn, stmt_id: u64, rows: u64) {
        match &txn.kind {
            TxnKind::LiteSingle { shard, xid, epoch, .. } => {
                let i = shard.raw() as usize;
                if !self.down[i] && self.epochs[i] == *epoch {
                    self.nodes[i].tag_statement(*xid, stmt_id, rows);
                }
            }
            TxnKind::LiteMulti { legs, .. } => {
                for (&s, leg) in legs {
                    let i = s as usize;
                    if !self.down[i] && self.epochs[i] == leg.epoch {
                        self.nodes[i].tag_statement(leg.xid, stmt_id, rows);
                    }
                }
            }
            TxnKind::Baseline { .. } => {}
        }
    }

    /// Did a previously-committed statement with this ID land on `shard`?
    /// Returns the statement-total rowcount it reported. `None` while the
    /// shard is down (the retry loop fails over first, then re-asks).
    pub(crate) fn stmt_applied_on(&self, shard: ShardId, stmt_id: u64) -> Option<u64> {
        let i = shard.raw() as usize;
        if self.down[i] {
            return None;
        }
        self.nodes[i].stmt_applied(stmt_id)
    }

    /// Create a SQL table on `shard`'s primary and replicate the DDL so
    /// followers (and future rejoiners) converge on the same schema.
    pub(crate) fn create_sql_table_on(
        &mut self,
        shard: ShardId,
        name: &str,
        schema: Schema,
    ) -> Result<()> {
        self.check_node(shard)?;
        self.nodes[shard.raw() as usize].create_sql_table(name, schema.clone())?;
        if self.cfg.replicas > 0 {
            self.replicas[shard.raw() as usize].append(LogRecord::Ddl {
                op: ReplOp::CreateSqlTable {
                    table: name.to_string(),
                    schema,
                },
            });
        }
        Ok(())
    }

    /// Create a secondary index on `shard`'s slice of SQL table `name` and
    /// replicate the DDL so followers (and future rejoiners) build the same
    /// probe path before any rows arrive.
    pub(crate) fn create_sql_index_on(
        &mut self,
        shard: ShardId,
        name: &str,
        columns: Vec<usize>,
    ) -> Result<()> {
        self.check_node(shard)?;
        self.nodes[shard.raw() as usize].create_sql_index(name, columns.clone())?;
        if self.cfg.replicas > 0 {
            self.replicas[shard.raw() as usize].append(LogRecord::Ddl {
                op: ReplOp::CreateSqlIndex {
                    table: name.to_string(),
                    columns,
                },
            });
        }
        Ok(())
    }

    /// Begin a transaction. This is the single entry point of the session
    /// API: [`TxnOptions`] selects the scope (single- vs multi-shard) and
    /// whether to precheck coordinator liveness (on by default, so a
    /// retrying CN fails fast with `Unavailable` instead of opening a
    /// doomed transaction).
    pub fn begin(&mut self, opts: TxnOptions) -> Result<Txn> {
        match opts.scope {
            TxnScope::Single(prefix) => {
                if opts.retry_on_unavailable {
                    match self.cfg.protocol {
                        Protocol::Baseline => self.check_gtm()?,
                        Protocol::GtmLite => {
                            self.check_node(self.map.shard_of_prefix(prefix))?
                        }
                    }
                }
                if let Some(t) = &self.tel {
                    t.begin_single.inc();
                }
                let shard = self.map.shard_of_prefix(prefix);
                Ok(match self.cfg.protocol {
                    Protocol::Baseline => self.begin_baseline(),
                    Protocol::GtmLite => {
                        let epoch = self.epochs[shard.raw() as usize];
                        let node = &mut self.nodes[shard.raw() as usize];
                        let xid = node.mgr_mut().begin_local();
                        let snap = node.local_snapshot();
                        Txn {
                            kind: TxnKind::LiteSingle { shard, xid, snap, epoch },
                        }
                    }
                })
            }
            TxnScope::Multi => {
                if opts.retry_on_unavailable {
                    self.check_gtm()?;
                }
                if let Some(t) = &self.tel {
                    t.begin_distributed.inc();
                }
                Ok(match self.cfg.protocol {
                    Protocol::Baseline => self.begin_baseline(),
                    Protocol::GtmLite => {
                        let gxid = self.gtm.begin();
                        self.counters.gtm_interactions += 1;
                        let gsnap = self.global_snapshot();
                        Txn {
                            kind: TxnKind::LiteMulti {
                                gxid,
                                gsnap,
                                legs: BTreeMap::new(),
                            },
                        }
                    }
                })
            }
        }
    }

    #[deprecated(note = "use `begin(TxnOptions::single(prefix))`")]
    pub fn try_begin_single(&mut self, prefix: u32) -> Result<Txn> {
        self.begin(TxnOptions::single(prefix))
    }

    #[deprecated(note = "use `begin(TxnOptions::multi())`")]
    pub fn try_begin_multi(&mut self) -> Result<Txn> {
        self.begin(TxnOptions::multi())
    }

    #[deprecated(
        note = "use `begin(TxnOptions::single(prefix).retry_on_unavailable(false))`"
    )]
    pub fn begin_single(&mut self, prefix: u32) -> Txn {
        self.begin(TxnOptions::single(prefix).retry_on_unavailable(false))
            .expect("unchecked begin is infallible")
    }

    #[deprecated(note = "use `begin(TxnOptions::multi().retry_on_unavailable(false))`")]
    pub fn begin_multi(&mut self) -> Txn {
        self.begin(TxnOptions::multi().retry_on_unavailable(false))
            .expect("unchecked begin is infallible")
    }

    fn begin_baseline(&mut self) -> Txn {
        let gxid = self.gtm.begin();
        self.counters.gtm_interactions += 1;
        let gsnap = self.global_snapshot();
        Txn {
            kind: TxnKind::Baseline {
                gxid,
                gsnap,
                touched: BTreeSet::new(),
            },
        }
    }

    /// The global snapshot for a fresh begin: a GTM interaction, unless the
    /// epoch cache holds a snapshot validated against the current CSN.
    ///
    /// Correctness of the reuse: visibility is `snapshot sees finished ∧
    /// clog committed`. While no commit bumped the CSN, every gxid that
    /// finished since the capture is aborted (not committed → invisible
    /// under both snapshots) and every gxid begun since is `>= xmax` (not
    /// seen by the cached snapshot, uncommitted under the fresh one) — the
    /// two snapshots judge every gxid identically. Reading the CSN models
    /// the epoch broadcast piggybacked on GTM replies, so it charges no
    /// interaction.
    fn global_snapshot(&mut self) -> Snapshot {
        if !self.cfg.snapshot_cache {
            self.counters.gtm_interactions += 1;
            return self.gtm.snapshot();
        }
        let epoch = self.gtm.csn();
        if let Some((cached_epoch, snap)) = &self.snap_cache {
            if *cached_epoch == epoch {
                self.counters.snapshot_cache_hits += 1;
                if let Some(t) = &self.tel {
                    t.snap_cache_hit.inc();
                }
                return snap.clone();
            }
        }
        self.counters.gtm_interactions += 1;
        self.counters.snapshot_cache_misses += 1;
        if let Some(t) = &self.tel {
            t.snap_cache_miss.inc();
        }
        let snap = self.gtm.snapshot();
        self.snap_cache = Some((epoch, snap.clone()));
        snap
    }

    /// Read `key` in `txn`.
    pub fn get(&mut self, txn: &mut Txn, key: i64) -> Result<Option<i64>> {
        let shard = self.map.shard_of_key(key);
        self.check_node(shard)?;
        match &mut txn.kind {
            TxnKind::Baseline {
                gxid,
                gsnap,
                touched,
            } => {
                touched.insert(shard.raw());
                let judge = SnapshotVisibility::new(gsnap, self.gtm.clog(), Some(*gxid));
                self.nodes[shard.raw() as usize].get(&judge, key)
            }
            TxnKind::LiteSingle {
                shard: own_shard,
                xid,
                snap,
                epoch,
            } => {
                if shard != *own_shard {
                    return Err(HdmError::TxnState(format!(
                        "single-shard transaction on {own_shard} touched key {key} on {shard}"
                    )));
                }
                let epoch = *epoch;
                self.check_epoch(shard, epoch)?;
                self.nodes[shard.raw() as usize].get_local(snap, Some(*xid), key)
            }
            TxnKind::LiteMulti { .. } => {
                self.ensure_leg(txn, shard)?;
                let TxnKind::LiteMulti { legs, .. } = &txn.kind else {
                    unreachable!()
                };
                let leg = &legs[&shard.raw()];
                self.nodes[shard.raw() as usize].get_local(&leg.merged, Some(leg.xid), key)
            }
        }
    }

    /// All visible values for `key` in a GTM-lite multi-shard `txn` — the
    /// anomaly-observable read: a consistent view returns at most one value,
    /// the naive merge can return several (paper Fig 2's tuple table).
    pub fn get_versions(&mut self, txn: &mut Txn, key: i64) -> Result<Vec<i64>> {
        let shard = self.map.shard_of_key(key);
        self.check_node(shard)?;
        match &txn.kind {
            TxnKind::LiteMulti { .. } => {
                self.ensure_leg(txn, shard)?;
                let TxnKind::LiteMulti { legs, .. } = &txn.kind else {
                    unreachable!()
                };
                let leg = &legs[&shard.raw()];
                self.nodes[shard.raw() as usize].get_versions_local(
                    &leg.merged,
                    Some(leg.xid),
                    key,
                )
            }
            _ => self.get(txn, key).map(|v| v.into_iter().collect()),
        }
    }

    /// Upsert `key = val` in `txn`.
    pub fn put(&mut self, txn: &mut Txn, key: i64, val: i64) -> Result<()> {
        let shard = self.map.shard_of_key(key);
        self.check_node(shard)?;
        match &mut txn.kind {
            TxnKind::Baseline {
                gxid,
                gsnap,
                touched,
            } => {
                touched.insert(shard.raw());
                let judge = SnapshotVisibility::new(gsnap, self.gtm.clog(), Some(*gxid));
                let gxid = *gxid;
                self.nodes[shard.raw() as usize].put(&judge, gxid, key, val)
            }
            TxnKind::LiteSingle {
                shard: own_shard,
                xid,
                snap,
                epoch,
            } => {
                if shard != *own_shard {
                    return Err(HdmError::TxnState(format!(
                        "single-shard transaction on {own_shard} touched key {key} on {shard}"
                    )));
                }
                let (xid, snap, epoch) = (*xid, snap.clone(), *epoch);
                self.check_epoch(shard, epoch)?;
                self.nodes[shard.raw() as usize].put_local(&snap, Some(xid), xid, key, val)
            }
            TxnKind::LiteMulti { .. } => {
                self.ensure_leg(txn, shard)?;
                let TxnKind::LiteMulti { legs, .. } = &txn.kind else {
                    unreachable!()
                };
                let leg = legs[&shard.raw()].clone();
                self.nodes[shard.raw() as usize].put_local(
                    &leg.merged,
                    Some(leg.xid),
                    leg.xid,
                    key,
                    val,
                )
            }
        }
    }

    /// First touch of `shard` by a multi-shard GTM-lite transaction: begin
    /// the local leg, take the local snapshot, and run Algorithm 1 (or the
    /// naive union under [`MergePolicy::Naive`]). UPGRADE waits are resolved
    /// by finishing the pending commits and re-merging.
    pub(crate) fn ensure_leg(&mut self, txn: &mut Txn, shard: ShardId) -> Result<()> {
        let TxnKind::LiteMulti { gxid, gsnap, legs } = &mut txn.kind else {
            return Err(HdmError::TxnState("ensure_leg on non-multi txn".into()));
        };
        if let Some(leg) = legs.get(&shard.raw()) {
            // A leg that predates a promotion is fenced: its XID belongs to
            // the dead primary's namespace.
            return self.check_epoch(shard, leg.epoch);
        }
        // Opening a leg consults the GTM (UPGRADE classifies pending commits
        // against its clog); during a GTM outage the statement fails fast and
        // the CN backs off rather than reading a dead coordinator's memory.
        if !self.gtm_up {
            return Err(HdmError::Unavailable("GTM is down".into()));
        }
        let epoch = self.epochs[shard.raw() as usize];
        let mut upgraded: Vec<Xid> = Vec::new();
        let node = &mut self.nodes[shard.raw() as usize];
        let xid = node.mgr_mut().begin_global(*gxid);

        let merged = match self.cfg.merge_policy {
            MergePolicy::Naive => {
                // Lines 1–4 only: union the active sets, skip both repairs.
                let local = node.local_snapshot();
                let mut active = local.active.clone();
                for g in &gsnap.active {
                    if let Some(l) = node.mgr().local_of(*g) {
                        active.insert(l);
                    }
                }
                let mut s = Snapshot {
                    xmin: local.xmin,
                    xmax: local.xmax,
                    active,
                };
                s.normalize();
                self.counters.merges += 1;
                s
            }
            MergePolicy::Full => {
                let mut rounds = 0;
                loop {
                    rounds += 1;
                    if rounds > 10 {
                        return Err(HdmError::TxnState(
                            "UPGRADE did not quiesce after 10 rounds".into(),
                        ));
                    }
                    let local = node.local_snapshot();
                    let out =
                        merge_with_manager(gsnap, &local, node.mgr(), |g| self.gtm.is_committed(g));
                    self.counters.merges += 1;
                    self.counters.downgrades += out.downgraded.len() as u64;
                    if out.upgrade_waits.is_empty() {
                        break out.merged;
                    }
                    // The paper's wait-for-commit: the decision is already
                    // durable at the GTM, so the reader completes the local
                    // commits instead of blocking.
                    self.counters.upgrade_waits += out.upgrade_waits.len() as u64;
                    for w in out.upgrade_waits {
                        if !node.is_pending_commit(w) {
                            return Err(HdmError::TxnState(format!(
                                "UPGRADE wait on {w} which is not pending-commit"
                            )));
                        }
                        if node.finish_commit(w)? {
                            upgraded.push(w);
                        }
                    }
                }
            }
        };
        legs.insert(shard.raw(), Leg { xid, merged, epoch });
        // The reader just closed some other transaction's commit window;
        // that resolution must reach the shard's followers too.
        if self.cfg.replicas > 0 {
            for w in upgraded {
                if let Some(g) = self.nodes[shard.raw() as usize].mgr().gxid_of(w) {
                    self.replicas[shard.raw() as usize].resolve(g, true);
                }
            }
        }
        Ok(())
    }

    /// Commit `txn` (all phases).
    pub fn commit(&mut self, txn: Txn) -> Result<()> {
        match txn.kind {
            TxnKind::Baseline { .. } => self.commit_baseline(txn),
            TxnKind::LiteSingle {
                shard, xid, epoch, ..
            } => {
                self.check_node(shard)?;
                self.check_epoch(shard, epoch)?;
                let node = &mut self.nodes[shard.raw() as usize];
                let (ops, stmt) = node.commit_local(xid)?;
                if self.cfg.replicas > 0 && (!ops.is_empty() || stmt.is_some()) {
                    self.replicas[shard.raw() as usize]
                        .append(LogRecord::Commit { ops, stmt });
                }
                self.counters.single_shard_commits += 1;
                if let Some(t) = &self.tel {
                    t.commit_single.inc();
                }
                Ok(())
            }
            TxnKind::LiteMulti { .. } => {
                self.multi_prepare(&txn)?;
                self.multi_commit_at_gtm(&txn)?;
                self.multi_finish(txn)
            }
        }
    }

    fn commit_baseline(&mut self, txn: Txn) -> Result<()> {
        let TxnKind::Baseline { gxid, touched, .. } = txn.kind else {
            unreachable!()
        };
        // Multi-shard baseline pays 2PC prepare round-trips (counted as DN
        // work, not GTM work) and then one GTM commit interaction; visibility
        // flips atomically because all DNs consult the GTM's commit log.
        self.check_gtm()?;
        self.gtm.commit(gxid)?;
        self.counters.gtm_interactions += 1;
        for s in &touched {
            self.nodes[*s as usize].clear_undo(gxid);
        }
        if touched.len() > 1 {
            self.counters.multi_shard_commits += 1;
        } else {
            self.counters.single_shard_commits += 1;
        }
        if let Some(t) = &self.tel {
            if touched.len() > 1 {
                t.commit_distributed.inc();
            } else {
                t.commit_single.inc();
            }
        }
        Ok(())
    }

    /// 2PC phase 1 for a GTM-lite multi-shard transaction: prepare every leg.
    pub(crate) fn multi_prepare(&mut self, txn: &Txn) -> Result<()> {
        let TxnKind::LiteMulti { gxid, legs, .. } = &txn.kind else {
            return Err(HdmError::TxnState("multi_prepare on non-multi txn".into()));
        };
        if legs.is_empty() {
            return Ok(());
        }
        let participants: Vec<ShardId> =
            legs.keys().map(|&s| ShardId::new(s)).collect();
        let mut coord = TwoPcCoordinator::new(participants.clone());
        for (&s, leg) in legs {
            // A down (or fenced — its primary was replaced mid-transaction)
            // participant cannot vote: the prepare times out and the
            // coordinator counts the missing vote as a no (presumed abort).
            let reachable = !self.down[s as usize]
                && (self.cfg.replicas == 0 || self.epochs[s as usize] == leg.epoch);
            let mut vote_yes = false;
            if reachable {
                if let Ok((ops, stmt)) = self.nodes[s as usize].prepare_leg(leg.xid) {
                    vote_yes = true;
                    // Prepares ship their ops Raft-style: a promoted
                    // follower reconstructs the in-doubt leg from the log.
                    if self.cfg.replicas > 0 {
                        self.replicas[s as usize].append(LogRecord::Prepare {
                            gxid: *gxid,
                            ops,
                            stmt,
                        });
                    }
                }
            }
            if let Some(t) = &self.tel {
                if vote_yes {
                    t.prepare_yes.inc();
                } else {
                    t.prepare_no.inc();
                }
            }
            if let Some(Decision::Abort) = coord.vote(ShardId::new(s), vote_yes)? {
                return Err(HdmError::TxnAborted(format!(
                    "prepare failed on shard {s}"
                )));
            }
        }
        Ok(())
    }

    /// Commit decision at the GTM ("transactions are marked committed in GTM
    /// first and then on all nodes"). Legs become pending on their DNs; the
    /// Anomaly-1 window is open until [`Cluster::multi_finish`].
    pub(crate) fn multi_commit_at_gtm(&mut self, txn: &Txn) -> Result<()> {
        let TxnKind::LiteMulti { gxid, legs, .. } = &txn.kind else {
            return Err(HdmError::TxnState(
                "multi_commit_at_gtm on non-multi txn".into(),
            ));
        };
        self.check_gtm()?;
        self.gtm.commit(*gxid)?;
        self.counters.gtm_interactions += 1;
        // The GTM decision IS the commit point; finish legs only propagate
        // it. Counting here keeps the metric right for harnesses that
        // deliver finish confirmations leg-by-leg via `finish_leg`.
        if let Some(t) = &self.tel {
            t.commit_distributed.inc();
        }
        for (&s, leg) in legs {
            // A down or fenced leg cannot receive the decision message; its
            // durable prepare record resolves through the clog at restart
            // (or through the promoted primary's in-doubt pass) instead.
            if !self.down[s as usize]
                && (self.cfg.replicas == 0 || self.epochs[s as usize] == leg.epoch)
            {
                self.nodes[s as usize].mark_pending_commit(leg.xid);
            }
        }
        Ok(())
    }

    /// Deliver the commit confirmations to every leg's DN, closing the
    /// window. Idempotent per leg (a reader's UPGRADE may have finished some
    /// legs already).
    pub(crate) fn multi_finish(&mut self, txn: Txn) -> Result<()> {
        let TxnKind::LiteMulti { gxid, legs, .. } = txn.kind else {
            return Err(HdmError::TxnState("multi_finish on non-multi txn".into()));
        };
        for (&s, leg) in &legs {
            // The decision is durable at the GTM; a down or fenced leg
            // completes via in-doubt recovery when it restarts (or on the
            // promoted primary), so skipping it here cannot lose the commit.
            if self.down[s as usize]
                || (self.cfg.replicas > 0 && self.epochs[s as usize] != leg.epoch)
            {
                continue;
            }
            let node = &mut self.nodes[s as usize];
            let flipped = node.finish_commit(leg.xid)?;
            if self.cfg.lco_prune_horizon > 0 {
                node.mgr_mut().prune_lco(self.cfg.lco_prune_horizon);
            }
            if let Some(t) = &self.tel {
                t.leg_finish.inc();
            }
            if flipped && self.cfg.replicas > 0 {
                self.replicas[s as usize].resolve(gxid, true);
            }
        }
        self.counters.multi_shard_commits += 1;
        Ok(())
    }

    /// Deliver the commit confirmation to **one** leg — the retransmission
    /// unit of the 2PC finish phase. Fails with `Unavailable` while the
    /// leg's node is down (the coordinator backs off and retries); succeeds
    /// as a no-op if in-doubt recovery already completed the leg.
    pub(crate) fn finish_leg(&mut self, shard: ShardId, local_xid: Xid) -> Result<()> {
        self.check_node(shard)?;
        let node = &mut self.nodes[shard.raw() as usize];
        let flipped = node.finish_commit(local_xid)?;
        if self.cfg.lco_prune_horizon > 0 {
            let horizon = self.cfg.lco_prune_horizon;
            node.mgr_mut().prune_lco(horizon);
        }
        if let Some(t) = &self.tel {
            t.leg_finish.inc();
        }
        if flipped && self.cfg.replicas > 0 {
            if let Some(g) = self.nodes[shard.raw() as usize].mgr().gxid_of(local_xid) {
                self.replicas[shard.raw() as usize].resolve(g, true);
            }
        }
        Ok(())
    }

    /// Abort `txn`, rolling back its writes everywhere.
    ///
    /// Fault-tolerant: legs on down nodes are skipped (their in-progress
    /// state died with the crash; prepared ones resolve presumed-abort from
    /// the clog at restart), legs crash recovery already terminated are left
    /// alone, and a down GTM is skipped (its recovered clog presumes the
    /// abort anyway). The happy path is unchanged.
    pub fn abort(&mut self, txn: Txn) -> Result<()> {
        self.counters.aborts += 1;
        if let Some(t) = &self.tel {
            t.aborts.inc();
        }
        match txn.kind {
            TxnKind::Baseline { gxid, touched, .. } => {
                for s in &touched {
                    self.nodes[*s as usize].rollback_writes(gxid)?;
                }
                self.gtm.abort(gxid)?;
                self.counters.gtm_interactions += 1;
                Ok(())
            }
            TxnKind::LiteSingle {
                shard, xid, epoch, ..
            } => {
                let i = shard.raw() as usize;
                if self.down[i] || (self.cfg.replicas > 0 && self.epochs[i] != epoch) {
                    // Died with the crash (a fenced xid never reached the
                    // promoted primary, and its volatile state died with the
                    // old one).
                    return Ok(());
                }
                let node = &mut self.nodes[i];
                if node.mgr().is_active(xid) {
                    node.rollback_writes(xid)?;
                    node.mgr_mut().abort(xid)?;
                }
                Ok(())
            }
            TxnKind::LiteMulti { gxid, legs, .. } => {
                for (&s, leg) in &legs {
                    if self.down[s as usize]
                        || (self.cfg.replicas > 0 && self.epochs[s as usize] != leg.epoch)
                    {
                        continue;
                    }
                    let node = &mut self.nodes[s as usize];
                    let status = node.mgr().status(leg.xid);
                    if matches!(status, TxnStatus::InProgress | TxnStatus::Prepared) {
                        node.rollback_writes(leg.xid)?;
                        node.mgr_mut().abort(leg.xid)?;
                        // A prepared leg shipped a Prepare record; followers
                        // must learn the abort or the leg stays in doubt on
                        // a future promoted primary.
                        if status == TxnStatus::Prepared && self.cfg.replicas > 0 {
                            self.replicas[s as usize].resolve(gxid, false);
                        }
                    }
                }
                if self.gtm_up {
                    // Tolerate gxids a recovered GTM already resolved (or
                    // never observed).
                    let _ = self.gtm.abort(gxid);
                    self.counters.gtm_interactions += 1;
                }
                Ok(())
            }
        }
    }

    /// Ask the GTM for the final verdict on `gxid` — the coordinator's last
    /// step before confirming a commit to the client. `false` means the
    /// transaction was (or will be, everywhere) resolved aborted; after a
    /// GTM crash this is exactly the presumed-abort rule applied to the
    /// recovered clog.
    pub fn gtm_commit_status(&mut self, gxid: Xid) -> Result<bool> {
        self.check_gtm()?;
        self.counters.gtm_interactions += 1;
        Ok(self.gtm.is_committed(gxid))
    }

    /// Report one coalesced GTM service event of `size` requests — the
    /// timed harness's group-commit window feeding the functional GTM's
    /// batch counters and `gtm.batch.*` series (the timing itself is the
    /// harness's job).
    pub fn note_gtm_batch(&mut self, size: u64) {
        self.gtm.note_batch(size);
    }

    /// Record one CN-side retry (the timed harnesses charge backoff latency
    /// themselves; the engine just keeps the count observable).
    pub fn record_retry(&mut self) {
        self.counters.retries += 1;
        if let Some(t) = &self.tel {
            t.retries.inc();
        }
    }

    /// A consistent snapshot of every shard's visible `(key, value)` pairs
    /// — the HTAP replica-sync read path ("eliminating the analytic latency
    /// and data movement across OLAP and OLTP database management systems",
    /// §II-A: the analytical side reads the transactional state directly).
    pub fn snapshot_all(&self) -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        match self.cfg.protocol {
            Protocol::Baseline => {
                let snap = self.gtm.peek_snapshot();
                for node in &self.nodes {
                    let judge = SnapshotVisibility::new(&snap, self.gtm.clog(), None);
                    out.extend(node.snapshot_rows(&judge));
                }
            }
            Protocol::GtmLite => {
                for node in &self.nodes {
                    let snap = node.local_snapshot();
                    let judge = SnapshotVisibility::new(&snap, node.mgr().clog(), None);
                    out.extend(node.snapshot_rows(&judge));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Convenience for benches/tests: run a read-your-writes transaction
    /// that bumps `key` by `delta`, committing it. Returns the new value.
    pub fn bump(&mut self, single_prefix: Option<u32>, key: i64, delta: i64) -> Result<i64> {
        let mut txn = match single_prefix {
            Some(p) => self.begin(TxnOptions::single(p))?,
            None => self.begin(TxnOptions::multi())?,
        };
        let old = match self.get(&mut txn, key) {
            Ok(v) => v.unwrap_or(0),
            Err(e) => {
                self.abort(txn)?;
                return Err(e);
            }
        };
        let new = old + delta;
        if let Err(e) = self.put(&mut txn, key, new) {
            self.abort(txn)?;
            return Err(e);
        }
        self.commit(txn)?;
        Ok(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::make_key;

    fn lite(shards: usize) -> Cluster {
        Cluster::new(ClusterConfig::gtm_lite(shards))
    }

    fn baseline(shards: usize) -> Cluster {
        Cluster::new(ClusterConfig::baseline(shards))
    }

    #[test]
    fn lite_single_shard_never_touches_gtm() {
        let mut c = lite(4);
        for w in 0..8u32 {
            c.bump(Some(w), make_key(w, 1), 5).unwrap();
        }
        assert_eq!(c.counters().gtm_interactions, 0);
        assert_eq!(c.counters().single_shard_commits, 8);
        assert_eq!(c.gtm().counters().total(), 0);
    }

    #[test]
    fn baseline_always_touches_gtm() {
        let mut c = baseline(4);
        for w in 0..8u32 {
            c.bump(Some(w), make_key(w, 1), 5).unwrap();
        }
        // 2 interactions at begin (+1 at commit) per transaction.
        assert_eq!(c.counters().gtm_interactions, 8 * 3);
    }

    #[test]
    fn lite_multi_shard_reads_own_writes_and_commits() {
        let mut c = lite(4);
        let mut t = c.begin(TxnOptions::multi()).unwrap();
        let (k1, k2) = (make_key(0, 1), make_key(1, 1));
        c.put(&mut t, k1, 10).unwrap();
        c.put(&mut t, k2, 20).unwrap();
        assert_eq!(c.get(&mut t, k1).unwrap(), Some(10));
        c.commit(t).unwrap();

        let mut r = c.begin(TxnOptions::multi()).unwrap();
        assert_eq!(c.get(&mut r, k1).unwrap(), Some(10));
        assert_eq!(c.get(&mut r, k2).unwrap(), Some(20));
        c.commit(r).unwrap();
        // Both the writer and the reader committed as multi-shard.
        assert_eq!(c.counters().multi_shard_commits, 2);
    }

    #[test]
    fn values_survive_protocol_mix_of_readers_and_writers() {
        let mut c = lite(2);
        let k = make_key(3, 9);
        c.bump(Some(3), k, 7).unwrap();
        c.bump(None, k, 3).unwrap(); // multi-shard writer on same key
        assert_eq!(c.bump(Some(3), k, 0).unwrap(), 10);
    }

    #[test]
    fn abort_rolls_back_across_shards() {
        let mut c = lite(4);
        let (k1, k2) = (make_key(0, 1), make_key(1, 1));
        c.bump(None, k1, 1).unwrap();
        c.bump(None, k2, 2).unwrap();

        let mut t = c.begin(TxnOptions::multi()).unwrap();
        c.put(&mut t, k1, 100).unwrap();
        c.put(&mut t, k2, 200).unwrap();
        c.abort(t).unwrap();

        let mut r = c.begin(TxnOptions::multi()).unwrap();
        assert_eq!(c.get(&mut r, k1).unwrap(), Some(1));
        assert_eq!(c.get(&mut r, k2).unwrap(), Some(2));
        c.commit(r).unwrap();
    }

    #[test]
    fn single_shard_txn_rejects_foreign_keys() {
        let mut c = lite(4);
        // Find two prefixes on different shards.
        let (a, b) = {
            let m = c.shard_map();
            let mut found = (0u32, 0u32);
            'outer: for x in 0..16 {
                for y in 0..16 {
                    if m.shard_of_prefix(x) != m.shard_of_prefix(y) {
                        found = (x, y);
                        break 'outer;
                    }
                }
            }
            found
        };
        let mut t = c.begin(TxnOptions::single(a)).unwrap();
        let err = c.get(&mut t, make_key(b, 0)).unwrap_err();
        assert_eq!(err.class(), "txn_state");
    }

    #[test]
    fn baseline_multi_shard_is_atomic() {
        let mut c = baseline(4);
        let (k1, k2) = (make_key(0, 1), make_key(1, 1));
        let mut t = c.begin(TxnOptions::multi()).unwrap();
        c.put(&mut t, k1, 5).unwrap();
        c.put(&mut t, k2, 6).unwrap();
        c.commit(t).unwrap();
        let mut r = c.begin(TxnOptions::multi()).unwrap();
        assert_eq!(c.get(&mut r, k1).unwrap(), Some(5));
        assert_eq!(c.get(&mut r, k2).unwrap(), Some(6));
        c.commit(r).unwrap();
    }

    #[test]
    fn write_write_conflict_aborts_loser() {
        let mut c = lite(1);
        let k = make_key(0, 1);
        c.bump(Some(0), k, 1).unwrap();
        let mut t1 = c.begin(TxnOptions::single(0)).unwrap();
        let mut t2 = c.begin(TxnOptions::single(0)).unwrap();
        c.put(&mut t1, k, 10).unwrap();
        let err = c.put(&mut t2, k, 20).unwrap_err();
        assert_eq!(err.class(), "txn_aborted");
        c.abort(t2).unwrap();
        c.commit(t1).unwrap();
        assert_eq!(c.bump(Some(0), k, 0).unwrap(), 10);
    }

    /// Two prefixes guaranteed to live on different shards.
    fn two_shards(c: &Cluster) -> (u32, u32) {
        let m = c.shard_map();
        for x in 0..16u32 {
            for y in 0..16u32 {
                if m.shard_of_prefix(x) != m.shard_of_prefix(y) {
                    return (x, y);
                }
            }
        }
        panic!("cluster has one shard");
    }

    #[test]
    fn crash_releases_in_progress_locks_and_rolls_back() {
        let mut c = lite(4);
        let (p1, p2) = two_shards(&c);
        let (k1, k2) = (make_key(p1, 1), make_key(p2, 1));
        c.bump(None, k1, 5).unwrap();

        let mut t = c.begin(TxnOptions::multi()).unwrap();
        c.put(&mut t, k1, 100).unwrap();
        c.put(&mut t, k2, 200).unwrap();
        let s1 = c.shard_map().shard_of_prefix(p1);
        c.crash_node(s1);
        assert!(!c.is_node_up(s1));
        assert_eq!(c.get(&mut t, k1).unwrap_err().class(), "unavailable");
        c.restart_node(s1);

        // The crashed leg's write is gone and its lock released: a fresh
        // writer takes the key without conflict.
        assert_eq!(c.bump(Some(p1), k1, 1).unwrap(), 6);
        assert_eq!(c.node(s1).undo_len(), 0);
        // The surviving leg is still in progress; abort the handle cleanly.
        c.abort(t).unwrap();
        assert_eq!(c.counters().dn_crashes, 1);
        assert_eq!(c.counters().dn_restarts, 1);
    }

    #[test]
    fn dn_crash_between_prepare_and_decision_recovers_the_commit() {
        // The scripted scenario: a participant votes yes, crashes before the
        // decision arrives, and must learn the commit from the coordinator's
        // log at restart — releasing its locks and undo, losing nothing.
        let mut c = lite(4);
        let (p1, p2) = two_shards(&c);
        let (k1, k2) = (make_key(p1, 1), make_key(p2, 1));

        let mut t = c.begin(TxnOptions::multi()).unwrap();
        c.put(&mut t, k1, 11).unwrap();
        c.put(&mut t, k2, 22).unwrap();
        c.multi_prepare(&t).unwrap();

        let s1 = c.shard_map().shard_of_prefix(p1);
        c.crash_node(s1); // crash in the in-doubt window
        assert_eq!(c.node(s1).in_doubt_legs().len(), 1, "leg survives in doubt");

        // The decision still lands at the GTM; the down leg's confirmation
        // is skipped (it will resolve from the clog instead).
        c.multi_commit_at_gtm(&t).unwrap();
        for (s, x) in t.legs() {
            if s != s1 {
                c.finish_leg(s, x).unwrap();
            }
        }

        c.restart_node(s1);
        // In-doubt resolution committed the leg: value visible, no leaks.
        assert_eq!(c.bump(Some(p1), k1, 0).unwrap(), 11);
        assert_eq!(c.bump(Some(p2), k2, 0).unwrap(), 22);
        assert!(c.node(s1).in_doubt_legs().is_empty());
        assert_eq!(c.node(s1).undo_len(), 0);
        assert_eq!(c.node(s1).mgr().active_count(), 0);
        assert_eq!(c.counters().in_doubt_commits, 1);
    }

    #[test]
    fn dn_crash_with_no_decision_presumes_abort() {
        let mut c = lite(4);
        let (p1, p2) = two_shards(&c);
        let (k1, k2) = (make_key(p1, 1), make_key(p2, 1));
        c.bump(None, k1, 5).unwrap();

        let mut t = c.begin(TxnOptions::multi()).unwrap();
        c.put(&mut t, k1, 100).unwrap();
        c.put(&mut t, k2, 200).unwrap();
        c.multi_prepare(&t).unwrap();
        let s1 = c.shard_map().shard_of_prefix(p1);
        c.crash_node(s1);

        // The coordinator gives up and aborts instead of deciding commit.
        c.abort(t).unwrap();
        c.restart_node(s1);

        // Presumed abort resolved the in-doubt leg: old value restored.
        assert_eq!(c.bump(Some(p1), k1, 0).unwrap(), 5);
        assert!(c.node(s1).in_doubt_legs().is_empty());
        assert_eq!(c.node(s1).undo_len(), 0);
        assert_eq!(c.counters().in_doubt_aborts, 1);
    }

    #[test]
    fn down_participant_makes_prepare_vote_no() {
        let mut c = lite(4);
        let (p1, p2) = two_shards(&c);
        let mut t = c.begin(TxnOptions::multi()).unwrap();
        c.put(&mut t, make_key(p1, 1), 1).unwrap();
        c.put(&mut t, make_key(p2, 1), 2).unwrap();
        c.crash_node(c.shard_map().shard_of_prefix(p2));
        let err = c.multi_prepare(&t).unwrap_err();
        assert_eq!(err.class(), "txn_aborted");
        c.abort(t).unwrap();
    }

    #[test]
    fn gtm_restart_rebuilds_decisions_from_dn_clogs() {
        let mut c = lite(4);
        let (p1, p2) = two_shards(&c);
        let (k1, k2) = (make_key(p1, 1), make_key(p2, 1));

        // A fully finished multi-shard commit: evidence in every DN clog.
        let mut t = c.begin(TxnOptions::multi()).unwrap();
        c.put(&mut t, k1, 7).unwrap();
        c.put(&mut t, k2, 8).unwrap();
        let gxid = t.gxid().unwrap();
        c.commit(t).unwrap();

        c.crash_gtm();
        assert!(!c.is_gtm_up());
        assert_eq!(c.begin(TxnOptions::multi()).unwrap_err().class(), "unavailable");
        c.restart_gtm();

        // The recovered GTM remembers the commit and never reuses the gxid.
        assert!(c.gtm_commit_status(gxid).unwrap());
        let t2 = c.begin(TxnOptions::multi()).unwrap();
        assert!(t2.gxid().unwrap() > gxid);
        c.abort(t2).unwrap();
        assert_eq!(c.counters().gtm_restarts, 1);
    }

    #[test]
    fn pending_marker_on_live_node_survives_gtm_crash_as_commit_evidence() {
        // Decision reached the DNs (markers set) but no leg has applied it
        // when the GTM dies. The live nodes' markers are the only evidence
        // of the commit — recovery must honour them.
        let mut c = lite(4);
        let (p1, p2) = two_shards(&c);
        let (k1, k2) = (make_key(p1, 1), make_key(p2, 1));

        let t = {
            let mut t = c.begin(TxnOptions::multi()).unwrap();
            c.put(&mut t, k1, 31).unwrap();
            c.put(&mut t, k2, 32).unwrap();
            c.multi_prepare(&t).unwrap();
            c.multi_commit_at_gtm(&t).unwrap();
            t
        };
        let gxid = t.gxid().unwrap();

        c.crash_gtm();
        c.restart_gtm();

        // Recovery turned the markers into commits on every live node.
        assert!(c.gtm_commit_status(gxid).unwrap());
        assert_eq!(c.bump(Some(p1), k1, 0).unwrap(), 31);
        assert_eq!(c.bump(Some(p2), k2, 0).unwrap(), 32);
        // The client's finish retransmissions are clean no-ops.
        for (s, x) in t.legs() {
            c.finish_leg(s, x).unwrap();
        }
        for s in 0..4 {
            assert_eq!(c.node(ShardId::new(s)).pending_commit_len(), 0);
        }
    }

    #[test]
    fn undecided_txn_dies_with_the_gtm() {
        // Prepared everywhere but never decided: a GTM crash erases the
        // in-flight transaction, and recovery presumes the abort.
        let mut c = lite(4);
        let (p1, p2) = two_shards(&c);
        let (k1, k2) = (make_key(p1, 1), make_key(p2, 1));
        c.bump(None, k1, 5).unwrap();

        let mut t = c.begin(TxnOptions::multi()).unwrap();
        c.put(&mut t, k1, 100).unwrap();
        c.put(&mut t, k2, 200).unwrap();
        c.multi_prepare(&t).unwrap();
        let gxid = t.gxid().unwrap();

        c.crash_gtm();
        assert_eq!(c.multi_commit_at_gtm(&t).unwrap_err().class(), "unavailable");
        c.restart_gtm();

        // The recovered GTM observed only prepared legs: presumed abort.
        assert!(!c.gtm_commit_status(gxid).unwrap());
        // Its in-doubt legs were resolved aborted at recovery, so the
        // coordinator's late commit attempt must fail...
        assert!(c.multi_commit_at_gtm(&t).is_err());
        // ...and aborting the handle cleans up what is left.
        c.abort(t).unwrap();
        assert_eq!(c.bump(Some(p1), k1, 0).unwrap(), 5);
        for s in 0..4 {
            let node = c.node(ShardId::new(s));
            assert!(node.in_doubt_legs().is_empty());
            assert_eq!(node.undo_len(), 0);
        }
    }

    #[test]
    fn node_restart_inquiry_forces_abort_of_undecided_gxid() {
        // The 2PC race: a participant recovers mid-protocol, before the
        // coordinator decided. Its inquiry must force the global abort so
        // the coordinator cannot commit afterwards.
        let mut c = lite(4);
        let (p1, p2) = two_shards(&c);
        let mut t = c.begin(TxnOptions::multi()).unwrap();
        c.put(&mut t, make_key(p1, 1), 1).unwrap();
        c.put(&mut t, make_key(p2, 1), 2).unwrap();
        c.multi_prepare(&t).unwrap();

        let s1 = c.shard_map().shard_of_prefix(p1);
        c.crash_node(s1);
        c.restart_node(s1); // inquiry resolves presumed-abort at the GTM

        let err = c.multi_commit_at_gtm(&t).unwrap_err();
        assert_eq!(err.class(), "txn_state", "late commit must be rejected");
        c.abort(t).unwrap();
        assert_eq!(c.counters().in_doubt_aborts, 1);
    }

    #[test]
    fn single_shard_traffic_survives_a_gtm_outage() {
        let mut c = lite(4);
        let (p1, _) = two_shards(&c);
        let k = make_key(p1, 1);
        c.crash_gtm();
        // The GTM-lite availability argument: single-shard work proceeds.
        for _ in 0..10 {
            c.bump(Some(p1), k, 1).unwrap();
        }
        assert!(c.begin(TxnOptions::multi()).is_err());
        c.restart_gtm();
        assert_eq!(c.bump(Some(p1), k, 0).unwrap(), 10);
    }

    #[test]
    fn crash_and_restart_are_idempotent() {
        let mut c = lite(2);
        let s = ShardId::new(0);
        c.crash_node(s);
        c.crash_node(s);
        c.restart_node(s);
        c.restart_node(s);
        c.crash_gtm();
        c.crash_gtm();
        c.restart_gtm();
        c.restart_gtm();
        let n = c.counters();
        assert_eq!((n.dn_crashes, n.dn_restarts), (1, 1));
        assert_eq!((n.gtm_crashes, n.gtm_restarts), (1, 1));
    }

    #[test]
    fn telemetry_labels_paths_and_survives_gtm_recovery() {
        let tel = Telemetry::simulated();
        let mut c = lite(4);
        c.attach_telemetry(&tel);
        let (p1, p2) = two_shards(&c);
        let (k1, k2) = (make_key(p1, 1), make_key(p2, 1));

        c.bump(Some(p1), k1, 5).unwrap(); // single-shard fast path
        c.bump(None, k2, 7).unwrap(); // distributed 2PC
        let t = c.begin(TxnOptions::multi()).unwrap();
        c.abort(t).unwrap();

        // Crash/restart: the recovered GTM must keep feeding the series.
        c.crash_gtm();
        c.restart_gtm();
        c.bump(None, k2, 1).unwrap();

        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("txn.begin{path=single}"), 1);
        assert_eq!(snap.counter("txn.begin{path=distributed}"), 3);
        assert_eq!(snap.counter("txn.commit{path=single}"), 1);
        assert_eq!(snap.counter("txn.commit{path=distributed}"), 2);
        assert_eq!(snap.counter("txn.abort"), 1);
        assert_eq!(snap.counter("twopc.leg.prepare{vote=yes}"), 2);
        assert_eq!(snap.counter("twopc.leg.finish"), 2);
        assert_eq!(snap.counter("recovery.restart{target=gtm}"), 1);
        assert!(
            snap.counter("gtm.begin") >= 3,
            "recovered GTM keeps counting begins: {snap:?}"
        );
        // Crash + restart landed in the trace as instantaneous spans.
        let spans = tel.tracer.finished();
        assert!(spans.iter().any(|s| s.name == "crash" && s.field("target") == Some("gtm")));
        assert!(spans.iter().any(|s| s.name == "restart" && s.field("target") == Some("gtm")));
    }

    #[test]
    fn snapshot_cache_hits_between_commits_and_saves_interactions() {
        let tel = Telemetry::simulated();
        let mut cfg = ClusterConfig::gtm_lite(4);
        cfg.snapshot_cache = true;
        let mut c = Cluster::new(cfg);
        c.attach_telemetry(&tel);

        // Three concurrent multi-shard begins with no intervening commit:
        // one miss fills the cache, the next two hit.
        let t1 = c.begin(TxnOptions::multi()).unwrap();
        let t2 = c.begin(TxnOptions::multi()).unwrap();
        let t3 = c.begin(TxnOptions::multi()).unwrap();
        let n = c.counters();
        assert_eq!(n.snapshot_cache_misses, 1);
        assert_eq!(n.snapshot_cache_hits, 2);
        // 3 gxid allocations + 1 snapshot instead of 3+3.
        assert_eq!(n.gtm_interactions, 4);

        // Aborts do not bump the CSN: the cache stays valid.
        c.abort(t1).unwrap();
        let t4 = c.begin(TxnOptions::multi()).unwrap();
        assert_eq!(c.counters().snapshot_cache_hits, 3);

        // A commit bumps the CSN: the next begin must refresh.
        let mut w = t2;
        c.put(&mut w, make_key(0, 1), 1).unwrap();
        c.put(&mut w, make_key(1, 1), 1).unwrap();
        c.commit(w).unwrap();
        let t5 = c.begin(TxnOptions::multi()).unwrap();
        let n = c.counters();
        assert_eq!(n.snapshot_cache_misses, 2, "post-commit begin refreshes");
        assert_eq!(n.snapshot_cache_hits, 3);

        for t in [t3, t4, t5] {
            c.abort(t).unwrap();
        }
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("gtm.snapshot_cache{result=hit}"), 3);
        assert_eq!(snap.counter("gtm.snapshot_cache{result=miss}"), 2);
    }

    #[test]
    fn snapshot_cache_preserves_visibility_under_mixed_load() {
        // The same scripted workload with and without the cache must agree
        // on every read and on the final committed state.
        let run = |cache: bool| {
            let mut cfg = ClusterConfig::gtm_lite(4);
            cfg.snapshot_cache = cache;
            let mut c = Cluster::new(cfg);
            let mut reads = Vec::new();
            for i in 0..12u32 {
                let k1 = make_key(i % 4, i);
                let k2 = make_key((i + 1) % 4, i);
                let v = i as i64 * 10;
                let mut w = c.begin(TxnOptions::multi()).unwrap();
                c.put(&mut w, k1, v).unwrap();
                c.put(&mut w, k2, v + 1).unwrap();
                // A concurrent reader begun mid-write sees a consistent view.
                let mut r = c.begin(TxnOptions::multi()).unwrap();
                reads.push(c.get(&mut r, k1).unwrap());
                c.commit(w).unwrap();
                reads.push(c.get(&mut r, k1).unwrap());
                c.commit(r).unwrap();
            }
            (reads, c.snapshot_all(), c.counters().multi_shard_commits)
        };
        let (reads_off, state_off, commits_off) = run(false);
        let (reads_on, state_on, commits_on) = run(true);
        assert_eq!(reads_off, reads_on, "cache changed a read result");
        assert_eq!(state_off, state_on, "cache changed the final state");
        assert_eq!(commits_off, commits_on);
    }

    #[test]
    fn snapshot_cache_cleared_by_gtm_crash_and_restart() {
        let mut cfg = ClusterConfig::gtm_lite(2);
        cfg.snapshot_cache = true;
        let mut c = Cluster::new(cfg);
        let t1 = c.begin(TxnOptions::multi()).unwrap();
        let t2 = c.begin(TxnOptions::multi()).unwrap();
        assert_eq!(c.counters().snapshot_cache_hits, 1);
        c.abort(t1).unwrap();
        c.abort(t2).unwrap();

        c.crash_gtm();
        c.restart_gtm();

        // The recovered GTM restarted its epoch: no stale hit allowed.
        let t3 = c.begin(TxnOptions::multi()).unwrap();
        let n = c.counters();
        assert_eq!(n.snapshot_cache_misses, 2, "post-recovery begin refreshes");
        assert_eq!(n.snapshot_cache_hits, 1);
        c.abort(t3).unwrap();
    }

    #[test]
    fn deprecated_quartet_still_routes_through_begin() {
        #![allow(deprecated)]
        let mut c = lite(4);
        let (p1, _) = two_shards(&c);
        let t = c.begin_single(p1);
        c.commit(t).unwrap();
        let t = c.try_begin_single(p1).unwrap();
        c.commit(t).unwrap();
        let t = c.begin_multi();
        c.abort(t).unwrap();
        let t = c.try_begin_multi().unwrap();
        c.abort(t).unwrap();
        let n = c.counters();
        assert_eq!(n.single_shard_commits, 2);
        assert_eq!(n.aborts, 2);
        c.crash_gtm();
        assert_eq!(c.try_begin_multi().unwrap_err().class(), "unavailable");
    }

    #[test]
    fn lco_pruning_keeps_merges_bounded() {
        let mut cfg = ClusterConfig::gtm_lite(2);
        cfg.lco_prune_horizon = 16;
        let mut c = Cluster::new(cfg);
        for i in 0..100 {
            c.bump(None, make_key(0, i), 1).unwrap();
        }
        assert!(c.node(ShardId::new(0)).mgr().lco().len() <= 16 + 1);
    }
}

//! Continuous queries over time-series streams.
//!
//! §II-B: "We integrate two languages in our SQL extensions: the Gremlin
//! language … and a **continuous query language used in streaming
//! processing**." A continuous query is a standing tumbling-window
//! aggregation over one ingestion stream: every time the stream's watermark
//! crosses a window boundary, the window's aggregate is emitted — optionally
//! gated by a HAVING-style threshold (the alerting pattern: "emit when the
//! average speed in a 1-minute window exceeds 120").
//!
//! Late points (behind the watermark's window) are counted and dropped,
//! the standard tumbling-window discipline.

use hdm_common::{HdmError, Result};

/// Aggregate function of a continuous query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamAgg {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// Threshold gate: emit only when the aggregate compares true.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    Always,
    GreaterThan(f64),
    LessThan(f64),
}

impl Gate {
    fn passes(&self, v: f64) -> bool {
        match self {
            Gate::Always => true,
            Gate::GreaterThan(t) => v > *t,
            Gate::LessThan(t) => v < *t,
        }
    }
}

/// A standing query definition.
#[derive(Debug, Clone)]
pub struct ContinuousQuery {
    pub name: String,
    /// Which ingestion stream (series name) it listens to.
    pub series: String,
    /// Tumbling window width (µs).
    pub window_us: i64,
    pub agg: StreamAgg,
    /// Only points with this tag (None = all points).
    pub tag_filter: Option<String>,
    pub gate: Gate,
}

/// One emitted window result.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowEvent {
    pub query: String,
    pub window_start: i64,
    pub window_end: i64,
    pub value: f64,
    pub count: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct Acc {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Acc {
    fn update(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    fn finish(&self, agg: StreamAgg) -> f64 {
        match agg {
            StreamAgg::Count => self.count as f64,
            StreamAgg::Sum => self.sum,
            StreamAgg::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum / self.count as f64
                }
            }
            StreamAgg::Min => self.min,
            StreamAgg::Max => self.max,
        }
    }
}

#[derive(Debug)]
struct QueryState {
    q: ContinuousQuery,
    window_key: Option<i64>,
    acc: Acc,
    late_points: u64,
}

/// The continuous-query engine: feed points, collect window events.
#[derive(Debug, Default)]
pub struct StreamEngine {
    queries: Vec<QueryState>,
    pending: Vec<WindowEvent>,
}

impl StreamEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a standing query.
    pub fn register(&mut self, q: ContinuousQuery) -> Result<()> {
        if q.window_us <= 0 {
            return Err(HdmError::Config(format!(
                "continuous query {}: window must be positive",
                q.name
            )));
        }
        if self.queries.iter().any(|s| s.q.name == q.name) {
            return Err(HdmError::Config(format!(
                "continuous query {} already registered",
                q.name
            )));
        }
        self.queries.push(QueryState {
            q,
            window_key: None,
            acc: Acc::default(),
            late_points: 0,
        });
        Ok(())
    }

    pub fn query_names(&self) -> Vec<&str> {
        self.queries.iter().map(|s| s.q.name.as_str()).collect()
    }

    /// Late points dropped by a query so far.
    pub fn late_points(&self, name: &str) -> Option<u64> {
        self.queries
            .iter()
            .find(|s| s.q.name == name)
            .map(|s| s.late_points)
    }

    /// Feed one ingested point; completed windows land in the pending queue.
    pub fn on_point(&mut self, series: &str, ts: i64, tag: &str, value: f64) {
        for s in &mut self.queries {
            if s.q.series != series {
                continue;
            }
            if let Some(f) = &s.q.tag_filter {
                if f != tag {
                    continue;
                }
            }
            let key = ts.div_euclid(s.q.window_us);
            match s.window_key {
                None => {
                    s.window_key = Some(key);
                    s.acc.update(value);
                }
                Some(cur) if key == cur => s.acc.update(value),
                Some(cur) if key < cur => s.late_points += 1,
                Some(cur) => {
                    // Watermark crossed: close the current window.
                    let value_out = s.acc.finish(s.q.agg);
                    if s.q.gate.passes(value_out) && s.acc.count > 0 {
                        self.pending.push(WindowEvent {
                            query: s.q.name.clone(),
                            window_start: cur * s.q.window_us,
                            window_end: (cur + 1) * s.q.window_us,
                            value: value_out,
                            count: s.acc.count,
                        });
                    }
                    s.window_key = Some(key);
                    s.acc = Acc::default();
                    s.acc.update(value);
                }
            }
        }
    }

    /// Force-close all open windows (end of stream / checkpoint).
    pub fn flush(&mut self) {
        for s in &mut self.queries {
            if let Some(cur) = s.window_key.take() {
                let value_out = s.acc.finish(s.q.agg);
                if s.q.gate.passes(value_out) && s.acc.count > 0 {
                    self.pending.push(WindowEvent {
                        query: s.q.name.clone(),
                        window_start: cur * s.q.window_us,
                        window_end: (cur + 1) * s.q.window_us,
                        value: value_out,
                        count: s.acc.count,
                    });
                }
                s.acc = Acc::default();
            }
        }
    }

    /// Drain emitted window events.
    pub fn take_events(&mut self) -> Vec<WindowEvent> {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed_query(gate: Gate) -> ContinuousQuery {
        ContinuousQuery {
            name: "avg_speed".into(),
            series: "speed".into(),
            window_us: 1_000,
            agg: StreamAgg::Avg,
            tag_filter: None,
            gate,
        }
    }

    #[test]
    fn tumbling_windows_emit_on_boundary_crossing() {
        let mut e = StreamEngine::new();
        e.register(speed_query(Gate::Always)).unwrap();
        for ts in [0i64, 250, 900] {
            e.on_point("speed", ts, "car-1", 100.0);
        }
        assert!(e.take_events().is_empty(), "window still open");
        e.on_point("speed", 1_100, "car-1", 50.0); // crosses boundary
        let ev = e.take_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].window_start, 0);
        assert_eq!(ev[0].window_end, 1_000);
        assert_eq!(ev[0].value, 100.0);
        assert_eq!(ev[0].count, 3);
    }

    #[test]
    fn gate_filters_quiet_windows() {
        let mut e = StreamEngine::new();
        e.register(speed_query(Gate::GreaterThan(120.0))).unwrap();
        // Window 0: avg 90 (quiet). Window 1: avg 150 (alert).
        e.on_point("speed", 100, "car-1", 90.0);
        e.on_point("speed", 1_100, "car-1", 150.0);
        e.on_point("speed", 2_100, "car-1", 80.0);
        let ev = e.take_events();
        assert_eq!(ev.len(), 1, "only the speeding window");
        assert_eq!(ev[0].value, 150.0);
        assert_eq!(ev[0].window_start, 1_000);
    }

    #[test]
    fn tag_filter_scopes_the_stream() {
        let mut e = StreamEngine::new();
        let mut q = speed_query(Gate::Always);
        q.tag_filter = Some("car-7".into());
        q.agg = StreamAgg::Count;
        e.register(q).unwrap();
        for tag in ["car-1", "car-7", "car-7", "car-2"] {
            e.on_point("speed", 10, tag, 1.0);
        }
        e.on_point("speed", 1_500, "car-7", 1.0);
        let ev = e.take_events();
        assert_eq!(ev[0].count, 2, "only car-7 points counted");
    }

    #[test]
    fn late_points_are_dropped_and_counted() {
        let mut e = StreamEngine::new();
        e.register(speed_query(Gate::Always)).unwrap();
        e.on_point("speed", 2_500, "c", 10.0);
        e.on_point("speed", 500, "c", 99.0); // behind the watermark
        assert_eq!(e.late_points("avg_speed"), Some(1));
        e.on_point("speed", 3_500, "c", 20.0);
        let ev = e.take_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].value, 10.0, "late point did not pollute the window");
    }

    #[test]
    fn flush_closes_open_windows() {
        let mut e = StreamEngine::new();
        e.register(speed_query(Gate::Always)).unwrap();
        e.on_point("speed", 100, "c", 42.0);
        e.flush();
        let ev = e.take_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].value, 42.0);
        // Flushing again emits nothing.
        e.flush();
        assert!(e.take_events().is_empty());
    }

    #[test]
    fn multiple_queries_over_one_stream() {
        let mut e = StreamEngine::new();
        e.register(speed_query(Gate::Always)).unwrap();
        let mut max_q = speed_query(Gate::Always);
        max_q.name = "max_speed".into();
        max_q.agg = StreamAgg::Max;
        e.register(max_q).unwrap();
        e.on_point("speed", 100, "c", 80.0);
        e.on_point("speed", 200, "c", 120.0);
        e.on_point("speed", 1_200, "c", 1.0);
        let ev = e.take_events();
        assert_eq!(ev.len(), 2);
        let avg = ev.iter().find(|x| x.query == "avg_speed").unwrap();
        let max = ev.iter().find(|x| x.query == "max_speed").unwrap();
        assert_eq!(avg.value, 100.0);
        assert_eq!(max.value, 120.0);
    }

    #[test]
    fn registration_validation() {
        let mut e = StreamEngine::new();
        let mut q = speed_query(Gate::Always);
        q.window_us = 0;
        assert!(e.register(q).is_err());
        e.register(speed_query(Gate::Always)).unwrap();
        assert!(e.register(speed_query(Gate::Always)).is_err(), "duplicate");
    }
}

//! # hdm-mmdb
//!
//! The multi-model database layer of paper §II-B: "a unified storage engine,
//! multiple runtime execution engines, and a uniformed framework".
//!
//! * [`graph`] — the graph engine: a property graph stored relationally
//!   ("graphs are represented through tables for vertexes and edges") with a
//!   **Gremlin-lite** traversal machine and a parser for the embedded
//!   Gremlin strings of the paper's Example 1 (`g.V().has('cid',11111)
//!   .inE('call')...`).
//! * [`timeseries`] — the time-series engine: time-partitioned segments,
//!   high-rate ingestion, window queries, and per-segment pre-aggregation
//!   (the device/edge "pre-aggregation for time series data" of §IV-B).
//! * [`spatial`] — the spatial engine: a uniform grid index with rectangle
//!   range queries and k-nearest-neighbour search.
//! * [`unified`] — the uniformed framework: one SQL surface where
//!   `gtimeseries(...)` and `ggraph(...)` table functions embed the other
//!   engines inside relational queries, reproducing Example 1.

//! * [`vision`] — the vision-metadata engine the paper "plan[s] to add …
//!   soon": detection storage with class/time indexes and embedding
//!   similarity search (the §IV-B high-dimensional challenge).
//! * [`stream`] — continuous queries: standing tumbling-window aggregations
//!   over ingestion streams (the "continuous query language" of §II-B).

pub mod graph;
pub mod spatial;
pub mod stream;
pub mod timeseries;
pub mod unified;
pub mod vision;

pub use graph::{GremlinResult, PropertyGraph};
pub use spatial::{GridIndex, Point, Rect};
pub use stream::{ContinuousQuery, Gate, StreamAgg, StreamEngine, WindowEvent};
pub use timeseries::TimeSeriesStore;
pub use unified::MultiModelDb;
pub use vision::{Detection, VisionStore};

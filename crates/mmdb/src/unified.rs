//! The uniformed framework: one SQL surface over every engine.
//!
//! "Our MMDB works as a single database system with uniformed interface …
//! We integrate two languages in our SQL extensions: the Gremlin language
//! which is used in graph traversal and a continuous query language used in
//! streaming processing" (§II-B). Graph and time-series sub-queries are
//! "encapsulated using a table expression in SQL" (Example 1): here they are
//! the registered table functions
//!
//! * `gtimeseries('<series>', <window_us>)` → `(time, tag, value)` rows of
//!   the trailing window (the paper's `now() - time < 30 minutes`),
//! * `ggraph('<graph>', '<gremlin>')` → the traversal result as rows,
//! * `gbox('<grid>', x0, y0, x1, y1)` and `gknn('<grid>', x, y, k)` →
//!   spatial results as `(id, x, y)` rows.

use crate::graph::{GremlinResult, PropertyGraph};
use crate::spatial::{GridIndex, Point, Rect};
use crate::stream::{ContinuousQuery, StreamEngine, WindowEvent};
use crate::timeseries::TimeSeriesStore;
use crate::vision::{Detection, VisionStore};
use hdm_common::{DataType, Datum, HdmError, Result, Row, Schema};
use hdm_sql::{Database, QueryResult, TableFunction};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

type Graphs = Rc<RefCell<HashMap<String, PropertyGraph>>>;
type SeriesMap = Rc<RefCell<HashMap<String, TimeSeriesStore>>>;
type Grids = Rc<RefCell<HashMap<String, GridIndex>>>;
type Visions = Rc<RefCell<HashMap<String, VisionStore>>>;

/// The multi-model database: a relational core with graph, time-series,
/// spatial and vision engines reachable from SQL, plus standing continuous
/// queries over the ingestion streams.
pub struct MultiModelDb {
    db: Database,
    graphs: Graphs,
    series: SeriesMap,
    grids: Grids,
    visions: Visions,
    streams: StreamEngine,
}

impl Default for MultiModelDb {
    fn default() -> Self {
        Self::new()
    }
}

impl MultiModelDb {
    pub fn new() -> Self {
        let mut db = Database::new();
        let graphs: Graphs = Rc::new(RefCell::new(HashMap::new()));
        let series: SeriesMap = Rc::new(RefCell::new(HashMap::new()));
        let grids: Grids = Rc::new(RefCell::new(HashMap::new()));
        db.register_table_function(
            "gtimeseries",
            Box::new(GTimeSeries {
                series: series.clone(),
            }),
        );
        db.register_table_function(
            "ggraph",
            Box::new(GGraph {
                graphs: graphs.clone(),
            }),
        );
        db.register_table_function(
            "gbox",
            Box::new(GBox {
                grids: grids.clone(),
            }),
        );
        db.register_table_function(
            "gknn",
            Box::new(GKnn {
                grids: grids.clone(),
            }),
        );
        let visions: Visions = Rc::new(RefCell::new(HashMap::new()));
        db.register_table_function(
            "gvision",
            Box::new(GVision {
                visions: visions.clone(),
            }),
        );
        Self {
            db,
            graphs,
            series,
            grids,
            visions,
            streams: StreamEngine::new(),
        }
    }

    /// Run SQL (the uniformed interface).
    pub fn sql(&mut self, text: &str) -> Result<QueryResult> {
        self.db.execute(text)
    }

    /// Direct access to the relational engine.
    pub fn relational(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Create (or replace) a named graph.
    pub fn create_graph(&self, name: &str) {
        self.graphs
            .borrow_mut()
            .insert(name.to_string(), PropertyGraph::new());
    }

    /// Mutate a named graph.
    pub fn with_graph_mut<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut PropertyGraph) -> T,
    ) -> Result<T> {
        let mut g = self.graphs.borrow_mut();
        let graph = g
            .get_mut(name)
            .ok_or_else(|| HdmError::Catalog(format!("no graph {name}")))?;
        Ok(f(graph))
    }

    /// Create (or replace) a named time series.
    pub fn create_series(&self, name: &str, segment_width_us: i64) {
        self.series.borrow_mut().insert(
            name.to_string(),
            TimeSeriesStore::new(name, segment_width_us),
        );
    }

    /// Ingest one time-series point; standing continuous queries see it.
    pub fn ingest(&mut self, series: &str, ts_us: i64, tag: &str, value: f64) -> Result<()> {
        {
            let mut s = self.series.borrow_mut();
            let store = s
                .get_mut(series)
                .ok_or_else(|| HdmError::Catalog(format!("no series {series}")))?;
            store.ingest(ts_us, tag, value)?;
        }
        self.streams.on_point(series, ts_us, tag, value);
        Ok(())
    }

    /// Register a standing continuous query over an ingestion stream.
    pub fn register_continuous(&mut self, q: ContinuousQuery) -> Result<()> {
        self.streams.register(q)
    }

    /// Drain window events emitted by continuous queries.
    pub fn take_stream_events(&mut self) -> Vec<WindowEvent> {
        self.streams.take_events()
    }

    /// Force-close open continuous-query windows.
    pub fn flush_streams(&mut self) {
        self.streams.flush()
    }

    /// Create (or replace) a named vision store.
    pub fn create_vision(&self, name: &str) {
        self.visions
            .borrow_mut()
            .insert(name.to_string(), VisionStore::new());
    }

    /// Ingest one detection into a named vision store.
    pub fn detect(&self, store: &str, d: Detection) -> Result<usize> {
        let mut v = self.visions.borrow_mut();
        let vs = v
            .get_mut(store)
            .ok_or_else(|| HdmError::Catalog(format!("no vision store {store}")))?;
        vs.ingest(d)
    }

    /// Embedding similarity search on a named vision store.
    pub fn vision_knn(&self, store: &str, query: &[f32], k: usize) -> Result<Vec<(usize, f64)>> {
        let v = self.visions.borrow();
        let vs = v
            .get(store)
            .ok_or_else(|| HdmError::Catalog(format!("no vision store {store}")))?;
        vs.knn_embedding(query, k)
    }

    /// Create (or replace) a named spatial grid.
    pub fn create_grid(&self, name: &str, cell_size: f64) {
        self.grids
            .borrow_mut()
            .insert(name.to_string(), GridIndex::new(cell_size));
    }

    /// Upsert an object position in a named grid.
    pub fn place(&self, grid: &str, id: i64, x: f64, y: f64) -> Result<()> {
        let mut g = self.grids.borrow_mut();
        let grid = g
            .get_mut(grid)
            .ok_or_else(|| HdmError::Catalog(format!("no grid {grid}")))?;
        grid.upsert(id, Point::new(x, y))
    }
}

struct GTimeSeries {
    series: SeriesMap,
}

impl TableFunction for GTimeSeries {
    fn eval(&self, args: &[Datum]) -> Result<(Schema, Vec<Row>)> {
        let [Datum::Text(name), window] = args else {
            return Err(HdmError::Execution(
                "gtimeseries(name, window_us) expects (text, int)".into(),
            ));
        };
        let window = window
            .as_int()
            .ok_or_else(|| HdmError::Execution("gtimeseries: window must be int".into()))?;
        let s = self.series.borrow();
        let store = s
            .get(name.as_str())
            .ok_or_else(|| HdmError::Catalog(format!("no series {name}")))?;
        Ok((TimeSeriesStore::schema(), store.window_rows(window)))
    }
}

struct GGraph {
    graphs: Graphs,
}

impl TableFunction for GGraph {
    fn eval(&self, args: &[Datum]) -> Result<(Schema, Vec<Row>)> {
        let [Datum::Text(name), Datum::Text(gremlin)] = args else {
            return Err(HdmError::Execution(
                "ggraph(name, traversal) expects (text, text)".into(),
            ));
        };
        let g = self.graphs.borrow();
        let graph = g
            .get(name.as_str())
            .ok_or_else(|| HdmError::Catalog(format!("no graph {name}")))?;
        let result = graph.run_gremlin(gremlin)?;
        Ok(match result {
            GremlinResult::Vertices(v) => (
                Schema::from_pairs(&[("v", DataType::Int)]),
                v.into_iter().map(|id| Row::new(vec![Datum::Int(id)])).collect(),
            ),
            GremlinResult::Edges(es) => (
                Schema::from_pairs(&[
                    ("src", DataType::Int),
                    ("dst", DataType::Int),
                    ("label", DataType::Text),
                ]),
                es.into_iter()
                    .map(|e| {
                        Row::new(vec![
                            Datum::Int(e.src),
                            Datum::Int(e.dst),
                            Datum::Text(e.label),
                        ])
                    })
                    .collect(),
            ),
            GremlinResult::Values(vals) => {
                let ty = vals
                    .iter()
                    .find_map(|d| d.data_type())
                    .unwrap_or(DataType::Int);
                (
                    Schema::from_pairs(&[("value", ty)]),
                    vals.into_iter().map(|d| Row::new(vec![d])).collect(),
                )
            }
            GremlinResult::Bool(b) => (
                Schema::from_pairs(&[("result", DataType::Bool)]),
                vec![Row::new(vec![Datum::Bool(b)])],
            ),
        })
    }
}

fn spatial_schema() -> Schema {
    Schema::from_pairs(&[
        ("id", DataType::Int),
        ("x", DataType::Float),
        ("y", DataType::Float),
    ])
}

struct GBox {
    grids: Grids,
}

impl TableFunction for GBox {
    fn eval(&self, args: &[Datum]) -> Result<(Schema, Vec<Row>)> {
        let (Some(Datum::Text(name)), Some(x0), Some(y0), Some(x1), Some(y1)) = (
            args.first(),
            args.get(1).and_then(Datum::as_float),
            args.get(2).and_then(Datum::as_float),
            args.get(3).and_then(Datum::as_float),
            args.get(4).and_then(Datum::as_float),
        ) else {
            return Err(HdmError::Execution(
                "gbox(grid, x0, y0, x1, y1) expects (text, 4 numbers)".into(),
            ));
        };
        let g = self.grids.borrow();
        let grid = g
            .get(name.as_str())
            .ok_or_else(|| HdmError::Catalog(format!("no grid {name}")))?;
        let rows = grid
            .range(&Rect::new(x0, y0, x1, y1))
            .into_iter()
            .map(|(id, p)| Row::new(vec![Datum::Int(id), Datum::Float(p.x), Datum::Float(p.y)]))
            .collect();
        Ok((spatial_schema(), rows))
    }
}

/// `gvision('<store>', '<class>', min_conf, t0, t1)` →
/// `(frame, time, camera, class, conf)` rows — the vision engine's
/// relational projection (detections are metadata; raw frames stay out of
/// the database).
struct GVision {
    visions: Visions,
}

impl TableFunction for GVision {
    fn eval(&self, args: &[Datum]) -> Result<(Schema, Vec<Row>)> {
        let (Some(Datum::Text(store)), Some(Datum::Text(class)), Some(conf), Some(t0), Some(t1)) = (
            args.first(),
            args.get(1),
            args.get(2).and_then(Datum::as_float),
            args.get(3).and_then(Datum::as_int),
            args.get(4).and_then(Datum::as_int),
        ) else {
            return Err(HdmError::Execution(
                "gvision(store, class, min_conf, t0, t1) expects (text, text, number, int, int)"
                    .into(),
            ));
        };
        let v = self.visions.borrow();
        let vs = v
            .get(store.as_str())
            .ok_or_else(|| HdmError::Catalog(format!("no vision store {store}")))?;
        let schema = Schema::from_pairs(&[
            ("frame", DataType::Int),
            ("time", DataType::Timestamp),
            ("camera", DataType::Text),
            ("class", DataType::Text),
            ("conf", DataType::Float),
        ]);
        let rows = vs
            .query_class(class, conf, t0, t1)
            .into_iter()
            .map(|d| {
                Row::new(vec![
                    Datum::Int(d.frame_id),
                    Datum::Timestamp(d.ts),
                    Datum::Text(d.camera.clone()),
                    Datum::Text(d.class.clone()),
                    Datum::Float(d.confidence),
                ])
            })
            .collect();
        Ok((schema, rows))
    }
}

struct GKnn {
    grids: Grids,
}

impl TableFunction for GKnn {
    fn eval(&self, args: &[Datum]) -> Result<(Schema, Vec<Row>)> {
        let (Some(Datum::Text(name)), Some(x), Some(y), Some(k)) = (
            args.first(),
            args.get(1).and_then(Datum::as_float),
            args.get(2).and_then(Datum::as_float),
            args.get(3).and_then(Datum::as_int),
        ) else {
            return Err(HdmError::Execution(
                "gknn(grid, x, y, k) expects (text, number, number, int)".into(),
            ));
        };
        let g = self.grids.borrow();
        let grid = g
            .get(name.as_str())
            .ok_or_else(|| HdmError::Catalog(format!("no grid {name}")))?;
        let rows = grid
            .knn(&Point::new(x, y), k.max(0) as usize)
            .into_iter()
            .map(|(id, p)| Row::new(vec![Datum::Int(id), Datum::Float(p.x), Datum::Float(p.y)]))
            .collect();
        Ok((spatial_schema(), rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::row;

    /// Build the paper's Example-1 world: a call graph with one heavily
    /// called person, a high-speed-vehicle time series, and the relational
    /// `car2cid` mapping + person records.
    fn example1_world() -> MultiModelDb {
        let mut m = MultiModelDb::new();

        // Graph: person 1 (cid 11111) gets 4 calls after t=100.
        m.create_graph("calls");
        m.with_graph_mut("calls", |g| {
            for id in 1..=5i64 {
                g.add_vertex(id, [("cid".to_string(), Datum::Int(11110 + id))]);
            }
            for (src, t) in [(2i64, 150i64), (3, 160), (4, 170), (5, 180), (2, 50)] {
                g.add_edge(src, 1, "call", [("time".to_string(), Datum::Int(t))])
                    .unwrap();
            }
        })
        .unwrap();

        // Time series: car speeds; car-7 is speeding recently.
        m.create_series("high_speed", 60_000_000);
        for i in 0..60i64 {
            let tag = format!("car-{}", i % 10);
            let speed = if i % 10 == 7 { 150.0 } else { 80.0 };
            m.ingest("high_speed", i * 1_000_000, &tag, speed).unwrap();
        }

        // Relational: car ownership and person records.
        m.sql("create table car2cid (carid text, cid int)").unwrap();
        for c in 0..10 {
            m.sql(&format!(
                "insert into car2cid values ('car-{c}', {})",
                11104 + c // car-7 belongs to cid 11111
            ))
            .unwrap();
        }
        m.sql("create table persons (cid int, phone text)").unwrap();
        for p in 1..=5 {
            m.sql(&format!(
                "insert into persons values ({}, 'phone-{p}')",
                11110 + p
            ))
            .unwrap();
        }
        m
    }

    /// The paper's Example 1, reproduced end to end: join the graph-derived
    /// suspects with the time-series-derived speeding cars through the
    /// relational mapping.
    #[test]
    fn example1_unified_query() {
        let mut m = example1_world();
        let r = m
            .sql(
                "with cars as (select tag as carid from \
                     gtimeseries('high_speed', 120000000) hs where hs.value > 120), \
                 suspects as (select v from \
                     ggraph('calls', 'g.V().where(inE(''call'').has(''time'', gt(100)).count().gt(3)).dedup()') g) \
                 select p.cid, p.phone, c.carid \
                 from suspects s, persons p, car2cid cc, cars c \
                 where p.cid = 11110 + s.v and cc.cid = p.cid and cc.carid = c.carid",
            )
            .unwrap();
        // Suspect: vertex 1 → cid 11111 → owns car-7 → which is speeding.
        assert!(!r.rows.is_empty());
        let cids: Vec<i64> = r
            .rows
            .iter()
            .map(|row| row.get(0).unwrap().as_int().unwrap())
            .collect();
        assert!(cids.contains(&11111));
        assert!(r.rows.iter().all(|row| {
            row.get(2).unwrap().as_text() == Some("car-7")
        }));
    }

    #[test]
    fn gtimeseries_window_filters_by_recency() {
        let mut m = example1_world();
        // Window of 5s from latest (t=59s): ts 55..=59.
        let rows = m
            .sql("select count(*) from gtimeseries('high_speed', 5000000) t")
            .unwrap();
        assert_eq!(rows.rows[0], row![5]);
    }

    #[test]
    fn ggraph_bool_and_count_results() {
        let mut m = example1_world();
        let r = m
            .sql("select * from ggraph('calls', 'g.V().has(''cid'', 11111).inE(''call'').count()') g")
            .unwrap();
        assert_eq!(r.rows[0], row![5]);
        let r = m
            .sql(
                "select * from ggraph('calls', \
                 'g.V().has(''cid'', 11111).inE(''call'').count().gt(3)') g",
            )
            .unwrap();
        assert_eq!(r.rows[0], row![true]);
    }

    #[test]
    fn spatial_functions_from_sql() {
        let mut m = MultiModelDb::new();
        m.create_grid("cars", 1.0);
        for i in 0..10 {
            m.place("cars", i, i as f64, 0.0).unwrap();
        }
        let r = m
            .sql("select id from gbox('cars', 2.5, -1.0, 6.5, 1.0) b order by id")
            .unwrap();
        assert_eq!(r.rows, vec![row![3], row![4], row![5], row![6]]);
        let r = m
            .sql("select id from gknn('cars', 7.2, 0.0, 2) k order by id")
            .unwrap();
        assert_eq!(r.rows, vec![row![7], row![8]]);
    }

    #[test]
    fn cross_model_join_graph_to_relational() {
        let mut m = example1_world();
        // All callers of 11111 with their phone records.
        let r = m
            .sql(
                "select p.phone from \
                 ggraph('calls', 'g.V(1).in(''call'').dedup()') callers, persons p \
                 where p.cid = 11110 + callers.v order by p.phone",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.rows[0], row!["phone-2"]);
    }

    #[test]
    fn gvision_from_sql_joins_relational() {
        use crate::vision::Detection;
        let mut m = MultiModelDb::new();
        m.create_vision("street");
        for (f, ts, class, conf) in [
            (1i64, 100i64, "car", 0.95),
            (2, 200, "car", 0.40),
            (3, 300, "person", 0.99),
            (4, 400, "car", 0.88),
        ] {
            m.detect(
                "street",
                Detection {
                    frame_id: f,
                    ts,
                    camera: "cam0".into(),
                    class: class.into(),
                    confidence: conf,
                    bbox: (0.0, 0.0, 1.0, 1.0),
                    embedding: vec![],
                },
            )
            .unwrap();
        }
        m.sql("create table frames (frame int, location text)").unwrap();
        for f in 1..=4 {
            m.sql(&format!("insert into frames values ({f}, 'junction-{f}')"))
                .unwrap();
        }
        let r = m
            .sql(
                "select v.frame, fr.location from \
                 gvision('street', 'car', 0.5, 0, 1000) v, frames fr \
                 where fr.frame = v.frame order by v.frame",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0], row![1, "junction-1"]);
        assert_eq!(r.rows[1], row![4, "junction-4"]);
    }

    #[test]
    fn continuous_query_fires_during_ingestion() {
        use crate::stream::{ContinuousQuery, Gate, StreamAgg};
        let mut m = MultiModelDb::new();
        m.create_series("speed", 60_000_000);
        m.register_continuous(ContinuousQuery {
            name: "speeding".into(),
            series: "speed".into(),
            window_us: 1_000_000,
            agg: StreamAgg::Max,
            tag_filter: None,
            gate: Gate::GreaterThan(120.0),
        })
        .unwrap();
        // 3 windows: quiet, speeding, quiet.
        for i in 0..30i64 {
            let speed = if (10..20).contains(&i) { 150.0 } else { 90.0 };
            m.ingest("speed", i * 100_000, "car-1", speed).unwrap();
        }
        m.flush_streams();
        let events = m.take_stream_events();
        assert_eq!(events.len(), 1, "only the speeding window alerts");
        assert_eq!(events[0].window_start, 1_000_000);
        assert_eq!(events[0].value, 150.0);
    }

    #[test]
    fn vision_similarity_search() {
        use crate::vision::Detection;
        let m = MultiModelDb::new();
        m.create_vision("v");
        for i in 0..10i64 {
            m.detect(
                "v",
                Detection {
                    frame_id: i,
                    ts: i,
                    camera: "c".into(),
                    class: "car".into(),
                    confidence: 0.9,
                    bbox: (0.0, 0.0, 1.0, 1.0),
                    embedding: vec![i as f32, 1.0, -1.0, 0.5],
                },
            )
            .unwrap();
        }
        let hits = m.vision_knn("v", &[9.0, 1.0, -1.0, 0.5], 3).unwrap();
        assert_eq!(hits[0].0, 9, "identical embedding is the top hit");
        assert!(hits[0].1 > 0.999);
    }

    #[test]
    fn unknown_stores_error_cleanly() {
        let mut m = MultiModelDb::new();
        assert!(m.sql("select * from gtimeseries('nope', 10) t").is_err());
        assert!(m.sql("select * from ggraph('nope', 'g.V()') g").is_err());
        assert!(m.sql("select * from gbox('nope', 0,0,1,1) b").is_err());
        assert!(m.ingest("nope", 0, "a", 1.0).is_err());
        assert!(m.place("nope", 1, 0.0, 0.0).is_err());
    }
}

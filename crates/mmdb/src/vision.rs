//! The vision-metadata engine.
//!
//! §II-B: "High resolution cameras, lidar … produce a lot of data …
//! Sophisticated AI based algorithms have been developed to [recognize]
//! objects in vision or point cloud data. A multimodel system needs to
//! store these objects and process queries on them. The storage of these
//! objects requires special indexing and proper metadata" — and the paper
//! plans "to add the vision engine soon". §IV-B adds the high-dimensional
//! side: "Indexes are created between the dimensions and the original raw
//! data so that queries can be answered within sub-seconds latency."
//!
//! We store *detections* — the metadata AI extracts from frames: class
//! label, confidence, bounding box, and an optional embedding vector — with
//! three indexes (by class, by time, and a coarse quantization index over
//! embeddings for pruned nearest-neighbour search). Raw pixels stay outside
//! the database, exactly as the architecture intends.

use hdm_common::{HdmError, Result};
use std::collections::{BTreeMap, HashMap};

/// One detected object.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    pub frame_id: i64,
    /// Capture timestamp (µs).
    pub ts: i64,
    pub camera: String,
    pub class: String,
    /// Confidence in [0, 1].
    pub confidence: f64,
    /// Bounding box (x, y, w, h) in frame coordinates.
    pub bbox: (f64, f64, f64, f64),
    /// Optional feature embedding for similarity search.
    pub embedding: Vec<f32>,
}

/// The vision metadata store.
#[derive(Debug, Default)]
pub struct VisionStore {
    detections: Vec<Detection>,
    by_class: HashMap<String, Vec<usize>>,
    by_time: BTreeMap<i64, Vec<usize>>,
    /// Coarse quantization index: embedding sign-pattern of the first 16
    /// dims → detection ids. Prunes exact kNN to matching + neighbouring
    /// buckets before falling back to full scan.
    by_signature: HashMap<u16, Vec<usize>>,
    embedding_dim: Option<usize>,
}

impl VisionStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.detections.len()
    }

    pub fn is_empty(&self) -> bool {
        self.detections.is_empty()
    }

    fn signature(embedding: &[f32]) -> u16 {
        let mut sig = 0u16;
        for (i, v) in embedding.iter().take(16).enumerate() {
            if *v > 0.0 {
                sig |= 1 << i;
            }
        }
        sig
    }

    /// Ingest one detection.
    pub fn ingest(&mut self, d: Detection) -> Result<usize> {
        if !(0.0..=1.0).contains(&d.confidence) {
            return Err(HdmError::Execution(format!(
                "confidence {} out of [0,1]",
                d.confidence
            )));
        }
        if !d.embedding.is_empty() {
            match self.embedding_dim {
                None => self.embedding_dim = Some(d.embedding.len()),
                Some(dim) if dim == d.embedding.len() => {}
                Some(dim) => {
                    return Err(HdmError::Execution(format!(
                        "embedding dim {} != store dim {dim}",
                        d.embedding.len()
                    )))
                }
            }
        }
        let id = self.detections.len();
        self.by_class.entry(d.class.clone()).or_default().push(id);
        self.by_time.entry(d.ts).or_default().push(id);
        if !d.embedding.is_empty() {
            self.by_signature
                .entry(Self::signature(&d.embedding))
                .or_default()
                .push(id);
        }
        self.detections.push(d);
        Ok(id)
    }

    pub fn get(&self, id: usize) -> Option<&Detection> {
        self.detections.get(id)
    }

    /// Detections of `class` with confidence ≥ `min_conf` in `[t0, t1)`,
    /// answered from the class index intersected with the time bound.
    pub fn query_class(&self, class: &str, min_conf: f64, t0: i64, t1: i64) -> Vec<&Detection> {
        let Some(ids) = self.by_class.get(class) else {
            return vec![];
        };
        ids.iter()
            .map(|&i| &self.detections[i])
            .filter(|d| d.confidence >= min_conf && d.ts >= t0 && d.ts < t1)
            .collect()
    }

    /// All detections in `[t0, t1)` in time order (the time index path).
    pub fn query_time(&self, t0: i64, t1: i64) -> Vec<&Detection> {
        self.by_time
            .range(t0..t1)
            .flat_map(|(_, ids)| ids.iter().map(|&i| &self.detections[i]))
            .collect()
    }

    /// Distinct classes observed (metadata catalog).
    pub fn classes(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.by_class.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Exact k-nearest-neighbour search over embeddings by cosine
    /// similarity, pruned by the signature index: buckets are visited in
    /// increasing Hamming distance from the query's signature, and the scan
    /// stops once enough buckets are covered to make missing a better match
    /// unlikely; it then verifies against the candidate set exactly.
    ///
    /// Returns `(detection id, cosine similarity)`, best first.
    pub fn knn_embedding(&self, query: &[f32], k: usize) -> Result<Vec<(usize, f64)>> {
        let Some(dim) = self.embedding_dim else {
            return Ok(vec![]);
        };
        if query.len() != dim {
            return Err(HdmError::Execution(format!(
                "query dim {} != store dim {dim}",
                query.len()
            )));
        }
        let qsig = Self::signature(query);
        // Candidate gathering: all buckets within Hamming distance <= 2,
        // falling back to everything when that undershoots k.
        let mut candidates: Vec<usize> = Vec::new();
        for (&sig, ids) in &self.by_signature {
            if (sig ^ qsig).count_ones() <= 2 {
                candidates.extend_from_slice(ids);
            }
        }
        if candidates.len() < k {
            candidates = (0..self.detections.len())
                .filter(|&i| !self.detections[i].embedding.is_empty())
                .collect();
        }
        let mut scored: Vec<(usize, f64)> = candidates
            .into_iter()
            .map(|i| (i, cosine(query, &self.detections[i].embedding)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        dot += *x as f64 * *y as f64;
        na += (*x as f64) * (*x as f64);
        nb += (*y as f64) * (*y as f64);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::SplitMix64;

    fn det(frame: i64, ts: i64, class: &str, conf: f64) -> Detection {
        Detection {
            frame_id: frame,
            ts,
            camera: "cam0".into(),
            class: class.into(),
            confidence: conf,
            bbox: (0.0, 0.0, 10.0, 10.0),
            embedding: vec![],
        }
    }

    fn with_embedding(mut d: Detection, e: Vec<f32>) -> Detection {
        d.embedding = e;
        d
    }

    #[test]
    fn class_queries_respect_confidence_and_time() {
        let mut v = VisionStore::new();
        v.ingest(det(1, 100, "car", 0.9)).unwrap();
        v.ingest(det(2, 200, "car", 0.4)).unwrap();
        v.ingest(det(3, 300, "person", 0.95)).unwrap();
        v.ingest(det(4, 900, "car", 0.99)).unwrap();
        let hits = v.query_class("car", 0.5, 0, 500);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].frame_id, 1);
        assert_eq!(v.query_class("bike", 0.0, 0, 1000).len(), 0);
        assert_eq!(v.classes(), vec!["car", "person"]);
    }

    #[test]
    fn time_index_orders_results() {
        let mut v = VisionStore::new();
        for (f, ts) in [(1i64, 300i64), (2, 100), (3, 200)] {
            v.ingest(det(f, ts, "car", 0.9)).unwrap();
        }
        let frames: Vec<i64> = v.query_time(0, 1000).iter().map(|d| d.frame_id).collect();
        assert_eq!(frames, vec![2, 3, 1]);
        assert_eq!(v.query_time(150, 250).len(), 1);
    }

    #[test]
    fn knn_matches_brute_force() {
        let mut v = VisionStore::new();
        let mut rng = SplitMix64::new(3);
        let dim = 32;
        let mut embeddings = Vec::new();
        for i in 0..200i64 {
            let e: Vec<f32> = (0..dim).map(|_| (rng.next_f64() as f32) - 0.5).collect();
            embeddings.push(e.clone());
            v.ingest(with_embedding(det(i, i, "car", 0.9), e)).unwrap();
        }
        let q: Vec<f32> = (0..dim).map(|_| (rng.next_f64() as f32) - 0.5).collect();
        let got = v.knn_embedding(&q, 5).unwrap();
        // Brute force reference.
        let mut reference: Vec<(usize, f64)> = embeddings
            .iter()
            .enumerate()
            .map(|(i, e)| (i, cosine(&q, e)))
            .collect();
        reference.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        // The pruned search must find at least 4 of the true top 5 (the
        // signature prune is approximate by design; verify strong recall).
        let true_top: std::collections::HashSet<usize> =
            reference[..5].iter().map(|(i, _)| *i).collect();
        let overlap = got.iter().filter(|(i, _)| true_top.contains(i)).count();
        assert!(overlap >= 4, "recall too low: {overlap}/5");
        // Scores descend.
        assert!(got.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn knn_small_store_falls_back_to_exact() {
        let mut v = VisionStore::new();
        v.ingest(with_embedding(det(1, 1, "car", 0.9), vec![1.0, 0.0]))
            .unwrap();
        v.ingest(with_embedding(det(2, 2, "car", 0.9), vec![0.0, 1.0]))
            .unwrap();
        let got = v.knn_embedding(&[1.0, 0.1], 2).unwrap();
        assert_eq!(got[0].0, 0, "closest first");
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn dimension_and_confidence_validation() {
        let mut v = VisionStore::new();
        v.ingest(with_embedding(det(1, 1, "car", 0.9), vec![1.0; 8]))
            .unwrap();
        assert!(v
            .ingest(with_embedding(det(2, 2, "car", 0.9), vec![1.0; 4]))
            .is_err());
        assert!(v.ingest(det(3, 3, "car", 1.5)).is_err());
        assert!(v.knn_embedding(&[1.0; 4], 1).is_err());
    }

    #[test]
    fn empty_store_behaves() {
        let v = VisionStore::new();
        assert!(v.is_empty());
        assert!(v.knn_embedding(&[1.0; 8], 3).unwrap().is_empty());
        assert!(v.query_time(0, 100).is_empty());
    }
}

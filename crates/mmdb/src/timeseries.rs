//! The time-series engine.
//!
//! §II-B requires "high ingestion rate for time-series data, and
//! computation-intensive spatial-temporal algorithms"; §IV-B adds "perform
//! data pre-aggregation for time series data at devices and edges". Points
//! live in fixed-width time segments, each maintaining incremental
//! aggregates (count/sum/min/max), so range aggregations are answered from
//! segment summaries plus the two partial edge segments — O(segments +
//! edge points) instead of O(points).

use hdm_common::{Datum, HdmError, Result, Row, Schema};
use std::collections::BTreeMap;

/// Per-segment incremental aggregate of one value column.
#[derive(Debug, Clone, Copy, Default)]
pub struct SegmentAgg {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl SegmentAgg {
    fn update(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    fn merge(&mut self, other: &SegmentAgg) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[derive(Debug, Clone, Default)]
struct Segment {
    /// (timestamp µs, tag, value) triples in arrival order.
    points: Vec<(i64, String, f64)>,
    agg: SegmentAgg,
}

/// A named time series store: (timestamp, tag, value) points.
///
/// The model matches the paper's motivating telemetry: a car/sensor id as
/// the tag and one numeric reading per point; wider rows belong in the
/// relational engine and join against this store via `gtimeseries(...)`.
#[derive(Debug)]
pub struct TimeSeriesStore {
    name: String,
    segment_width_us: i64,
    segments: BTreeMap<i64, Segment>,
    latest: i64,
    total_points: u64,
    /// Segments older than this horizon from `latest` are evicted (0 = keep
    /// everything).
    retention_us: i64,
}

impl TimeSeriesStore {
    pub fn new(name: impl Into<String>, segment_width_us: i64) -> Self {
        assert!(segment_width_us > 0, "segment width must be positive");
        Self {
            name: name.into(),
            segment_width_us,
            segments: BTreeMap::new(),
            latest: 0,
            total_points: 0,
            retention_us: 0,
        }
    }

    pub fn with_retention(mut self, retention_us: i64) -> Self {
        self.retention_us = retention_us;
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ingest one point. Out-of-order timestamps are accepted (they land in
    /// their proper segment).
    pub fn ingest(&mut self, ts_us: i64, tag: &str, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(HdmError::Execution(format!(
                "non-finite value in series {}",
                self.name
            )));
        }
        let seg_key = ts_us.div_euclid(self.segment_width_us);
        let seg = self.segments.entry(seg_key).or_default();
        seg.points.push((ts_us, tag.to_string(), value));
        seg.agg.update(value);
        self.latest = self.latest.max(ts_us);
        self.total_points += 1;
        if self.retention_us > 0 {
            let horizon = (self.latest - self.retention_us).div_euclid(self.segment_width_us);
            while let Some((&k, _)) = self.segments.first_key_value() {
                if k < horizon {
                    self.segments.remove(&k);
                } else {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Latest ingested timestamp (the store's notion of `now()` — the
    /// simulation is free of wall clocks).
    pub fn latest(&self) -> i64 {
        self.latest
    }

    pub fn total_points(&self) -> u64 {
        self.total_points
    }

    /// All points with `t0 <= ts < t1`, time-ordered.
    pub fn range(&self, t0: i64, t1: i64) -> Vec<(i64, String, f64)> {
        let k0 = t0.div_euclid(self.segment_width_us);
        let k1 = t1.div_euclid(self.segment_width_us);
        let mut out = Vec::new();
        for (_k, seg) in self.segments.range(k0..=k1) {
            for (ts, tag, v) in &seg.points {
                if *ts >= t0 && *ts < t1 {
                    out.push((*ts, tag.clone(), *v));
                }
            }
        }
        out.sort_by_key(|(ts, _, _)| *ts);
        out
    }

    /// Aggregate `t0 <= ts < t1` using segment pre-aggregates for interior
    /// segments and point scans only at the two edges.
    pub fn aggregate_range(&self, t0: i64, t1: i64) -> SegmentAgg {
        let k0 = t0.div_euclid(self.segment_width_us);
        let k1 = (t1 - 1).div_euclid(self.segment_width_us);
        let mut acc = SegmentAgg::default();
        for (&k, seg) in self.segments.range(k0..=k1) {
            let seg_start = k * self.segment_width_us;
            let seg_end = seg_start + self.segment_width_us;
            if seg_start >= t0 && seg_end <= t1 {
                // Fully covered: use the pre-aggregate.
                acc.merge(&seg.agg);
            } else {
                // Edge segment: scan points.
                for (ts, _, v) in &seg.points {
                    if *ts >= t0 && *ts < t1 {
                        acc.update(*v);
                    }
                }
            }
        }
        acc
    }

    /// Relational projection for the SQL layer: `(time, tag, value)`.
    pub fn schema() -> Schema {
        Schema::from_pairs(&[
            ("time", hdm_common::DataType::Timestamp),
            ("tag", hdm_common::DataType::Text),
            ("value", hdm_common::DataType::Float),
        ])
    }

    /// The last `window_us` of data as relational rows — the engine behind
    /// the paper's `gtimeseries(select … where now() - time < 30 minutes)`.
    pub fn window_rows(&self, window_us: i64) -> Vec<Row> {
        let t1 = self.latest + 1;
        let t0 = t1 - window_us;
        self.range(t0, t1)
            .into_iter()
            .map(|(ts, tag, v)| {
                Row::new(vec![Datum::Timestamp(ts), Datum::Text(tag), Datum::Float(v)])
            })
            .collect()
    }

    /// Number of live segments (retention observability).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TimeSeriesStore {
        let mut s = TimeSeriesStore::new("speed", 1_000);
        // 10 segments of 10 points each: ts = 0,100,...,9900.
        for i in 0..100i64 {
            s.ingest(i * 100, &format!("car-{}", i % 4), i as f64).unwrap();
        }
        s
    }

    #[test]
    fn range_is_inclusive_exclusive_and_ordered() {
        let s = store();
        let pts = s.range(1_000, 2_000);
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0].0, 1_000);
        assert_eq!(pts[9].0, 1_900);
    }

    #[test]
    fn out_of_order_ingest_lands_in_right_segment() {
        let mut s = TimeSeriesStore::new("x", 1_000);
        s.ingest(5_000, "a", 1.0).unwrap();
        s.ingest(500, "a", 2.0).unwrap(); // late point
        assert_eq!(s.range(0, 1_000).len(), 1);
        assert_eq!(s.latest(), 5_000);
    }

    #[test]
    fn aggregate_matches_point_scan() {
        let s = store();
        // Unaligned range crossing several segments.
        let agg = s.aggregate_range(1_234, 7_777);
        let pts = s.range(1_234, 7_777);
        assert_eq!(agg.count as usize, pts.len());
        let sum: f64 = pts.iter().map(|(_, _, v)| v).sum();
        assert!((agg.sum - sum).abs() < 1e-9);
        let min = pts.iter().map(|(_, _, v)| *v).fold(f64::INFINITY, f64::min);
        assert_eq!(agg.min, min);
    }

    #[test]
    fn aggregate_fully_aligned_uses_summaries() {
        let s = store();
        let agg = s.aggregate_range(0, 10_000);
        assert_eq!(agg.count, 100);
        assert_eq!(agg.min, 0.0);
        assert_eq!(agg.max, 99.0);
        assert!((agg.sum - (0..100).sum::<i64>() as f64).abs() < 1e-9);
    }

    #[test]
    fn window_rows_anchor_at_latest() {
        let s = store();
        let rows = s.window_rows(1_000);
        // latest = 9900; window covers (8901..=9900]: ts 9000..=9900 → 10.
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].get(0).unwrap(), &Datum::Timestamp(9_000));
    }

    #[test]
    fn retention_evicts_old_segments() {
        let mut s = TimeSeriesStore::new("x", 1_000).with_retention(3_000);
        for i in 0..100i64 {
            s.ingest(i * 100, "a", 1.0).unwrap();
        }
        assert!(s.segment_count() <= 5, "old segments evicted");
        assert!(s.range(0, 1_000).is_empty());
        assert!(!s.range(9_000, 10_000).is_empty());
    }

    #[test]
    fn rejects_nan() {
        let mut s = TimeSeriesStore::new("x", 1_000);
        assert!(s.ingest(0, "a", f64::NAN).is_err());
    }

    #[test]
    fn negative_timestamps_supported() {
        let mut s = TimeSeriesStore::new("x", 1_000);
        s.ingest(-1_500, "a", 1.0).unwrap();
        s.ingest(-500, "a", 2.0).unwrap();
        assert_eq!(s.range(-2_000, 0).len(), 2);
        let agg = s.aggregate_range(-2_000, 0);
        assert_eq!(agg.count, 2);
    }
}

//! The graph engine: property graph + Gremlin-lite.
//!
//! Storage follows the paper's unified relational model: vertices and edges
//! live in two relational tables ("graphs are represented through tables for
//! vertexes and edges; metadata … stored in relational tables"), and the
//! traversal engine operates over adjacency indexes built from them.
//!
//! The query surface is a Gremlin subset sufficient for the paper's
//! Example 1: `V`, `has`, `out`/`in`/`both`, `outE`/`inE`, `outV`/`inV`,
//! `values`, `count`, `dedup`, `limit`, and trailing numeric predicates
//! (`.gt(3)` after `count()`), with both a typed builder API and a string
//! parser for SQL-embedded traversals.

use hdm_common::{Datum, HdmError, Result, Row, Schema};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A property graph with relational backing.
#[derive(Debug, Default, Clone)]
pub struct PropertyGraph {
    vertices: BTreeMap<i64, HashMap<String, Datum>>,
    edges: Vec<Edge>,
    out_adj: HashMap<i64, Vec<usize>>,
    in_adj: HashMap<i64, Vec<usize>>,
}

#[derive(Debug, Clone)]
pub struct Edge {
    pub src: i64,
    pub dst: i64,
    pub label: String,
    pub props: HashMap<String, Datum>,
}

impl PropertyGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) a vertex with properties.
    pub fn add_vertex(&mut self, id: i64, props: impl IntoIterator<Item = (String, Datum)>) {
        self.vertices.insert(id, props.into_iter().collect());
    }

    /// Add a directed edge. Endpoints must exist.
    pub fn add_edge(
        &mut self,
        src: i64,
        dst: i64,
        label: &str,
        props: impl IntoIterator<Item = (String, Datum)>,
    ) -> Result<()> {
        if !self.vertices.contains_key(&src) || !self.vertices.contains_key(&dst) {
            return Err(HdmError::Execution(format!(
                "edge {src}->{dst}: endpoint missing"
            )));
        }
        let idx = self.edges.len();
        self.edges.push(Edge {
            src,
            dst,
            label: label.to_string(),
            props: props.into_iter().collect(),
        });
        self.out_adj.entry(src).or_default().push(idx);
        self.in_adj.entry(dst).or_default().push(idx);
        Ok(())
    }

    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn vertex_prop(&self, id: i64, key: &str) -> Option<&Datum> {
        self.vertices.get(&id)?.get(key)
    }

    /// Relational projection: the vertex table `(id, key, value-as-text)` in
    /// EAV form (properties are heterogeneous) and the edge table
    /// `(src, dst, label)` — the paper's unified-storage mapping.
    pub fn to_tables(&self) -> ((Schema, Vec<Row>), (Schema, Vec<Row>)) {
        let vschema = Schema::from_pairs(&[
            ("id", hdm_common::DataType::Int),
            ("key", hdm_common::DataType::Text),
            ("value", hdm_common::DataType::Text),
        ]);
        let mut vrows = Vec::new();
        for (id, props) in &self.vertices {
            if props.is_empty() {
                vrows.push(Row::new(vec![
                    Datum::Int(*id),
                    Datum::Null,
                    Datum::Null,
                ]));
            }
            let mut keys: Vec<&String> = props.keys().collect();
            keys.sort();
            for k in keys {
                vrows.push(Row::new(vec![
                    Datum::Int(*id),
                    Datum::Text(k.clone()),
                    Datum::Text(props[k].to_string()),
                ]));
            }
        }
        let eschema = Schema::from_pairs(&[
            ("src", hdm_common::DataType::Int),
            ("dst", hdm_common::DataType::Int),
            ("label", hdm_common::DataType::Text),
        ]);
        let erows = self
            .edges
            .iter()
            .map(|e| {
                Row::new(vec![
                    Datum::Int(e.src),
                    Datum::Int(e.dst),
                    Datum::Text(e.label.clone()),
                ])
            })
            .collect();
        ((vschema, vrows), (eschema, erows))
    }

    /// Run a Gremlin-lite traversal from its string form.
    pub fn run_gremlin(&self, text: &str) -> Result<GremlinResult> {
        let steps = parse_gremlin(text)?;
        self.run_steps(&steps)
    }

    /// Run parsed steps.
    pub fn run_steps(&self, steps: &[Step]) -> Result<GremlinResult> {
        let state = self.run_from(Traversers::Start, steps)?;
        self.finish(state)
    }

    fn run_from(&self, mut state: Traversers, steps: &[Step]) -> Result<Traversers> {
        for step in steps {
            state = self.apply(state, step)?;
        }
        Ok(state)
    }

    fn finish(&self, state: Traversers) -> Result<GremlinResult> {
        Ok(match state {
            Traversers::Start => GremlinResult::Vertices(vec![]),
            Traversers::Vertices(v) => GremlinResult::Vertices(v),
            Traversers::Edges(e) => GremlinResult::Edges(
                e.into_iter().map(|i| self.edges[i].clone()).collect(),
            ),
            Traversers::Values(v) => GremlinResult::Values(v),
            Traversers::Bool(b) => GremlinResult::Bool(b),
        })
    }

    fn apply(&self, state: Traversers, step: &Step) -> Result<Traversers> {
        use Traversers::*;
        Ok(match (state, step) {
            (Start, Step::V(None)) => Vertices(self.vertices.keys().copied().collect()),
            (Start, Step::V(Some(id))) => Vertices(
                self.vertices
                    .contains_key(id)
                    .then_some(*id)
                    .into_iter()
                    .collect(),
            ),
            (Vertices(v), Step::Has(key, pred)) => Vertices(
                v.into_iter()
                    .filter(|id| {
                        self.vertex_prop(*id, key)
                            .map(|d| pred.test(d))
                            .unwrap_or(false)
                    })
                    .collect(),
            ),
            (Edges(e), Step::Has(key, pred)) => Edges(
                e.into_iter()
                    .filter(|i| {
                        self.edges[*i]
                            .props
                            .get(key)
                            .map(|d| pred.test(d))
                            .unwrap_or(false)
                    })
                    .collect(),
            ),
            (Vertices(v), Step::Out(label)) => {
                Vertices(self.hop(&v, label, true).map(|e| e.dst).collect())
            }
            (Vertices(v), Step::In(label)) => {
                Vertices(self.hop(&v, label, false).map(|e| e.src).collect())
            }
            (Vertices(v), Step::Both(label)) => {
                let mut out: Vec<i64> = self.hop(&v, label, true).map(|e| e.dst).collect();
                out.extend(self.hop(&v, label, false).map(|e| e.src));
                Vertices(out)
            }
            (Vertices(v), Step::OutE(label)) => Edges(self.hop_idx(&v, label, true)),
            (Vertices(v), Step::InE(label)) => Edges(self.hop_idx(&v, label, false)),
            (Edges(e), Step::OutV) => {
                Vertices(e.into_iter().map(|i| self.edges[i].src).collect())
            }
            (Edges(e), Step::InV) => {
                Vertices(e.into_iter().map(|i| self.edges[i].dst).collect())
            }
            (Vertices(v), Step::Values(key)) => Values(
                v.into_iter()
                    .filter_map(|id| self.vertex_prop(id, key).cloned())
                    .collect(),
            ),
            (Edges(e), Step::Values(key)) => Values(
                e.into_iter()
                    .filter_map(|i| self.edges[i].props.get(key).cloned())
                    .collect(),
            ),
            (Vertices(v), Step::Count) => Values(vec![Datum::Int(v.len() as i64)]),
            (Edges(e), Step::Count) => Values(vec![Datum::Int(e.len() as i64)]),
            (Values(v), Step::Count) => Values(vec![Datum::Int(v.len() as i64)]),
            (Vertices(v), Step::Dedup) => {
                let mut seen = HashSet::new();
                Vertices(v.into_iter().filter(|x| seen.insert(*x)).collect())
            }
            (Edges(e), Step::Dedup) => {
                let mut seen = HashSet::new();
                Edges(e.into_iter().filter(|x| seen.insert(*x)).collect())
            }
            (Vertices(v), Step::Limit(n)) => {
                Vertices(v.into_iter().take(*n as usize).collect())
            }
            (Edges(e), Step::Limit(n)) => Edges(e.into_iter().take(*n as usize).collect()),
            (Values(v), Step::Limit(n)) => Values(v.into_iter().take(*n as usize).collect()),
            (Vertices(v), Step::Where(sub)) => {
                let mut keep = Vec::new();
                for id in v {
                    let out = self.run_from(Vertices(vec![id]), sub)?;
                    if truthy(&out) {
                        keep.push(id);
                    }
                }
                Vertices(keep)
            }
            (Values(v), Step::NumPred(pred)) => {
                // Trailing predicate: `count().gt(3)` — boolean over the
                // single value, or filter over many.
                if v.len() == 1 {
                    Bool(pred.test(&v[0]))
                } else {
                    Values(v.into_iter().filter(|d| pred.test(d)).collect())
                }
            }
            (s, step) => {
                return Err(HdmError::Execution(format!(
                    "gremlin: step {step:?} not applicable to {}",
                    s.kind()
                )))
            }
        })
    }

    fn hop<'a>(
        &'a self,
        from: &[i64],
        label: &'a Option<String>,
        out: bool,
    ) -> impl Iterator<Item = &'a Edge> + 'a {
        self.hop_idx(from, label, out).into_iter().map(|i| &self.edges[i])
    }

    fn hop_idx(&self, from: &[i64], label: &Option<String>, out: bool) -> Vec<usize> {
        let adj = if out { &self.out_adj } else { &self.in_adj };
        let mut result = Vec::new();
        for id in from {
            if let Some(list) = adj.get(id) {
                for &i in list {
                    if label
                        .as_ref()
                        .map(|l| self.edges[i].label == *l)
                        .unwrap_or(true)
                    {
                        result.push(i);
                    }
                }
            }
        }
        result
    }
}

/// Traverser state between steps.
enum Traversers {
    Start,
    Vertices(Vec<i64>),
    Edges(Vec<usize>),
    Values(Vec<Datum>),
    Bool(bool),
}

impl Traversers {
    fn kind(&self) -> &'static str {
        match self {
            Traversers::Start => "start",
            Traversers::Vertices(_) => "vertices",
            Traversers::Edges(_) => "edges",
            Traversers::Values(_) => "values",
            Traversers::Bool(_) => "bool",
        }
    }
}

/// Final traversal result.
#[derive(Debug, Clone, PartialEq)]
pub enum GremlinResult {
    Vertices(Vec<i64>),
    Edges(Vec<Edge>),
    Values(Vec<Datum>),
    Bool(bool),
}

impl PartialEq for Edge {
    fn eq(&self, other: &Self) -> bool {
        self.src == other.src && self.dst == other.dst && self.label == other.label
    }
}

/// One traversal step.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    V(Option<i64>),
    Has(String, Pred),
    Out(Option<String>),
    In(Option<String>),
    Both(Option<String>),
    OutE(Option<String>),
    InE(Option<String>),
    OutV,
    InV,
    Values(String),
    Count,
    Dedup,
    Limit(u64),
    /// Trailing numeric predicate, e.g. `.gt(3)`.
    NumPred(Pred),
    /// Nested filter traversal: keep a vertex iff the sub-traversal started
    /// from it is truthy (`where(inE('call').count().gt(3))`).
    Where(Vec<Step>),
}

/// Truthiness of a sub-traversal result for `where(...)`.
fn truthy(t: &Traversers) -> bool {
    match t {
        Traversers::Start => false,
        Traversers::Vertices(v) => !v.is_empty(),
        Traversers::Edges(e) => !e.is_empty(),
        Traversers::Values(v) => !v.is_empty(),
        Traversers::Bool(b) => *b,
    }
}

/// A value predicate inside `has(...)` or trailing steps.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    Eq(Datum),
    Gt(Datum),
    Lt(Datum),
    Ge(Datum),
    Le(Datum),
}

impl Pred {
    pub fn test(&self, d: &Datum) -> bool {
        let (v, ord_ok): (&Datum, fn(std::cmp::Ordering) -> bool) = match self {
            Pred::Eq(v) => (v, std::cmp::Ordering::is_eq),
            Pred::Gt(v) => (v, std::cmp::Ordering::is_gt),
            Pred::Lt(v) => (v, std::cmp::Ordering::is_lt),
            Pred::Ge(v) => (v, std::cmp::Ordering::is_ge),
            Pred::Le(v) => (v, std::cmp::Ordering::is_le),
        };
        d.sql_cmp(v).map(ord_ok).unwrap_or(false)
    }
}

/// Parse a Gremlin-lite chain: `g.V().has('cid',11111).inE('call').count()`.
pub fn parse_gremlin(text: &str) -> Result<Vec<Step>> {
    let text = text.trim();
    let rest = text
        .strip_prefix("g.")
        .ok_or_else(|| HdmError::Parse("gremlin must start with g.".into()))?;
    parse_chain(rest)
}

/// Parse a chain without the `g.` prefix (also used for nested `where`).
fn parse_chain(rest: &str) -> Result<Vec<Step>> {
    let calls = split_calls(rest)?;
    let mut steps = Vec::new();
    for (name, raw_args) in calls {
        if name == "where" {
            steps.push(Step::Where(parse_chain(raw_args.trim())?));
            continue;
        }
        let args = parse_args(&raw_args)?;
        let step = match (name.as_str(), args.as_slice()) {
            ("V", []) => Step::V(None),
            ("V", [GArg::Num(id)]) => Step::V(Some(*id)),
            ("has", [GArg::Str(k), a]) => Step::Has(k.clone(), arg_to_pred(a)?),
            ("out", []) => Step::Out(None),
            ("out", [GArg::Str(l)]) => Step::Out(Some(l.clone())),
            ("in", []) => Step::In(None),
            ("in", [GArg::Str(l)]) => Step::In(Some(l.clone())),
            ("both", []) => Step::Both(None),
            ("both", [GArg::Str(l)]) => Step::Both(Some(l.clone())),
            ("outE", []) => Step::OutE(None),
            ("outE", [GArg::Str(l)]) => Step::OutE(Some(l.clone())),
            ("inE", []) => Step::InE(None),
            ("inE", [GArg::Str(l)]) => Step::InE(Some(l.clone())),
            ("outV", []) => Step::OutV,
            ("inV", []) => Step::InV,
            ("values", [GArg::Str(k)]) => Step::Values(k.clone()),
            ("count", []) => Step::Count,
            ("dedup", []) => Step::Dedup,
            ("limit", [GArg::Num(n)]) if *n >= 0 => Step::Limit(*n as u64),
            ("gt", [a]) => Step::NumPred(arg_to_num_pred("gt", a)?),
            ("lt", [a]) => Step::NumPred(arg_to_num_pred("lt", a)?),
            ("gte", [a]) => Step::NumPred(arg_to_num_pred("gte", a)?),
            ("lte", [a]) => Step::NumPred(arg_to_num_pred("lte", a)?),
            (n, a) => {
                return Err(HdmError::Parse(format!(
                    "gremlin: unsupported step {n}/{}",
                    a.len()
                )))
            }
        };
        steps.push(step);
    }
    Ok(steps)
}

/// Parsed argument forms.
#[derive(Debug, Clone, PartialEq)]
enum GArg {
    Num(i64),
    Str(String),
    /// Nested predicate call: gt(5), lt(5), eq(5), gte, lte.
    Call(String, i64),
}

fn arg_to_pred(a: &GArg) -> Result<Pred> {
    Ok(match a {
        GArg::Num(v) => Pred::Eq(Datum::Int(*v)),
        GArg::Str(s) => Pred::Eq(Datum::Text(s.clone())),
        GArg::Call(f, v) => match f.as_str() {
            "gt" => Pred::Gt(Datum::Int(*v)),
            "lt" => Pred::Lt(Datum::Int(*v)),
            "gte" => Pred::Ge(Datum::Int(*v)),
            "lte" => Pred::Le(Datum::Int(*v)),
            "eq" => Pred::Eq(Datum::Int(*v)),
            other => {
                return Err(HdmError::Parse(format!(
                    "gremlin: unknown predicate {other}"
                )))
            }
        },
    })
}

fn arg_to_num_pred(op: &str, a: &GArg) -> Result<Pred> {
    let GArg::Num(v) = a else {
        return Err(HdmError::Parse(format!("gremlin: {op} needs a number")));
    };
    Ok(match op {
        "gt" => Pred::Gt(Datum::Int(*v)),
        "lt" => Pred::Lt(Datum::Int(*v)),
        "gte" => Pred::Ge(Datum::Int(*v)),
        "lte" => Pred::Le(Datum::Int(*v)),
        _ => unreachable!(),
    })
}

/// Split `V().has('cid',11111).inE('call')` into (name, raw-args) pairs.
fn split_calls(s: &str) -> Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Method name.
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let name = s[start..i].to_string();
        if name.is_empty() {
            return Err(HdmError::Parse(format!(
                "gremlin: expected method name at {i}"
            )));
        }
        if i >= bytes.len() || bytes[i] != b'(' {
            return Err(HdmError::Parse(format!("gremlin: {name} missing (")));
        }
        // Find matching close paren (no nesting deeper than one call arg).
        let mut depth = 1;
        let arg_start = i + 1;
        i += 1;
        let mut in_str = false;
        while i < bytes.len() && depth > 0 {
            match bytes[i] {
                b'\'' => in_str = !in_str,
                b'(' if !in_str => depth += 1,
                b')' if !in_str => depth -= 1,
                _ => {}
            }
            i += 1;
        }
        if depth != 0 {
            return Err(HdmError::Parse(format!("gremlin: {name} unbalanced ()")));
        }
        let args_text = &s[arg_start..i - 1];
        out.push((name, args_text.to_string()));
        // Expect `.` or end.
        if i < bytes.len() {
            if bytes[i] != b'.' {
                return Err(HdmError::Parse(format!(
                    "gremlin: expected . at byte {i}"
                )));
            }
            i += 1;
        }
    }
    Ok(out)
}

fn parse_args(text: &str) -> Result<Vec<GArg>> {
    let text = text.trim();
    if text.is_empty() {
        return Ok(vec![]);
    }
    let mut args = Vec::new();
    // Split on top-level commas (strings may contain commas).
    let mut depth = 0;
    let mut in_str = false;
    let mut start = 0;
    let bytes = text.as_bytes();
    let mut parts = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\'' => in_str = !in_str,
            b'(' if !in_str => depth += 1,
            b')' if !in_str => depth -= 1,
            b',' if !in_str && depth == 0 => {
                parts.push(text[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(text[start..].trim());
    for p in parts {
        if let Some(stripped) = p.strip_prefix('\'') {
            let inner = stripped
                .strip_suffix('\'')
                .ok_or_else(|| HdmError::Parse(format!("gremlin: bad string {p}")))?;
            args.push(GArg::Str(inner.to_string()));
        } else if let Ok(n) = p.parse::<i64>() {
            args.push(GArg::Num(n));
        } else if let Some(open) = p.find('(') {
            let f = p[..open].trim().to_string();
            let inner = p[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| HdmError::Parse(format!("gremlin: bad call {p}")))?;
            let n: i64 = inner
                .trim()
                .parse()
                .map_err(|_| HdmError::Parse(format!("gremlin: bad number in {p}")))?;
            args.push(GArg::Call(f, n));
        } else {
            // Bare identifiers (paper writes has(cid, 11111)): treat as key
            // string for convenience.
            args.push(GArg::Str(p.to_string()));
        }
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A little call graph: persons 1..=5; calls with timestamps.
    fn call_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for id in 1..=5i64 {
            g.add_vertex(id, [("cid".to_string(), Datum::Int(11110 + id))]);
        }
        // Vertex 1 (cid 11111) receives 4 calls after t=100, one before.
        for (src, t) in [(2i64, 150i64), (3, 160), (4, 170), (5, 180), (2, 50)] {
            g.add_edge(src, 1, "call", [("time".to_string(), Datum::Int(t))])
                .unwrap();
        }
        // An unrelated friendship edge.
        g.add_edge(2, 3, "knows", []).unwrap();
        g
    }

    #[test]
    fn vertex_and_edge_counts() {
        let g = call_graph();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn builder_traversal_filters_by_property() {
        let g = call_graph();
        let r = g
            .run_steps(&[
                Step::V(None),
                Step::Has("cid".into(), Pred::Eq(Datum::Int(11111))),
            ])
            .unwrap();
        assert_eq!(r, GremlinResult::Vertices(vec![1]));
    }

    /// The paper's Example 1 line 6 in spirit: "count incoming calls after a
    /// date for the person with cid 11111, is it more than 3?"
    #[test]
    fn example1_suspect_query() {
        let g = call_graph();
        let r = g
            .run_gremlin("g.V().has('cid',11111).inE('call').has('time', gt(100)).count()")
            .unwrap();
        assert_eq!(r, GremlinResult::Values(vec![Datum::Int(4)]));
        let r = g
            .run_gremlin(
                "g.V().has('cid',11111).inE('call').has('time', gt(100)).count().gt(3)",
            )
            .unwrap();
        assert_eq!(r, GremlinResult::Bool(true));
    }

    #[test]
    fn hops_in_both_directions() {
        let g = call_graph();
        let r = g.run_gremlin("g.V(1).in('call').dedup()").unwrap();
        assert_eq!(r, GremlinResult::Vertices(vec![2, 3, 4, 5]));
        let r = g.run_gremlin("g.V(2).out('knows')").unwrap();
        assert_eq!(r, GremlinResult::Vertices(vec![3]));
        let r = g.run_gremlin("g.V(3).both()").unwrap();
        // out: call->1 ; in: knows<-2.
        assert_eq!(r, GremlinResult::Vertices(vec![1, 2]));
    }

    #[test]
    fn edge_to_vertex_steps_and_values() {
        let g = call_graph();
        let r = g
            .run_gremlin("g.V(1).inE('call').has('time', gt(100)).outV().dedup().values('cid')")
            .unwrap();
        let GremlinResult::Values(v) = r else { panic!() };
        assert_eq!(v.len(), 4);
        assert!(v.contains(&Datum::Int(11112)));
    }

    #[test]
    fn limit_truncates() {
        let g = call_graph();
        let r = g.run_gremlin("g.V().limit(2)").unwrap();
        assert_eq!(r, GremlinResult::Vertices(vec![1, 2]));
    }

    #[test]
    fn relational_mapping_round_trip_counts() {
        let g = call_graph();
        let ((_, vrows), (_, erows)) = g.to_tables();
        assert_eq!(vrows.len(), 5, "one property per vertex");
        assert_eq!(erows.len(), 6);
    }

    #[test]
    fn edge_requires_endpoints() {
        let mut g = PropertyGraph::new();
        g.add_vertex(1, []);
        assert!(g.add_edge(1, 99, "x", []).is_err());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_gremlin("V().count()").is_err(), "must start with g.");
        assert!(parse_gremlin("g.V(").is_err());
        assert!(parse_gremlin("g.V().frobnicate()").is_err());
        assert!(parse_gremlin("g.V().has('k', between(1,2))").is_err());
    }

    #[test]
    fn bare_identifier_args_accepted() {
        // The paper writes has(cid,11111) without quotes.
        let g = call_graph();
        let r = g
            .run_gremlin("g.V().has(cid, 11111).count()")
            .unwrap();
        assert_eq!(r, GremlinResult::Values(vec![Datum::Int(1)]));
    }
}

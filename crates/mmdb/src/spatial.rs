//! The spatial engine: a uniform grid index with range and kNN queries.
//!
//! §II-B calls for "computation-intensive spatial-temporal algorithms" over
//! GPS-style coordinates. A uniform grid is the classic main-memory spatial
//! index for bounded, roughly uniform point sets (vehicle positions in a
//! city): O(1) insert, range queries visit only overlapping cells, and kNN
//! searches expand rings of cells outward from the query point.

use hdm_common::{HdmError, Result};
use std::collections::HashMap;

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }
}

/// An axis-aligned rectangle (min/max corners, inclusive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self {
            min: Point::new(x0.min(x1), y0.min(y1)),
            max: Point::new(x0.max(x1), y0.max(y1)),
        }
    }

    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
}

/// A uniform grid index over id-tagged points.
#[derive(Debug)]
pub struct GridIndex {
    cell_size: f64,
    cells: HashMap<(i64, i64), Vec<(i64, Point)>>,
    positions: HashMap<i64, Point>,
}

impl GridIndex {
    /// # Panics
    /// If `cell_size` is not positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell size must be positive"
        );
        Self {
            cell_size,
            cells: HashMap::new(),
            positions: HashMap::new(),
        }
    }

    fn cell_of(&self, p: &Point) -> (i64, i64) {
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
        )
    }

    /// Insert or move an object.
    pub fn upsert(&mut self, id: i64, p: Point) -> Result<()> {
        if !p.x.is_finite() || !p.y.is_finite() {
            return Err(HdmError::Execution("non-finite coordinate".into()));
        }
        if let Some(old) = self.positions.insert(id, p) {
            let oc = self.cell_of(&old);
            if let Some(v) = self.cells.get_mut(&oc) {
                v.retain(|(i, _)| *i != id);
            }
        }
        self.cells.entry(self.cell_of(&p)).or_default().push((id, p));
        Ok(())
    }

    /// Remove an object; returns whether it existed.
    pub fn remove(&mut self, id: i64) -> bool {
        match self.positions.remove(&id) {
            None => false,
            Some(p) => {
                let c = self.cell_of(&p);
                if let Some(v) = self.cells.get_mut(&c) {
                    v.retain(|(i, _)| *i != id);
                }
                true
            }
        }
    }

    pub fn len(&self) -> usize {
        self.positions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    pub fn position(&self, id: i64) -> Option<Point> {
        self.positions.get(&id).copied()
    }

    /// All objects inside `rect`, id-ordered for determinism.
    pub fn range(&self, rect: &Rect) -> Vec<(i64, Point)> {
        let c0 = self.cell_of(&rect.min);
        let c1 = self.cell_of(&rect.max);
        let mut out = Vec::new();
        for cx in c0.0..=c1.0 {
            for cy in c0.1..=c1.1 {
                if let Some(v) = self.cells.get(&(cx, cy)) {
                    for (id, p) in v {
                        if rect.contains(p) {
                            out.push((*id, *p));
                        }
                    }
                }
            }
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// The `k` nearest objects to `q`, nearest first. Expands cell rings
    /// outward until the best `k` cannot be improved.
    pub fn knn(&self, q: &Point, k: usize) -> Vec<(i64, Point)> {
        if k == 0 || self.positions.is_empty() {
            return vec![];
        }
        let qc = self.cell_of(q);
        let mut best: Vec<(f64, i64, Point)> = Vec::new();
        let mut ring = 0i64;
        // Upper bound on rings: enough to cover the whole populated grid.
        let max_ring = 2 + self
            .cells
            .keys()
            .map(|(cx, cy)| (cx - qc.0).abs().max((cy - qc.1).abs()))
            .max()
            .unwrap_or(0);
        loop {
            // Visit the cells of this ring.
            for cx in (qc.0 - ring)..=(qc.0 + ring) {
                for cy in (qc.1 - ring)..=(qc.1 + ring) {
                    let on_ring = (cx - qc.0).abs() == ring || (cy - qc.1).abs() == ring;
                    if !on_ring {
                        continue;
                    }
                    if let Some(v) = self.cells.get(&(cx, cy)) {
                        for (id, p) in v {
                            let d = q.dist2(p);
                            best.push((d, *id, *p));
                        }
                    }
                }
            }
            best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            best.truncate(k);
            // Stop when we have k and the next ring cannot contain closer
            // points: the ring's inner boundary is `ring * cell_size` away.
            let ring_floor = ring as f64 * self.cell_size;
            let kth = best.last().map(|(d, _, _)| d.sqrt()).unwrap_or(f64::INFINITY);
            if (best.len() == k && kth <= ring_floor) || ring > max_ring {
                break;
            }
            ring += 1;
        }
        best.into_iter().map(|(_, id, p)| (id, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_10x10() -> GridIndex {
        let mut g = GridIndex::new(1.0);
        // 100 points at integer coordinates, id = 10*y + x.
        for y in 0..10 {
            for x in 0..10 {
                g.upsert((10 * y + x) as i64, Point::new(x as f64, y as f64))
                    .unwrap();
            }
        }
        g
    }

    #[test]
    fn range_query_exact() {
        let g = grid_10x10();
        let hits = g.range(&Rect::new(2.0, 3.0, 4.0, 5.0));
        assert_eq!(hits.len(), 9); // 3x3 integer lattice
        assert!(hits.iter().all(|(_, p)| (2.0..=4.0).contains(&p.x)));
    }

    #[test]
    fn knn_returns_nearest_first() {
        let g = grid_10x10();
        let hits = g.knn(&Point::new(5.2, 5.2), 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].1, Point::new(5.0, 5.0));
        // Next two are (6,5) and (5,6) at equal distance.
        let d1 = hits[1].1.dist(&Point::new(5.2, 5.2));
        let d2 = hits[2].1.dist(&Point::new(5.2, 5.2));
        assert!(d1 <= d2 + 1e-12);
    }

    #[test]
    fn knn_brute_force_agreement() {
        let g = grid_10x10();
        let q = Point::new(3.7, 8.1);
        let got: Vec<i64> = g.knn(&q, 7).into_iter().map(|(id, _)| id).collect();
        // Brute force.
        let mut all: Vec<(f64, i64)> = (0..10)
            .flat_map(|y| (0..10).map(move |x| (x, y)))
            .map(|(x, y)| {
                let p = Point::new(x as f64, y as f64);
                (q.dist2(&p), (10 * y + x) as i64)
            })
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let expect: Vec<i64> = all.into_iter().take(7).map(|(_, id)| id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn upsert_moves_objects() {
        let mut g = GridIndex::new(1.0);
        g.upsert(1, Point::new(0.0, 0.0)).unwrap();
        g.upsert(1, Point::new(9.0, 9.0)).unwrap();
        assert_eq!(g.len(), 1);
        assert!(g.range(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert_eq!(g.range(&Rect::new(8.5, 8.5, 9.5, 9.5)).len(), 1);
    }

    #[test]
    fn remove_and_empty_knn() {
        let mut g = GridIndex::new(1.0);
        g.upsert(1, Point::new(0.0, 0.0)).unwrap();
        assert!(g.remove(1));
        assert!(!g.remove(1));
        assert!(g.knn(&Point::new(0.0, 0.0), 5).is_empty());
    }

    #[test]
    fn knn_with_k_larger_than_population() {
        let mut g = GridIndex::new(1.0);
        g.upsert(1, Point::new(0.0, 0.0)).unwrap();
        g.upsert(2, Point::new(5.0, 5.0)).unwrap();
        let hits = g.knn(&Point::new(1.0, 1.0), 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 1);
    }

    #[test]
    fn negative_coordinates() {
        let mut g = GridIndex::new(2.0);
        g.upsert(1, Point::new(-3.5, -7.2)).unwrap();
        let hits = g.range(&Rect::new(-4.0, -8.0, -3.0, -7.0));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn rejects_non_finite() {
        let mut g = GridIndex::new(1.0);
        assert!(g.upsert(1, Point::new(f64::NAN, 0.0)).is_err());
    }
}

//! # hdm-storage
//!
//! Single-node storage engine underneath the FI-MPPDB reproduction:
//!
//! * [`mvcc`] — tuple headers carrying `xmin`/`xmax` transaction ids and the
//!   [`mvcc::Visibility`] abstraction, mirroring the PostgreSQL lineage of
//!   FI-MPPDB (Postgres-XC, paper §I). The Anomaly-2 walkthrough in the paper
//!   (Fig 2 and its tuple table) is expressed directly in these terms.
//! * [`heap`] — the MVCC row heap: insert/delete/update produce tuple version
//!   chains; scans filter through a caller-supplied visibility judge.
//! * [`index`] — ordered secondary indexes over heap tuples.
//! * [`compress`] — RLE / dictionary / delta codecs for column chunks
//!   ("data compression", §I).
//! * [`column`] — a compressed columnar representation of a table
//!   ("hybrid row-column storage", §I).
//! * [`batch`] — vectorized column batches with selection vectors
//!   ("vectorized execution engine", §II).
//! * [`table`] — ties heap + schema + indexes + statistics together.

pub mod batch;
pub mod column;
pub mod compress;
pub mod heap;
pub mod index;
pub mod mvcc;
pub mod table;

pub use batch::Batch;
pub use heap::{HeapTable, TupleId};
pub use mvcc::{TupleHeader, Visibility};
pub use table::{ColumnStats, Table, TableStats};

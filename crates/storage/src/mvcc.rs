//! MVCC tuple headers and the visibility abstraction.
//!
//! FI-MPPDB inherits PostgreSQL's multiversioning: every tuple version
//! carries the id of the transaction that created it (`xmin`) and, once
//! deleted or superseded, the id of the transaction that removed it
//! (`xmax`). Whether a given snapshot can see a version is decided by a
//! *visibility judge* supplied by the transaction layer — for GTM-lite this
//! is exactly where the merged global/local snapshot of Algorithm 1 plugs in.

use hdm_common::ids::INVALID_XID;
use hdm_common::Xid;

/// Per-tuple-version MVCC header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TupleHeader {
    /// Transaction that created this version.
    pub xmin: Xid,
    /// Transaction that deleted/superseded this version
    /// ([`INVALID_XID`] while live).
    pub xmax: Xid,
}

impl TupleHeader {
    pub fn new(xmin: Xid) -> Self {
        Self {
            xmin,
            xmax: INVALID_XID,
        }
    }

    /// Whether a deleting transaction has been recorded.
    pub fn has_xmax(&self) -> bool {
        self.xmax != INVALID_XID
    }
}

/// Judges tuple visibility for one reader.
///
/// Implemented by the transaction layer over (snapshot, commit log, own-xid)
/// state. The contract is the PostgreSQL rule:
///
/// > a version is visible iff its inserter is *seen as committed* and its
/// > deleter (if any) is *not seen as committed*.
pub trait Visibility {
    /// Is the transaction `xid` seen as committed by this reader?
    fn sees_committed(&self, xid: Xid) -> bool;

    /// Is `xid` this reader's own transaction? Own uncommitted writes are
    /// visible to self (and own deletes hide tuples from self).
    fn is_own(&self, xid: Xid) -> bool;

    /// Full tuple visibility check.
    fn tuple_visible(&self, header: &TupleHeader) -> bool {
        let insert_visible = self.is_own(header.xmin) || self.sees_committed(header.xmin);
        if !insert_visible {
            return false;
        }
        if !header.has_xmax() {
            return true;
        }
        let delete_visible = self.is_own(header.xmax) || self.sees_committed(header.xmax);
        !delete_visible
    }
}

/// A visibility judge that sees every committed-by-anyone tuple: used by
/// utilities (VACUUM-style sweeps, debug dumps) and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeeEverything;

impl Visibility for SeeEverything {
    fn sees_committed(&self, _xid: Xid) -> bool {
        true
    }
    fn is_own(&self, _xid: Xid) -> bool {
        false
    }
}

/// A visibility judge from explicit sets, for tests and scripted scenarios
/// (the paper's Fig 2 anomaly table is checked with one of these).
#[derive(Debug, Clone, Default)]
pub struct FixedVisibility {
    committed: std::collections::HashSet<u64>,
    own: Option<Xid>,
}

impl FixedVisibility {
    pub fn new(committed: impl IntoIterator<Item = Xid>, own: Option<Xid>) -> Self {
        Self {
            committed: committed.into_iter().map(|x| x.raw()).collect(),
            own,
        }
    }
}

impl Visibility for FixedVisibility {
    fn sees_committed(&self, xid: Xid) -> bool {
        self.committed.contains(&xid.raw())
    }
    fn is_own(&self, xid: Xid) -> bool {
        self.own == Some(xid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: Xid = Xid(10);
    const T3: Xid = Xid(30);

    /// The tuple table from the paper's Anomaly-2 walkthrough (§II-A):
    ///
    /// |        | xmin | xmax | visibility under {T1,T3 committed} |
    /// | tuple1 |  -   | T1   | no  (deleted by T1)                |
    /// | tuple2 | T1   | T3   | no  (superseded by T3)             |
    /// | tuple3 | T3   | -    | yes                                |
    fn paper_tuples() -> [TupleHeader; 3] {
        [
            TupleHeader {
                xmin: Xid(1),
                xmax: T1,
            },
            TupleHeader { xmin: T1, xmax: T3 },
            TupleHeader::new(T3),
        ]
    }

    #[test]
    fn all_committed_view_sees_only_tuple3() {
        let v = FixedVisibility::new([Xid(1), T1, T3], None);
        let t = paper_tuples();
        assert!(!v.tuple_visible(&t[0]));
        assert!(!v.tuple_visible(&t[1]));
        assert!(v.tuple_visible(&t[2]));
    }

    /// The anomalous merged view from the paper: T1 "active" (not seen as
    /// committed) but T3 seen as committed — the reader would see tuple1
    /// *and* tuple3, i.e. T3's update without T1's. This test pins down the
    /// anomaly that DOWNGRADE exists to prevent.
    #[test]
    fn anomaly2_inconsistent_view_sees_tuple1_and_tuple3() {
        let v = FixedVisibility::new([Xid(1), T3], None); // T1 missing!
        let t = paper_tuples();
        assert!(v.tuple_visible(&t[0]), "tuple1 leaks back in");
        assert!(!v.tuple_visible(&t[1]), "tuple2 xmin=T1 not committed");
        assert!(v.tuple_visible(&t[2]), "tuple3 visible");
    }

    /// The DOWNGRADE-repaired view: T3's local commit is reverted to
    /// "active" in the reader's snapshot, so the reader sees the consistent
    /// pre-T1 state (tuple1 only).
    #[test]
    fn downgraded_view_is_consistent() {
        let v = FixedVisibility::new([Xid(1)], None); // neither T1 nor T3
        let t = paper_tuples();
        assert!(v.tuple_visible(&t[0]));
        assert!(!v.tuple_visible(&t[1]));
        assert!(!v.tuple_visible(&t[2]));
    }

    #[test]
    fn own_writes_are_visible_and_own_deletes_hide() {
        let own = Xid(99);
        let v = FixedVisibility::new([], Some(own));
        assert!(v.tuple_visible(&TupleHeader::new(own)));
        let deleted = TupleHeader {
            xmin: own,
            xmax: own,
        };
        assert!(!v.tuple_visible(&deleted));
    }

    #[test]
    fn uncommitted_insert_invisible_to_others() {
        let v = FixedVisibility::new([], None);
        assert!(!v.tuple_visible(&TupleHeader::new(Xid(5))));
    }

    #[test]
    fn uncommitted_delete_leaves_tuple_visible() {
        let v = FixedVisibility::new([Xid(5)], None);
        let h = TupleHeader {
            xmin: Xid(5),
            xmax: Xid(6), // deleter not committed
        };
        assert!(v.tuple_visible(&h));
    }

    #[test]
    fn see_everything_sees_live_not_deleted() {
        let t = paper_tuples();
        assert!(!SeeEverything.tuple_visible(&t[0]));
        assert!(SeeEverything.tuple_visible(&t[2]));
    }
}

//! Column-chunk compression codecs.
//!
//! FI-MPPDB ships "hybrid row-column storage, data compression" (§I). We
//! implement the three classic lightweight column codecs — run-length,
//! dictionary, and delta (frame-of-reference for integers) — with a
//! heuristic chooser. These codecs preserve `Datum` values exactly
//! (round-trip property-tested) and report their encoded size so the
//! storage bench can show compression ratios per data shape.

use hdm_common::{Datum, HdmError, Result};

/// The encoding chosen for a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    Plain,
    /// Run-length: (value, run) pairs. Wins on sorted/low-churn columns.
    Rle,
    /// Dictionary: distinct values + u32 codes. Wins on low cardinality.
    Dict,
    /// Delta/frame-of-reference for Int/Timestamp: base + i64 deltas stored
    /// compactly. Wins on near-sequential ids and timestamps.
    DeltaI64,
}

/// A compressed column chunk.
#[derive(Debug, Clone)]
pub enum Chunk {
    Plain(Vec<Datum>),
    Rle(Vec<(Datum, u32)>),
    Dict {
        dict: Vec<Datum>,
        codes: Vec<u32>,
    },
    DeltaI64 {
        base: i64,
        deltas: Vec<i64>,
        /// True where the value is NULL (delta slot holds 0).
        nulls: Vec<bool>,
        /// Whether values were timestamps (to restore the datum type).
        timestamp: bool,
    },
}

impl Chunk {
    pub fn encoding(&self) -> Encoding {
        match self {
            Chunk::Plain(_) => Encoding::Plain,
            Chunk::Rle(_) => Encoding::Rle,
            Chunk::Dict { .. } => Encoding::Dict,
            Chunk::DeltaI64 { .. } => Encoding::DeltaI64,
        }
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        match self {
            Chunk::Plain(v) => v.len(),
            Chunk::Rle(runs) => runs.iter().map(|(_, n)| *n as usize).sum(),
            Chunk::Dict { codes, .. } => codes.len(),
            Chunk::DeltaI64 { deltas, .. } => deltas.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate encoded byte size (for compression-ratio reporting).
    pub fn encoded_bytes(&self) -> usize {
        match self {
            Chunk::Plain(v) => v.iter().map(Datum::width).sum(),
            Chunk::Rle(runs) => runs.iter().map(|(d, _)| d.width() + 4).sum(),
            Chunk::Dict { dict, codes } => {
                dict.iter().map(Datum::width).sum::<usize>() + codes.len() * 4
            }
            Chunk::DeltaI64 { deltas, nulls, .. } => {
                // Assume byte-packable small deltas when they fit, else 8B.
                let delta_bytes: usize = deltas
                    .iter()
                    .map(|d| {
                        if *d >= i8::MIN as i64 && *d <= i8::MAX as i64 {
                            1
                        } else if *d >= i16::MIN as i64 && *d <= i16::MAX as i64 {
                            2
                        } else if *d >= i32::MIN as i64 && *d <= i32::MAX as i64 {
                            4
                        } else {
                            8
                        }
                    })
                    .sum();
                8 + delta_bytes + nulls.len() / 8 + 1
            }
        }
    }

    /// Decode back to the full datum vector.
    pub fn decode(&self) -> Vec<Datum> {
        match self {
            Chunk::Plain(v) => v.clone(),
            Chunk::Rle(runs) => {
                let mut out = Vec::with_capacity(self.len());
                for (d, n) in runs {
                    for _ in 0..*n {
                        out.push(d.clone());
                    }
                }
                out
            }
            Chunk::Dict { dict, codes } => codes
                .iter()
                .map(|&c| dict[c as usize].clone())
                .collect(),
            Chunk::DeltaI64 {
                base,
                deltas,
                nulls,
                timestamp,
            } => {
                let mut acc = *base;
                deltas
                    .iter()
                    .zip(nulls)
                    .map(|(d, is_null)| {
                        if *is_null {
                            Datum::Null
                        } else {
                            acc = acc.wrapping_add(*d);
                            if *timestamp {
                                Datum::Timestamp(acc)
                            } else {
                                Datum::Int(acc)
                            }
                        }
                    })
                    .collect()
            }
        }
    }

    /// Random access to one value without full decode.
    pub fn get(&self, idx: usize) -> Result<Datum> {
        if idx >= self.len() {
            return Err(HdmError::Storage(format!(
                "chunk index {idx} out of bounds (len {})",
                self.len()
            )));
        }
        Ok(match self {
            Chunk::Plain(v) => v[idx].clone(),
            Chunk::Rle(runs) => {
                let mut remaining = idx;
                for (d, n) in runs {
                    if remaining < *n as usize {
                        return Ok(d.clone());
                    }
                    remaining -= *n as usize;
                }
                unreachable!("len checked above")
            }
            Chunk::Dict { dict, codes } => dict[codes[idx] as usize].clone(),
            Chunk::DeltaI64 { .. } => self.decode()[idx].clone(),
        })
    }
}

/// Encode with a specific codec. Returns `None` if the codec cannot
/// represent the data (e.g. delta over non-integers).
pub fn encode_as(values: &[Datum], enc: Encoding) -> Option<Chunk> {
    match enc {
        Encoding::Plain => Some(Chunk::Plain(values.to_vec())),
        Encoding::Rle => {
            let mut runs: Vec<(Datum, u32)> = Vec::new();
            for v in values {
                match runs.last_mut() {
                    Some((d, n)) if d == v && *n < u32::MAX => *n += 1,
                    _ => runs.push((v.clone(), 1)),
                }
            }
            Some(Chunk::Rle(runs))
        }
        Encoding::Dict => {
            let mut dict: Vec<Datum> = Vec::new();
            let mut lookup: std::collections::HashMap<Datum, u32> =
                std::collections::HashMap::new();
            let mut codes = Vec::with_capacity(values.len());
            for v in values {
                let code = *lookup.entry(v.clone()).or_insert_with(|| {
                    dict.push(v.clone());
                    (dict.len() - 1) as u32
                });
                codes.push(code);
            }
            Some(Chunk::Dict { dict, codes })
        }
        Encoding::DeltaI64 => {
            let mut timestamp = false;
            for v in values {
                match v {
                    Datum::Int(_) | Datum::Null => {}
                    Datum::Timestamp(_) => timestamp = true,
                    _ => return None,
                }
            }
            let mut deltas = Vec::with_capacity(values.len());
            let mut nulls = Vec::with_capacity(values.len());
            let mut prev: Option<i64> = None;
            let mut base = 0;
            for v in values {
                match v.as_int() {
                    None => {
                        deltas.push(0);
                        nulls.push(true);
                    }
                    Some(x) => {
                        match prev {
                            None => {
                                base = x;
                                deltas.push(0);
                            }
                            // Wrapping: differences of extreme i64s
                            // round-trip exactly modulo 2^64.
                            Some(p) => deltas.push(x.wrapping_sub(p)),
                        }
                        nulls.push(false);
                        prev = Some(x);
                    }
                }
            }
            Some(Chunk::DeltaI64 {
                base,
                deltas,
                nulls,
                timestamp,
            })
        }
    }
}

/// Choose the smallest encoding for the data (the storage engine's default).
pub fn encode_auto(values: &[Datum]) -> Chunk {
    let candidates = [
        Encoding::Rle,
        Encoding::Dict,
        Encoding::DeltaI64,
        Encoding::Plain,
    ];
    let mut best: Option<Chunk> = None;
    for enc in candidates {
        if let Some(chunk) = encode_as(values, enc) {
            let better = match &best {
                None => true,
                Some(b) => chunk.encoded_bytes() < b.encoded_bytes(),
            };
            if better {
                best = Some(chunk);
            }
        }
    }
    best.expect("Plain always succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: impl IntoIterator<Item = i64>) -> Vec<Datum> {
        v.into_iter().map(Datum::Int).collect()
    }

    #[test]
    fn rle_round_trip_and_compresses_runs() {
        let data: Vec<Datum> = std::iter::repeat_n(Datum::Text("cn".into()), 1000)
            .chain(std::iter::repeat_n(Datum::Text("us".into()), 1000))
            .collect();
        let c = encode_as(&data, Encoding::Rle).unwrap();
        assert_eq!(c.decode(), data);
        assert!(c.encoded_bytes() < 100, "2 runs should be tiny");
    }

    #[test]
    fn dict_round_trip_and_compresses_low_cardinality() {
        let data: Vec<Datum> = (0..1000)
            .map(|i| Datum::Text(format!("status-{}", i % 4)))
            .collect();
        let c = encode_as(&data, Encoding::Dict).unwrap();
        assert_eq!(c.decode(), data);
        let plain = encode_as(&data, Encoding::Plain).unwrap();
        assert!(c.encoded_bytes() < plain.encoded_bytes() / 2);
    }

    #[test]
    fn delta_round_trip_on_sequential_ids() {
        let data = ints(1_000_000..1_001_000);
        let c = encode_as(&data, Encoding::DeltaI64).unwrap();
        assert_eq!(c.decode(), data);
        assert!(c.encoded_bytes() < 2_000, "deltas of 1 pack to a byte");
    }

    #[test]
    fn delta_handles_nulls_and_timestamps() {
        let data = vec![
            Datum::Timestamp(1_000),
            Datum::Null,
            Datum::Timestamp(1_050),
        ];
        let c = encode_as(&data, Encoding::DeltaI64).unwrap();
        assert_eq!(c.decode(), data);
    }

    #[test]
    fn delta_rejects_text() {
        assert!(encode_as(&[Datum::Text("x".into())], Encoding::DeltaI64).is_none());
    }

    #[test]
    fn auto_picks_reasonable_codecs() {
        let sorted_flags: Vec<Datum> =
            std::iter::repeat_n(Datum::Bool(true), 500).collect();
        assert_eq!(encode_auto(&sorted_flags).encoding(), Encoding::Rle);

        let seq = ints(0..500);
        let c = encode_auto(&seq);
        assert_eq!(c.encoding(), Encoding::DeltaI64);
        assert_eq!(c.decode(), seq);
    }

    #[test]
    fn random_access_matches_decode() {
        let data: Vec<Datum> = (0..100).map(|i| Datum::Int(i * 7 % 13)).collect();
        for enc in [Encoding::Plain, Encoding::Rle, Encoding::Dict, Encoding::DeltaI64] {
            let c = encode_as(&data, enc).unwrap();
            let full = c.decode();
            for idx in [0usize, 1, 50, 99] {
                assert_eq!(c.get(idx).unwrap(), full[idx], "{enc:?}[{idx}]");
            }
            assert!(c.get(100).is_err());
        }
    }

    #[test]
    fn empty_input_round_trips() {
        for enc in [Encoding::Plain, Encoding::Rle, Encoding::Dict, Encoding::DeltaI64] {
            let c = encode_as(&[], enc).unwrap();
            assert_eq!(c.len(), 0);
            assert!(c.decode().is_empty());
        }
    }
}

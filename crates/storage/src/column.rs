//! Compressed columnar table representation.
//!
//! FI-MPPDB stores analytic tables column-wise ("hybrid row-column storage",
//! §I): we freeze a set of rows into per-column compressed chunk sequences,
//! which the vectorized executor scans chunk-at-a-time. Column stores here
//! are immutable snapshots (the OLAP side of HTAP); the mutable OLTP side
//! lives in the MVCC row heap, and a table can be *converted* between the
//! two — the same "hybrid" pattern the paper describes.

use crate::compress::{encode_auto, Chunk};
use hdm_common::{Datum, HdmError, Result, Row, Schema};

/// Rows per column chunk; aligned with the executor batch size.
pub const CHUNK_ROWS: usize = 1024;

/// One column: a sequence of compressed chunks.
#[derive(Debug, Clone)]
pub struct ColumnData {
    chunks: Vec<Chunk>,
    rows: usize,
}

impl ColumnData {
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    pub fn len(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    pub fn encoded_bytes(&self) -> usize {
        self.chunks.iter().map(Chunk::encoded_bytes).sum()
    }

    /// Decode the whole column.
    pub fn decode(&self) -> Vec<Datum> {
        let mut out = Vec::with_capacity(self.rows);
        for c in &self.chunks {
            out.extend(c.decode());
        }
        out
    }
}

/// An immutable columnar snapshot of a table.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    schema: Schema,
    columns: Vec<ColumnData>,
    rows: usize,
}

impl ColumnStore {
    /// Freeze row-major data into compressed columns.
    pub fn from_rows(schema: Schema, rows: &[Row]) -> Result<ColumnStore> {
        for r in rows {
            schema.validate_row(r).map_err(HdmError::Storage)?;
        }
        let width = schema.len();
        let mut columns = Vec::with_capacity(width);
        for c in 0..width {
            let mut chunks = Vec::new();
            for chunk_rows in rows.chunks(CHUNK_ROWS) {
                let values: Vec<Datum> =
                    chunk_rows.iter().map(|r| r.values()[c].clone()).collect();
                chunks.push(encode_auto(&values));
            }
            columns.push(ColumnData {
                chunks,
                rows: rows.len(),
            });
        }
        Ok(ColumnStore {
            schema,
            columns,
            rows: rows.len(),
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn row_count(&self) -> usize {
        self.rows
    }

    pub fn column(&self, idx: usize) -> Result<&ColumnData> {
        self.columns
            .get(idx)
            .ok_or_else(|| HdmError::Storage(format!("no column {idx}")))
    }

    /// Total compressed size in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.columns.iter().map(ColumnData::encoded_bytes).sum()
    }

    /// Uncompressed (row-format) size estimate.
    pub fn raw_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.decode().iter().map(Datum::width).sum::<usize>())
            .sum()
    }

    /// Thaw back into row-major form.
    pub fn to_rows(&self) -> Vec<Row> {
        let decoded: Vec<Vec<Datum>> = self.columns.iter().map(ColumnData::decode).collect();
        (0..self.rows)
            .map(|i| Row::new(decoded.iter().map(|c| c[i].clone()).collect()))
            .collect()
    }

    /// Scan one column, invoking `f(row_index, value)` — the columnar
    /// fast path used by vectorized aggregation.
    pub fn scan_column(&self, idx: usize, mut f: impl FnMut(usize, &Datum)) -> Result<()> {
        let col = self.column(idx)?;
        let mut row = 0usize;
        for chunk in &col.chunks {
            for v in chunk.decode() {
                f(row, &v);
                row += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::{row, DataType};

    fn store(n: i64) -> ColumnStore {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("region", DataType::Text),
            ("amount", DataType::Float),
        ]);
        let rows: Vec<Row> = (0..n)
            .map(|i| row![i, format!("region-{}", i % 3), (i as f64) * 0.5])
            .collect();
        ColumnStore::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn round_trip_preserves_rows() {
        let s = store(2_500);
        let rows = s.to_rows();
        assert_eq!(rows.len(), 2_500);
        assert_eq!(rows[7], row![7, "region-1", 3.5]);
    }

    #[test]
    fn compression_beats_raw_on_typical_data() {
        let s = store(10_000);
        assert!(
            s.encoded_bytes() < s.raw_bytes() / 2,
            "encoded={} raw={}",
            s.encoded_bytes(),
            s.raw_bytes()
        );
    }

    #[test]
    fn scan_column_visits_every_row_in_order() {
        let s = store(1_500);
        let mut seen = Vec::new();
        s.scan_column(0, |i, v| {
            assert_eq!(v.as_int().unwrap(), i as i64);
            seen.push(i);
        })
        .unwrap();
        assert_eq!(seen.len(), 1_500);
    }

    #[test]
    fn schema_violation_rejected() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        let err = ColumnStore::from_rows(schema, &[row!["not an int"]]).unwrap_err();
        assert_eq!(err.class(), "storage");
    }

    #[test]
    fn empty_store() {
        let s = ColumnStore::from_rows(Schema::from_pairs(&[("x", DataType::Int)]), &[]).unwrap();
        assert_eq!(s.row_count(), 0);
        assert!(s.to_rows().is_empty());
    }
}

//! A table: schema + MVCC heap + secondary indexes + statistics.
//!
//! This is the unit a data node stores and the SQL layer plans against. The
//! statistics block feeds the cost-based optimizer (§II-C): row counts and
//! per-column distinct-value/min/max estimates computed the classic way —
//! which is exactly the estimator the learning optimizer then corrects with
//! observed cardinalities.

use crate::heap::{HeapTable, TupleId};
use crate::index::{IndexKey, OrderedIndex};
use crate::mvcc::Visibility;
use hdm_common::{Datum, HdmError, Result, Row, Schema, Xid};
use std::collections::HashMap;

/// Per-column statistics for the optimizer.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    pub distinct: u64,
    pub min: Option<Datum>,
    pub max: Option<Datum>,
    pub null_count: u64,
}

/// Table-level statistics snapshot.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub row_count: u64,
    pub columns: Vec<ColumnStats>,
}

/// A named table with MVCC storage and optional indexes.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    heap: HeapTable,
    indexes: Vec<OrderedIndex>,
    stats: Option<TableStats>,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self {
            name: name.into(),
            schema,
            heap: HeapTable::new(),
            indexes: Vec::new(),
            stats: None,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn heap(&self) -> &HeapTable {
        &self.heap
    }

    /// Add an ordered index on the given column positions. Existing versions
    /// are back-filled.
    pub fn create_index(&mut self, key_columns: Vec<usize>) -> Result<usize> {
        for &c in &key_columns {
            if c >= self.schema.len() {
                return Err(HdmError::Catalog(format!(
                    "index column {c} out of range for {}",
                    self.name
                )));
            }
        }
        let mut ix = OrderedIndex::new(key_columns);
        for (tid, _hdr, row) in self.heap.scan_all() {
            ix.insert(ix.key_of(row), tid);
        }
        self.indexes.push(ix);
        Ok(self.indexes.len() - 1)
    }

    pub fn indexes(&self) -> &[OrderedIndex] {
        &self.indexes
    }

    /// Find an index whose key is exactly `columns` (order-sensitive).
    pub fn index_on(&self, columns: &[usize]) -> Option<&OrderedIndex> {
        self.indexes.iter().find(|ix| ix.key_columns() == columns)
    }

    /// Insert a row as transaction `xid`.
    pub fn insert(&mut self, xid: Xid, row: Row) -> Result<TupleId> {
        self.schema
            .validate_row(&row)
            .map_err(HdmError::Storage)?;
        let keys: Vec<IndexKey> = self.indexes.iter().map(|ix| ix.key_of(&row)).collect();
        let tid = self.heap.insert(xid, row);
        for (ix, key) in self.indexes.iter_mut().zip(keys) {
            ix.insert(key, tid);
        }
        Ok(tid)
    }

    /// Delete a visible tuple as `xid`.
    pub fn delete(&mut self, xid: Xid, tid: TupleId) -> Result<()> {
        self.heap.delete(xid, tid)
    }

    /// Update a visible tuple as `xid`, returning the successor version id.
    pub fn update(&mut self, xid: Xid, tid: TupleId, new_row: Row) -> Result<TupleId> {
        self.schema
            .validate_row(&new_row)
            .map_err(HdmError::Storage)?;
        let keys: Vec<IndexKey> = self
            .indexes
            .iter()
            .map(|ix| ix.key_of(&new_row))
            .collect();
        let new_tid = self.heap.update(xid, tid, new_row)?;
        for (ix, key) in self.indexes.iter_mut().zip(keys) {
            ix.insert(key, new_tid);
        }
        Ok(new_tid)
    }

    /// Abort cleanup for a version inserted by `xid`.
    pub fn undo_insert(&mut self, xid: Xid, tid: TupleId) -> Result<()> {
        let row = self.heap.row(tid)?.clone();
        for ix in &mut self.indexes {
            let key = ix.key_of(&row);
            ix.remove(&key, tid);
        }
        self.heap.undo_insert(xid, tid)
    }

    /// Abort cleanup for a delete stamped by `xid`.
    pub fn undo_delete(&mut self, xid: Xid, tid: TupleId) -> Result<()> {
        self.heap.undo_delete(xid, tid)
    }

    /// Visible-row scan under a visibility judge.
    pub fn scan<'a, V: Visibility + ?Sized>(
        &'a self,
        judge: &'a V,
    ) -> impl Iterator<Item = (TupleId, &'a Row)> + 'a {
        self.heap.scan_visible(judge)
    }

    /// Index-probe for visible tuples with `key` on index `ix_id`.
    pub fn probe<'a, V: Visibility + ?Sized>(
        &'a self,
        ix_id: usize,
        key: &IndexKey,
        judge: &'a V,
    ) -> Result<Vec<(TupleId, &'a Row)>> {
        let ix = self
            .indexes
            .get(ix_id)
            .ok_or_else(|| HdmError::Catalog(format!("no index {ix_id} on {}", self.name)))?;
        let mut out = Vec::new();
        for &tid in ix.probe(key) {
            let hdr = self.heap.header(tid)?;
            if judge.tuple_visible(hdr) {
                out.push((tid, self.heap.row(tid)?));
            }
        }
        Ok(out)
    }

    /// Ordered-index range walk for visible tuples whose single-column key
    /// lies within `[lo, hi]` on index `ix_id`. Hits come back in index key
    /// order; callers wanting heap order sort by tuple id.
    pub fn range_probe<'a, V: Visibility + ?Sized>(
        &'a self,
        ix_id: usize,
        lo: std::ops::Bound<&IndexKey>,
        hi: std::ops::Bound<&IndexKey>,
        judge: &'a V,
    ) -> Result<Vec<(TupleId, &'a Row)>> {
        let ix = self
            .indexes
            .get(ix_id)
            .ok_or_else(|| HdmError::Catalog(format!("no index {ix_id} on {}", self.name)))?;
        let mut out = Vec::new();
        for (_, tid) in ix.range(lo, hi) {
            let hdr = self.heap.header(tid)?;
            if judge.tuple_visible(hdr) {
                out.push((tid, self.heap.row(tid)?));
            }
        }
        Ok(out)
    }

    /// Recompute optimizer statistics from the rows visible to `judge`
    /// (ANALYZE). Distinct counts are exact here — tables are in-memory.
    pub fn analyze<V: Visibility + ?Sized>(&mut self, judge: &V) {
        let width = self.schema.len();
        let mut row_count = 0u64;
        let mut distinct: Vec<HashMap<Datum, ()>> = vec![HashMap::new(); width];
        let mut mins: Vec<Option<Datum>> = vec![None; width];
        let mut maxs: Vec<Option<Datum>> = vec![None; width];
        let mut nulls = vec![0u64; width];
        for (_tid, row) in self.heap.scan_visible(judge) {
            row_count += 1;
            for (c, v) in row.values().iter().enumerate() {
                if v.is_null() {
                    nulls[c] += 1;
                    continue;
                }
                distinct[c].insert(v.clone(), ());
                match &mins[c] {
                    None => mins[c] = Some(v.clone()),
                    Some(m) if v < m => mins[c] = Some(v.clone()),
                    _ => {}
                }
                match &maxs[c] {
                    None => maxs[c] = Some(v.clone()),
                    Some(m) if v > m => maxs[c] = Some(v.clone()),
                    _ => {}
                }
            }
        }
        let columns = (0..width)
            .map(|c| ColumnStats {
                distinct: distinct[c].len() as u64,
                min: mins[c].clone(),
                max: maxs[c].clone(),
                null_count: nulls[c],
            })
            .collect();
        self.stats = Some(TableStats { row_count, columns });
    }

    /// The last ANALYZE result, if any.
    pub fn stats(&self) -> Option<&TableStats> {
        self.stats.as_ref()
    }

    /// Install externally computed statistics — the CN-side path: a
    /// coordinator merges per-shard ANALYZE results and plants the merged
    /// block on its shadow catalog entry so the planner costs distributed
    /// scans from data-node truth rather than defaults.
    pub fn set_stats(&mut self, stats: TableStats) {
        self.stats = Some(stats);
    }

    /// Freeze the rows visible to `judge` into a compressed columnar
    /// snapshot — the hybrid row-column conversion: the mutable OLTP heap
    /// stays authoritative, the returned store serves analytic scans.
    pub fn to_column_store<V: Visibility + ?Sized>(
        &self,
        judge: &V,
    ) -> Result<crate::column::ColumnStore> {
        let rows: Vec<Row> = self.scan(judge).map(|(_, r)| r.clone()).collect();
        crate::column::ColumnStore::from_rows(self.schema.clone(), &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvcc::FixedVisibility;
    use hdm_common::{row, DataType};

    const TX: Xid = Xid(10);
    const TY: Xid = Xid(20);

    fn table() -> Table {
        Table::new(
            "accounts",
            Schema::from_pairs(&[("id", DataType::Int), ("balance", DataType::Int)]),
        )
    }

    #[test]
    fn insert_scan_visible_only() {
        let mut t = table();
        t.insert(TX, row![1, 100]).unwrap();
        t.insert(TY, row![2, 200]).unwrap();
        let judge = FixedVisibility::new([TX], None);
        let rows: Vec<_> = t.scan(&judge).map(|(_, r)| r.clone()).collect();
        assert_eq!(rows, vec![row![1, 100]]);
    }

    #[test]
    fn index_probe_respects_visibility() {
        let mut t = table();
        t.create_index(vec![0]).unwrap();
        let tid = t.insert(TX, row![1, 100]).unwrap();
        t.update(TY, tid, row![1, 150]).unwrap();
        let judge_old = FixedVisibility::new([TX], None);
        let hits = t.probe(0, &vec![Datum::Int(1)], &judge_old).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, &row![1, 100]);
        let judge_new = FixedVisibility::new([TX, TY], None);
        let hits = t.probe(0, &vec![Datum::Int(1)], &judge_new).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, &row![1, 150]);
    }

    #[test]
    fn create_index_backfills() {
        let mut t = table();
        t.insert(TX, row![7, 70]).unwrap();
        t.create_index(vec![0]).unwrap();
        let judge = FixedVisibility::new([TX], None);
        assert_eq!(t.probe(0, &vec![Datum::Int(7)], &judge).unwrap().len(), 1);
    }

    #[test]
    fn undo_insert_cleans_index() {
        let mut t = table();
        t.create_index(vec![0]).unwrap();
        let tid = t.insert(TX, row![9, 90]).unwrap();
        t.undo_insert(TX, tid).unwrap();
        assert_eq!(t.indexes()[0].len(), 0);
    }

    #[test]
    fn analyze_computes_stats() {
        let mut t = table();
        for i in 0..100i64 {
            t.insert(TX, row![i, i % 10]).unwrap();
        }
        t.analyze(&FixedVisibility::new([TX], None));
        let s = t.stats().unwrap();
        assert_eq!(s.row_count, 100);
        assert_eq!(s.columns[0].distinct, 100);
        assert_eq!(s.columns[1].distinct, 10);
        assert_eq!(s.columns[0].min, Some(Datum::Int(0)));
        assert_eq!(s.columns[0].max, Some(Datum::Int(99)));
    }

    #[test]
    fn schema_violation_rejected_on_insert_and_update() {
        let mut t = table();
        assert!(t.insert(TX, row!["bad", 1]).is_err());
        let tid = t.insert(TX, row![1, 1]).unwrap();
        assert!(t.update(TY, tid, row![1]).is_err());
    }

    #[test]
    fn hybrid_conversion_respects_visibility() {
        let mut t = table();
        for i in 0..100i64 {
            t.insert(TX, row![i, i * 2]).unwrap();
        }
        // An uncommitted writer's rows must not leak into the OLAP snapshot.
        t.insert(TY, row![999, 999]).unwrap();
        let judge = FixedVisibility::new([TX], None);
        let col = t.to_column_store(&judge).unwrap();
        assert_eq!(col.row_count(), 100);
        let rows = col.to_rows();
        assert_eq!(rows[7], row![7, 14]);
        assert!(col.encoded_bytes() < col.raw_bytes(), "compressed");
    }

    #[test]
    fn bad_index_column_rejected() {
        let mut t = table();
        assert!(t.create_index(vec![5]).is_err());
    }
}

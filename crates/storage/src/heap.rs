//! The MVCC row heap.
//!
//! Tuple versions are append-only; DELETE stamps `xmax`, UPDATE stamps the
//! old version's `xmax` and appends a successor version (recording the link
//! for update-chain traversal). Aborted transactions' stamps are cleared by
//! the transaction layer calling [`HeapTable::undo_insert`] /
//! [`HeapTable::undo_delete`] — simple and sufficient for an in-memory
//! engine (no WAL/redo is needed because the heap *is* the memory image; the
//! paper's FI-MPPDB durability machinery is out of reproduction scope).

use crate::mvcc::{TupleHeader, Visibility};
use hdm_common::ids::INVALID_XID;
use hdm_common::{HdmError, Result, Row, Xid};

/// Position of a tuple version within a heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u64);

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tid:{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Slot {
    header: TupleHeader,
    row: Row,
    /// Successor version (set by UPDATE).
    next_version: Option<TupleId>,
}

/// An append-only MVCC heap of rows.
#[derive(Debug, Default, Clone)]
pub struct HeapTable {
    slots: Vec<Slot>,
}

impl HeapTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuple *versions* (not live rows).
    pub fn version_count(&self) -> usize {
        self.slots.len()
    }

    /// Insert a new row version created by `xid`.
    pub fn insert(&mut self, xid: Xid, row: Row) -> TupleId {
        let tid = TupleId(self.slots.len() as u64);
        self.slots.push(Slot {
            header: TupleHeader::new(xid),
            row,
            next_version: None,
        });
        tid
    }

    /// Mark `tid` deleted by `xid`. Fails if the version is already dead
    /// (write-write conflict surfaced to the transaction layer).
    pub fn delete(&mut self, xid: Xid, tid: TupleId) -> Result<()> {
        let slot = self.slot_mut(tid)?;
        if slot.header.has_xmax() {
            return Err(HdmError::TxnAborted(format!(
                "write-write conflict on {tid}: already deleted by {}",
                slot.header.xmax
            )));
        }
        slot.header.xmax = xid;
        Ok(())
    }

    /// Update `tid`: stamp it dead and append the successor version.
    pub fn update(&mut self, xid: Xid, tid: TupleId, new_row: Row) -> Result<TupleId> {
        self.delete(xid, tid)?;
        let new_tid = self.insert(xid, new_row);
        self.slot_mut(tid)?.next_version = Some(new_tid);
        Ok(new_tid)
    }

    /// Abort path: clear an `xmax` stamped by `xid` (un-delete).
    pub fn undo_delete(&mut self, xid: Xid, tid: TupleId) -> Result<()> {
        let slot = self.slot_mut(tid)?;
        if slot.header.xmax != xid {
            return Err(HdmError::TxnState(format!(
                "undo_delete on {tid}: xmax is {} not {xid}",
                slot.header.xmax
            )));
        }
        slot.header.xmax = INVALID_XID;
        slot.next_version = None;
        Ok(())
    }

    /// Abort path: neutralize a version inserted by `xid`. The slot stays
    /// allocated (append-only heap) but becomes permanently invisible.
    pub fn undo_insert(&mut self, xid: Xid, tid: TupleId) -> Result<()> {
        let slot = self.slot_mut(tid)?;
        if slot.header.xmin != xid {
            return Err(HdmError::TxnState(format!(
                "undo_insert on {tid}: xmin is {} not {xid}",
                slot.header.xmin
            )));
        }
        // xmin == xmax == xid with xid aborted: invisible to every judge
        // because no judge sees an aborted xid as committed and a transaction
        // that aborted is no longer anyone's "own".
        slot.header.xmax = xid;
        Ok(())
    }

    /// Raw access to a version's header.
    pub fn header(&self, tid: TupleId) -> Result<&TupleHeader> {
        self.slot(tid).map(|s| &s.header)
    }

    /// Raw access to a version's row (ignores visibility).
    pub fn row(&self, tid: TupleId) -> Result<&Row> {
        self.slot(tid).map(|s| &s.row)
    }

    /// The successor version installed by an UPDATE, if any.
    pub fn next_version(&self, tid: TupleId) -> Result<Option<TupleId>> {
        self.slot(tid).map(|s| s.next_version)
    }

    /// Scan all versions visible to `judge`, yielding `(tid, row)`.
    pub fn scan_visible<'a, V: Visibility + ?Sized>(
        &'a self,
        judge: &'a V,
    ) -> impl Iterator<Item = (TupleId, &'a Row)> + 'a {
        self.slots.iter().enumerate().filter_map(move |(i, s)| {
            judge
                .tuple_visible(&s.header)
                .then_some((TupleId(i as u64), &s.row))
        })
    }

    /// Scan every version regardless of visibility, yielding
    /// `(tid, header, row)` — used by index builders and debug tooling.
    pub fn scan_all(&self) -> impl Iterator<Item = (TupleId, &TupleHeader, &Row)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (TupleId(i as u64), &s.header, &s.row))
    }

    fn slot(&self, tid: TupleId) -> Result<&Slot> {
        self.slots
            .get(tid.0 as usize)
            .ok_or_else(|| HdmError::Storage(format!("unknown tuple {tid}")))
    }

    fn slot_mut(&mut self, tid: TupleId) -> Result<&mut Slot> {
        self.slots
            .get_mut(tid.0 as usize)
            .ok_or_else(|| HdmError::Storage(format!("unknown tuple {tid}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvcc::FixedVisibility;
    use hdm_common::row;

    const TA: Xid = Xid(100);
    const TB: Xid = Xid(200);

    #[test]
    fn insert_then_scan_with_committed_inserter() {
        let mut heap = HeapTable::new();
        heap.insert(TA, row![1, "a"]);
        let judge = FixedVisibility::new([TA], None);
        let rows: Vec<_> = heap.scan_visible(&judge).collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, &row![1, "a"]);
    }

    #[test]
    fn update_creates_version_chain() {
        let mut heap = HeapTable::new();
        let t0 = heap.insert(TA, row![1]);
        let t1 = heap.update(TB, t0, row![2]).unwrap();
        assert_eq!(heap.next_version(t0).unwrap(), Some(t1));
        assert_eq!(heap.header(t0).unwrap().xmax, TB);
        assert_eq!(heap.header(t1).unwrap().xmin, TB);

        // A reader that sees only TA committed reads the old version.
        let old_reader = FixedVisibility::new([TA], None);
        let rows: Vec<_> = heap.scan_visible(&old_reader).map(|(_, r)| r).collect();
        assert_eq!(rows, vec![&row![1]]);

        // A reader that sees both reads only the new version.
        let new_reader = FixedVisibility::new([TA, TB], None);
        let rows: Vec<_> = heap.scan_visible(&new_reader).map(|(_, r)| r).collect();
        assert_eq!(rows, vec![&row![2]]);
    }

    #[test]
    fn double_delete_is_write_write_conflict() {
        let mut heap = HeapTable::new();
        let t0 = heap.insert(TA, row![1]);
        heap.delete(TB, t0).unwrap();
        let err = heap.delete(Xid(300), t0).unwrap_err();
        assert_eq!(err.class(), "txn_aborted");
    }

    #[test]
    fn undo_delete_restores_visibility() {
        let mut heap = HeapTable::new();
        let t0 = heap.insert(TA, row![1]);
        heap.delete(TB, t0).unwrap();
        heap.undo_delete(TB, t0).unwrap();
        let judge = FixedVisibility::new([TA], None);
        assert_eq!(heap.scan_visible(&judge).count(), 1);
    }

    #[test]
    fn undo_delete_validates_owner() {
        let mut heap = HeapTable::new();
        let t0 = heap.insert(TA, row![1]);
        heap.delete(TB, t0).unwrap();
        assert!(heap.undo_delete(Xid(999), t0).is_err());
    }

    #[test]
    fn undo_insert_makes_version_permanently_invisible() {
        let mut heap = HeapTable::new();
        let t0 = heap.insert(TA, row![1]);
        heap.undo_insert(TA, t0).unwrap();
        // Even a judge that considers TA committed must not see it: the
        // version is self-stamped (xmin == xmax == TA).
        let judge = FixedVisibility::new([TA], None);
        assert_eq!(heap.scan_visible(&judge).count(), 0);
    }

    #[test]
    fn unknown_tid_is_storage_error() {
        let mut heap = HeapTable::new();
        assert_eq!(
            heap.delete(TA, TupleId(7)).unwrap_err().class(),
            "storage"
        );
    }

    #[test]
    fn version_count_counts_versions() {
        let mut heap = HeapTable::new();
        let t0 = heap.insert(TA, row![1]);
        heap.update(TB, t0, row![2]).unwrap();
        assert_eq!(heap.version_count(), 2);
    }
}

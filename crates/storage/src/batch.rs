//! Vectorized column batches.
//!
//! FI-MPPDB's "vectorized execution engine … with latest SIMD instructions"
//! (§I) processes tuples in column-major batches. We reproduce the
//! architecture — column vectors plus a selection vector so filters avoid
//! materializing — in portable Rust; the compiler auto-vectorizes the tight
//! integer loops where the host allows.

use hdm_common::{Datum, HdmError, Result, Row, Schema};

/// Default number of rows per batch (a common vector width in columnar
/// engines: large enough to amortize dispatch, small enough for cache).
pub const BATCH_SIZE: usize = 1024;

/// A column-major batch of rows with an optional selection vector.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    columns: Vec<Vec<Datum>>,
    /// Indices of live rows; `None` means all rows live.
    selection: Option<Vec<u32>>,
    rows: usize,
}

impl Batch {
    /// Build from row-major input.
    pub fn from_rows(schema_width: usize, rows: &[Row]) -> Result<Batch> {
        let mut columns = vec![Vec::with_capacity(rows.len()); schema_width];
        for r in rows {
            if r.len() != schema_width {
                return Err(HdmError::Execution(format!(
                    "row arity {} != batch width {schema_width}",
                    r.len()
                )));
            }
            for (c, v) in r.values().iter().enumerate() {
                columns[c].push(v.clone());
            }
        }
        Ok(Batch {
            columns,
            selection: None,
            rows: rows.len(),
        })
    }

    /// Build directly from column vectors (must be equal length).
    pub fn from_columns(columns: Vec<Vec<Datum>>) -> Result<Batch> {
        let rows = columns.first().map_or(0, Vec::len);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(HdmError::Execution("ragged batch columns".into()));
        }
        Ok(Batch {
            columns,
            selection: None,
            rows,
        })
    }

    /// Number of *live* rows (after selection).
    pub fn len(&self) -> usize {
        match &self.selection {
            Some(sel) => sel.len(),
            None => self.rows,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Raw column data (pre-selection).
    pub fn column(&self, idx: usize) -> Result<&[Datum]> {
        self.columns
            .get(idx)
            .map(Vec::as_slice)
            .ok_or_else(|| HdmError::Execution(format!("no column {idx}")))
    }

    /// Iterate live physical row indices.
    pub fn live_indices(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match &self.selection {
            Some(sel) => Box::new(sel.iter().map(|&i| i as usize)),
            None => Box::new(0..self.rows),
        }
    }

    /// Value at a live position `(row, col)` where `row` is physical.
    pub fn value(&self, row: usize, col: usize) -> &Datum {
        &self.columns[col][row]
    }

    /// Vectorized filter on one column: narrow the selection vector to live
    /// rows whose `col` value satisfies `pred`. No data movement.
    pub fn filter_col(&mut self, col: usize, pred: impl Fn(&Datum) -> bool) {
        let column = &self.columns[col];
        let new_sel: Vec<u32> = match &self.selection {
            Some(sel) => sel
                .iter()
                .copied()
                .filter(|&i| pred(&column[i as usize]))
                .collect(),
            None => (0..self.rows as u32)
                .filter(|&i| pred(&column[i as usize]))
                .collect(),
        };
        self.selection = Some(new_sel);
    }

    /// Replace the selection with explicit physical indices (caller ensures
    /// they are in range and were live).
    pub fn select(&mut self, indices: Vec<u32>) {
        self.selection = Some(indices);
    }

    /// Materialize the live rows into row-major form.
    pub fn to_rows(&self) -> Vec<Row> {
        self.live_indices()
            .map(|i| {
                Row::new(
                    self.columns
                        .iter()
                        .map(|c| c[i].clone())
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    /// Compact: rewrite columns to contain only live rows and clear the
    /// selection vector. Amortizes repeated downstream passes.
    pub fn compact(&mut self) {
        if self.selection.is_none() {
            return;
        }
        let live: Vec<usize> = self.live_indices().collect();
        for col in &mut self.columns {
            let mut out = Vec::with_capacity(live.len());
            for &i in &live {
                out.push(col[i].clone());
            }
            *col = out;
        }
        self.rows = live.len();
        self.selection = None;
    }

    /// Validate live rows against a schema (debug/assertion helper).
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        for row in self.to_rows() {
            schema
                .validate_row(&row)
                .map_err(HdmError::Execution)?;
        }
        Ok(())
    }
}

/// Split rows into batches of at most `batch_size`.
pub fn batched(schema_width: usize, rows: &[Row], batch_size: usize) -> Result<Vec<Batch>> {
    rows.chunks(batch_size.max(1))
        .map(|chunk| Batch::from_rows(schema_width, chunk))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::row;

    fn sample() -> Batch {
        let rows: Vec<Row> = (0..10).map(|i| row![i, i * 10]).collect();
        Batch::from_rows(2, &rows).unwrap()
    }

    #[test]
    fn from_rows_round_trips() {
        let b = sample();
        assert_eq!(b.len(), 10);
        assert_eq!(b.width(), 2);
        assert_eq!(b.to_rows()[3], row![3, 30]);
    }

    #[test]
    fn filter_narrows_without_moving_data() {
        let mut b = sample();
        b.filter_col(0, |d| d.as_int().unwrap() % 2 == 0);
        assert_eq!(b.len(), 5);
        assert_eq!(b.to_rows()[1], row![2, 20]);
        // Underlying storage untouched.
        assert_eq!(b.column(0).unwrap().len(), 10);
    }

    #[test]
    fn stacked_filters_intersect() {
        let mut b = sample();
        b.filter_col(0, |d| d.as_int().unwrap() % 2 == 0); // 0,2,4,6,8
        b.filter_col(0, |d| d.as_int().unwrap() > 3); // 4,6,8
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_rows()[0], row![4, 40]);
    }

    #[test]
    fn compact_rewrites_storage() {
        let mut b = sample();
        b.filter_col(0, |d| d.as_int().unwrap() >= 8);
        b.compact();
        assert_eq!(b.len(), 2);
        assert_eq!(b.column(0).unwrap().len(), 2);
        assert_eq!(b.to_rows(), vec![row![8, 80], row![9, 90]]);
    }

    #[test]
    fn ragged_input_rejected() {
        assert!(Batch::from_rows(2, &[row![1]]).is_err());
        assert!(Batch::from_columns(vec![vec![Datum::Int(1)], vec![]]).is_err());
    }

    #[test]
    fn batched_splits_evenly() {
        let rows: Vec<Row> = (0..2500).map(|i| row![i]).collect();
        let batches = batched(1, &rows, BATCH_SIZE).unwrap();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 1024);
        assert_eq!(batches[2].len(), 452);
    }

    #[test]
    fn empty_batch_is_fine() {
        let b = Batch::from_rows(3, &[]).unwrap();
        assert!(b.is_empty());
        assert_eq!(b.to_rows().len(), 0);
    }
}

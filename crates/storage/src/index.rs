//! Ordered secondary indexes over heap tuples.
//!
//! An index maps a key (one column's datum, or a composite) to the tuple ids
//! of *all versions* carrying that key; visibility is judged at lookup time
//! by the caller's snapshot, exactly as PostgreSQL consults the heap for
//! tuple liveness after an index probe.

use crate::heap::TupleId;
use hdm_common::Datum;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Composite index key (single-column keys are one-element vectors).
pub type IndexKey = Vec<Datum>;

/// An ordered (BTree) secondary index.
#[derive(Debug, Default, Clone)]
pub struct OrderedIndex {
    /// Column positions (in the table schema) forming the key.
    key_columns: Vec<usize>,
    map: BTreeMap<IndexKey, Vec<TupleId>>,
    entries: usize,
}

impl OrderedIndex {
    pub fn new(key_columns: Vec<usize>) -> Self {
        Self {
            key_columns,
            map: BTreeMap::new(),
            entries: 0,
        }
    }

    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// Extract this index's key from a full row.
    pub fn key_of(&self, row: &hdm_common::Row) -> IndexKey {
        self.key_columns
            .iter()
            .map(|&c| row.values()[c].clone())
            .collect()
    }

    /// Register a tuple version under its key.
    pub fn insert(&mut self, key: IndexKey, tid: TupleId) {
        self.map.entry(key).or_default().push(tid);
        self.entries += 1;
    }

    /// Remove one version registration (abort cleanup).
    pub fn remove(&mut self, key: &IndexKey, tid: TupleId) -> bool {
        if let Some(v) = self.map.get_mut(key) {
            if let Some(pos) = v.iter().position(|&t| t == tid) {
                v.swap_remove(pos);
                self.entries -= 1;
                if v.is_empty() {
                    self.map.remove(key);
                }
                return true;
            }
        }
        false
    }

    /// All versions with exactly `key`.
    pub fn probe(&self, key: &IndexKey) -> &[TupleId] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// All versions whose key lies in `[lo, hi]` bounds (inclusive /
    /// exclusive per `Bound`), in key order.
    pub fn range<'a>(
        &'a self,
        lo: Bound<&'a IndexKey>,
        hi: Bound<&'a IndexKey>,
    ) -> impl Iterator<Item = (&'a IndexKey, TupleId)> + 'a {
        self.map
            .range::<IndexKey, _>((lo, hi))
            .flat_map(|(k, tids)| tids.iter().map(move |&t| (k, t)))
    }

    /// Number of (key, version) registrations.
    pub fn len(&self) -> usize {
        self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct keys (drives optimizer NDV estimates).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::row;

    fn key(v: i64) -> IndexKey {
        vec![Datum::Int(v)]
    }

    #[test]
    fn probe_finds_all_versions() {
        let mut ix = OrderedIndex::new(vec![0]);
        ix.insert(key(5), TupleId(1));
        ix.insert(key(5), TupleId(9));
        ix.insert(key(6), TupleId(2));
        assert_eq!(ix.probe(&key(5)), &[TupleId(1), TupleId(9)]);
        assert_eq!(ix.probe(&key(7)), &[] as &[TupleId]);
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.distinct_keys(), 2);
    }

    #[test]
    fn range_scans_in_key_order() {
        let mut ix = OrderedIndex::new(vec![0]);
        for v in [30i64, 10, 20, 40] {
            ix.insert(key(v), TupleId(v as u64));
        }
        let lo = key(15);
        let hi = key(35);
        let hits: Vec<u64> = ix
            .range(Bound::Included(&lo), Bound::Included(&hi))
            .map(|(_, t)| t.0)
            .collect();
        assert_eq!(hits, vec![20, 30]);
    }

    #[test]
    fn unbounded_range_is_full_scan_in_order() {
        let mut ix = OrderedIndex::new(vec![0]);
        for v in [3i64, 1, 2] {
            ix.insert(key(v), TupleId(v as u64));
        }
        let all: Vec<u64> = ix
            .range(Bound::Unbounded, Bound::Unbounded)
            .map(|(_, t)| t.0)
            .collect();
        assert_eq!(all, vec![1, 2, 3]);
    }

    #[test]
    fn remove_unregisters_one_version() {
        let mut ix = OrderedIndex::new(vec![0]);
        ix.insert(key(5), TupleId(1));
        ix.insert(key(5), TupleId(2));
        assert!(ix.remove(&key(5), TupleId(1)));
        assert!(!ix.remove(&key(5), TupleId(1)), "already gone");
        assert_eq!(ix.probe(&key(5)), &[TupleId(2)]);
        assert!(ix.remove(&key(5), TupleId(2)));
        assert_eq!(ix.distinct_keys(), 0);
    }

    #[test]
    fn composite_keys_extract_and_order() {
        let mut ix = OrderedIndex::new(vec![1, 0]);
        let k = ix.key_of(&row![7, "beta"]);
        assert_eq!(k, vec![Datum::Text("beta".into()), Datum::Int(7)]);
        ix.insert(k.clone(), TupleId(0));
        assert_eq!(ix.probe(&k), &[TupleId(0)]);
    }
}

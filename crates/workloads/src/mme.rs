//! MME session data and the Fig 8 schema-version chain.
//!
//! "Typical volume of a single user session data is about 5-10KB and is
//! represented as a tree-modeled object in a JSON format" (§III-B). The
//! generator produces sessions in that size band: a root record with
//! identity fields plus arrays of bearer and PDN-connection sub-records,
//! padded with realistic-looking opaque NAS state. The schema chain is
//! Fig 8's V3→V5→V6→V7→V8, each version appending fields (the upgrade
//! motivations: "the upgrading of MME from V3 to V5 to support a new
//! feature requires more fields to be added in the session data").

use hdm_common::SplitMix64;
use hdm_gmdb::object::{FieldDef, FieldType, ObjectSchema, RecordSchema};
use serde_json::{json, Value};

/// Versions of the Fig 8 matrix.
pub const MME_VERSIONS: [u32; 5] = [3, 5, 6, 7, 8];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct MmeConfig {
    /// Bearers per session (drives object size).
    pub bearers: usize,
    /// Bytes of opaque NAS state (pads the object into the 5–10 KB band).
    pub nas_state_bytes: usize,
    pub seed: u64,
}

impl Default for MmeConfig {
    fn default() -> Self {
        Self {
            bearers: 8,
            nas_state_bytes: 6_000,
            seed: 0x33e,
        }
    }
}

fn bearer_schema() -> RecordSchema {
    RecordSchema::new(vec![
        FieldDef::new("bearer_id", FieldType::Int),
        FieldDef::new("qci", FieldType::Int),
        FieldDef::new("gtp_teid", FieldType::Int),
        FieldDef::new("apn", FieldType::Str),
    ])
}

/// The Fig 8 chain: V3 baseline, each later version appending root fields.
pub fn mme_schema_chain() -> Vec<ObjectSchema> {
    let base = vec![
        FieldDef::new("id", FieldType::Str),
        FieldDef::new("imsi", FieldType::Int),
        FieldDef::new("guti", FieldType::Str),
        FieldDef::new("tracking_area", FieldType::Int),
        FieldDef::new("nas_state", FieldType::Str),
        FieldDef::new("bearers", FieldType::Record(bearer_schema())),
    ];
    let additions: [(u32, Vec<FieldDef>); 5] = [
        (3, vec![]),
        (
            5,
            vec![
                FieldDef::new("csfb_capable", FieldType::Bool).with_default(json!(false)),
                FieldDef::new("srvcc_target", FieldType::Str).with_default(json!("")),
            ],
        ),
        (
            6,
            vec![FieldDef::new("volte_profile", FieldType::Str)
                .with_default(json!("default"))],
        ),
        (
            7,
            vec![
                FieldDef::new("nb_iot", FieldType::Bool).with_default(json!(false)),
                FieldDef::new("edrx_cycle", FieldType::Int).with_default(json!(0)),
            ],
        ),
        (
            8,
            vec![FieldDef::new("slice_id", FieldType::Int).with_default(json!(0))],
        ),
    ];
    let mut fields = base;
    let mut out = Vec::new();
    for (version, extra) in additions {
        fields.extend(extra);
        out.push(
            ObjectSchema::new("mme_session", version, RecordSchema::new(fields.clone()), "id")
                .expect("static schema"),
        );
    }
    out
}

/// Generate one session object conforming to the given version.
pub fn generate_session(rng: &mut SplitMix64, version: u32, cfg: &MmeConfig) -> Value {
    let idx = MME_VERSIONS
        .iter()
        .position(|&v| v == version)
        .expect("known MME version");
    let imsi = 460_000_000_000u64 + rng.next_below(1_000_000_000);
    let bearers: Vec<Value> = (0..cfg.bearers)
        .map(|i| {
            json!({
                "bearer_id": 5 + i as i64,
                "qci": rng.range_i64(1, 9),
                "gtp_teid": rng.next_below(1 << 31) as i64,
                "apn": format!("apn-{}.operator.example", rng.next_below(4)),
            })
        })
        .collect();
    // Opaque hex-ish NAS blob padding into the 5–10 KB band.
    let mut nas = String::with_capacity(cfg.nas_state_bytes);
    while nas.len() < cfg.nas_state_bytes {
        nas.push_str(&format!("{:016x}", rng.next_u64()));
    }
    nas.truncate(cfg.nas_state_bytes);

    let mut obj = json!({
        "id": format!("imsi-{imsi}"),
        "imsi": imsi as i64,
        "guti": format!("guti-{:08x}", rng.next_u64() as u32),
        "tracking_area": rng.range_i64(1, 4096),
        "nas_state": nas,
        "bearers": bearers,
    });
    // Version-specific appended fields.
    if idx >= 1 {
        obj["csfb_capable"] = json!(rng.chance(0.3));
        obj["srvcc_target"] = json!(format!("mss-{}", rng.next_below(8)));
    }
    if idx >= 2 {
        obj["volte_profile"] = json!(format!("profile-{}", rng.next_below(3)));
    }
    if idx >= 3 {
        obj["nb_iot"] = json!(rng.chance(0.1));
        obj["edrx_cycle"] = json!(rng.range_i64(0, 2048));
    }
    if idx >= 4 {
        obj["slice_id"] = json!(rng.range_i64(0, 15));
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_gmdb::SchemaRegistry;

    fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        for s in mme_schema_chain() {
            reg.register(s).unwrap();
        }
        reg
    }

    #[test]
    fn chain_registers_cleanly() {
        let reg = registry();
        assert_eq!(reg.versions("mme_session"), MME_VERSIONS.to_vec());
    }

    #[test]
    fn sessions_conform_to_their_version() {
        let reg = registry();
        let mut rng = SplitMix64::new(1);
        let cfg = MmeConfig::default();
        for &v in &MME_VERSIONS {
            let obj = generate_session(&mut rng, v, &cfg);
            reg.get("mme_session", v)
                .unwrap()
                .root
                .validate(&obj)
                .unwrap_or_else(|e| panic!("v{v}: {e}"));
        }
    }

    #[test]
    fn sessions_land_in_the_5_to_10_kb_band() {
        let mut rng = SplitMix64::new(2);
        let cfg = MmeConfig::default();
        for &v in &MME_VERSIONS {
            let obj = generate_session(&mut rng, v, &cfg);
            let size = serde_json::to_string(&obj).unwrap().len();
            assert!(
                (5_000..=10_000).contains(&size),
                "v{v} session is {size}B"
            );
        }
    }

    #[test]
    fn v3_session_upgrades_to_v8_and_back() {
        let reg = registry();
        let mut rng = SplitMix64::new(3);
        let obj = generate_session(&mut rng, 3, &MmeConfig::default());
        let (v8, _) = reg.convert("mme_session", &obj, 3, 8).unwrap();
        reg.get("mme_session", 8).unwrap().root.validate(&v8).unwrap();
        assert_eq!(v8["slice_id"], json!(0), "default fills");
        let (back, _) = reg.convert("mme_session", &v8, 8, 3).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = MmeConfig::default();
        let a = generate_session(&mut SplitMix64::new(9), 5, &cfg);
        let b = generate_session(&mut SplitMix64::new(9), 5, &cfg);
        assert_eq!(a, b);
    }
}

//! The modified-TPC-C workload of Fig 3.
//!
//! TPC-C's defining property for the GTM-lite experiment is that warehouses
//! shard the database and most transactions touch a single warehouse; the
//! paper's modification dials the single-shard fraction to exactly 100%
//! (SS) or 90% (MS). This generator produces short read-write transaction
//! *specs* against warehouse-prefixed keys; the cluster engine or the
//! discrete-event simulator executes them.

use hdm_cluster::{make_key, TxnOptions};
use hdm_common::SplitMix64;

/// One key operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpSpec {
    Read(i64),
    Write(i64, i64),
}

impl OpSpec {
    pub fn key(&self) -> i64 {
        match self {
            OpSpec::Read(k) | OpSpec::Write(k, _) => *k,
        }
    }
}

/// One transaction spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSpec {
    /// `Some(prefix)`: the application knows this is single-sharded.
    pub single_prefix: Option<u32>,
    pub ops: Vec<OpSpec>,
}

impl TxnSpec {
    pub fn is_single_shard(&self) -> bool {
        self.single_prefix.is_some()
    }
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    pub warehouses: u32,
    pub items_per_warehouse: u32,
    /// 1.0 = the paper's SS workload, 0.9 = MS.
    pub single_shard_fraction: f64,
    pub reads_per_txn: u32,
    pub writes_per_txn: u32,
    /// Warehouses touched by a multi-shard transaction.
    pub multi_warehouses: u32,
    pub seed: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        Self {
            warehouses: 16,
            items_per_warehouse: 1024,
            single_shard_fraction: 1.0,
            reads_per_txn: 2,
            writes_per_txn: 2,
            multi_warehouses: 2,
            seed: 0x7ecc,
        }
    }
}

impl TpccConfig {
    pub fn ss() -> Self {
        Self::default()
    }

    pub fn ms() -> Self {
        Self {
            single_shard_fraction: 0.9,
            ..Self::default()
        }
    }
}

/// An infinite deterministic stream of transaction specs.
#[derive(Debug, Clone)]
pub struct TpccGenerator {
    cfg: TpccConfig,
    rng: SplitMix64,
    produced: u64,
}

impl TpccGenerator {
    pub fn new(cfg: TpccConfig) -> Self {
        assert!(cfg.warehouses > 0 && cfg.items_per_warehouse > 0);
        assert!((0.0..=1.0).contains(&cfg.single_shard_fraction));
        let seed = cfg.seed;
        Self {
            cfg,
            rng: SplitMix64::new(seed),
            produced: 0,
        }
    }

    pub fn produced(&self) -> u64 {
        self.produced
    }

    fn key_in(&mut self, warehouse: u32) -> i64 {
        let item = self.rng.next_below(self.cfg.items_per_warehouse as u64) as u32;
        make_key(warehouse, item)
    }

    /// The next transaction spec.
    pub fn next_txn(&mut self) -> TxnSpec {
        self.produced += 1;
        let home = self.rng.next_below(self.cfg.warehouses as u64) as u32;
        let single = self.rng.chance(self.cfg.single_shard_fraction);
        let mut ops = Vec::new();
        if single {
            for _ in 0..self.cfg.reads_per_txn {
                let k = self.key_in(home);
                ops.push(OpSpec::Read(k));
            }
            for _ in 0..self.cfg.writes_per_txn {
                let k = self.key_in(home);
                let v = (self.rng.next_u64() & 0xffff) as i64;
                ops.push(OpSpec::Write(k, v));
            }
            TxnSpec {
                single_prefix: Some(home),
                ops,
            }
        } else {
            // Reads on the home warehouse, one write per extra warehouse —
            // the NewOrder-with-remote-stock shape.
            let mut whs = vec![home];
            let mut guard = 0;
            while whs.len() < self.cfg.multi_warehouses as usize && guard < 64 {
                guard += 1;
                let w = self.rng.next_below(self.cfg.warehouses as u64) as u32;
                if !whs.contains(&w) {
                    whs.push(w);
                }
            }
            for _ in 0..self.cfg.reads_per_txn {
                let k = self.key_in(home);
                ops.push(OpSpec::Read(k));
            }
            for &w in &whs {
                let k = self.key_in(w);
                let v = (self.rng.next_u64() & 0xffff) as i64;
                ops.push(OpSpec::Write(k, v));
            }
            TxnSpec {
                single_prefix: None,
                ops,
            }
        }
    }

    /// Generate `n` specs.
    pub fn take(&mut self, n: usize) -> Vec<TxnSpec> {
        (0..n).map(|_| self.next_txn()).collect()
    }
}

/// Run a batch of specs against a cluster engine; returns
/// `(committed, aborted)`. The glue used by examples and benches.
pub fn run_specs(
    cluster: &mut hdm_cluster::Cluster,
    specs: &[TxnSpec],
) -> hdm_common::Result<(u64, u64)> {
    let mut committed = 0;
    let mut aborted = 0;
    'spec: for spec in specs {
        let mut txn = match spec.single_prefix {
            Some(p) => cluster.begin(TxnOptions::single(p))?,
            None => cluster.begin(TxnOptions::multi())?,
        };
        for op in &spec.ops {
            let result = match op {
                OpSpec::Read(k) => cluster.get(&mut txn, *k).map(|_| ()),
                OpSpec::Write(k, v) => cluster.put(&mut txn, *k, *v),
            };
            if result.is_err() {
                cluster.abort(txn)?;
                aborted += 1;
                continue 'spec;
            }
        }
        match cluster.commit(txn) {
            Ok(()) => committed += 1,
            Err(_) => aborted += 1,
        }
    }
    Ok((committed, aborted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_cluster::{key_prefix, Cluster, ClusterConfig};

    #[test]
    fn ss_config_yields_only_single_shard() {
        let mut g = TpccGenerator::new(TpccConfig::ss());
        for spec in g.take(500) {
            assert!(spec.is_single_shard());
            let home = spec.single_prefix.unwrap();
            assert!(spec.ops.iter().all(|o| key_prefix(o.key()) == home));
        }
    }

    #[test]
    fn ms_config_hits_the_ten_percent_mix() {
        let mut g = TpccGenerator::new(TpccConfig::ms());
        let specs = g.take(10_000);
        let multi = specs.iter().filter(|s| !s.is_single_shard()).count();
        assert!(
            (800..=1200).contains(&multi),
            "expected ~10% multi-shard, got {multi}/10000"
        );
    }

    #[test]
    fn multi_shard_specs_span_warehouses() {
        let mut g = TpccGenerator::new(TpccConfig {
            single_shard_fraction: 0.0,
            ..TpccConfig::default()
        });
        for spec in g.take(100) {
            let mut whs: Vec<u32> = spec.ops.iter().map(|o| key_prefix(o.key())).collect();
            whs.sort_unstable();
            whs.dedup();
            assert!(whs.len() >= 2, "multi txn stayed in one warehouse");
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = TpccGenerator::new(TpccConfig::ms());
        let mut b = TpccGenerator::new(TpccConfig::ms());
        assert_eq!(a.take(100), b.take(100));
    }

    #[test]
    fn specs_run_against_a_live_cluster() {
        let mut cluster = Cluster::new(ClusterConfig::gtm_lite(4));
        let mut g = TpccGenerator::new(TpccConfig::ms());
        let specs = g.take(300);
        let (committed, aborted) = run_specs(&mut cluster, &specs).unwrap();
        assert_eq!(committed + aborted, 300);
        assert!(committed > 280, "committed={committed}");
        // GTM touched only by the multi-shard minority.
        let multi = specs.iter().filter(|s| !s.is_single_shard()).count() as u64;
        assert_eq!(cluster.counters().gtm_interactions, multi * 3);
    }
}

//! The OLAP reporting workload for the learning-optimizer experiments.
//!
//! §II-C's argument is that "reporting workloads (canned queries) are the
//! most common in real life OLAP workloads" — the same step definitions
//! recur, so exact-match cardinality reuse pays off. This module builds a
//! small star-ish schema with *skewed* columns (where the uniform estimator
//! is reliably wrong) and a set of canned reporting queries covering every
//! captured step class: scans, joins, aggregations, set operations, limits.

use hdm_common::{Result, SplitMix64};
use hdm_sql::Database;

/// Builder for the skewed reporting dataset.
#[derive(Debug, Clone)]
pub struct OlapWorkload {
    pub fact_rows: usize,
    pub dim_rows: usize,
    pub seed: u64,
}

impl Default for OlapWorkload {
    fn default() -> Self {
        Self {
            fact_rows: 5_000,
            dim_rows: 200,
            seed: 0x01a9,
        }
    }
}

impl OlapWorkload {
    /// Create tables, load data, ANALYZE.
    pub fn load(&self, db: &mut Database) -> Result<()> {
        db.execute(
            "create table olap.sales (sale_id int, cust_id int, region int, \
             amount int, status int)",
        )?;
        db.execute("create table olap.customers (cust_id int, segment int)")?;

        let mut rng = SplitMix64::new(self.seed);
        let mut batch: Vec<String> = Vec::new();
        for i in 0..self.fact_rows {
            // Skew: 90% of sales sit in region 0 with small amounts; the
            // tail spreads across regions with large amounts. A uniform
            // min/max estimator misjudges region & amount predicates badly.
            let (region, amount) = if rng.chance(0.9) {
                (0, rng.range_i64(1, 50))
            } else {
                (rng.range_i64(1, 9), rng.range_i64(1_000, 10_000))
            };
            let status = if rng.chance(0.97) { 1 } else { 0 };
            batch.push(format!(
                "({i}, {}, {region}, {amount}, {status})",
                rng.next_below(self.dim_rows as u64)
            ));
            if batch.len() == 500 {
                db.execute(&format!(
                    "insert into olap.sales values {}",
                    batch.join(",")
                ))?;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            db.execute(&format!(
                "insert into olap.sales values {}",
                batch.join(",")
            ))?;
        }
        let dims: Vec<String> = (0..self.dim_rows)
            .map(|i| format!("({i}, {})", i % 5))
            .collect();
        db.execute(&format!(
            "insert into olap.customers values {}",
            dims.join(",")
        ))?;
        db.execute("analyze")?;
        Ok(())
    }

    /// The canned reporting queries (each exercises a captured step class).
    pub fn canned_queries() -> Vec<&'static str> {
        vec![
            // Scan with a selective predicate the estimator misjudges.
            "select * from olap.sales where amount > 500",
            // Two-way join with a skewed filter (the Table I shape).
            "select * from olap.sales s, olap.customers c \
             where s.cust_id = c.cust_id and s.amount > 500",
            // Aggregation over a skewed group.
            "select region, count(*), sum(amount) from olap.sales \
             where status = 1 group by region",
            // Set operation.
            "select cust_id from olap.sales where amount > 500 \
             union select cust_id from olap.sales where status = 0",
            // Limit over a big scan.
            "select * from olap.sales where region = 0 limit 100",
            // Join + aggregation (report query).
            "select c.segment, count(*) from olap.sales s, olap.customers c \
             where s.cust_id = c.cust_id and s.amount > 500 group by c.segment",
        ]
    }
}

/// A shardable schema + seeded statement corpus for local-vs-distributed
/// equivalence testing: the same DDL, loads, and queries drive both the
/// embedded [`Database`] and the cluster's `DistDb`, and every query must
/// return the same rows (compared as multisets — gather order differs).
///
/// The first column of each table is the distribution key, so the corpus
/// exercises the whole pruning spectrum: equality pins (one DN leg), ORs on
/// the key (scatter), key-free predicates (scatter), aggregates over the
/// fan-out, and a CN-side join over two gathered tables.
#[derive(Debug, Clone)]
pub struct DistCorpus {
    pub orders: usize,
    pub custs: usize,
    pub seed: u64,
}

impl Default for DistCorpus {
    fn default() -> Self {
        Self {
            orders: 600,
            custs: 40,
            seed: 0xd157,
        }
    }
}

impl DistCorpus {
    /// CREATE TABLE statements (distribution key first).
    pub fn ddl() -> Vec<&'static str> {
        vec![
            "create table orders (cust int, region int, amount int)",
            "create table custs (cust int, tier int)",
        ]
    }

    /// Seeded INSERT statements, batched.
    pub fn load_stmts(&self) -> Vec<String> {
        let mut rng = SplitMix64::new(self.seed);
        let mut out = Vec::new();
        let mut batch: Vec<String> = Vec::new();
        for _ in 0..self.orders {
            batch.push(format!(
                "({}, {}, {})",
                rng.next_below(self.custs as u64),
                rng.next_below(8),
                rng.range_i64(1, 1_000)
            ));
            if batch.len() == 200 {
                out.push(format!("insert into orders values {}", batch.join(",")));
                batch.clear();
            }
        }
        if !batch.is_empty() {
            out.push(format!("insert into orders values {}", batch.join(",")));
        }
        let custs: Vec<String> = (0..self.custs)
            .map(|i| format!("({i}, {})", i % 3))
            .collect();
        out.push(format!("insert into custs values {}", custs.join(",")));
        out
    }

    /// ~20 seeded equivalence queries. Every query is deterministic up to
    /// row order (LIMIT always rides on a total-order ORDER BY).
    pub fn queries(&self) -> Vec<String> {
        let mut rng = SplitMix64::new(self.seed ^ 0x9E37);
        let mut q = Vec::new();
        for _ in 0..6 {
            // Shard-key equality: prunes to one DN leg.
            let k = rng.next_below(self.custs as u64);
            q.push(format!("select * from orders where cust = {k}"));
            q.push(format!(
                "select count(*), sum(amount) from orders where cust = {k}"
            ));
        }
        for _ in 0..3 {
            // OR on the shard key: scatters.
            let a = rng.next_below(self.custs as u64);
            let b = rng.next_below(self.custs as u64);
            q.push(format!(
                "select * from orders where cust = {a} or cust = {b}"
            ));
        }
        for _ in 0..3 {
            // Key-free predicates: scatter + CN-side filter/aggregate.
            let t = rng.range_i64(100, 900);
            q.push(format!("select amount from orders where amount > {t}"));
            q.push(format!(
                "select region, count(*) from orders where amount > {t} group by region"
            ));
        }
        // Cross-shard join: both sides gathered to the CN.
        q.push(
            "select o.amount, c.tier from orders o, custs c \
             where o.cust = c.cust and o.amount > 500"
                .to_string(),
        );
        // Set op across scattered scans.
        q.push(
            "select cust from orders where region = 0 \
             union select cust from custs where tier = 1"
                .to_string(),
        );
        // Total-order LIMIT (deterministic across backends).
        q.push(
            "select * from orders order by amount, cust, region limit 25".to_string(),
        );
        // Pruned scan with a residual predicate.
        let k = rng.next_below(self.custs as u64);
        q.push(format!(
            "select region from orders where cust = {k} and amount > 200"
        ));
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_learnopt::SharedPlanStore;

    #[test]
    fn loads_and_all_canned_queries_run() {
        let mut db = Database::new();
        OlapWorkload {
            fact_rows: 2_000,
            ..Default::default()
        }
        .load(&mut db)
        .unwrap();
        for q in OlapWorkload::canned_queries() {
            let r = db.execute(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert!(!r.steps.is_empty(), "{q} produced no steps");
        }
    }

    #[test]
    fn estimates_are_wrong_cold_and_right_warm() {
        let mut db = Database::new();
        OlapWorkload::default().load(&mut db).unwrap();
        let store = SharedPlanStore::default();
        db.set_plan_store(store.hints(), store.observer());

        let q = "select * from olap.sales where amount > 500";
        let cold = db.execute(q).unwrap();
        let scan = &cold.steps[0];
        let err_cold = (scan.estimated - scan.actual as f64).abs() / scan.actual.max(1) as f64;
        assert!(err_cold > 1.0, "estimator should be badly off: {err_cold}");

        let warm = db.execute(q).unwrap();
        let scan = &warm.steps[0];
        let err_warm = (scan.estimated - scan.actual as f64).abs() / scan.actual.max(1) as f64;
        assert!(err_warm < 0.01, "warm estimate should match actual: {err_warm}");
    }

    #[test]
    fn hit_rate_grows_over_the_canned_set() {
        let mut db = Database::new();
        OlapWorkload {
            fact_rows: 2_000,
            ..Default::default()
        }
        .load(&mut db)
        .unwrap();
        let store = SharedPlanStore::default();
        db.set_plan_store(store.hints(), store.observer());
        let queries = OlapWorkload::canned_queries();
        let mut cold_hits = 0;
        let mut warm_hits = 0;
        for q in &queries {
            cold_hits += db.execute(q).unwrap().planning.hint_hits;
        }
        for q in &queries {
            warm_hits += db.execute(q).unwrap().planning.hint_hits;
        }
        assert!(warm_hits > cold_hits + 3, "cold={cold_hits} warm={warm_hits}");
    }
}

//! # hdm-workloads
//!
//! Workload generators for every experiment in the paper:
//!
//! * [`tpcc`] — the modified-TPC-C short-transaction generator of Fig 3
//!   ("We modified the TPC-C benchmark to issue 100% single-shard (SS) or
//!   90% single-shard transactions (MS)").
//! * [`mme`] — MME session objects for Fig 8/Fig 11: 5–10 KB tree-modeled
//!   JSON sessions and the V3→V5→V6→V7→V8 schema-version chain.
//! * [`olap`] — a skewed reporting dataset plus canned reporting queries
//!   ("reporting workloads (canned queries) are the most common in real
//!   life OLAP workloads", §II-C) for the learning-optimizer experiments.

pub mod mme;
pub mod olap;
pub mod tpcc;

pub use mme::{generate_session, mme_schema_chain, MmeConfig};
pub use olap::{DistCorpus, OlapWorkload};
pub use tpcc::{OpSpec, TpccConfig, TpccGenerator, TxnSpec};

//! # hdm-bench
//!
//! Harness binaries and criterion benches regenerating the paper's
//! evaluation artifacts. One binary per table/figure:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig3_gtm_lite_scalability` | Fig 3: GTM-lite vs baseline throughput over 1/2/4/8 nodes, SS and MS workloads (plus `--sweep-ms-fraction` ablation and `--demo-anomalies`) |
//! | `table1_canonical_form` | Table I: captured step definitions with estimated vs actual cardinalities (plus Fig 6's plan and `--sweep-threshold` ablation) |
//! | `fig8_mme_matrix` | Fig 8: the MME schema upgrade/downgrade support matrix |
//! | `fig11_schema_evolution` | Fig 11: GMDB read/write throughput under schema conversion, and delta-vs-whole sync bandwidth |
//!
//! Criterion benches cover the ablations DESIGN.md lists: `gtm_lite`
//! (MergeSnapshot overhead, protocol sweeps), `learnopt` (MD5 keys vs full
//! text, differential thresholds), `schema_evolution` (conversion chains,
//! delta computation), `storage` (row vs column, codecs), `edgesync`
//! (anti-entropy sessions).

/// Tiny flag parser shared by the harness binaries: `--name value` pairs.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Is a bare flag present?
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Render an aligned text table (first row = header).
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, r) in rows.iter().enumerate() {
        for (i, cell) in r.iter().enumerate() {
            out.push_str(&format!("{:<w$}", cell, w = widths[i] + 2));
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if i < cols - 1 {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(&[
            vec!["a".into(), "long-header".into()],
            vec!["xxxx".into(), "1".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn empty_table_is_empty() {
        assert!(render_table(&[]).is_empty());
    }
}

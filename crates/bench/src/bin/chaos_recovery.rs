//! Chaos / recovery characterization: transaction outcomes and recovery
//! traffic under escalating fault rates, plus the retry cost of a lossy
//! network on the Fig 3 workload.
//!
//! Every run is a seeded discrete-event simulation, so the tables reproduce
//! exactly; EXPERIMENTS.md records the seeds and fault rates used.
//!
//! Usage:
//!   chaos_recovery [--seeds N] [--transfers N] [--telemetry out.jsonl]
//!
//! `--telemetry` runs one extra instrumented chaotic seed on the virtual
//! clock and dumps its spans (one `transfer` root per transfer, with
//! retry/abort events) plus the metrics snapshot to the JSONL file.

use hdm_bench::{arg_value, render_table};
use hdm_cluster::{run_chaos, ChaosConfig, Protocol, SimConfig, WorkloadMix};
use hdm_common::SimDuration;
use hdm_simnet::FaultConfig;
use hdm_telemetry::Telemetry;

fn fault_level(level: &str) -> FaultConfig {
    match level {
        "none" => FaultConfig::none(),
        "lossy" => FaultConfig {
            dn_crashes_per_node: 0.0,
            gtm_crashes: 0.0,
            ..FaultConfig::chaotic()
        },
        "crashy" => FaultConfig {
            dn_crashes_per_node: 1.5,
            gtm_crashes: 1.5,
            ..FaultConfig::none()
        },
        "chaotic" => FaultConfig::chaotic(),
        "hostile" => FaultConfig {
            drop_p: 0.10,
            duplicate_p: 0.05,
            delay_p: 0.15,
            dn_crashes_per_node: 2.0,
            gtm_crashes: 2.0,
            ..FaultConfig::chaotic()
        },
        other => panic!("unknown fault level {other}"),
    }
}

fn main() {
    let seeds: u64 = arg_value("--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let transfers: usize = arg_value("--transfers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);

    println!("=== Chaos harness: 2PC/GTM crash recovery under deterministic faults ===");
    println!(
        "bank-transfer workload, 4 shards, 6 clients x {transfers} transfers, \
         {seeds} seeds per fault level\n"
    );

    let mut rows = vec![vec![
        "fault level".to_string(),
        "committed".to_string(),
        "txn aborts".to_string(),
        "retries".to_string(),
        "in-doubt C/A".to_string(),
        "crashes dn/gtm".to_string(),
        "msgs drop/dup/delay".to_string(),
        "violations".to_string(),
    ]];
    for level in ["none", "lossy", "crashy", "chaotic", "hostile"] {
        let mut sum_committed = 0u64;
        let mut sum_aborts = 0u64;
        let mut sum_retries = 0u64;
        let mut idc = 0u64;
        let mut ida = 0u64;
        let mut dnc = 0u64;
        let mut gtc = 0u64;
        let mut drops = 0u64;
        let mut dups = 0u64;
        let mut delays = 0u64;
        let mut violations = 0usize;
        for seed in 0..seeds {
            let mut cfg = ChaosConfig::standard(0xBE2C_0000 + seed);
            cfg.transfers_per_client = transfers;
            cfg.faults = fault_level(level);
            let r = run_chaos(cfg);
            sum_committed += r.committed;
            sum_aborts += r.txn_aborts;
            sum_retries += r.counters.retries;
            idc += r.counters.in_doubt_commits;
            ida += r.counters.in_doubt_aborts;
            dnc += r.counters.dn_crashes;
            gtc += r.counters.gtm_crashes;
            drops += r.message_stats.1;
            dups += r.message_stats.2;
            delays += r.message_stats.3;
            violations += r.violations.len();
        }
        rows.push(vec![
            level.to_string(),
            sum_committed.to_string(),
            sum_aborts.to_string(),
            sum_retries.to_string(),
            format!("{idc}/{ida}"),
            format!("{dnc}/{gtc}"),
            format!("{drops}/{dups}/{delays}"),
            violations.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));
    println!(
        "in-doubt C/A = prepared legs resolved commit/abort from the \
         coordinator's log after a crash.\n"
    );

    if let Some(path) = arg_value("--telemetry") {
        println!("=== Telemetry: instrumented chaotic run (seed 0xBE2C_0000) ===");
        let tel = Telemetry::simulated();
        let mut cfg = ChaosConfig::standard(0xBE2C_0000);
        cfg.transfers_per_client = transfers;
        cfg.telemetry = Some(tel.clone());
        let r = run_chaos(cfg);
        let snap = r.metrics.as_ref().expect("telemetry attached");
        println!(
            "committed {} / aborts {} | backoffs {} | crashes injected dn={} gtm={} | \
             in-doubt resolved {}",
            r.committed,
            r.txn_aborts,
            snap.counter("cn.backoff"),
            snap.counter("fault.crash{target=dn}"),
            snap.counter("fault.crash{target=gtm}"),
            snap.counter_total("recovery.in_doubt"),
        );
        std::fs::write(&path, tel.export_jsonl()).expect("write telemetry JSONL");
        println!(
            "wrote {} transfer spans + metrics snapshot to {path}\n",
            tel.tracer.finished().len()
        );
    }

    // The retry cost of a lossy network on the Fig 3 closed-loop workload.
    println!("=== Fig 3 workload on a lossy network (GTM-lite, 4 nodes, MS mix) ===");
    let mut rows = vec![vec![
        "drop_p".to_string(),
        "tps".to_string(),
        "p50 us".to_string(),
        "p99 us".to_string(),
        "dropped msgs".to_string(),
    ]];
    for drop_p in [0.0, 0.01, 0.02, 0.05, 0.10] {
        let mut cfg = SimConfig::new(4, Protocol::GtmLite, WorkloadMix::ms());
        cfg.horizon = SimDuration::from_millis(100);
        cfg.faults = (drop_p > 0.0).then(|| FaultConfig {
            drop_p,
            duplicate_p: 0.0,
            delay_p: 0.0,
            dn_crashes_per_node: 0.0,
            gtm_crashes: 0.0,
            ..FaultConfig::none()
        });
        let r = hdm_cluster::sim::run_sim(cfg);
        rows.push(vec![
            format!("{drop_p:.2}"),
            format!("{:.0}", r.throughput_tps),
            r.p50_latency_us.to_string(),
            r.p99_latency_us.to_string(),
            r.net_fault_stats.1.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));
}

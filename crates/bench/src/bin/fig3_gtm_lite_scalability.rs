//! Reproduces **Fig 3: GTM-Lite scalability** (paper §II-A).
//!
//! "We deployed the database on various cluster sizes from 1 node, 2 nodes,
//! 4 nodes up to 8 nodes. We modified the TPC-C benchmark to issue 100%
//! single-shard (SS) or 90% single-shard transactions (MS). GTM-Lite
//! achieved higher throughput and scaled out much better than baseline."
//!
//! Usage:
//!   fig3_gtm_lite_scalability [--horizon-ms N] [--clients N]
//!                             [--batch-window US] [--snapshot-cache]
//!                             [--sweep-batching] [--assert-batching-gain]
//!                             [--sweep-ms-fraction] [--demo-anomalies]
//!                             [--telemetry out.jsonl]
//!
//! `--batch-window US` enables GTM group-commit batching (0 = off, the
//! legacy model) and `--snapshot-cache` the CN-side snapshot-epoch cache,
//! for every configuration the binary runs. `--sweep-batching` compares
//! plain vs batched+cached GTM-lite MS across large cluster sizes where
//! the GTM becomes the bottleneck; `--assert-batching-gain` exits nonzero
//! unless the tuned run beats plain by >=20% at the largest size.
//!
//! `--telemetry` re-runs one short instrumented configuration per protocol
//! on the virtual clock, dumps every span + metric to the JSONL file, and
//! prints the per-path commit-latency timeline (which named segments the
//! mean latency decomposes into, and what fraction they cover).

use hdm_bench::{arg_flag, arg_value, render_table};
use hdm_cluster::anomaly::{run_anomaly1, run_anomaly2};
use hdm_cluster::{MergePolicy, Protocol, SimConfig, WorkloadMix};
use hdm_common::SimDuration;
use hdm_telemetry::{timeline, Telemetry};

/// Knobs shared by every configuration the binary runs.
#[derive(Clone, Copy)]
struct Knobs {
    horizon_ms: u64,
    clients: usize,
    batch_window_us: u64,
    snapshot_cache: bool,
}

fn run_with(nodes: usize, protocol: Protocol, mix: WorkloadMix, k: Knobs) -> hdm_cluster::SimReport {
    let mut cfg = SimConfig::new(nodes, protocol, mix);
    cfg.horizon = SimDuration::from_millis(k.horizon_ms);
    cfg.clients_per_node = k.clients;
    cfg.gtm_batch_window = SimDuration::from_micros(k.batch_window_us);
    cfg.snapshot_cache = k.snapshot_cache;
    hdm_cluster::sim::run_sim(cfg)
}

fn main() {
    let knobs = Knobs {
        horizon_ms: arg_value("--horizon-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(250),
        clients: arg_value("--clients")
            .and_then(|v| v.parse().ok())
            .unwrap_or(48),
        batch_window_us: arg_value("--batch-window")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        snapshot_cache: arg_flag("--snapshot-cache"),
    };
    let Knobs {
        horizon_ms,
        clients,
        ..
    } = knobs;
    let run = |nodes, protocol, mix| run_with(nodes, protocol, mix, knobs);

    println!("=== Fig 3: GTM-Lite scalability (virtual-time simulation) ===");
    println!(
        "horizon {horizon_ms}ms virtual, {clients} closed-loop clients/node, \
         TPC-C-style short transactions, batch window {}us, snapshot cache {}\n",
        knobs.batch_window_us,
        if knobs.snapshot_cache { "on" } else { "off" }
    );

    let mut rows = vec![vec![
        "nodes".to_string(),
        "GTM-Lite SS (tps)".to_string(),
        "GTM-Lite MS (tps)".to_string(),
        "Baseline SS (tps)".to_string(),
        "Baseline MS (tps)".to_string(),
        "base GTM util".to_string(),
    ]];
    for &nodes in &[1usize, 2, 4, 8] {
        let lite_ss = run(nodes, Protocol::GtmLite, WorkloadMix::ss());
        let lite_ms = run(nodes, Protocol::GtmLite, WorkloadMix::ms());
        let base_ss = run(nodes, Protocol::Baseline, WorkloadMix::ss());
        let base_ms = run(nodes, Protocol::Baseline, WorkloadMix::ms());
        rows.push(vec![
            nodes.to_string(),
            format!("{:.0}", lite_ss.throughput_tps),
            format!("{:.0}", lite_ms.throughput_tps),
            format!("{:.0}", base_ss.throughput_tps),
            format!("{:.0}", base_ms.throughput_tps),
            format!("{:.0}%", base_ss.gtm_utilization * 100.0),
        ]);
    }
    println!("{}", render_table(&rows));
    println!(
        "Shape check (paper): GTM-Lite SS scales ~linearly; baseline flattens\n\
         once the GTM saturates; SS outperforms MS under GTM-Lite.\n"
    );

    // Protocol detail at 8 nodes.
    let lite = run(8, Protocol::GtmLite, WorkloadMix::ms());
    println!(
        "GTM-Lite MS @8 nodes: {} GTM interactions, {} merges, \
         {} downgrades, {} upgrade-waits, p99 latency {}us",
        lite.gtm_interactions, lite.merges, lite.downgrades, lite.upgrade_waits,
        lite.p99_latency_us
    );
    let base = run(8, Protocol::Baseline, WorkloadMix::ms());
    println!(
        "Baseline MS @8 nodes: {} GTM interactions, GTM mean queue wait {:.0}us\n",
        base.gtm_interactions, base.gtm_mean_wait_us
    );

    if arg_flag("--sweep-batching") || arg_flag("--assert-batching-gain") {
        // Where Fig 3 stops (8 nodes) GTM-lite MS is still DN-bound; push
        // the cluster size until the GTM's 3 interactions per multi-shard
        // transaction become the ceiling, then amortize them away.
        let window_us = if knobs.batch_window_us == 0 {
            10
        } else {
            knobs.batch_window_us
        };
        println!(
            "=== GTM group-commit batching + snapshot-epoch cache \
             (GTM-lite MS, window {window_us}us) ==="
        );
        let mut rows = vec![vec![
            "nodes".to_string(),
            "plain (tps)".to_string(),
            "batched+cache (tps)".to_string(),
            "gain".to_string(),
            "plain GTM util".to_string(),
            "mean batch".to_string(),
            "cache hit%".to_string(),
        ]];
        let mut last_gain = 0.0;
        for &nodes in &[4usize, 8, 16, 32, 48] {
            let plain = run_with(
                nodes,
                Protocol::GtmLite,
                WorkloadMix::ms(),
                Knobs {
                    batch_window_us: 0,
                    snapshot_cache: false,
                    ..knobs
                },
            );
            let tuned = run_with(
                nodes,
                Protocol::GtmLite,
                WorkloadMix::ms(),
                Knobs {
                    batch_window_us: window_us,
                    snapshot_cache: true,
                    ..knobs
                },
            );
            last_gain = tuned.throughput_tps / plain.throughput_tps;
            let lookups = tuned.snapshot_cache_hits + tuned.snapshot_cache_misses;
            rows.push(vec![
                nodes.to_string(),
                format!("{:.0}", plain.throughput_tps),
                format!("{:.0}", tuned.throughput_tps),
                format!("{last_gain:.2}x"),
                format!("{:.0}%", plain.gtm_utilization * 100.0),
                format!("{:.1}", tuned.gtm_mean_batch_size),
                format!(
                    "{:.0}%",
                    100.0 * tuned.snapshot_cache_hits as f64 / lookups.max(1) as f64
                ),
            ]);
        }
        println!("{}", render_table(&rows));
        println!(
            "The knee moves right: batching amortizes the per-visit GTM cost\n\
             across the window, the epoch cache drops one interaction per\n\
             cached begin — same SI visibility, less GTM traffic.\n"
        );
        if arg_flag("--assert-batching-gain") {
            if last_gain < 1.2 {
                eprintln!(
                    "FAIL: batching+cache gain {last_gain:.2}x < 1.20x at the \
                     largest cluster size"
                );
                std::process::exit(1);
            }
            println!("assert-batching-gain OK: {last_gain:.2}x >= 1.20x at 48 nodes\n");
        }
    }

    if arg_flag("--sweep-ms-fraction") {
        println!("=== Ablation: multi-shard fraction sweep @4 nodes (GTM-lite vs baseline) ===");
        let mut rows = vec![vec![
            "multi-shard %".to_string(),
            "GTM-Lite (tps)".to_string(),
            "Baseline (tps)".to_string(),
            "lite/base".to_string(),
        ]];
        for ms_pct in [0u32, 5, 10, 20, 40, 60, 80, 100] {
            let mix = WorkloadMix::with_fraction(1.0 - ms_pct as f64 / 100.0);
            let lite = run(4, Protocol::GtmLite, mix);
            let base = run(4, Protocol::Baseline, mix);
            rows.push(vec![
                format!("{ms_pct}%"),
                format!("{:.0}", lite.throughput_tps),
                format!("{:.0}", base.throughput_tps),
                format!("{:.2}x", lite.throughput_tps / base.throughput_tps),
            ]);
        }
        println!("{}", render_table(&rows));
        println!(
            "Paper's claim: \"given that there are 10% or less multi-shard\n\
             transactions in common OLTP workloads, the use of more complicated\n\
             logic to guarantee consistency-read is justified.\"\n"
        );
    }

    if let Some(path) = arg_value("--telemetry") {
        println!("=== Telemetry: instrumented GTM-lite MS run @2 nodes (virtual clock) ===");
        let tel = Telemetry::simulated();
        let mut cfg = SimConfig::new(2, Protocol::GtmLite, WorkloadMix::ms());
        cfg.horizon = SimDuration::from_millis(10);
        cfg.telemetry = Some(tel.clone());
        let r = hdm_cluster::sim::run_sim(cfg);
        let spans = tel.tracer.finished();
        let report = timeline::decompose(&spans, "txn");
        println!("{}", timeline::render(&report));
        // One concrete distributed transaction, as a span tree.
        let sample_gxid = spans
            .iter()
            .filter(|s| s.parent == 0)
            .find_map(|s| s.field("gxid").and_then(|v| v.parse::<u64>().ok()));
        if let Some(g) = sample_gxid {
            if let Some(tree) = timeline::render_gxid(&spans, g) {
                println!("sample distributed transaction (gxid {g}):\n{tree}");
            }
        }
        // The metrics snapshot rides in the same JSONL stream as the spans
        // (histogram lines carry the p50/p95/p99 summary); print the same
        // snapshot for humans so the percentiles are visible without jq.
        let snap = tel.metrics.snapshot();
        print!("{}", hdm_telemetry::export::metrics_console(&snap));
        let jsonl = tel.export_jsonl();
        assert!(
            snap.histograms.is_empty() || jsonl.contains("\"p95_us\""),
            "histogram percentiles must be part of the JSONL stream"
        );
        std::fs::write(&path, jsonl).expect("write telemetry JSONL");
        println!(
            "wrote {} spans + metrics snapshot ({} counters, {} histograms) \
             to {path} ({} committed txns)\n",
            spans.len(),
            snap.counters.len(),
            snap.histograms.len(),
            r.committed
        );
    }

    if arg_flag("--demo-anomalies") {
        println!("=== §II-A anomalies: naive merge vs Algorithm 1 ===");
        let naive1 = run_anomaly1(MergePolicy::Naive).unwrap();
        let full1 = run_anomaly1(MergePolicy::Full).unwrap();
        println!(
            "Anomaly 1 (writer committed at GTM, unconfirmed on DN):\n\
             naive merge read (a={:?}, b={:?}) consistent={}\n\
             Algorithm 1 read  (a={:?}, b={:?}) consistent={} (UPGRADE wait)",
            naive1.a, naive1.b, naive1.consistent, full1.a, full1.b, full1.consistent
        );
        let naive2 = run_anomaly2(MergePolicy::Naive).unwrap();
        let full2 = run_anomaly2(MergePolicy::Full).unwrap();
        println!(
            "Anomaly 2 (Fig 2, T2 sees T3 without T1):\n\
             naive merge: a versions {:?}, b={:?} consistent={}\n\
             Algorithm 1: a versions {:?}, b={:?} consistent={} (DOWNGRADE)",
            naive2.a_versions, naive2.b, naive2.consistent,
            full2.a_versions, full2.b, full2.consistent
        );
    }
}

//! Reproduces **Fig 3: GTM-Lite scalability** (paper §II-A).
//!
//! "We deployed the database on various cluster sizes from 1 node, 2 nodes,
//! 4 nodes up to 8 nodes. We modified the TPC-C benchmark to issue 100%
//! single-shard (SS) or 90% single-shard transactions (MS). GTM-Lite
//! achieved higher throughput and scaled out much better than baseline."
//!
//! Usage:
//!   fig3_gtm_lite_scalability [--horizon-ms N] [--clients N]
//!                             [--sweep-ms-fraction] [--demo-anomalies]
//!                             [--telemetry out.jsonl]
//!
//! `--telemetry` re-runs one short instrumented configuration per protocol
//! on the virtual clock, dumps every span + metric to the JSONL file, and
//! prints the per-path commit-latency timeline (which named segments the
//! mean latency decomposes into, and what fraction they cover).

use hdm_bench::{arg_flag, arg_value, render_table};
use hdm_cluster::anomaly::{run_anomaly1, run_anomaly2};
use hdm_cluster::{MergePolicy, Protocol, SimConfig, WorkloadMix};
use hdm_common::SimDuration;
use hdm_telemetry::{timeline, Telemetry};

fn run(nodes: usize, protocol: Protocol, mix: WorkloadMix, horizon_ms: u64, clients: usize) -> hdm_cluster::SimReport {
    let mut cfg = SimConfig::new(nodes, protocol, mix);
    cfg.horizon = SimDuration::from_millis(horizon_ms);
    cfg.clients_per_node = clients;
    hdm_cluster::sim::run_sim(cfg)
}

fn main() {
    let horizon_ms: u64 = arg_value("--horizon-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(250);
    let clients: usize = arg_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(48);

    println!("=== Fig 3: GTM-Lite scalability (virtual-time simulation) ===");
    println!(
        "horizon {horizon_ms}ms virtual, {clients} closed-loop clients/node, \
         TPC-C-style short transactions\n"
    );

    let mut rows = vec![vec![
        "nodes".to_string(),
        "GTM-Lite SS (tps)".to_string(),
        "GTM-Lite MS (tps)".to_string(),
        "Baseline SS (tps)".to_string(),
        "Baseline MS (tps)".to_string(),
        "base GTM util".to_string(),
    ]];
    for &nodes in &[1usize, 2, 4, 8] {
        let lite_ss = run(nodes, Protocol::GtmLite, WorkloadMix::ss(), horizon_ms, clients);
        let lite_ms = run(nodes, Protocol::GtmLite, WorkloadMix::ms(), horizon_ms, clients);
        let base_ss = run(nodes, Protocol::Baseline, WorkloadMix::ss(), horizon_ms, clients);
        let base_ms = run(nodes, Protocol::Baseline, WorkloadMix::ms(), horizon_ms, clients);
        rows.push(vec![
            nodes.to_string(),
            format!("{:.0}", lite_ss.throughput_tps),
            format!("{:.0}", lite_ms.throughput_tps),
            format!("{:.0}", base_ss.throughput_tps),
            format!("{:.0}", base_ms.throughput_tps),
            format!("{:.0}%", base_ss.gtm_utilization * 100.0),
        ]);
    }
    println!("{}", render_table(&rows));
    println!(
        "Shape check (paper): GTM-Lite SS scales ~linearly; baseline flattens\n\
         once the GTM saturates; SS outperforms MS under GTM-Lite.\n"
    );

    // Protocol detail at 8 nodes.
    let lite = run(8, Protocol::GtmLite, WorkloadMix::ms(), horizon_ms, clients);
    println!(
        "GTM-Lite MS @8 nodes: {} GTM interactions, {} merges, \
         {} downgrades, {} upgrade-waits, p99 latency {}us",
        lite.gtm_interactions, lite.merges, lite.downgrades, lite.upgrade_waits,
        lite.p99_latency_us
    );
    let base = run(8, Protocol::Baseline, WorkloadMix::ms(), horizon_ms, clients);
    println!(
        "Baseline MS @8 nodes: {} GTM interactions, GTM mean queue wait {:.0}us\n",
        base.gtm_interactions, base.gtm_mean_wait_us
    );

    if arg_flag("--sweep-ms-fraction") {
        println!("=== Ablation: multi-shard fraction sweep @4 nodes (GTM-lite vs baseline) ===");
        let mut rows = vec![vec![
            "multi-shard %".to_string(),
            "GTM-Lite (tps)".to_string(),
            "Baseline (tps)".to_string(),
            "lite/base".to_string(),
        ]];
        for ms_pct in [0u32, 5, 10, 20, 40, 60, 80, 100] {
            let mix = WorkloadMix::with_fraction(1.0 - ms_pct as f64 / 100.0);
            let lite = run(4, Protocol::GtmLite, mix, horizon_ms, clients);
            let base = run(4, Protocol::Baseline, mix, horizon_ms, clients);
            rows.push(vec![
                format!("{ms_pct}%"),
                format!("{:.0}", lite.throughput_tps),
                format!("{:.0}", base.throughput_tps),
                format!("{:.2}x", lite.throughput_tps / base.throughput_tps),
            ]);
        }
        println!("{}", render_table(&rows));
        println!(
            "Paper's claim: \"given that there are 10% or less multi-shard\n\
             transactions in common OLTP workloads, the use of more complicated\n\
             logic to guarantee consistency-read is justified.\"\n"
        );
    }

    if let Some(path) = arg_value("--telemetry") {
        println!("=== Telemetry: instrumented GTM-lite MS run @2 nodes (virtual clock) ===");
        let tel = Telemetry::simulated();
        let mut cfg = SimConfig::new(2, Protocol::GtmLite, WorkloadMix::ms());
        cfg.horizon = SimDuration::from_millis(10);
        cfg.telemetry = Some(tel.clone());
        let r = hdm_cluster::sim::run_sim(cfg);
        let spans = tel.tracer.finished();
        let report = timeline::decompose(&spans, "txn");
        println!("{}", timeline::render(&report));
        // One concrete distributed transaction, as a span tree.
        let sample_gxid = spans
            .iter()
            .filter(|s| s.parent == 0)
            .find_map(|s| s.field("gxid").and_then(|v| v.parse::<u64>().ok()));
        if let Some(g) = sample_gxid {
            if let Some(tree) = timeline::render_gxid(&spans, g) {
                println!("sample distributed transaction (gxid {g}):\n{tree}");
            }
        }
        std::fs::write(&path, tel.export_jsonl()).expect("write telemetry JSONL");
        println!(
            "wrote {} spans + metrics snapshot to {path} ({} committed txns)\n",
            spans.len(),
            r.committed
        );
    }

    if arg_flag("--demo-anomalies") {
        println!("=== §II-A anomalies: naive merge vs Algorithm 1 ===");
        let naive1 = run_anomaly1(MergePolicy::Naive).unwrap();
        let full1 = run_anomaly1(MergePolicy::Full).unwrap();
        println!(
            "Anomaly 1 (writer committed at GTM, unconfirmed on DN):\n\
             naive merge read (a={:?}, b={:?}) consistent={}\n\
             Algorithm 1 read  (a={:?}, b={:?}) consistent={} (UPGRADE wait)",
            naive1.a, naive1.b, naive1.consistent, full1.a, full1.b, full1.consistent
        );
        let naive2 = run_anomaly2(MergePolicy::Naive).unwrap();
        let full2 = run_anomaly2(MergePolicy::Full).unwrap();
        println!(
            "Anomaly 2 (Fig 2, T2 sees T3 without T1):\n\
             naive merge: a versions {:?}, b={:?} consistent={}\n\
             Algorithm 1: a versions {:?}, b={:?} consistent={} (DOWNGRADE)",
            naive2.a_versions, naive2.b, naive2.consistent,
            full2.a_versions, full2.b, full2.consistent
        );
    }
}

//! Reproduces **Fig 11: GMDB online schema evolution performance**
//! (paper §III-B).
//!
//! "Figure 11 shows performance results with real MME data in virtualized
//! Linux clients and servers (3.0 GHz CPUs) connected through a 10Gbps
//! network." We substitute synthetic 5–10 KB MME sessions (DESIGN.md) and
//! measure, on the fiber runtime:
//!
//! * read throughput: same-version vs 1-hop vs 4-hop (V3→V8) conversion,
//! * write throughput: whole-object put vs delta update,
//! * sync bandwidth: delta objects vs whole objects.
//!
//! Absolute numbers are host-dependent; the paper-relevant *shape* is that
//! conversion costs a modest, hop-proportional overhead and deltas cut
//! bandwidth by an order of magnitude.
//!
//! Usage: fig11_schema_evolution [--sessions N] [--ops N] [--workers N]

use hdm_bench::{arg_value, render_table};
use hdm_common::{ClientId, SplitMix64};
use hdm_gmdb::{Delta, GmdbRuntime};
use hdm_telemetry::{Clock, WallClock};
use hdm_workloads::mme::{generate_session, mme_schema_chain, MmeConfig};
use serde_json::json;

fn kops(n: u64, elapsed_us: u64) -> String {
    format!("{:.1} kops/s", n as f64 / (elapsed_us.max(1) as f64 / 1e6) / 1_000.0)
}

/// Ops per second over an interval measured in µs on the shared clock.
fn rate(n: u64, elapsed_us: u64) -> f64 {
    n as f64 / (elapsed_us.max(1) as f64 / 1e6)
}

fn main() {
    let sessions: usize = arg_value("--sessions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let ops: u64 = arg_value("--ops")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let workers: usize = arg_value("--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);

    println!("=== Fig 11: GMDB online schema evolution performance ===");
    println!("{sessions} MME sessions (5-10KB), {ops} ops per measurement, {workers} fiber workers\n");

    let mut rt = GmdbRuntime::new(workers);
    for s in mme_schema_chain() {
        rt.register(s).unwrap();
    }
    let cfg = MmeConfig::default();
    let mut rng = SplitMix64::new(11);
    // All wall measurements read one anchored clock — the same abstraction
    // the simulated harnesses drive virtually, so timing code is uniform.
    let clock = WallClock::new();

    // Load all sessions at V3.
    let mut keys = Vec::with_capacity(sessions);
    let load_t = clock.now_us();
    for _ in 0..sessions {
        let obj = generate_session(&mut rng, 3, &cfg);
        keys.push(rt.put("mme_session", 3, obj).unwrap());
    }
    let load_el = clock.now_us() - load_t;

    // Read throughput per conversion distance.
    let mut rows = vec![vec![
        "operation".to_string(),
        "conversion".to_string(),
        "throughput".to_string(),
        "vs same-version".to_string(),
    ]];
    let read_rate = |version: u32, rng: &mut SplitMix64| {
        let t = clock.now_us();
        for _ in 0..ops {
            let k = rng.pick(&keys);
            rt.get("mme_session", k, version).unwrap();
        }
        rate(ops, clock.now_us() - t)
    };
    let same = read_rate(3, &mut rng);
    let one_hop = read_rate(5, &mut rng);
    let four_hop = read_rate(8, &mut rng);
    rows.push(vec![
        "read (stored V3)".into(),
        "same version".into(),
        format!("{:.1} kops/s", same / 1e3),
        "1.00x".into(),
    ]);
    rows.push(vec![
        "read (stored V3)".into(),
        "upgrade 1 hop (V5)".into(),
        format!("{:.1} kops/s", one_hop / 1e3),
        format!("{:.2}x", one_hop / same),
    ]);
    rows.push(vec![
        "read (stored V3)".into(),
        "upgrade 4 hops (V8)".into(),
        format!("{:.1} kops/s", four_hop / 1e3),
        format!("{:.2}x", four_hop / same),
    ]);

    // Downgrade reads: store some sessions at V8.
    let mut v8_keys = Vec::new();
    for _ in 0..200 {
        let obj = generate_session(&mut rng, 8, &cfg);
        v8_keys.push(rt.put("mme_session", 8, obj).unwrap());
    }
    let t = clock.now_us();
    for _ in 0..ops {
        let k = rng.pick(&v8_keys);
        rt.get("mme_session", k, 3).unwrap();
    }
    let down = rate(ops, clock.now_us() - t);
    rows.push(vec![
        "read (stored V8)".into(),
        "downgrade 4 hops (V3)".into(),
        format!("{:.1} kops/s", down / 1e3),
        format!("{:.2}x", down / same),
    ]);

    // Write throughput: whole object vs delta.
    let whole_ops = ops / 4;
    let t = clock.now_us();
    for _ in 0..whole_ops {
        let obj = generate_session(&mut rng, 3, &cfg);
        rt.put("mme_session", 3, obj).unwrap();
    }
    let whole_write = rate(whole_ops, clock.now_us() - t);
    // Note: includes generation cost; delta path below reuses objects.

    let delta_ops = ops / 4;
    let t = clock.now_us();
    for i in 0..delta_ops {
        let k = &keys[(i as usize) % keys.len()];
        let old = rt.get("mme_session", k, 3).unwrap();
        let mut new = old.clone();
        new["tracking_area"] = json!((i % 4096) as i64);
        let d = Delta::compute(&old, &new);
        rt.update_delta("mme_session", k, 3, d).unwrap();
    }
    let delta_write = rate(delta_ops, clock.now_us() - t);
    rows.push(vec![
        "write".into(),
        "whole object (put)".into(),
        format!("{:.1} kops/s", whole_write / 1e3),
        "-".into(),
    ]);
    rows.push(vec![
        "write".into(),
        "delta update".into(),
        format!("{:.1} kops/s", delta_write / 1e3),
        "-".into(),
    ]);
    println!("{}", render_table(&rows));
    println!("load: {} sessions in {}", sessions, kops(sessions as u64, load_el));

    // Sync bandwidth: delta vs whole under a subscriber.
    let sub = ClientId::new(1);
    let key = keys[0].clone();
    rt.subscribe("mme_session", &key, sub, 8).unwrap();
    for i in 0..100 {
        let old = rt.get("mme_session", &key, 3).unwrap();
        let mut new = old.clone();
        new["tracking_area"] = json!(i);
        rt.update_delta("mme_session", &key, 3, Delta::compute(&old, &new))
            .unwrap();
    }
    let _ = rt.take_notifications(sub).unwrap();
    let stats = rt.stats().unwrap();
    println!(
        "\nsync bandwidth over {} notifications (subscriber at V8, writer at V3):\n\
         delta objects: {} B total | whole objects would be: {} B total | saving: {:.0}x",
        stats.notifications,
        stats.delta_bytes_sent,
        stats.whole_bytes_equivalent,
        stats.whole_bytes_equivalent as f64 / stats.delta_bytes_sent.max(1) as f64
    );
    println!(
        "\nconversion mix observed: {} same-version, {} upgraded, {} downgraded reads",
        stats.reads_same_version, stats.reads_upgraded, stats.reads_downgraded
    );
}

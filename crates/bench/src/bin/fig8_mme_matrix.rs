//! Reproduces **Fig 8: the MME schema conversion matrix** (paper §III-B).
//!
//! "Figure 8 shows the upgrading/downgrading matrix for the Mobility
//! Management Entity (MME) … the upgrading of MME from V3 to V5 to support
//! a new feature requires more fields to be added in the session data. In
//! case of a failed schema upgrade, schema downgrade can happen during
//! rollback."
//!
//! U_i marks the supported adjacent upgrades, D_i the adjacent downgrades,
//! X unsupported direct conversions — derived live from the registered
//! schema chain (and each U/D verified by actually converting a session).

use hdm_bench::render_table;
use hdm_common::SplitMix64;
use hdm_gmdb::SchemaRegistry;
use hdm_workloads::mme::{generate_session, mme_schema_chain, MmeConfig, MME_VERSIONS};

fn main() {
    println!("=== Fig 8: MME schema upgrade/downgrade matrix ===\n");

    let mut reg = SchemaRegistry::new();
    for s in mme_schema_chain() {
        reg.register(s).unwrap();
    }
    let mut rng = SplitMix64::new(8);
    let cfg = MmeConfig::default();

    let mut rows = vec![{
        let mut h = vec!["MME".to_string()];
        h.extend(MME_VERSIONS.iter().map(|v| format!("V{v}")));
        h
    }];
    for (i, &from) in MME_VERSIONS.iter().enumerate() {
        let mut row = vec![format!("V{from}")];
        for (j, &to) in MME_VERSIONS.iter().enumerate() {
            let cell = if from == to {
                "-".to_string()
            } else if reg.is_adjacent("mme_session", from, to) {
                // Verify the conversion actually works on a real session.
                let obj = generate_session(&mut rng, from, &cfg);
                reg.convert_adjacent("mme_session", &obj, from, to)
                    .expect("adjacent conversion must succeed");
                if j > i {
                    format!("U{} ({from}->{to})", i + 1)
                } else {
                    format!("D{} ({from}->{to})", j + 1)
                }
            } else {
                // And that non-adjacent direct conversion is rejected.
                let obj = generate_session(&mut rng, from, &cfg);
                assert!(reg
                    .convert_adjacent("mme_session", &obj, from, to)
                    .is_err());
                "X".to_string()
            };
            row.push(cell);
        }
        rows.push(row);
    }
    println!("{}", render_table(&rows));
    println!(
        "Direct conversion is defined between adjacent versions only (X\n\
         elsewhere, as in the paper); longer hops compose adjacent steps:\n"
    );

    // Demonstrate the composed chain V3 -> V8.
    let obj = generate_session(&mut rng, 3, &cfg);
    let (v8, _) = reg.convert("mme_session", &obj, 3, 8).unwrap();
    let (back, _) = reg.convert("mme_session", &v8, 8, 3).unwrap();
    println!(
        "V3 session ({}B) --U1,U2,U3,U4--> V8 ({}B) --D4,D3,D2,D1--> V3 round-trips: {}",
        serde_json::to_string(&obj).unwrap().len(),
        serde_json::to_string(&v8).unwrap().len(),
        back == obj
    );
}

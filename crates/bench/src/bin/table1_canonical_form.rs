//! Reproduces **Table I: logical canonical form** and the Fig 6 plan
//! (paper §II-C).
//!
//! Runs the paper's own query
//! `select * from OLAP.t1, OLAP.t2 where OLAP.t1.a1=OLAP.t2.a2 and
//! OLAP.t1.b1 > 10` over data skewed so the optimizer's estimate is badly
//! off, then prints the captured plan-store rows: step description,
//! estimated cardinality, actual cardinality — the exact three columns of
//! Table I.
//!
//! Usage: table1_canonical_form [--sweep-threshold]

use hdm_bench::{arg_flag, render_table};
use hdm_learnopt::{PlanStoreConfig, SharedPlanStore};
use hdm_sql::Database;

/// Build the OLAP.t1/OLAP.t2 world. b1 is skewed: 90% of rows sit below the
/// predicate threshold, so the uniform min/max estimator overshoots.
fn build_db() -> Database {
    let mut db = Database::new();
    db.execute("create table olap.t1 (a1 int, b1 int)").unwrap();
    db.execute("create table olap.t2 (a2 int)").unwrap();
    let mut rows = Vec::new();
    for i in 0..1000i64 {
        let b1 = if i % 10 == 0 { i % 100 } else { 5 };
        rows.push(format!("({}, {b1})", i % 200));
    }
    for chunk in rows.chunks(250) {
        db.execute(&format!("insert into olap.t1 values {}", chunk.join(",")))
            .unwrap();
    }
    let t2: Vec<String> = (0..200i64).map(|i| format!("({i})")).collect();
    db.execute(&format!("insert into olap.t2 values {}", t2.join(",")))
        .unwrap();
    db.execute("analyze").unwrap();
    db
}

const QUERY: &str = "select * from OLAP.t1, OLAP.t2 \
                     where OLAP.t1.a1=OLAP.t2.a2 and OLAP.t1.b1 > 10";

fn main() {
    println!("=== Table I: logical canonical form (plan store contents) ===\n");
    println!("query: {QUERY}\n");

    let mut db = build_db();
    let store = SharedPlanStore::default();
    db.set_plan_store(store.hints(), store.observer());

    // Fig 6: the two-way join execution plan (cold estimates).
    let plan = db.plan_only(QUERY).unwrap();
    println!("--- Fig 6: execution plan (cold estimates) ---");
    println!("{}", plan.explain());

    // Producer pass: execute, capture big-differential steps.
    let r1 = db.execute(QUERY).unwrap();
    println!("cold run: {} rows, hint hits {}\n", r1.rows.len(), r1.planning.hint_hits);

    println!("--- Table I: captured steps ---");
    let mut rows = vec![vec![
        "Step Description".to_string(),
        "Estimate".to_string(),
        "Actual".to_string(),
        "MD5 key".to_string(),
    ]];
    let mut dump = store.inner().borrow().dump();
    dump.sort_by_key(|s| s.text.len());
    for step in &dump {
        rows.push(vec![
            step.text.clone(),
            format!("{:.0}", step.estimated),
            step.actual.to_string(),
            hdm_common::md5::md5_str(&step.text).to_hex()[..8].to_string() + "…",
        ]);
    }
    println!("{}", render_table(&rows));

    // Consumer pass: the optimizer reuses the actuals.
    let r2 = db.execute(QUERY).unwrap();
    let plan2 = db.plan_only(QUERY).unwrap();
    println!(
        "warm run: hint hits {}, top-level join estimate now {:.0} (actual {})",
        r2.planning.hint_hits,
        plan2.est_rows,
        r2.rows.len()
    );
    let stats = store.inner().borrow().stats();
    println!(
        "plan store: {} captures, {} lookups, {} hits, {} skipped (small differential)\n",
        stats.captures, stats.lookups, stats.hits, stats.skipped_small_differential
    );

    if arg_flag("--sweep-threshold") {
        println!("=== Ablation: differential-capture threshold ===");
        let mut rows = vec![vec![
            "threshold ratio".to_string(),
            "steps captured".to_string(),
            "warm hint hits".to_string(),
        ]];
        for ratio in [1.0f64, 1.5, 2.0, 5.0, 20.0] {
            let mut db = build_db();
            let store = SharedPlanStore::new(PlanStoreConfig {
                differential_ratio: ratio,
                ..Default::default()
            });
            db.set_plan_store(store.hints(), store.observer());
            db.execute(QUERY).unwrap();
            let captured = store.inner().borrow().len();
            let warm = db.execute(QUERY).unwrap();
            rows.push(vec![
                format!("{ratio}"),
                captured.to_string(),
                warm.planning.hint_hits.to_string(),
            ]);
        }
        println!("{}", render_table(&rows));
        println!(
            "Capture-everything (1.0) stores steps whose estimates were already\n\
             fine; the paper's big-differential policy stores only the valuable ones."
        );
    }
}

//! Reproduces **Table I: logical canonical form** and the Fig 6 plan
//! (paper §II-C).
//!
//! Runs the paper's own query
//! `select * from OLAP.t1, OLAP.t2 where OLAP.t1.a1=OLAP.t2.a2 and
//! OLAP.t1.b1 > 10` over data skewed so the optimizer's estimate is badly
//! off, then prints the captured plan-store rows: step description,
//! estimated cardinality, actual cardinality — the exact three columns of
//! Table I.
//!
//! With `--distributed`, the same world is re-created as hash-partitioned
//! tables on a 4-shard GTM-lite cluster and the query re-planned through
//! the CN: scans become EXCHANGE leaves, the plan store keys on the
//! *distributed* canonical text, and a short throughput loop contrasts a
//! shard-key-pruned point query (GTM-free single-shard path) against a
//! scatter-gather aggregate (global snapshot + 2PC). `--snapshot-cache`
//! enables the CN's snapshot-epoch cache for the multi-shard legs.
//!
//! With `--profile` (distributed mode), the operator-level profiler is
//! exercised: the loop is re-timed with profiling on to report its
//! overhead, the Fig-6 query is shown under `EXPLAIN ANALYZE` (per-operator
//! actuals, per-shard Exchange legs, GTM/2PC footer), and
//! `--recorder PATH` dumps the flight recorder's JSONL there.
//!
//! With `--prepared` (distributed mode), the pruned point query is also
//! driven through the prepared-statement path — `prepare` once, then
//! `execute(params)` per iteration — which serves every statement from the
//! plan cache and the flat fast-scan program, skipping the lexer, parser
//! and planner entirely. The run asserts the prepared loop beats the raw
//! text loop.
//!
//! With `--bench-json PATH` (distributed mode), the measured numbers —
//! point/aggregate/prepared throughput, `sys.*` view-query throughput,
//! profiler overhead, and a chaos-dist failover sweep's latency
//! decomposition — are additionally written to `PATH` as one JSON object
//! (the committed `BENCH_8.json`). When a `BENCH_7.json` sits in the
//! working directory the run also asserts the profiling-off raw point-query
//! path stayed within noise of it — the plan cache must not tax statements
//! that miss it.
//!
//! With `--history`, the prepared pruned point loop is re-timed with a
//! workload-history snapshot engine attached (no recorder, window every 256
//! statements) and the capture overhead written to `BENCH_10.json`; the run
//! asserts it stays under 5%.
//!
//! Usage: table1_canonical_form [--sweep-threshold] [--distributed]
//!                              [--snapshot-cache] [--profile] [--prepared]
//!                              [--recorder PATH] [--bench-json PATH]
//!                              [--secondary-index] [--history]

use hdm_bench::{arg_flag, arg_value, render_table};
use hdm_cluster::{run_chaos_dist, ChaosDistConfig, Cluster, ClusterConfig, DistDb};
use hdm_common::Datum;
use hdm_learnopt::{PlanStoreConfig, SharedPlanStore};
use hdm_sql::prepared::QueryApi;
use hdm_sql::Database;
use hdm_telemetry::{RecorderConfig, SharedRecorder};
use std::time::Instant;

/// Build the OLAP.t1/OLAP.t2 world. b1 is skewed: 90% of rows sit below the
/// predicate threshold, so the uniform min/max estimator overshoots.
fn build_db() -> Database {
    let mut db = Database::new();
    db.execute("create table olap.t1 (a1 int, b1 int)").unwrap();
    db.execute("create table olap.t2 (a2 int)").unwrap();
    let mut rows = Vec::new();
    for i in 0..1000i64 {
        let b1 = if i % 10 == 0 { i % 100 } else { 5 };
        rows.push(format!("({}, {b1})", i % 200));
    }
    for chunk in rows.chunks(250) {
        db.execute(&format!("insert into olap.t1 values {}", chunk.join(",")))
            .unwrap();
    }
    let t2: Vec<String> = (0..200i64).map(|i| format!("({i})")).collect();
    db.execute(&format!("insert into olap.t2 values {}", t2.join(",")))
        .unwrap();
    db.execute("analyze").unwrap();
    db
}

const QUERY: &str = "select * from OLAP.t1, OLAP.t2 \
                     where OLAP.t1.a1=OLAP.t2.a2 and OLAP.t1.b1 > 10";

fn main() {
    println!("=== Table I: logical canonical form (plan store contents) ===\n");
    println!("query: {QUERY}\n");

    let mut db = build_db();
    let store = SharedPlanStore::default();
    db.set_plan_store(store.hints(), store.observer());

    // Fig 6: the two-way join execution plan (cold estimates).
    let plan = db.plan_only(QUERY).unwrap();
    println!("--- Fig 6: execution plan (cold estimates) ---");
    println!("{}", plan.explain());

    // Producer pass: execute, capture big-differential steps.
    let r1 = db.execute(QUERY).unwrap();
    println!("cold run: {} rows, hint hits {}\n", r1.rows.len(), r1.planning.hint_hits);

    println!("--- Table I: captured steps ---");
    let mut rows = vec![vec![
        "Step Description".to_string(),
        "Estimate".to_string(),
        "Actual".to_string(),
        "MD5 key".to_string(),
    ]];
    let mut dump = store.inner().borrow().dump();
    dump.sort_by_key(|s| s.text.len());
    for step in &dump {
        rows.push(vec![
            step.text.clone(),
            format!("{:.0}", step.estimated),
            step.actual.to_string(),
            hdm_common::md5::md5_str(&step.text).to_hex()[..8].to_string() + "…",
        ]);
    }
    println!("{}", render_table(&rows));

    // Consumer pass: the optimizer reuses the actuals.
    let r2 = db.execute(QUERY).unwrap();
    let plan2 = db.plan_only(QUERY).unwrap();
    println!(
        "warm run: hint hits {}, top-level join estimate now {:.0} (actual {})",
        r2.planning.hint_hits,
        plan2.est_rows(),
        r2.rows.len()
    );
    let stats = store.inner().borrow().stats();
    println!(
        "plan store: {} captures, {} lookups, {} hits, {} skipped (small differential)\n",
        stats.captures, stats.lookups, stats.hits, stats.skipped_small_differential
    );

    if arg_flag("--sweep-threshold") {
        println!("=== Ablation: differential-capture threshold ===");
        let mut rows = vec![vec![
            "threshold ratio".to_string(),
            "steps captured".to_string(),
            "warm hint hits".to_string(),
        ]];
        for ratio in [1.0f64, 1.5, 2.0, 5.0, 20.0] {
            let mut db = build_db();
            let store = SharedPlanStore::new(PlanStoreConfig {
                differential_ratio: ratio,
                ..Default::default()
            });
            db.set_plan_store(store.hints(), store.observer());
            db.execute(QUERY).unwrap();
            let captured = store.inner().borrow().len();
            let warm = db.execute(QUERY).unwrap();
            rows.push(vec![
                format!("{ratio}"),
                captured.to_string(),
                warm.planning.hint_hits.to_string(),
            ]);
        }
        println!("{}", render_table(&rows));
        println!(
            "Capture-everything (1.0) stores steps whose estimates were already\n\
             fine; the paper's big-differential policy stores only the valuable ones."
        );
    }

    if arg_flag("--distributed") {
        run_distributed(arg_flag("--snapshot-cache"));
    }

    if arg_flag("--secondary-index") {
        run_secondary_index_bench();
    }

    if arg_flag("--history") {
        run_history_bench();
    }
}

/// `--history`: the snapshot-capture overhead gate, written to
/// `BENCH_10.json`. The prepared pruned point loop — the engine's fastest
/// path — is timed in paired chunks on one database, history detached and
/// then attached (window every 256 statements, no recorder, so the flat
/// fast-scan program stays live and the per-statement cost is exactly the
/// stride counter bump plus the periodic capture). The run asserts the
/// median paired overhead stays under 5%.
fn run_history_bench() {
    use hdm_telemetry::{HistoryConfig, SharedHistory};
    const SHARDS: usize = 4;
    const ITERS: u32 = 50_000;
    const EVERY_STMTS: u64 = 256;
    println!("=== Workload-history capture overhead (BENCH_10) ===\n");

    let build = || {
        let mut db = DistDb::new(Cluster::new(ClusterConfig::gtm_lite(SHARDS))).unwrap();
        db.execute("create table olap.t1 (a1 int, b1 int)").unwrap();
        let mut rows = Vec::new();
        for i in 0..1000i64 {
            let b1 = if i % 10 == 0 { i % 100 } else { 5 };
            rows.push(format!("({}, {b1})", i % 200));
        }
        for chunk in rows.chunks(250) {
            db.execute(&format!("insert into olap.t1 values {}", chunk.join(",")))
                .unwrap();
        }
        db.execute("analyze").unwrap();
        db
    };
    let mut db = build();
    let history = SharedHistory::new(HistoryConfig {
        every_stmts: EVERY_STMTS,
        capacity: 64,
        ..HistoryConfig::default()
    });

    // One database measured in both states, alternating detach/attach in
    // adjacent same-size chunks. The gate compares a ~1us micro-path
    // against itself, so two separate database objects would let
    // heap-layout luck decide the verdict, and coarse off-then-on blocks
    // would let clock-frequency drift decide it. Each off/on pair runs
    // back-to-back under the same instantaneous machine state; the median
    // pair ratio shrugs off interference spikes that hit a single chunk.
    const CHUNK: u32 = ITERS / 10;
    let run_chunk = |db: &mut DistDb, handle: &hdm_sql::prepared::StmtHandle| {
        let t0 = Instant::now();
        for i in 0..CHUNK {
            let k = (i as i64 * 37) % 200;
            db.execute_prepared(handle, &[Datum::Int(k)]).unwrap();
        }
        t0.elapsed().as_micros() as u64
    };
    let handle = db.prepare_handle("select * from olap.t1 where a1 = ?").unwrap();
    for i in 0..64u32 {
        let k = (i as i64 * 37) % 200;
        db.execute_prepared(&handle, &[Datum::Int(k)]).unwrap();
    }
    let (mut off_us, mut on_us) = (0u64, 0u64);
    let mut ratios = Vec::new();
    for _ in 0..50 {
        db.detach_history();
        let off = run_chunk(&mut db, &handle);
        db.attach_history(history.clone());
        let on = run_chunk(&mut db, &handle);
        off_us += off;
        on_us += on;
        ratios.push(on as f64 / off.max(1) as f64);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median_ratio = ratios[ratios.len() / 2];
    let windows = history.len() as u64;
    assert!(
        windows > 0,
        "the history-on loop must have captured windows (every {EVERY_STMTS} stmts)"
    );

    let overhead = (median_ratio - 1.0) * 100.0;
    let total = CHUNK as u64 * ratios.len() as u64;
    let kqps = |us: u64| total as f64 / (us.max(1) as f64 / 1e6) / 1_000.0;
    println!(
        "prepared pruned point loop, {total} statements per side: history off \
         {off_us}us ({:.1} kstmt/s), on {on_us}us ({:.1} kstmt/s)",
        kqps(off_us),
        kqps(on_us)
    );
    println!(
        "{windows} windows captured (every {EVERY_STMTS} stmts); \
         median paired overhead {overhead:+.1}%\n"
    );
    assert!(
        overhead <= 5.0,
        "history capture must cost <= 5% on the hot path: {overhead:+.1}%"
    );

    let json = serde_json::json!({
        "bench": "workload_history",
        "shards": SHARDS,
        "iters": total,
        "every_stmts": EVERY_STMTS,
        "point_prepared_kstmt_s_off": kqps(off_us),
        "point_prepared_kstmt_s_on": kqps(on_us),
        "history_overhead_pct": overhead,
        "windows": windows,
    });
    std::fs::write("BENCH_10.json", format!("{}\n", serde_json::to_string(&json).unwrap()))
        .unwrap();
    println!("bench metrics written to BENCH_10.json\n");
}

/// `--secondary-index`: ISSUE 9's access-path benchmark, written to
/// `BENCH_9.json`. A 4-shard world whose hot predicates are *not* on the
/// shard key: the point and narrow-range loops are timed against full
/// Exchange scans, then again after `CREATE INDEX` + `ANALYZE` turned them
/// into probed Exchange legs — the CI release smoke asserts the speedups.
/// The 3-table join is timed under two FROM spellings; the cost-based join
/// order must make the spelling irrelevant (ratio pinned near 1).
fn run_secondary_index_bench() {
    const SHARDS: usize = 4;
    const ROWS: i64 = 20_000;
    const ITERS: u32 = 300;
    println!("=== Secondary-index access paths (BENCH_9) ===\n");

    let mut db = DistDb::new(Cluster::new(ClusterConfig::gtm_lite(SHARDS))).unwrap();
    let store = SharedPlanStore::default();
    db.set_plan_store(store.hints(), store.observer());
    db.execute("create table events (id int, dev int, ts int)").unwrap();
    let mut batch: Vec<String> = Vec::new();
    for i in 0..ROWS {
        batch.push(format!("({i}, {}, {})", (i * 7919) % 2000, i % 10_000));
        if batch.len() == 500 {
            db.execute(&format!("insert into events values {}", batch.join(",")))
                .unwrap();
            batch.clear();
        }
    }
    db.execute("analyze").unwrap();

    let point = |db: &mut DistDb, i: u32| {
        let k = (i as i64 * 37) % 2000;
        db.execute(&format!("select * from events where dev = {k}"))
            .unwrap()
            .rows
            .len()
    };
    let range = |db: &mut DistDb, i: u32| {
        let lo = (i as i64 * 97) % 9_900;
        db.execute(&format!(
            "select * from events where ts > {lo} and ts < {}",
            lo + 40
        ))
        .unwrap()
        .rows
        .len()
    };
    let time_loop = |db: &mut DistDb, f: &dyn Fn(&mut DistDb, u32) -> usize| {
        // Warm-up: let the plan cache, captured actuals, and any
        // drift-triggered replan settle before the timed window.
        for i in 0..8 {
            f(db, i);
        }
        let t0 = Instant::now();
        let mut rows = 0usize;
        for i in 0..ITERS {
            rows += f(db, i);
        }
        (t0.elapsed().as_micros() as u64, rows)
    };

    let (seq_point_us, seq_point_rows) = time_loop(&mut db, &point);
    let (seq_range_us, seq_range_rows) = time_loop(&mut db, &range);

    db.execute("create index on events (dev)").unwrap();
    db.execute("create index on events (ts)").unwrap();
    db.execute("analyze").unwrap();

    // Credit the index only if the planner actually advertises the probed
    // access paths.
    let explain_has = |db: &mut DistDb, sql: &str, want: &str| {
        let r = db.execute(sql).unwrap();
        let text: Vec<String> = r.rows.iter().map(|x| format!("{:?}", x.values()[0])).collect();
        assert!(
            text.iter().any(|l| l.contains(want)),
            "{sql} must plan as {want}: {text:?}"
        );
    };
    explain_has(
        &mut db,
        "explain select * from events where dev = 42",
        "Exchange Index Scan",
    );
    explain_has(
        &mut db,
        "explain select * from events where ts > 100 and ts < 140",
        "Exchange Index Range Scan",
    );

    let probes_before = db.counters().index_probes;
    let (idx_point_us, idx_point_rows) = time_loop(&mut db, &point);
    let (idx_range_us, idx_range_rows) = time_loop(&mut db, &range);
    assert_eq!(seq_point_rows, idx_point_rows, "access path changed results");
    assert_eq!(seq_range_rows, idx_range_rows, "access path changed results");
    assert!(
        db.counters().index_probes > probes_before,
        "the timed loops must run on probed Exchange legs"
    );

    // Join-order search: the same 3-table join under an adversarial FROM
    // spelling (tiny relations listed first) must run just as fast —
    // identical plans, identical rows.
    for stmt in [
        "create table devs (dev int, vendor int)".to_string(),
        format!(
            "insert into devs values {}",
            (0..2000).map(|d| format!("({d}, {})", d % 50)).collect::<Vec<_>>().join(",")
        ),
        "create table vendors (vendor int, tier int)".to_string(),
        format!(
            "insert into vendors values {}",
            (0..50).map(|v| format!("({v}, {})", v % 3)).collect::<Vec<_>>().join(",")
        ),
        "analyze".to_string(),
    ] {
        db.execute(&stmt).unwrap();
    }
    let qa = "select e.id, d.vendor, v.tier from events e, devs d, vendors v \
              where e.dev = d.dev and d.vendor = v.vendor and e.ts > 9900";
    let qb = "select e.id, d.vendor, v.tier from vendors v, devs d, events e \
              where e.dev = d.dev and d.vendor = v.vendor and e.ts > 9900";
    let join_loop = |db: &mut DistDb, q: &str| {
        db.execute(q).unwrap();
        let t0 = Instant::now();
        let mut rows = 0usize;
        for _ in 0..20 {
            rows += db.execute(q).unwrap().rows.len();
        }
        (t0.elapsed().as_micros() as u64, rows)
    };
    let (ja_us, ja_rows) = join_loop(&mut db, qa);
    let (jb_us, jb_rows) = join_loop(&mut db, qb);
    assert_eq!(ja_rows, jb_rows, "FROM spelling changed the join result");
    let spelling_ratio = ja_us.max(jb_us) as f64 / ja_us.min(jb_us).max(1) as f64;

    let kqps = |us: u64| ITERS as f64 / (us.max(1) as f64 / 1e6) / 1_000.0;
    let point_speedup = seq_point_us as f64 / idx_point_us.max(1) as f64;
    let range_speedup = seq_range_us as f64 / idx_range_us.max(1) as f64;
    let table = vec![
        vec![
            "statement".to_string(),
            "full scan kstmt/s".to_string(),
            "indexed kstmt/s".to_string(),
            "speedup".to_string(),
        ],
        vec![
            "point (dev = K)".to_string(),
            format!("{:.1}", kqps(seq_point_us)),
            format!("{:.1}", kqps(idx_point_us)),
            format!("{point_speedup:.1}x"),
        ],
        vec![
            "range (K < ts < K+40)".to_string(),
            format!("{:.1}", kqps(seq_range_us)),
            format!("{:.1}", kqps(idx_range_us)),
            format!("{range_speedup:.1}x"),
        ],
    ];
    println!("--- {ITERS} statements each, {ROWS} rows over {SHARDS} shards ---");
    println!("{}", render_table(&table));
    println!(
        "3-table join: {:.0}us vs {:.0}us across FROM spellings (ratio {spelling_ratio:.2})\n",
        ja_us as f64 / 20.0,
        jb_us as f64 / 20.0
    );

    let json = serde_json::json!({
        "bench": "secondary_index",
        "shards": SHARDS,
        "rows": ROWS,
        "iters": ITERS,
        "point_seq_kstmt_s": kqps(seq_point_us),
        "point_indexed_kstmt_s": kqps(idx_point_us),
        "point_speedup": point_speedup,
        "range_seq_kstmt_s": kqps(seq_range_us),
        "range_indexed_kstmt_s": kqps(idx_range_us),
        "range_speedup": range_speedup,
        "join_spelling_ratio": spelling_ratio,
        "index_probes": db.counters().index_probes,
    });
    std::fs::write("BENCH_9.json", format!("{}\n", serde_json::to_string(&json).unwrap()))
        .unwrap();
    println!("bench metrics written to BENCH_9.json\n");
}

/// The same Table-I world, hash-partitioned over a 4-shard GTM-lite
/// cluster and driven through the CN's distributed planner.
fn run_distributed(snapshot_cache: bool) {
    const SHARDS: usize = 4;
    println!(
        "=== Distributed: Fig-6 plan on a {SHARDS}-shard cluster \
         (snapshot cache {}) ===\n",
        if snapshot_cache { "on" } else { "off" }
    );

    let mut cfg = ClusterConfig::gtm_lite(SHARDS);
    cfg.snapshot_cache = snapshot_cache;
    let mut db = DistDb::new(Cluster::new(cfg)).unwrap();
    db.execute("create table olap.t1 (a1 int, b1 int)").unwrap();
    db.execute("create table olap.t2 (a2 int)").unwrap();
    let mut rows = Vec::new();
    for i in 0..1000i64 {
        let b1 = if i % 10 == 0 { i % 100 } else { 5 };
        rows.push(format!("({}, {b1})", i % 200));
    }
    for chunk in rows.chunks(250) {
        db.execute(&format!("insert into olap.t1 values {}", chunk.join(",")))
            .unwrap();
    }
    let t2: Vec<String> = (0..200i64).map(|i| format!("({i})")).collect();
    db.execute(&format!("insert into olap.t2 values {}", t2.join(",")))
        .unwrap();
    db.execute("analyze").unwrap();

    let store = SharedPlanStore::default();
    db.set_plan_store(store.hints(), store.observer());

    // The Table-I join carries no shard-key pin: both scans scatter.
    let plan = db.plan_only(QUERY).unwrap();
    println!("--- distributed execution plan (EXCHANGE leaves) ---");
    println!("{}", plan.explain());

    let cold = db.execute(QUERY).unwrap();
    let warm = db.execute(QUERY).unwrap();
    println!(
        "cold run: {} rows, hint hits {}; warm run: hint hits {} \
         (EXCHANGE-keyed store entries: {})\n",
        cold.rows.len(),
        cold.planning.hint_hits,
        warm.planning.hint_hits,
        store
            .inner()
            .borrow()
            .dump()
            .iter()
            .filter(|s| s.text.starts_with("EXCHANGE"))
            .count()
    );

    // Throughput: shard-key-pruned point query vs scatter-gather aggregate.
    const ITERS: u32 = 2_000;
    let before = (db.cluster().counters(), db.counters());
    let t0 = Instant::now();
    for i in 0..ITERS {
        let k = (i as i64 * 37) % 200;
        db.execute(&format!("select * from olap.t1 where a1 = {k}"))
            .unwrap();
    }
    let point_us = t0.elapsed().as_micros() as u64;
    let mid = (db.cluster().counters(), db.counters());
    let t0 = Instant::now();
    for _ in 0..ITERS {
        db.execute("select sum(b1) from olap.t1").unwrap();
    }
    let agg_us = t0.elapsed().as_micros() as u64;
    let after = (db.cluster().counters(), db.counters());

    // The prepared path: one prepare, then bind-and-execute per iteration.
    // Every statement is a plan-cache hit served by the flat fast-scan
    // program — no lexing, no parsing, no planning.
    let prepared_us = arg_flag("--prepared").then(|| {
        let handle = db
            .prepare_handle("select * from olap.t1 where a1 = ?")
            .unwrap();
        let gtm_before = db.cluster().counters().gtm_interactions;
        let t0 = Instant::now();
        for i in 0..ITERS {
            let k = (i as i64 * 37) % 200;
            db.execute_prepared(&handle, &[Datum::Int(k)]).unwrap();
        }
        let us = t0.elapsed().as_micros() as u64;
        assert_eq!(
            db.cluster().counters().gtm_interactions,
            gtm_before,
            "prepared pruned point queries must stay off the GTM"
        );
        us
    });

    let kqps = |us: u64| ITERS as f64 / (us.max(1) as f64 / 1e6) / 1_000.0;
    let mut table = vec![
        vec![
            "statement".to_string(),
            "kstmt/s".to_string(),
            "GTM interactions".to_string(),
            "fragments".to_string(),
            "commit path".to_string(),
        ],
        vec![
            "point query (a1 = K, pruned)".to_string(),
            format!("{:.1}", kqps(point_us)),
            (mid.0.gtm_interactions - before.0.gtm_interactions).to_string(),
            (mid.1.fragments_run - before.1.fragments_run).to_string(),
            format!(
                "{} single-shard",
                mid.0.single_shard_commits - before.0.single_shard_commits
            ),
        ],
        vec![
            "sum(b1) scatter-gather".to_string(),
            format!("{:.1}", kqps(agg_us)),
            (after.0.gtm_interactions - mid.0.gtm_interactions).to_string(),
            (after.1.fragments_run - mid.1.fragments_run).to_string(),
            format!(
                "{} multi-shard (2PC)",
                after.0.multi_shard_commits - mid.0.multi_shard_commits
            ),
        ],
    ];
    if let Some(us) = prepared_us {
        table.push(vec![
            "point query (prepared, a1 = ?)".to_string(),
            format!("{:.1}", kqps(us)),
            "0".to_string(),
            ITERS.to_string(),
            format!("{ITERS} single-shard"),
        ]);
    }
    println!("--- {ITERS} statements each ---");
    println!("{}", render_table(&table));
    println!(
        "snapshot cache: {} hits, {} misses",
        after.0.snapshot_cache_hits, after.0.snapshot_cache_misses
    );
    assert_eq!(
        mid.0.gtm_interactions, before.0.gtm_interactions,
        "pruned point queries must stay off the GTM"
    );
    println!(
        "pruned point queries made zero GTM interactions; every aggregate \
         took a global\nsnapshot and committed through 2PC across {SHARDS} \
         shards.\n"
    );
    if let Some(us) = prepared_us {
        assert!(
            us < point_us,
            "the prepared path must beat raw text execution: {us}us vs {point_us}us"
        );
        println!(
            "prepared point path: {:.1} kstmt/s — {:.1}x over the raw text loop\n",
            kqps(us),
            point_us as f64 / us.max(1) as f64
        );
    }

    // The introspection plane: a sys.* SELECT snapshots cluster state at
    // statement start and serves it through the same executor. Measured so
    // BENCH_7 pins what a monitoring poll loop would cost.
    let t0 = Instant::now();
    for _ in 0..ITERS {
        let rows = db.execute("select shard, lag from sys.shards").unwrap().rows;
        assert_eq!(rows.len(), SHARDS);
    }
    let sysq_us = t0.elapsed().as_micros() as u64;
    println!(
        "--- sys.* views: {ITERS} x `select shard, lag from sys.shards`: \
         {:.1} kstmt/s ---\n",
        kqps(sysq_us)
    );

    let mut bench = serde_json::Map::new();
    bench.insert("bench", "table1_distributed".into());
    bench.insert("shards", SHARDS.into());
    bench.insert("iters", ITERS.into());
    bench.insert("point_kstmt_s", kqps(point_us).into());
    bench.insert("agg_kstmt_s", kqps(agg_us).into());
    bench.insert("sys_view_kstmt_s", kqps(sysq_us).into());
    if let Some(us) = prepared_us {
        bench.insert("point_prepared_kstmt_s", kqps(us).into());
    }
    bench.insert(
        "point_gtm_interactions",
        (mid.0.gtm_interactions - before.0.gtm_interactions).into(),
    );
    bench.insert(
        "agg_gtm_interactions",
        (after.0.gtm_interactions - mid.0.gtm_interactions).into(),
    );

    if arg_flag("--profile") {
        let overhead = run_profiled(&mut db);
        bench.insert("profiler_overhead_pct", overhead.into());
    }

    if let Some(path) = arg_value("--bench-json") {
        // Regression gate against the previous committed bench: the plan
        // cache must not tax the raw-text path, so the profiling-off point
        // loop must stay within (generous, CI-noise-tolerant) range of
        // BENCH_7 — and the prepared path, when measured, is reported
        // against the same baseline (the ISSUE's 5x bar is asserted by the
        // CI release smoke over the committed BENCH_8.json).
        if let Some(prev) = std::fs::read_to_string("BENCH_7.json")
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .and_then(|v: serde_json::Value| {
                v.get("point_kstmt_s").and_then(|x| x.as_f64())
            })
        {
            let now = kqps(point_us);
            assert!(
                now > prev * 0.5,
                "profiling-off point throughput regressed: {now:.1} vs BENCH_7 {prev:.1} kstmt/s"
            );
            println!(
                "profiling-off point path: {now:.1} kstmt/s vs BENCH_7 {prev:.1} (within noise)\n"
            );
            if let Some(us) = prepared_us {
                let prep = kqps(us);
                println!(
                    "prepared point path: {prep:.1} kstmt/s = {:.1}x BENCH_7\n",
                    prep / prev
                );
            }
        }
        bench.insert("chaos_dist_failover", run_failover_bench());
        let json = serde_json::Value::Object(bench);
        std::fs::write(&path, format!("{}\n", serde_json::to_string(&json).unwrap())).unwrap();
        println!("bench metrics written to {path}\n");
    }
}

/// One standard chaos-dist sweep, reported as the failover latency
/// decomposition: wall time of statements that drove a promotion vs the
/// fault-free twin's per-statement baseline, plus retry/backoff/dedup
/// accounting.
fn run_failover_bench() -> serde_json::Value {
    let cfg = ChaosDistConfig::standard(0xBAD_5EED);
    let r = run_chaos_dist(&cfg).expect("chaos-dist sweep");
    assert_eq!(r.mismatches, 0, "sweep must be client-invisible: {r:?}");
    assert_eq!(r.audit_diffs, 0, "sweep must lose nothing: {r:?}");
    let avg = |us: u64, n: u64| us as f64 / n.max(1) as f64;
    println!("=== Chaos-dist failover sweep (seed {:#x}) ===", cfg.seed);
    println!(
        "{} statements, {} crashes / {} restarts, {} promotions, {} rejoins",
        r.statements, r.crashes, r.restarts, r.promotions, r.rejoins
    );
    println!(
        "retries {}, dedup hits {}, simulated backoff {}us",
        r.stmt_retries, r.dedup_hits, r.backoff_us
    );
    println!(
        "failover latency: {} promoting statements avg {:.0}us vs fault-free avg {:.0}us\n",
        r.failover_stmts,
        avg(r.failover_wall_us, r.failover_stmts),
        avg(r.twin_wall_us, r.statements)
    );
    serde_json::json!({
        "seed": r.seed,
        "statements": r.statements,
        "duplicates": r.duplicates,
        "crashes": r.crashes,
        "restarts": r.restarts,
        "promotions": r.promotions,
        "rejoins": r.rejoins,
        "cn_failovers": r.failovers,
        "stmt_retries": r.stmt_retries,
        "dedup_hits": r.dedup_hits,
        "backoff_sim_us": r.backoff_us,
        "mismatches": r.mismatches,
        "audit_diffs": r.audit_diffs,
        "ticks": r.ticks,
        "twin_wall_us": r.twin_wall_us,
        "fault_wall_us": r.fault_wall_us,
        "failover_stmts": r.failover_stmts,
        "failover_wall_us": r.failover_wall_us,
        "avg_failover_stmt_us": avg(r.failover_wall_us, r.failover_stmts),
        "avg_twin_stmt_us": avg(r.twin_wall_us, r.statements),
    })
}

/// `--profile`: time the pruned point-query loop with the profiler off and
/// on (its overhead is the whole cost story — the paper's feedback loop is
/// only viable if observation is near-free), then show the annotated tree
/// and optionally dump the flight recorder. Returns the overhead in %.
fn run_profiled(db: &mut DistDb) -> f64 {
    const ITERS: u32 = 2_000;
    let run_loop = |db: &mut DistDb| {
        let t0 = Instant::now();
        for i in 0..ITERS {
            let k = (i as i64 * 37) % 200;
            db.execute(&format!("select * from olap.t1 where a1 = {k}"))
                .unwrap();
        }
        t0.elapsed().as_micros() as u64
    };
    let off_us = run_loop(db);
    db.set_profiling(true);
    let recorder = SharedRecorder::new(RecorderConfig::default());
    db.attach_recorder(recorder.clone());
    let on_us = run_loop(db);
    let overhead = (on_us as f64 / off_us.max(1) as f64 - 1.0) * 100.0;
    println!("=== Profiler overhead ({ITERS} pruned point queries) ===");
    println!("profiling off: {off_us}us  on: {on_us}us  overhead: {overhead:+.1}%\n");

    println!("--- EXPLAIN ANALYZE (distributed) ---");
    let res = db.execute(&format!("explain analyze {QUERY}")).unwrap();
    for row in &res.rows {
        if let Datum::Text(l) = &row.values()[0] {
            println!("{l}");
        }
    }
    println!();
    if let Some(path) = arg_value("--recorder") {
        std::fs::write(&path, recorder.to_jsonl()).unwrap();
        println!(
            "flight recorder: {} most recent statement profiles dumped to {path}\n",
            recorder.len()
        );
    }
    overhead
}

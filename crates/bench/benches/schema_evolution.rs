//! Criterion benches for GMDB schema evolution (Fig 11 ablations):
//! conversion cost per hop count, delta computation/application, and
//! delta-vs-whole write paths on the store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdm_common::SplitMix64;
use hdm_gmdb::{Delta, GmdbStore, SchemaRegistry};
use hdm_workloads::mme::{generate_session, mme_schema_chain, MmeConfig};
use serde_json::json;
use std::hint::black_box;

fn registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    for s in mme_schema_chain() {
        reg.register(s).unwrap();
    }
    reg
}

/// Conversion cost scales with hop count (V3→V5 vs V3→V8).
fn bench_conversion_hops(c: &mut Criterion) {
    let reg = registry();
    let mut rng = SplitMix64::new(1);
    let obj = generate_session(&mut rng, 3, &MmeConfig::default());
    let mut g = c.benchmark_group("conversion");
    for (label, to) in [("1_hop_v3_to_v5", 5u32), ("2_hops_v3_to_v6", 6), ("4_hops_v3_to_v8", 8)] {
        g.bench_function(label, |b| {
            b.iter(|| black_box(reg.convert("mme_session", black_box(&obj), 3, to).unwrap()))
        });
    }
    g.finish();
}

/// Delta compute+apply on 5–10 KB sessions with one field changed.
fn bench_delta(c: &mut Criterion) {
    let mut rng = SplitMix64::new(2);
    let old = generate_session(&mut rng, 3, &MmeConfig::default());
    let mut new = old.clone();
    new["tracking_area"] = json!(42);
    let delta = Delta::compute(&old, &new);
    let mut g = c.benchmark_group("delta");
    g.bench_function("compute_small_change", |b| {
        b.iter(|| black_box(Delta::compute(black_box(&old), black_box(&new))))
    });
    g.bench_function("apply_small_change", |b| {
        b.iter(|| {
            let mut t = old.clone();
            delta.apply(&mut t).unwrap();
            black_box(t)
        })
    });
    g.bench_function("wire_encode", |b| {
        b.iter(|| black_box(delta.wire_format()))
    });
    g.finish();
}

/// Store write paths: whole-object put vs delta update.
fn bench_store_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_write");
    g.sample_size(20);
    let cfg = MmeConfig::default();

    for (label, use_delta) in [("whole_object_put", false), ("delta_update", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &use_delta, |b, &ud| {
            let mut store = GmdbStore::new(registry());
            let mut rng = SplitMix64::new(3);
            let obj = generate_session(&mut rng, 3, &cfg);
            let key = store.put("mme_session", 3, obj.clone()).unwrap();
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                if ud {
                    let old = store.get("mme_session", &key, 3).unwrap();
                    let mut new = old.clone();
                    new["tracking_area"] = json!(i % 4096);
                    let d = Delta::compute(&old, &new);
                    black_box(store.update_delta("mme_session", &key, 3, &d).unwrap());
                } else {
                    let mut new = obj.clone();
                    new["tracking_area"] = json!(i % 4096);
                    black_box(store.put("mme_session", 3, new).unwrap());
                }
            })
        });
    }
    g.finish();
}

/// Shorter measurement windows: the full suite covers many benchmarks and
/// must finish within CI budgets; 2s windows are plenty for these scales.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_conversion_hops, bench_delta, bench_store_writes);
criterion_main!(benches);

//! Criterion benches for the learning optimizer (§II-C ablations):
//! MD5-keyed lookups vs full-text keys, capture policies, and end-to-end
//! planning with/without hints.

use criterion::{criterion_group, criterion_main, Criterion};
use hdm_learnopt::{PlanStore, PlanStoreConfig, SharedPlanStore};
use hdm_sql::{Database, StepKind, StepObservation};
use hdm_workloads::OlapWorkload;
use std::collections::HashMap;
use std::hint::black_box;

fn long_step_text(i: usize) -> String {
    // Step text of a realistic 4-way join: several hundred bytes.
    format!(
        "JOIN(JOIN(JOIN(SCAN(OLAP.SALES, PREDICATE(OLAP.SALES.AMOUNT>{i} AND \
         OLAP.SALES.STATUS=1)), SCAN(OLAP.CUSTOMERS), \
         PREDICATE(OLAP.CUSTOMERS.CUST_ID=OLAP.SALES.CUST_ID)), \
         SCAN(OLAP.REGIONS, PREDICATE(OLAP.REGIONS.R{i}>10)), \
         PREDICATE(OLAP.REGIONS.REGION_ID=OLAP.SALES.REGION)), \
         SCAN(OLAP.DATES), PREDICATE(OLAP.DATES.D=OLAP.SALES.SALE_ID))"
    )
}

/// The paper's MD5 rationale: hash keys beat storing/comparing huge texts.
fn bench_store_keys(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_store_keying");
    let texts: Vec<String> = (0..1000).map(long_step_text).collect();

    // MD5-keyed store (the shipped design).
    let mut store = PlanStore::new(PlanStoreConfig {
        differential_ratio: 1.0,
        ..Default::default()
    });
    let obs: Vec<StepObservation> = texts
        .iter()
        .map(|t| StepObservation {
            kind: StepKind::Join,
            text: t.clone(),
            estimated: 1.0,
            actual: 100,
        })
        .collect();
    store.capture(&obs);
    g.bench_function("md5_keyed_lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % texts.len();
            black_box(store.lookup(&texts[i]))
        })
    });

    // Strawman: full-text HashMap keys (what MD5 keying avoids).
    let full: HashMap<String, u64> = texts.iter().map(|t| (t.clone(), 100u64)).collect();
    g.bench_function("full_text_keyed_lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % texts.len();
            black_box(full.get(&texts[i]))
        })
    });
    g.finish();
}

fn bench_capture_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_store_capture");
    let obs: Vec<StepObservation> = (0..100)
        .map(|i| StepObservation {
            kind: StepKind::Scan,
            text: long_step_text(i),
            estimated: if i % 2 == 0 { 100.0 } else { 99.0 },
            actual: 100,
        })
        .collect();
    for (name, ratio) in [("capture_everything", 1.0f64), ("big_differential", 2.0)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut store = PlanStore::new(PlanStoreConfig {
                    differential_ratio: ratio,
                    ..Default::default()
                });
                store.capture(black_box(&obs));
                black_box(store.len())
            })
        });
    }
    g.finish();
}

/// End-to-end canned-query planning+execution, cold vs warm store.
fn bench_canned_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("canned_reporting");
    g.sample_size(10);

    g.bench_function("without_plan_store", |b| {
        let mut db = Database::new();
        OlapWorkload {
            fact_rows: 2000,
            ..Default::default()
        }
        .load(&mut db)
        .unwrap();
        let queries = OlapWorkload::canned_queries();
        b.iter(|| {
            for q in &queries {
                black_box(db.execute(q).unwrap());
            }
        })
    });

    g.bench_function("with_warm_plan_store", |b| {
        let mut db = Database::new();
        OlapWorkload {
            fact_rows: 2000,
            ..Default::default()
        }
        .load(&mut db)
        .unwrap();
        let store = SharedPlanStore::default();
        db.set_plan_store(store.hints(), store.observer());
        let queries = OlapWorkload::canned_queries();
        for q in &queries {
            db.execute(q).unwrap(); // warm it
        }
        b.iter(|| {
            for q in &queries {
                black_box(db.execute(q).unwrap());
            }
        })
    });
    g.finish();
}

/// Shorter measurement windows: the full suite covers many benchmarks and
/// must finish within CI budgets; 2s windows are plenty for these scales.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets =
    bench_store_keys,
    bench_capture_policies,
    bench_canned_queries
);
criterion_main!(benches);

//! Criterion benches for the GTM-lite transaction machinery (Fig 3's
//! engine-level ablations): MergeSnapshot cost as the LCO grows, protocol
//! throughput in the functional engine, and the simulated-cluster sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdm_cluster::{make_key, Cluster, ClusterConfig, Protocol, SimConfig, WorkloadMix};
use hdm_common::{SimDuration, Xid};
use hdm_txn::{merge_with_manager, LocalTxnManager, Snapshot};
use std::hint::black_box;

/// MergeSnapshot (Algorithm 1) cost against LCO depth — the bookkeeping
/// overhead a multi-shard read pays.
fn bench_merge_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_snapshot");
    for lco_len in [16usize, 256, 4096] {
        // A manager with `lco_len` committed transactions, 10% of them
        // multi-shard legs.
        let mut mgr = LocalTxnManager::new();
        for i in 0..lco_len {
            let x = if i % 10 == 0 {
                mgr.begin_global(Xid(10_000 + i as u64))
            } else {
                mgr.begin_local()
            };
            mgr.commit(x).unwrap();
        }
        let global = Snapshot::capture(Xid(20_000), [Xid(10_000)]);
        let local = mgr.local_snapshot();
        g.bench_with_input(BenchmarkId::from_parameter(lco_len), &lco_len, |b, _| {
            b.iter(|| {
                let out = merge_with_manager(
                    black_box(&global),
                    black_box(&local),
                    &mgr,
                    |_| false,
                );
                black_box(out)
            })
        });
    }
    g.finish();
}

/// Functional-engine transaction throughput per protocol (no virtual time:
/// pure engine cost of the two protocols).
fn bench_engine_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_txn");
    for (name, protocol, single) in [
        ("gtm_lite_single_shard", Protocol::GtmLite, true),
        ("gtm_lite_multi_shard", Protocol::GtmLite, false),
        ("baseline_single_shard", Protocol::Baseline, true),
    ] {
        g.bench_function(name, |b| {
            let mut cfg = match protocol {
                Protocol::Baseline => ClusterConfig::baseline(4),
                Protocol::GtmLite => ClusterConfig::gtm_lite(4),
            };
            cfg.lco_prune_horizon = 1024;
            let mut cluster = Cluster::new(cfg);
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                let w = i % 16;
                let key = make_key(w, i % 1024);
                let r = if single {
                    cluster.bump(Some(w), key, 1)
                } else {
                    cluster.bump(None, key, 1)
                };
                black_box(r).unwrap()
            })
        });
    }
    g.finish();
}

/// One full simulated Fig 3 cell (short horizon) — wall cost of the DES.
fn bench_simulated_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_sim_cell");
    g.sample_size(10);
    for (name, protocol) in [
        ("lite_4nodes_ms", Protocol::GtmLite),
        ("baseline_4nodes_ms", Protocol::Baseline),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = SimConfig::new(4, protocol, WorkloadMix::ms());
                cfg.horizon = SimDuration::from_millis(20);
                black_box(hdm_cluster::sim::run_sim(cfg))
            })
        });
    }
    g.finish();
}

/// Shorter measurement windows: the full suite covers many benchmarks and
/// must finish within CI budgets; 2s windows are plenty for these scales.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets =
    bench_merge_snapshot,
    bench_engine_protocols,
    bench_simulated_cell
);
criterion_main!(benches);

//! Criterion benches for the edge-sync platform (§IV-B): anti-entropy
//! session cost per backlog size, and the Bluetooth-vs-Internet transfer
//! time comparison behind the paper's "at least 10X faster" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdm_common::{DeviceId, SimDuration};
use hdm_edgesync::replica::{sync_pair, Role};
use hdm_edgesync::Replica;
use hdm_simnet::NetLink;
use std::hint::black_box;

/// Cost of one sync session as a function of backlog size.
fn bench_sync_backlog(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync_session");
    for backlog in [10usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(backlog), &backlog, |b, &n| {
            b.iter_batched(
                || {
                    let mut a = Replica::new(DeviceId::new(1), Role::Device);
                    let b = Replica::new(DeviceId::new(2), Role::Device);
                    for i in 0..n {
                        a.write(100 + i as u64, &format!("k{i}"), Some("v")).unwrap();
                    }
                    (a, b)
                },
                |(mut a, mut b)| black_box(sync_pair(&mut a, &mut b, 10_000).unwrap()),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Modeled transfer latency of a 100-op sync over Bluetooth vs the cloud
/// path (per-message RTT dominated), reported as virtual time.
fn bench_link_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("link_transfer_model");
    type MkLink = fn(u64) -> NetLink;
    let links: [(&str, MkLink); 2] = [
        ("bluetooth_direct", NetLink::bluetooth),
        ("internet_via_cloud", NetLink::internet),
    ];
    for (name, mk) in links {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut link = mk(7);
                let mut total = SimDuration::ZERO;
                // A sync session: vector exchange (1 RTT) + 4 batches.
                for _ in 0..5 {
                    total += link.round_trip();
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

/// Shorter measurement windows: the full suite covers many benchmarks and
/// must finish within CI budgets; 2s windows are plenty for these scales.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_sync_backlog, bench_link_model);
criterion_main!(benches);

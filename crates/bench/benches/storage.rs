//! Criterion benches for the storage engine (FI-MPPDB's "hybrid row-column
//! storage, data compression, vectorized execution" claims): row-heap scan
//! vs columnar scan, compression codecs, and index probes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdm_common::{row, DataType, Datum, Row, Schema, Xid};
use hdm_storage::column::ColumnStore;
use hdm_storage::compress::{encode_as, Encoding};
use hdm_storage::mvcc::FixedVisibility;
use hdm_storage::Table;
use std::hint::black_box;

const N: i64 = 50_000;

fn loaded_table() -> Table {
    let mut t = Table::new(
        "sales",
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("region", DataType::Int),
            ("amount", DataType::Int),
        ]),
    );
    t.create_index(vec![0]).unwrap();
    let x = Xid(1);
    for i in 0..N {
        t.insert(x, row![i, i % 8, (i * 37) % 10_000]).unwrap();
    }
    t
}

fn rows() -> Vec<Row> {
    (0..N).map(|i| row![i, i % 8, (i * 37) % 10_000]).collect()
}

/// Row-store scan vs columnar single-column scan (the hybrid claim).
fn bench_scan_paths(c: &mut Criterion) {
    let table = loaded_table();
    let judge = FixedVisibility::new([Xid(1)], None);
    let col = ColumnStore::from_rows(
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("region", DataType::Int),
            ("amount", DataType::Int),
        ]),
        &rows(),
    )
    .unwrap();

    let mut g = c.benchmark_group("scan_sum_amount");
    g.bench_function("row_heap", |b| {
        b.iter(|| {
            let mut sum = 0i64;
            for (_, r) in table.scan(&judge) {
                sum += r.values()[2].as_int().unwrap();
            }
            black_box(sum)
        })
    });
    g.bench_function("column_store", |b| {
        b.iter(|| {
            let mut sum = 0i64;
            col.scan_column(2, |_, v| sum += v.as_int().unwrap()).unwrap();
            black_box(sum)
        })
    });
    g.finish();
}

/// Codec encode/decode throughput per data shape.
fn bench_codecs(c: &mut Criterion) {
    let sequential: Vec<Datum> = (0..10_000).map(Datum::Int).collect();
    let low_card: Vec<Datum> = (0..10_000).map(|i| Datum::Int(i % 4)).collect();
    let mut g = c.benchmark_group("codec");
    for (name, data, enc) in [
        ("delta_sequential", &sequential, Encoding::DeltaI64),
        ("rle_low_cardinality", &low_card, Encoding::Rle),
        ("dict_low_cardinality", &low_card, Encoding::Dict),
        ("plain", &sequential, Encoding::Plain),
    ] {
        g.bench_with_input(BenchmarkId::new("encode", name), &enc, |b, &enc| {
            b.iter(|| black_box(encode_as(black_box(data), enc).unwrap()))
        });
        let chunk = encode_as(data, enc).unwrap();
        g.bench_with_input(BenchmarkId::new("decode", name), &chunk, |b, chunk| {
            b.iter(|| black_box(chunk.decode()))
        });
    }
    g.finish();
}

/// Index probe vs full scan for point lookups.
fn bench_point_lookup(c: &mut Criterion) {
    let table = loaded_table();
    let judge = FixedVisibility::new([Xid(1)], None);
    let mut g = c.benchmark_group("point_lookup");
    g.bench_function("index_probe", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7919) % N;
            black_box(table.probe(0, &vec![Datum::Int(k)], &judge).unwrap())
        })
    });
    g.bench_function("seq_scan_filter", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7919) % N;
            let hit = table
                .scan(&judge)
                .find(|(_, r)| r.values()[0].as_int() == Some(k));
            black_box(hit)
        })
    });
    g.finish();
}

/// Shorter measurement windows: the full suite covers many benchmarks and
/// must finish within CI budgets; 2s windows are plenty for these scales.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = bench_scan_paths, bench_codecs, bench_point_lookup);
criterion_main!(benches);

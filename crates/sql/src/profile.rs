//! The operator-level query profiler and its bridges.
//!
//! [`Profiler`] rides along with [`crate::exec::execute_with_profiler`],
//! mirroring the plan tree into an [`OpProfile`] tree: per operator it
//! records actual rows, inclusive time on a pluggable [`SharedClock`]
//! (virtual in simulations, wall in real runs), and — for `Exchange`
//! operators — the per-shard rows/time legs the backend drained via
//! [`crate::backend::ExecBackend::take_exchange_profile`].
//!
//! Two bridges make the profile more than a pretty tree:
//!
//! * [`observations`] derives the plan store's [`StepObservation`]s from a
//!   profile, post-order — **provably the same list** the executor pushes
//!   directly (both walk the same tree, children before parents), so the
//!   Fig 6 capture loop can feed on the exact artifact users inspect with
//!   `EXPLAIN ANALYZE`;
//! * [`render_analyze`] renders the annotated tree (estimates vs. actuals,
//!   per-shard Exchange breakdown, misestimate flags at the plan store's
//!   capture threshold).

use crate::plan::{PlanNode, StepKind, StepObservation};
use hdm_telemetry::{OpProfile, ShardLeg, SharedClock, StatementProfile};
use std::fmt::Write as _;

/// The profile schema carries step kinds as strings so `hdm-telemetry`
/// needs no SQL dependency; this is the canonical mapping.
pub fn kind_str(kind: StepKind) -> &'static str {
    match kind {
        StepKind::Scan => "scan",
        StepKind::Join => "join",
        StepKind::Agg => "agg",
        StepKind::SetOp => "setop",
        StepKind::Limit => "limit",
        StepKind::Other => "other",
    }
}

fn kind_from_str(s: &str) -> StepKind {
    match s {
        "scan" => StepKind::Scan,
        "join" => StepKind::Join,
        "agg" => StepKind::Agg,
        "setop" => StepKind::SetOp,
        "limit" => StepKind::Limit,
        _ => StepKind::Other,
    }
}

/// An open operator frame on the profiler's stack.
#[derive(Debug)]
struct Frame {
    start_us: u64,
    children: Vec<OpProfile>,
}

/// Builds an [`OpProfile`] tree while the executor recurses. The executor
/// calls [`Profiler::enter`] before evaluating a node's children and
/// [`Profiler::exit`] once the node's rows are materialized; frames nest on
/// a stack exactly like the recursion does.
#[derive(Debug)]
pub struct Profiler {
    clock: SharedClock,
    stack: Vec<Frame>,
    /// Completed top-level operator profiles (one per root the executor ran).
    roots: Vec<OpProfile>,
}

impl Profiler {
    pub fn new(clock: SharedClock) -> Self {
        Self {
            clock,
            stack: Vec::new(),
            roots: Vec::new(),
        }
    }

    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Open a frame for the node about to execute.
    pub fn enter(&mut self) {
        self.stack.push(Frame {
            start_us: self.clock.now_us(),
            children: Vec::new(),
        });
    }

    /// Close the current frame with the node's results. `shards` is the
    /// per-shard breakdown for Exchange nodes (empty otherwise).
    pub fn exit(&mut self, plan: &PlanNode, rows_out: u64, shards: Vec<ShardLeg>) {
        let frame = self.stack.pop().expect("profiler exit without enter");
        let loops = if shards.is_empty() {
            1
        } else {
            shards.len() as u64
        };
        let profile = OpProfile {
            label: plan.describe(),
            kind: kind_str(plan.step_kind()).to_string(),
            canonical: plan.canonical(),
            est_rows: plan.est_rows(),
            rows_out,
            loops,
            time_us: self.clock.now_us().saturating_sub(frame.start_us),
            shards,
            children: frame.children,
        };
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(profile),
            None => self.roots.push(profile),
        }
    }

    /// Take the completed root profile. Returns `None` when nothing ran; if
    /// several roots completed (CTE materialization), the **last** is the
    /// main statement tree.
    pub fn finish(mut self) -> Option<OpProfile> {
        debug_assert!(self.stack.is_empty(), "unbalanced profiler frames");
        self.roots.pop()
    }
}

/// Derive the plan store's step observations from a profile tree,
/// post-order — the same order (and the same `(kind, text, estimated,
/// actual)` contents) the executor observes directly, which the
/// profiler-equivalence test pins.
pub fn observations(root: Option<&OpProfile>) -> Vec<StepObservation> {
    let mut out = Vec::new();
    if let Some(root) = root {
        root.visit_post(&mut |op| {
            if let Some(text) = &op.canonical {
                out.push(StepObservation {
                    kind: kind_from_str(&op.kind),
                    text: text.clone(),
                    estimated: op.est_rows,
                    actual: op.rows_out,
                });
            }
        });
    }
    out
}

/// Render the `EXPLAIN ANALYZE` tree: each operator's estimate vs. actual
/// rows and inclusive time, per-shard legs under Exchange operators, and a
/// `MISESTIMATE` flag wherever the estimate is off by at least
/// `misestimate_ratio` — the same differential ratio the plan store uses to
/// decide capture, so every flagged line is a line the feedback loop will
/// learn from.
pub fn render_analyze(profile: &StatementProfile, misestimate_ratio: f64) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(root) = &profile.root {
        render_op(&mut out, root, 0, misestimate_ratio);
    }
    out.push(format!(
        "Planning: {}us  Execution: {}us  Total: {}us",
        profile.plan_us, profile.exec_us, profile.total_us
    ));
    out.push(format!(
        "Scope: {}  GTM interactions: {}  2PC legs: {}",
        profile.scope, profile.gtm_interactions, profile.twopc_legs
    ));
    out
}

fn render_op(out: &mut Vec<String>, op: &OpProfile, depth: usize, ratio: f64) {
    let pad = "  ".repeat(depth);
    let mut line = format!(
        "{pad}{}  (est={:.0} actual rows={} loops={} time={}us)",
        op.label, op.est_rows, op.rows_out, op.loops, op.time_us
    );
    if op.canonical.is_some() && op.misestimate_ratio() >= ratio {
        let _ = write!(line, "  [MISESTIMATE x{:.1}]", op.misestimate_ratio());
    }
    out.push(line);
    for leg in &op.shards {
        out.push(format!(
            "{pad}  [shard {}] rows={} time={}us",
            leg.shard, leg.rows, leg.time_us
        ));
    }
    for c in &op.children {
        render_op(out, c, depth + 1, ratio);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(canonical: Option<&str>, est: f64, rows: u64, children: Vec<OpProfile>) -> OpProfile {
        OpProfile {
            label: "x".into(),
            kind: "scan".into(),
            canonical: canonical.map(str::to_string),
            est_rows: est,
            rows_out: rows,
            loops: 1,
            time_us: 5,
            shards: vec![],
            children,
        }
    }

    #[test]
    fn observations_walk_post_order_and_skip_uncaptured_nodes() {
        let tree = OpProfile {
            kind: "join".into(),
            ..op(Some("JOIN(A, B)"), 10.0, 4, vec![
                op(Some("SCAN(A)"), 5.0, 2, vec![]),
                op(None, 0.0, 0, vec![op(Some("SCAN(B)"), 6.0, 2, vec![])]),
            ])
        };
        let obs = observations(Some(&tree));
        let texts: Vec<&str> = obs.iter().map(|o| o.text.as_str()).collect();
        assert_eq!(texts, vec!["SCAN(A)", "SCAN(B)", "JOIN(A, B)"]);
        assert_eq!(obs[0].actual, 2);
        assert_eq!(obs[2].kind, StepKind::Join);
        assert!(observations(None).is_empty());
    }

    #[test]
    fn render_flags_misestimates_at_the_threshold() {
        let profile = StatementProfile {
            sql: String::new(),
            scope: "local".into(),
            start_us: 0,
            plan_us: 1,
            exec_us: 2,
            total_us: 3,
            rows_out: 30,
            gtm_interactions: 0,
            twopc_legs: 0,
            root: Some(op(Some("SCAN(T)"), 10.0, 30, vec![
                op(Some("SCAN(U)"), 10.0, 11, vec![]),
            ])),
        };
        let lines = render_analyze(&profile, 2.0);
        assert!(lines[0].contains("[MISESTIMATE x3.0]"), "{}", lines[0]);
        assert!(!lines[1].contains("MISESTIMATE"), "1.1x is under threshold");
        assert!(lines.last().unwrap().contains("GTM interactions: 0"));
    }

    #[test]
    fn render_includes_shard_legs() {
        let mut root = op(Some("EXCHANGE(SCAN(T), SHARDS(0,1))"), 4.0, 4, vec![]);
        root.shards = vec![
            ShardLeg { shard: 0, rows: 3, time_us: 7 },
            ShardLeg { shard: 1, rows: 1, time_us: 9 },
        ];
        root.loops = 2;
        let profile = StatementProfile {
            sql: String::new(),
            scope: "single".into(),
            start_us: 0,
            plan_us: 0,
            exec_us: 0,
            total_us: 0,
            rows_out: 4,
            gtm_interactions: 0,
            twopc_legs: 0,
            root: Some(root),
        };
        let lines = render_analyze(&profile, 2.0);
        assert!(lines[1].contains("[shard 0] rows=3 time=7us"), "{}", lines[1]);
        assert!(lines[2].contains("[shard 1] rows=1 time=9us"), "{}", lines[2]);
    }
}

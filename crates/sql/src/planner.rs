//! The cost-based planner.
//!
//! AST → physical [`PlanNode`] with per-step multi-objective costs
//! ([`CostEstimate`]): predicate pushdown, cost-gated index access paths
//! (equality probes and range walks, falling back to SeqScan when the
//! weighted total says the probe is dearer), exhaustive bottom-up
//! join-order search for ≤ [`EXHAUSTIVE_JOIN_LIMIT`] relations (greedy
//! beyond), hash joins for equi-predicates, and hash aggregation. Before
//! trusting its own estimate for a SCAN/JOIN/AGG step the planner consults
//! the [`crate::db::CardinalityHints`] hook — the plan store's *consumer*
//! side ("The optimizer gets statistics information from the plan store and
//! uses it instead of its own estimates … The use of steps statistics is
//! done opportunistically", §II-C).

use crate::ast::{BinOp, Expr, SelectItem, SelectStmt, SetOpKind, Statement, TableRef};
use crate::catalog::Catalog;
use crate::db::{CardinalityHints, TableFunction};
use crate::expr::{bind, BoundColumn, BoundSchema, SExpr};
use crate::plan::{
    range_bound_parts, range_bounds_from_exprs, AggCall, AggFunc, CostEstimate, PlanNode, PlanOp,
};
use crate::rewrite::pick_cheapest;
use crate::sys::SysSnapshot;
use hdm_common::{DataType, Datum, HdmError, Result, Row};
use std::collections::HashMap;
use std::ops::Bound;

/// Default row count for tables without statistics.
const DEFAULT_ROWS: f64 = 1000.0;
/// Default number of distinct values for columns without statistics.
const DEFAULT_NDV: f64 = 10.0;
/// Default selectivity for opaque predicates.
const DEFAULT_SEL: f64 = 1.0 / 3.0;
/// Up to this many base relations, join order is searched exhaustively
/// (Selinger-style bitmask DP); beyond it the greedy smallest-first fold
/// keeps planning linear.
const EXHAUSTIVE_JOIN_LIMIT: usize = 4;

/// Hint usage accounting for one planning pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanningInfo {
    pub hint_hits: u64,
    pub hint_misses: u64,
    /// Times a cached plan was discarded and re-planned because captured
    /// actuals drifted past the misestimate threshold.
    pub replans: u64,
}

/// Materialized temporary relations (CTE results), by lowercase name.
pub type TempRels = HashMap<String, (BoundSchema, Vec<Row>)>;

pub struct Planner<'a> {
    pub catalog: &'a Catalog,
    pub hints: Option<&'a dyn CardinalityHints>,
    pub table_funcs: &'a HashMap<String, Box<dyn TableFunction>>,
    pub info: PlanningInfo,
    /// Statement-start `sys.*` view state. When set, a FROM reference to a
    /// served view plans as an ordinary `SeqScan` of the frozen rows (no
    /// catalog entry, no index probing, no shard annotation).
    pub sys: Option<&'a SysSnapshot>,
}

/// One base relation during join planning.
struct Rel {
    node: PlanNode,
}

impl<'a> Planner<'a> {
    pub fn new(
        catalog: &'a Catalog,
        hints: Option<&'a dyn CardinalityHints>,
        table_funcs: &'a HashMap<String, Box<dyn TableFunction>>,
    ) -> Self {
        Self {
            catalog,
            hints,
            table_funcs,
            info: PlanningInfo::default(),
            sys: None,
        }
    }

    /// Plan `sys.*` references against `snapshot` (frozen at statement
    /// start). Without this, sys names resolve like any other missing table.
    pub fn with_sys(mut self, snapshot: Option<&'a SysSnapshot>) -> Self {
        self.sys = snapshot;
        self
    }

    /// Plan a SELECT (CTEs must already be materialized into `temp`).
    pub fn plan_select(&mut self, stmt: &SelectStmt, temp: &TempRels) -> Result<PlanNode> {
        // Fold the set-operation chain left-to-right.
        let mut node = self.plan_core(stmt, temp)?;
        let mut chain = &stmt.set_op;
        while let Some((kind, all, rhs)) = chain {
            let right = self.plan_core(rhs, temp)?;
            if right.schema.len() != node.schema.len() {
                return Err(HdmError::Plan(format!(
                    "{} arms have different arity ({} vs {})",
                    kind.name(),
                    node.schema.len(),
                    right.schema.len()
                )));
            }
            let (lrows, rrows) = (node.cost.rows, right.cost.rows);
            let est = match kind {
                SetOpKind::Union => {
                    if *all {
                        lrows + rrows
                    } else {
                        (lrows + rrows) * 0.9
                    }
                }
                SetOpKind::Intersect => lrows.min(rrows) * 0.5,
                SetOpKind::Except => lrows * 0.5,
            };
            let schema = node.schema.clone();
            node = self.hinted(cpu_node(
                PlanOp::SetOp {
                    kind: *kind,
                    all: *all,
                },
                vec![node, right],
                est,
                lrows + rrows,
                schema,
            ));
            chain = &rhs.set_op;
        }

        // ORDER BY / LIMIT over the whole result. Keys bind against the
        // output schema; if that fails and the top is a projection, SQL also
        // allows ordering by pre-projection columns — sort below the project.
        if !stmt.order_by.is_empty() {
            let bind_keys = |schema: &BoundSchema| -> Result<Vec<(SExpr, bool)>> {
                stmt.order_by
                    .iter()
                    .map(|(e, desc)| Ok((bind(e, schema)?, *desc)))
                    .collect()
            };
            match bind_keys(&node.schema) {
                Ok(keys) => {
                    let (est, schema) = (node.cost.rows, node.schema.clone());
                    node = cpu_node(
                        PlanOp::Sort { keys },
                        vec![node],
                        est,
                        sort_cpu(est),
                        schema,
                    );
                }
                Err(outer_err) => {
                    if !matches!(node.op, PlanOp::Project { .. }) {
                        return Err(outer_err);
                    }
                    let mut project = node;
                    let child = project.children.remove(0);
                    let keys = bind_keys(&child.schema).map_err(|_| outer_err)?;
                    let (est, schema) = (child.cost.rows, child.schema.clone());
                    let sorted = cpu_node(
                        PlanOp::Sort { keys },
                        vec![child],
                        est,
                        sort_cpu(est),
                        schema,
                    );
                    project.children.push(sorted);
                    node = project;
                }
            }
        }
        if let Some(n) = stmt.limit {
            let est = node.cost.rows.min(n as f64);
            let schema = node.schema.clone();
            node = self.hinted(cpu_node(PlanOp::Limit { n }, vec![node], est, 0.0, schema));
        }
        Ok(node)
    }

    /// Plan one SELECT core (no set ops / order / limit).
    fn plan_core(&mut self, stmt: &SelectStmt, temp: &TempRels) -> Result<PlanNode> {
        // 1. Base relations.
        let mut rels: Vec<Rel> = Vec::new();
        let mut join_on_pool: Vec<Expr> = Vec::new();
        for tref in &stmt.from {
            self.collect_rels(tref, temp, &mut rels, &mut join_on_pool)?;
        }
        if rels.is_empty() {
            // SELECT without FROM: one synthetic row.
            rels.push(Rel {
                node: PlanNode {
                    op: PlanOp::Values {
                        label: "dual".into(),
                        rows: vec![Row::new(vec![])],
                    },
                    children: vec![],
                    cost: CostEstimate::rows_only(1.0),
                    schema: BoundSchema::default(),
                },
            });
        }

        // 2. Predicate pool.
        let mut pool: Vec<Expr> = join_on_pool;
        if let Some(w) = &stmt.where_clause {
            pool.extend(w.clone().conjuncts());
        }

        // 3. Classify conjuncts.
        let mut pushdowns: Vec<Vec<Expr>> = vec![Vec::new(); rels.len()];
        let mut edges: Vec<(usize, usize, Expr)> = Vec::new();
        let mut residual: Vec<Expr> = Vec::new();
        for conj in pool {
            match self.classify(&conj, &rels)? {
                Classified::Single(i) => pushdowns[i].push(conj),
                Classified::EquiJoin(i, j) => edges.push((i, j, conj)),
                Classified::Residual => residual.push(conj),
            }
        }

        // 4. Finalize scans with pushdowns.
        let mut nodes: Vec<PlanNode> = Vec::new();
        for (rel, push) in rels.into_iter().zip(pushdowns) {
            nodes.push(self.finalize_scan(rel.node, push)?);
        }

        // 5. Join ordering: exhaustive cost search for small joins, greedy
        // beyond the DP limit.
        let mut node = self.order_joins(nodes, edges)?;

        // 6. Residual filters.
        if !residual.is_empty() {
            let pred = residual
                .into_iter()
                .reduce(|a, b| Expr::bin(BinOp::And, a, b))
                .expect("nonempty");
            let bound = bind(&pred, &node.schema)?;
            let input_rows = node.cost.rows;
            let est = input_rows * DEFAULT_SEL;
            let schema = node.schema.clone();
            node = cpu_node(
                PlanOp::Filter { predicate: bound },
                vec![node],
                est,
                input_rows,
                schema,
            );
        }

        // 7. Aggregation or plain projection.
        let has_agg = !stmt.group_by.is_empty()
            || stmt.projections.iter().any(|p| match p {
                SelectItem::Expr { expr, .. } => expr.has_aggregate(),
                SelectItem::Star => false,
            });
        if has_agg {
            node = self.plan_aggregate(stmt, node)?;
        } else {
            node = self.plan_projection(stmt, node)?;
        }

        // 8. SELECT DISTINCT.
        if stmt.distinct {
            let input_rows = node.cost.rows;
            let est = (input_rows * 0.9).max(1.0);
            let schema = node.schema.clone();
            node = cpu_node(PlanOp::Distinct, vec![node], est, input_rows, schema);
        }
        Ok(node)
    }

    fn collect_rels(
        &mut self,
        tref: &TableRef,
        temp: &TempRels,
        rels: &mut Vec<Rel>,
        join_on: &mut Vec<Expr>,
    ) -> Result<()> {
        match tref {
            TableRef::Named { name, alias } => {
                let refq = alias.clone().unwrap_or_else(|| name.clone());
                let key = name.to_ascii_lowercase();
                if let Some((schema, rows)) = temp.get(&key) {
                    let mut schema = schema.clone();
                    for c in &mut schema.cols {
                        c.refq = refq.clone();
                        c.canonq = key.clone();
                    }
                    rels.push(Rel {
                        node: PlanNode {
                            op: PlanOp::Values {
                                label: key,
                                rows: rows.clone(),
                            },
                            children: vec![],
                            cost: CostEstimate::rows_only(rows.len() as f64),
                            schema,
                        },
                    });
                    return Ok(());
                }
                if let Some(snapshot) = self.sys {
                    if let Some(vschema) = crate::sys::view_schema(&key) {
                        // A system view scans its statement-start snapshot:
                        // est_rows is the frozen count (exact, the snapshot
                        // cannot change mid-statement).
                        let schema = BoundSchema::from_table(&key, &refq, &vschema);
                        let n = snapshot.rows(&key).len() as f64;
                        rels.push(Rel {
                            node: PlanNode {
                                op: PlanOp::SeqScan {
                                    table: key.clone(),
                                    predicate: None,
                                },
                                children: vec![],
                                // Frozen CN-local rows: CPU to walk them, no
                                // storage IO.
                                cost: CostEstimate::default().with(n, n, 0.0, 0.0),
                                schema,
                            },
                        });
                        return Ok(());
                    }
                }
                let table = self.catalog.get(name)?;
                let schema = BoundSchema::from_table(&key, &refq, table.schema());
                let est = table
                    .stats()
                    .map(|s| s.row_count as f64)
                    .unwrap_or(DEFAULT_ROWS);
                rels.push(Rel {
                    node: PlanNode {
                        op: PlanOp::SeqScan {
                            table: key,
                            predicate: None,
                        },
                        children: vec![],
                        // Full scan: every stored tuple is both fetched and
                        // inspected.
                        cost: CostEstimate::default().with(est, est, est, 0.0),
                        schema,
                    },
                });
                Ok(())
            }
            TableRef::Function { name, args, alias } => {
                let f = self.table_funcs.get(name.as_str()).ok_or_else(|| {
                    HdmError::Catalog(format!("unknown table function {name}"))
                })?;
                // Arguments must be constants.
                let empty = BoundSchema::default();
                let mut argv = Vec::new();
                for a in args {
                    let bound = bind(a, &empty)?;
                    argv.push(bound.eval(&[])?);
                }
                let (schema, rows) = f.eval(&argv)?;
                let refq = alias.clone().unwrap_or_else(|| name.clone());
                let bschema = BoundSchema::from_table(name, &refq, &schema);
                rels.push(Rel {
                    node: PlanNode {
                        op: PlanOp::Values {
                            label: name.clone(),
                            rows: rows.clone(),
                        },
                        children: vec![],
                        cost: CostEstimate::rows_only(rows.len() as f64),
                        schema: bschema,
                    },
                });
                Ok(())
            }
            TableRef::Subquery { query, alias } => {
                let mut sub = self.plan_select(query, temp)?;
                for c in &mut sub.schema.cols {
                    c.refq = alias.clone();
                    c.canonq = alias.clone();
                }
                rels.push(Rel { node: sub });
                Ok(())
            }
            TableRef::Join { left, right, on } => {
                self.collect_rels(left, temp, rels, join_on)?;
                self.collect_rels(right, temp, rels, join_on)?;
                join_on.extend(on.clone().conjuncts());
                Ok(())
            }
        }
    }

    fn classify(&self, conj: &Expr, rels: &[Rel]) -> Result<Classified> {
        // Which relations does each column belong to?
        let mut touched: Vec<usize> = Vec::new();
        for (q, n) in conj.columns() {
            let mut found = None;
            for (i, rel) in rels.iter().enumerate() {
                if rel.node.schema.resolve(q.as_deref(), n).is_ok() {
                    if found.is_some() && q.is_none() {
                        return Err(HdmError::Plan(format!("ambiguous column {n}")));
                    }
                    found = Some(i);
                    if q.is_some() {
                        break;
                    }
                }
            }
            let Some(i) = found else {
                return Err(HdmError::Plan(format!(
                    "unknown column {}{n}",
                    q.as_deref().map(|s| format!("{s}.")).unwrap_or_default()
                )));
            };
            if !touched.contains(&i) {
                touched.push(i);
            }
        }
        match touched.len() {
            0 | 1 => Ok(Classified::Single(*touched.first().unwrap_or(&0))),
            2 => {
                // Equi-join shape: Col = Col across the two relations.
                if let Expr::Binary {
                    op: BinOp::Eq,
                    left,
                    right,
                } = conj
                {
                    if matches!(**left, Expr::Column(..)) && matches!(**right, Expr::Column(..)) {
                        return Ok(Classified::EquiJoin(touched[0], touched[1]));
                    }
                }
                Ok(Classified::Residual)
            }
            _ => Ok(Classified::Residual),
        }
    }

    /// Attach pushed-down predicates to a scan. For base tables this builds
    /// the full access-path candidate set — sequential scan, equality index
    /// probes, index range walks — costs each one, and keeps the cheapest
    /// weighted total. The sequential candidate comes first, so cost ties
    /// fall back to SeqScan.
    fn finalize_scan(&mut self, node: PlanNode, push: Vec<Expr>) -> Result<PlanNode> {
        if push.is_empty() {
            return Ok(self.hinted(node));
        }
        let schema = node.schema.clone();
        let bound: Vec<SExpr> = push
            .iter()
            .map(|e| bind(e, &schema))
            .collect::<Result<_>>()?;

        let base = node.cost.rows.max(1.0);
        let mut est = base;
        for b in &bound {
            est *= self.selectivity(b, &schema);
        }
        let est = est.max(1.0);

        // Sequential candidate: always available, always first.
        let pred = and_all(bound.clone()).expect("nonempty pushdowns");
        let mut candidates: Vec<PlanNode> = Vec::new();
        let seq_table = match &node.op {
            PlanOp::SeqScan { table, .. } => Some(table.clone()),
            _ => None,
        };
        match &seq_table {
            Some(table) => candidates.push(PlanNode {
                op: PlanOp::SeqScan {
                    table: table.clone(),
                    predicate: Some(pred.clone()),
                },
                children: vec![],
                cost: node.cost.with(est, 0.0, 0.0, 0.0),
                schema: schema.clone(),
            }),
            // Filter over a Values/subplan node: no alternatives to weigh.
            None => {
                let input_rows = node.cost.rows;
                return Ok(self.hinted(cpu_node(
                    PlanOp::Filter { predicate: pred },
                    vec![node],
                    est,
                    input_rows,
                    schema,
                )));
            }
        }

        // Index candidates: base table + single-column index + equality or
        // range conjuncts on the indexed column.
        let table = seq_table.expect("base table checked above");
        if let Ok(t) = self.catalog.get(&table) {
            for (ix_id, ix) in t.indexes().iter().enumerate() {
                if ix.key_columns().len() != 1 {
                    continue;
                }
                let key_col = ix.key_columns()[0];

                // Equality probe on the first matching conjunct. An unbound
                // parameter still qualifies: the placeholder key value is
                // recomputed by `PlanNode::substitute_params` at bind time.
                let eq_hit = bound.iter().enumerate().find_map(|(ci, b)| {
                    let SExpr::Binary(BinOp::Eq, l, r) = b else {
                        return None;
                    };
                    let (col, lit) = match (&**l, &**r) {
                        (SExpr::Col(c), SExpr::Lit(d)) => (*c, d.clone()),
                        (SExpr::Lit(d), SExpr::Col(c)) => (*c, d.clone()),
                        (SExpr::Col(c), SExpr::Param(_)) => (*c, Datum::Null),
                        (SExpr::Param(_), SExpr::Col(c)) => (*c, Datum::Null),
                        _ => return None,
                    };
                    (col == key_col).then(|| (ci, b.clone(), lit))
                });
                if let Some((ci, key_expr, lit)) = eq_hit {
                    let residual_exprs: Vec<SExpr> = bound
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != ci)
                        .map(|(_, e)| e.clone())
                        .collect();
                    // Rows the probe fetches before residual filtering.
                    let fetched = (base / self.ndv(&schema.cols[key_col]).max(1.0)).max(1.0);
                    let mut ix_est = fetched;
                    for e in &residual_exprs {
                        ix_est *= self.selectivity(e, &schema);
                    }
                    candidates.push(PlanNode {
                        op: PlanOp::IndexScan {
                            table: table.clone(),
                            index_id: ix_id,
                            key_exprs: vec![key_expr],
                            key_values: vec![lit],
                            residual: and_all(residual_exprs),
                        },
                        children: vec![],
                        cost: index_cost(ix_est.max(1.0), base, fetched),
                        schema: schema.clone(),
                    });
                }

                // Range walk over every range conjunct on the indexed column.
                let range_idx: Vec<usize> = bound
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| {
                        matches!(range_bound_parts(b), Some((c, _, _)) if c == key_col)
                    })
                    .map(|(i, _)| i)
                    .collect();
                if !range_idx.is_empty() {
                    let bound_exprs: Vec<SExpr> = range_idx
                        .iter()
                        .map(|&i| bound[i].clone())
                        .collect();
                    let residual_exprs: Vec<SExpr> = bound
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !range_idx.contains(i))
                        .map(|(_, e)| e.clone())
                        .collect();
                    // Parameter bounds stay Unbounded at plan time; they are
                    // recomputed from the substituted bound expressions.
                    let (lo, hi) = range_bounds_from_exprs(&bound_exprs)
                        .unwrap_or((Bound::Unbounded, Bound::Unbounded));
                    let mut walk_sel = 1.0;
                    for e in &bound_exprs {
                        walk_sel *= self.selectivity(e, &schema);
                    }
                    let fetched = (base * walk_sel).max(1.0);
                    let mut ix_est = fetched;
                    for e in &residual_exprs {
                        ix_est *= self.selectivity(e, &schema);
                    }
                    candidates.push(PlanNode {
                        op: PlanOp::IndexRange {
                            table: table.clone(),
                            index_id: ix_id,
                            bound_exprs,
                            lo,
                            hi,
                            residual: and_all(residual_exprs),
                        },
                        children: vec![],
                        cost: index_cost(ix_est.max(1.0), base, fetched),
                        schema: schema.clone(),
                    });
                }
            }
        }

        Ok(self.hinted(pick_cheapest(candidates)))
    }

    /// Join-order search. Exhaustive bitmask DP over the weighted cost total
    /// up to [`EXHAUSTIVE_JOIN_LIMIT`] relations; greedy smallest-first
    /// beyond that.
    fn order_joins(
        &mut self,
        mut nodes: Vec<PlanNode>,
        edges: Vec<(usize, usize, Expr)>,
    ) -> Result<PlanNode> {
        if nodes.len() == 1 {
            return Ok(nodes.pop().expect("one node"));
        }
        if nodes.len() <= EXHAUSTIVE_JOIN_LIMIT {
            self.order_joins_exhaustive(nodes, edges)
        } else {
            self.order_joins_greedy(nodes, edges)
        }
    }

    /// Selinger-style bottom-up DP: for every subset of relations keep the
    /// cheapest plan (by [`CostEstimate::total`]), built by merging the best
    /// plans of two disjoint covering subsets. Cross products are permitted —
    /// their quadratic NestedLoopJoin CPU term prices them out unless the
    /// join graph is disconnected. Deterministic: subsets are enumerated in
    /// ascending mask order and only a strictly cheaper candidate replaces
    /// the incumbent.
    fn order_joins_exhaustive(
        &mut self,
        nodes: Vec<PlanNode>,
        edges: Vec<(usize, usize, Expr)>,
    ) -> Result<PlanNode> {
        let n = nodes.len();
        let full: usize = (1 << n) - 1;
        let mut best: Vec<Option<PlanNode>> = vec![None; 1 << n];
        for (i, nd) in nodes.into_iter().enumerate() {
            best[1 << i] = Some(nd);
        }
        for mask in 1..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            // Enumerate splits; anchoring the lowest relation on the left
            // side visits each unordered split exactly once.
            let lsb = mask & mask.wrapping_neg();
            let mut s = (mask - 1) & mask;
            while s > 0 {
                if s & lsb != 0 {
                    let t = mask ^ s;
                    if let (Some(l), Some(r)) = (&best[s], &best[t]) {
                        // Every edge crossing the split joins here.
                        let on: Vec<Expr> = edges
                            .iter()
                            .filter(|(a, b, _)| {
                                (s >> a & 1 == 1 && t >> b & 1 == 1)
                                    || (s >> b & 1 == 1 && t >> a & 1 == 1)
                            })
                            .map(|(_, _, e)| e.clone())
                            .collect();
                        let cand = self.build_join(l.clone(), r.clone(), on)?;
                        let better = match &best[mask] {
                            None => true,
                            Some(cur) => cand.cost.total() < cur.cost.total(),
                        };
                        if better {
                            best[mask] = Some(cand);
                        }
                    }
                }
                s = (s - 1) & mask;
            }
        }
        Ok(best[full].take().expect("full join set planned"))
    }

    /// Greedy join ordering: start from the smallest relation, repeatedly
    /// join the connected relation minimizing the estimated output.
    fn order_joins_greedy(
        &mut self,
        mut nodes: Vec<PlanNode>,
        mut edges: Vec<(usize, usize, Expr)>,
    ) -> Result<PlanNode> {
        // Track original indices through the fold.
        let mut remaining: Vec<(usize, PlanNode)> = nodes.drain(..).enumerate().collect();
        // Start with the smallest estimate.
        remaining.sort_by(|a, b| a.1.cost.rows.total_cmp(&b.1.cost.rows));
        let (first_idx, first) = remaining.remove(0);
        let mut joined_ids = vec![first_idx];
        let mut acc = first;

        while !remaining.is_empty() {
            // Prefer a relation connected by an edge.
            let mut best: Option<(usize, f64)> = None; // (remaining position, est)
            for (pos, (rid, rnode)) in remaining.iter().enumerate() {
                let connected = edges.iter().any(|(a, b, _)| {
                    (joined_ids.contains(a) && b == rid) || (joined_ids.contains(b) && a == rid)
                });
                let est = if connected {
                    self.join_estimate(&acc, rnode, true)
                } else {
                    acc.cost.rows * rnode.cost.rows
                };
                // Heavily prefer connected joins.
                let score = if connected { est } else { est * 1e6 };
                if best.map(|(_, s)| score < s).unwrap_or(true) {
                    best = Some((pos, score));
                }
            }
            let (pos, _) = best.expect("nonempty remaining");
            let (rid, rnode) = remaining.remove(pos);

            // Pull out the edges between the joined set and this relation.
            let mut these: Vec<Expr> = Vec::new();
            edges.retain(|(a, b, e)| {
                let hit = (joined_ids.contains(a) && *b == rid)
                    || (joined_ids.contains(b) && *a == rid);
                if hit {
                    these.push(e.clone());
                }
                !hit
            });
            joined_ids.push(rid);
            acc = self.build_join(acc, rnode, these)?;
        }

        // Any leftover edges reference relations now inside the fold; apply
        // them as filters (can happen with cyclic join graphs).
        if !edges.is_empty() {
            let pred = edges
                .into_iter()
                .map(|(_, _, e)| e)
                .reduce(|a, b| Expr::bin(BinOp::And, a, b))
                .expect("nonempty");
            let bound = bind(&pred, &acc.schema)?;
            let input_rows = acc.cost.rows;
            let est = (input_rows * DEFAULT_SEL).max(1.0);
            let schema = acc.schema.clone();
            acc = cpu_node(
                PlanOp::Filter { predicate: bound },
                vec![acc],
                est,
                input_rows,
                schema,
            );
        }
        Ok(acc)
    }

    fn join_estimate(&self, l: &PlanNode, r: &PlanNode, connected: bool) -> f64 {
        if !connected {
            return l.cost.rows * r.cost.rows;
        }
        // Classic equi-join estimate with a generic key NDV.
        (l.cost.rows * r.cost.rows / DEFAULT_NDV).max(1.0)
    }

    fn build_join(&mut self, left: PlanNode, right: PlanNode, on: Vec<Expr>) -> Result<PlanNode> {
        // Canonical operand order: the larger input probes (left), the
        // smaller builds (right). All joins here are inner, so the swap is
        // always legal; it collapses equal-cost mirror plans to one shape,
        // making the chosen join tree a function of the query rather than
        // of how the FROM list was written. Exact-tie inputs fall back to
        // the canonical text so the order is still deterministic.
        let swap = right.cost.rows > left.cost.rows
            || (right.cost.rows == left.cost.rows && right.canonical() < left.canonical());
        let (left, right) = if swap { (right, left) } else { (left, right) };
        let schema = left.schema.join(&right.schema);
        if on.is_empty() {
            let est = (left.cost.rows * right.cost.rows).max(1.0);
            // Cross product: the inner side is rescanned for every outer row.
            let cpu = left.cost.rows * right.cost.rows;
            let node = cpu_node(
                PlanOp::NestedLoopJoin { on: None },
                vec![left, right],
                est,
                cpu,
                schema,
            );
            return Ok(self.hinted(node));
        }

        // Split equi keys from residual conditions.
        let nl = left.schema.len();
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual = Vec::new();
        let mut ndv_div: f64 = 1.0;
        for e in &on {
            let bound = bind(e, &schema)?;
            if let SExpr::Binary(BinOp::Eq, a, b) = &bound {
                if let (SExpr::Col(x), SExpr::Col(y)) = (&**a, &**b) {
                    let (lk, rk) = if *x < nl && *y >= nl {
                        (*x, *y - nl)
                    } else if *y < nl && *x >= nl {
                        (*y, *x - nl)
                    } else {
                        residual.push(bound);
                        continue;
                    };
                    let ndv_l = self.ndv(&left.schema.cols[lk]);
                    let ndv_r = self.ndv(&right.schema.cols[rk]);
                    ndv_div = ndv_div.max(ndv_l.max(ndv_r));
                    left_keys.push(lk);
                    right_keys.push(rk);
                    continue;
                }
            }
            residual.push(bound);
        }

        let (lrows, rrows) = (left.cost.rows, right.cost.rows);
        let mut est = lrows * rrows;
        if !left_keys.is_empty() {
            est /= ndv_div.max(1.0);
        }
        for _ in &residual {
            est *= DEFAULT_SEL;
        }
        let est = est.max(1.0);

        let node = if left_keys.is_empty() {
            // Non-equi join: nested loop compares every pair.
            cpu_node(
                PlanOp::NestedLoopJoin {
                    on: and_all(residual),
                },
                vec![left, right],
                est,
                lrows * rrows,
                schema,
            )
        } else {
            // Hash join: build + probe each input once, emit the output.
            cpu_node(
                PlanOp::HashJoin {
                    left_keys,
                    right_keys,
                    residual: and_all(residual),
                },
                vec![left, right],
                est,
                lrows + rrows + est,
                schema,
            )
        };
        Ok(self.hinted(node))
    }

    fn plan_aggregate(&mut self, stmt: &SelectStmt, input: PlanNode) -> Result<PlanNode> {
        let ischema = input.schema.clone();
        // Bind group expressions.
        let mut group_bound = Vec::new();
        for g in &stmt.group_by {
            group_bound.push(bind(g, &ischema)?);
        }

        // Walk projections: rewrite over the agg output schema.
        let mut aggs: Vec<AggCall> = Vec::new();
        let mut out_exprs: Vec<SExpr> = Vec::new();
        let mut out_cols: Vec<BoundColumn> = Vec::new();
        for item in &stmt.projections {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(HdmError::Plan(
                    "SELECT * is not valid with GROUP BY/aggregates".into(),
                ));
            };
            let rewritten =
                rewrite_agg_expr(expr, &stmt.group_by, &group_bound, &ischema, &mut aggs)?;
            let name = alias.clone().unwrap_or_else(|| default_name(expr));
            let ngroups = group_bound.len();
            // Agg output row layout: [groups..., agg results...].
            let agg_out_schema = agg_output_schema(&group_bound, &aggs, &ischema);
            let ty = crate::expr::infer_type(&rewritten, &agg_out_schema);
            let _ = ngroups;
            out_exprs.push(rewritten);
            out_cols.push(BoundColumn {
                refq: String::new(),
                canonq: String::new(),
                name,
                ty,
            });
        }

        let group_ndv: f64 = group_bound
            .iter()
            .map(|g| match g {
                SExpr::Col(i) => self.ndv(&ischema.cols[*i]),
                _ => DEFAULT_NDV,
            })
            .product();
        let est = if group_bound.is_empty() {
            1.0
        } else {
            group_ndv.min(input.cost.rows).max(1.0)
        };
        // HAVING binds over the aggregate output row, and may introduce
        // additional aggregate calls of its own (HAVING count(*) > 3).
        let having_bound = match &stmt.having {
            None => None,
            Some(h) => Some(rewrite_agg_expr(
                h,
                &stmt.group_by,
                &group_bound,
                &ischema,
                &mut aggs,
            )?),
        };
        let agg_schema = agg_output_schema(&group_bound, &aggs, &ischema);

        let input_rows = input.cost.rows;
        let mut node = self.hinted(cpu_node(
            PlanOp::HashAgg {
                group: group_bound,
                aggs,
            },
            vec![input],
            est,
            input_rows,
            agg_schema,
        ));

        if let Some(pred) = having_bound {
            let input_rows = node.cost.rows;
            let est = (input_rows * DEFAULT_SEL).max(1.0);
            let schema = node.schema.clone();
            node = cpu_node(
                PlanOp::Filter { predicate: pred },
                vec![node],
                est,
                input_rows,
                schema,
            );
        }

        let est = node.cost.rows;
        Ok(cpu_node(
            PlanOp::Project { exprs: out_exprs },
            vec![node],
            est,
            0.0,
            BoundSchema { cols: out_cols },
        ))
    }

    fn plan_projection(&mut self, stmt: &SelectStmt, input: PlanNode) -> Result<PlanNode> {
        // Pure star: no projection node needed.
        if stmt.projections.len() == 1 && matches!(stmt.projections[0], SelectItem::Star) {
            return Ok(input);
        }
        let mut exprs = Vec::new();
        let mut cols = Vec::new();
        for item in &stmt.projections {
            match item {
                SelectItem::Star => {
                    for (i, c) in input.schema.cols.iter().enumerate() {
                        exprs.push(SExpr::Col(i));
                        cols.push(c.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = bind(expr, &input.schema)?;
                    let ty = crate::expr::infer_type(&bound, &input.schema);
                    let name = alias.clone().unwrap_or_else(|| default_name(expr));
                    // Preserve provenance for bare columns so canonical text
                    // and later resolution still work.
                    let col = match &bound {
                        SExpr::Col(i) => {
                            let mut c = input.schema.cols[*i].clone();
                            if alias.is_some() {
                                c.name = name.clone();
                            }
                            c
                        }
                        _ => BoundColumn {
                            refq: String::new(),
                            canonq: String::new(),
                            name,
                            ty,
                        },
                    };
                    exprs.push(bound);
                    cols.push(col);
                }
            }
        }
        let est = input.cost.rows;
        Ok(cpu_node(
            PlanOp::Project { exprs },
            vec![input],
            est,
            0.0,
            BoundSchema { cols },
        ))
    }

    /// Consult the plan store for this node's canonical step; use the actual
    /// cardinality when present. Only the cardinality is corrected — the
    /// work terms keep their planning-time values, so the drift check can
    /// compare a cached plan's estimates against fresh actuals.
    fn hinted(&mut self, mut node: PlanNode) -> PlanNode {
        let Some(hints) = self.hints else {
            return node;
        };
        let Some(text) = node.canonical() else {
            return node;
        };
        match hints.lookup(&text) {
            Some(actual) => {
                self.info.hint_hits += 1;
                node.cost.rows = actual as f64;
            }
            None => self.info.hint_misses += 1,
        }
        node
    }

    fn ndv(&self, col: &BoundColumn) -> f64 {
        if let Ok(t) = self.catalog.get(&col.canonq) {
            if let (Some(stats), Some(idx)) = (t.stats(), t.schema().index_of(&col.name)) {
                let d = stats.columns[idx].distinct;
                if d > 0 {
                    return d as f64;
                }
            }
        }
        DEFAULT_NDV
    }

    fn selectivity(&self, pred: &SExpr, schema: &BoundSchema) -> f64 {
        match pred {
            SExpr::Binary(op, l, r) => {
                let (col, lit) = match (&**l, &**r) {
                    (SExpr::Col(c), SExpr::Lit(d)) => (Some(*c), Some(d.clone())),
                    (SExpr::Lit(d), SExpr::Col(c)) => (Some(*c), Some(d.clone())),
                    // Unbound parameter: the column is known but the value is
                    // not, so equality still uses 1/NDV while ranges fall
                    // back to the default selectivity (lit stays None).
                    (SExpr::Col(c), SExpr::Param(_)) => (Some(*c), None),
                    (SExpr::Param(_), SExpr::Col(c)) => (Some(*c), None),
                    _ => (None, None),
                };
                match op {
                    BinOp::Eq => col
                        .map(|c| 1.0 / self.ndv(&schema.cols[c]).max(1.0))
                        .unwrap_or(DEFAULT_SEL),
                    BinOp::Ne => col
                        .map(|c| 1.0 - 1.0 / self.ndv(&schema.cols[c]).max(1.0))
                        .unwrap_or(DEFAULT_SEL),
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if let (Some(c), Some(d)) = (col, lit) {
                            self.range_selectivity(&schema.cols[c], op, &d)
                        } else {
                            DEFAULT_SEL
                        }
                    }
                    BinOp::And => {
                        self.selectivity(l, schema) * self.selectivity(r, schema)
                    }
                    BinOp::Or => (self.selectivity(l, schema) + self.selectivity(r, schema))
                        .min(1.0),
                    _ => DEFAULT_SEL,
                }
            }
            _ => DEFAULT_SEL,
        }
    }

    /// Uniform-distribution range selectivity from column min/max.
    fn range_selectivity(&self, col: &BoundColumn, op: &BinOp, lit: &Datum) -> f64 {
        let Some(stats) = self
            .catalog
            .get(&col.canonq)
            .ok()
            .and_then(|t| {
                t.schema()
                    .index_of(&col.name)
                    .and_then(|i| t.stats().map(|s| s.columns[i].clone()))
            })
        else {
            return DEFAULT_SEL;
        };
        let (Some(min), Some(max), Some(v)) = (
            stats.min.as_ref().and_then(Datum::as_float),
            stats.max.as_ref().and_then(Datum::as_float),
            lit.as_float(),
        ) else {
            return DEFAULT_SEL;
        };
        if max <= min {
            return DEFAULT_SEL;
        }
        let frac = ((v - min) / (max - min)).clamp(0.0, 1.0);
        match op {
            BinOp::Lt | BinOp::Le => frac.max(0.001),
            BinOp::Gt | BinOp::Ge => (1.0 - frac).max(0.001),
            _ => DEFAULT_SEL,
        }
    }
}

enum Classified {
    Single(usize),
    EquiJoin(usize, usize),
    Residual,
}

/// Conjoin `exprs` with AND, `None` when empty. Public so the distributed
/// annotator can rebuild a scan predicate from an index path's consumed
/// conjuncts.
pub fn and_all(exprs: Vec<SExpr>) -> Option<SExpr> {
    exprs
        .into_iter()
        .reduce(|a, b| SExpr::Binary(BinOp::And, Box::new(a), Box::new(b)))
}

/// Build a node whose operator adds `cpu` work on top of its children's
/// accumulated cost (the common case for CN-side operators, which touch no
/// storage or network).
fn cpu_node(op: PlanOp, children: Vec<PlanNode>, rows: f64, cpu: f64, schema: BoundSchema) -> PlanNode {
    let cost = CostEstimate::of_children(&children).with(rows, cpu, 0.0, 0.0);
    PlanNode {
        op,
        children,
        cost,
        schema,
    }
}

/// Comparison work for sorting `n` rows.
fn sort_cpu(n: f64) -> f64 {
    let n = n.max(1.0);
    n * n.max(2.0).log2()
}

/// Cost of an index access path that descends a B-tree over a table of
/// `base` rows and then randomly fetches `fetched` matching tuples (`rows`
/// survive the residual filter). The [`CostEstimate::RANDOM_IO`] multiplier
/// is what lets a full scan win once the probe stops being selective.
fn index_cost(rows: f64, base: f64, fetched: f64) -> CostEstimate {
    CostEstimate::default().with(
        rows,
        fetched,
        base.max(2.0).log2() + fetched * CostEstimate::RANDOM_IO,
        0.0,
    )
}

/// Output schema of a HashAgg: group columns then aggregate results.
fn agg_output_schema(
    group: &[SExpr],
    aggs: &[AggCall],
    ischema: &BoundSchema,
) -> BoundSchema {
    let mut cols = Vec::new();
    for (i, g) in group.iter().enumerate() {
        let col = match g {
            SExpr::Col(c) => ischema.cols[*c].clone(),
            _ => BoundColumn {
                refq: String::new(),
                canonq: String::new(),
                name: format!("group{i}"),
                ty: crate::expr::infer_type(g, ischema),
            },
        };
        cols.push(col);
    }
    for (i, a) in aggs.iter().enumerate() {
        let ty = match a.func {
            AggFunc::Count | AggFunc::CountStar => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => a
                .arg
                .as_ref()
                .map(|e| crate::expr::infer_type(e, ischema))
                .unwrap_or(DataType::Int),
        };
        cols.push(BoundColumn {
            refq: String::new(),
            canonq: String::new(),
            name: format!("agg{i}"),
            ty,
        });
    }
    BoundSchema { cols }
}

/// Rewrite a projection expression over the aggregate output row
/// `[groups..., agg results...]`, registering aggregate calls as needed.
fn rewrite_agg_expr(
    e: &Expr,
    group_ast: &[Expr],
    group_bound: &[SExpr],
    ischema: &BoundSchema,
    aggs: &mut Vec<AggCall>,
) -> Result<SExpr> {
    // Exact group-by expression match → group column reference.
    if let Some(i) = group_ast.iter().position(|g| g == e) {
        return Ok(SExpr::Col(i));
    }
    match e {
        Expr::Func { name, args, star } => {
            let func = match name.as_str() {
                "count" if *star => AggFunc::CountStar,
                "count" => AggFunc::Count,
                "sum" => AggFunc::Sum,
                "avg" => AggFunc::Avg,
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                _ => {
                    return Err(HdmError::Plan(format!(
                        "non-aggregate function {name} over aggregated input"
                    )))
                }
            };
            let arg = if *star {
                None
            } else {
                let a = args
                    .first()
                    .ok_or_else(|| HdmError::Plan(format!("{name} needs an argument")))?;
                Some(bind(a, ischema)?)
            };
            let slot = group_bound.len() + aggs.len();
            aggs.push(AggCall { func, arg });
            Ok(SExpr::Col(slot))
        }
        Expr::Binary { op, left, right } => Ok(SExpr::Binary(
            *op,
            Box::new(rewrite_agg_expr(left, group_ast, group_bound, ischema, aggs)?),
            Box::new(rewrite_agg_expr(
                right,
                group_ast,
                group_bound,
                ischema,
                aggs,
            )?),
        )),
        Expr::Unary { op, expr } => Ok(SExpr::Unary(
            *op,
            Box::new(rewrite_agg_expr(expr, group_ast, group_bound, ischema, aggs)?),
        )),
        Expr::Literal(l) => Ok(SExpr::Lit(crate::expr::lit_to_datum(l))),
        Expr::Param(i) => Ok(SExpr::Param(*i)),
        Expr::Column(q, n) => Err(HdmError::Plan(format!(
            "column {}{n} must appear in GROUP BY or an aggregate",
            q.as_deref().map(|s| format!("{s}.")).unwrap_or_default()
        ))),
    }
}

fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column(_, n) => n.clone(),
        Expr::Func { name, .. } => name.clone(),
        _ => "?column?".to_string(),
    }
}

/// Plan a full statement that is a SELECT (helper used by `Database`).
pub fn plan_statement(
    stmt: &Statement,
    catalog: &Catalog,
    hints: Option<&dyn CardinalityHints>,
    table_funcs: &HashMap<String, Box<dyn TableFunction>>,
    temp: &TempRels,
) -> Result<(PlanNode, PlanningInfo)> {
    let Statement::Select(s) = stmt else {
        return Err(HdmError::Plan("plan_statement expects SELECT".into()));
    };
    let mut p = Planner::new(catalog, hints, table_funcs);
    let node = p.plan_select(s, temp)?;
    Ok((node, p.info))
}

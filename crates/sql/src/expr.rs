//! Name resolution and bound (executable) expressions.

use crate::ast::{BinOp, Expr, Literal, UnOp};
use hdm_common::{DataType, Datum, HdmError, Result};

/// One output column of a bound relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundColumn {
    /// Qualifier used for *resolution* (table alias if given).
    pub refq: String,
    /// Qualifier used for *canonical step text* (the real table name, so the
    /// same query matches the plan store regardless of aliasing).
    pub canonq: String,
    pub name: String,
    pub ty: DataType,
}

impl BoundColumn {
    /// `CANONQ.NAME` in upper case — the paper's step-text column notation.
    pub fn canonical(&self) -> String {
        if self.canonq.is_empty() {
            self.name.to_ascii_uppercase()
        } else {
            format!(
                "{}.{}",
                self.canonq.to_ascii_uppercase(),
                self.name.to_ascii_uppercase()
            )
        }
    }
}

/// The bound output schema of a relation or plan node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BoundSchema {
    pub cols: Vec<BoundColumn>,
}

impl BoundSchema {
    /// Bind a base table's schema under `canon_name` (real name) and
    /// `refq` (alias, or the real name when unaliased).
    pub fn from_table(canon_name: &str, refq: &str, schema: &hdm_common::Schema) -> Self {
        Self {
            cols: schema
                .columns()
                .iter()
                .map(|c| BoundColumn {
                    refq: refq.to_string(),
                    canonq: canon_name.to_string(),
                    name: c.name.clone(),
                    ty: c.data_type,
                })
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.cols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Concatenate (join output).
    pub fn join(&self, other: &BoundSchema) -> BoundSchema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        BoundSchema { cols }
    }

    /// Resolve `qualifier.name`; errors on unknown or ambiguous references.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name.eq_ignore_ascii_case(name)
                    && match qualifier {
                        None => true,
                        Some(q) => {
                            c.refq.eq_ignore_ascii_case(q) || c.canonq.eq_ignore_ascii_case(q)
                        }
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(HdmError::Plan(format!(
                "unknown column {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            1 => Ok(matches[0]),
            _ => Err(HdmError::Plan(format!("ambiguous column {name}"))),
        }
    }

    /// Convert to a storage-layer schema.
    pub fn to_schema(&self) -> hdm_common::Schema {
        hdm_common::Schema::new(
            self.cols
                .iter()
                .map(|c| hdm_common::Column::new(c.name.clone(), c.ty))
                .collect(),
        )
    }
}

/// A bound scalar expression over row offsets.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    Col(usize),
    Lit(Datum),
    Binary(BinOp, Box<SExpr>, Box<SExpr>),
    Unary(UnOp, Box<SExpr>),
    /// Scalar built-ins: abs, length, upper, lower.
    Func(String, Vec<SExpr>),
    /// Unbound positional statement parameter (0-based). Produced when a
    /// prepared statement is planned before its values are known; replaced
    /// with `Lit` by [`SExpr::substitute_params`] at bind time.
    Param(u16),
}

impl SExpr {
    /// Evaluate against a row (SQL three-valued logic: NULL propagates).
    pub fn eval(&self, row: &[Datum]) -> Result<Datum> {
        match self {
            SExpr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| HdmError::Execution(format!("row too short for column {i}"))),
            SExpr::Lit(d) => Ok(d.clone()),
            SExpr::Unary(op, e) => {
                let v = e.eval(row)?;
                match op {
                    UnOp::Not => Ok(match v.as_bool() {
                        Some(b) => Datum::Bool(!b),
                        None => Datum::Null,
                    }),
                    UnOp::Neg => Ok(match v {
                        Datum::Int(x) => Datum::Int(-x),
                        Datum::Float(x) => Datum::Float(-x),
                        _ => Datum::Null,
                    }),
                }
            }
            SExpr::Binary(op, l, r) => {
                let lv = l.eval(row)?;
                // Short-circuit AND/OR with three-valued logic.
                match op {
                    BinOp::And => {
                        if lv.as_bool() == Some(false) {
                            return Ok(Datum::Bool(false));
                        }
                        let rv = r.eval(row)?;
                        return Ok(match (lv.as_bool(), rv.as_bool()) {
                            (Some(true), Some(true)) => Datum::Bool(true),
                            (_, Some(false)) => Datum::Bool(false),
                            _ => Datum::Null,
                        });
                    }
                    BinOp::Or => {
                        if lv.as_bool() == Some(true) {
                            return Ok(Datum::Bool(true));
                        }
                        let rv = r.eval(row)?;
                        return Ok(match (lv.as_bool(), rv.as_bool()) {
                            (Some(false), Some(false)) => Datum::Bool(false),
                            (_, Some(true)) => Datum::Bool(true),
                            _ => Datum::Null,
                        });
                    }
                    _ => {}
                }
                let rv = r.eval(row)?;
                if lv.is_null() || rv.is_null() {
                    return Ok(Datum::Null);
                }
                match op {
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        match lv.sql_cmp(&rv) {
                            None => Ok(Datum::Null),
                            Some(ord) => {
                                let b = match op {
                                    BinOp::Eq => ord.is_eq(),
                                    BinOp::Ne => !ord.is_eq(),
                                    BinOp::Lt => ord.is_lt(),
                                    BinOp::Le => ord.is_le(),
                                    BinOp::Gt => ord.is_gt(),
                                    BinOp::Ge => ord.is_ge(),
                                    _ => unreachable!(),
                                };
                                Ok(Datum::Bool(b))
                            }
                        }
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        arith(*op, &lv, &rv)
                    }
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            SExpr::Func(name, args) => {
                let vals: Vec<Datum> =
                    args.iter().map(|a| a.eval(row)).collect::<Result<_>>()?;
                scalar_func(name, &vals)
            }
            SExpr::Param(i) => Err(HdmError::Execution(format!(
                "unbound parameter ?{}",
                i + 1
            ))),
        }
    }

    /// Evaluate as a filter predicate: only TRUE keeps the row.
    pub fn eval_filter(&self, row: &[Datum]) -> Result<bool> {
        Ok(self.eval(row)?.as_bool() == Some(true))
    }

    /// Canonical rendering for step text: commutative operands are ordered
    /// lexicographically so `a=b` and `b=a` hash identically, and literal
    /// and parameter values are both masked to `?` so every binding of the
    /// same statement shape shares one plan-store cardinality entry.
    pub fn canonical(&self, schema: &BoundSchema) -> String {
        match self {
            SExpr::Col(i) => schema.cols[*i].canonical(),
            SExpr::Lit(_) | SExpr::Param(_) => "?".to_string(),
            SExpr::Unary(op, e) => match op {
                UnOp::Not => format!("NOT({})", e.canonical(schema)),
                UnOp::Neg => format!("-({})", e.canonical(schema)),
            },
            SExpr::Binary(op, l, r) => {
                let mut a = l.canonical(schema);
                let mut b = r.canonical(schema);
                if op.is_commutative() && a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                match op {
                    BinOp::And | BinOp::Or => format!("({a} {} {b})", op.symbol()),
                    _ => format!("{a}{}{b}", op.symbol()),
                }
            }
            SExpr::Func(name, args) => {
                let inner: Vec<String> = args.iter().map(|a| a.canonical(schema)).collect();
                format!("{}({})", name.to_ascii_uppercase(), inner.join(","))
            }
        }
    }

    /// Human-facing rendering for EXPLAIN: like [`SExpr::canonical`] but
    /// literal values are shown, not masked (parameters still print `?`).
    pub fn display(&self, schema: &BoundSchema) -> String {
        match self {
            SExpr::Col(i) => schema.cols[*i].canonical(),
            SExpr::Lit(d) => format!("{d}"),
            SExpr::Param(_) => "?".to_string(),
            SExpr::Unary(op, e) => match op {
                UnOp::Not => format!("NOT({})", e.display(schema)),
                UnOp::Neg => format!("-({})", e.display(schema)),
            },
            SExpr::Binary(op, l, r) => {
                let mut a = l.display(schema);
                let mut b = r.display(schema);
                if op.is_commutative() && a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                match op {
                    BinOp::And | BinOp::Or => format!("({a} {} {b})", op.symbol()),
                    _ => format!("{a}{}{b}", op.symbol()),
                }
            }
            SExpr::Func(name, args) => {
                let inner: Vec<String> = args.iter().map(|a| a.display(schema)).collect();
                format!("{}({})", name.to_ascii_uppercase(), inner.join(","))
            }
        }
    }

    /// Does this expression reference an unbound parameter?
    pub fn has_params(&self) -> bool {
        match self {
            SExpr::Param(_) => true,
            SExpr::Col(_) | SExpr::Lit(_) => false,
            SExpr::Unary(_, e) => e.has_params(),
            SExpr::Binary(_, l, r) => l.has_params() || r.has_params(),
            SExpr::Func(_, args) => args.iter().any(|a| a.has_params()),
        }
    }

    /// Replace every `Param(i)` with `Lit(params[i])`. Errors if a parameter
    /// index is out of range (arity is checked up front by the prepared
    /// layer, so this is a defensive backstop).
    pub fn substitute_params(&self, params: &[Datum]) -> Result<SExpr> {
        Ok(match self {
            SExpr::Param(i) => {
                let d = params.get(*i as usize).ok_or_else(|| {
                    HdmError::Execution(format!("unbound parameter ?{}", *i as usize + 1))
                })?;
                SExpr::Lit(d.clone())
            }
            SExpr::Col(_) | SExpr::Lit(_) => self.clone(),
            SExpr::Unary(op, e) => SExpr::Unary(*op, Box::new(e.substitute_params(params)?)),
            SExpr::Binary(op, l, r) => SExpr::Binary(
                *op,
                Box::new(l.substitute_params(params)?),
                Box::new(r.substitute_params(params)?),
            ),
            SExpr::Func(name, args) => SExpr::Func(
                name.clone(),
                args.iter()
                    .map(|a| a.substitute_params(params))
                    .collect::<Result<_>>()?,
            ),
        })
    }
}

fn arith(op: BinOp, l: &Datum, r: &Datum) -> Result<Datum> {
    // Integer arithmetic when both sides are integral, else float.
    if let (Some(a), Some(b)) = (l.as_int(), r.as_int()) {
        let v = match op {
            BinOp::Add => a.checked_add(b),
            BinOp::Sub => a.checked_sub(b),
            BinOp::Mul => a.checked_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(HdmError::Execution("division by zero".into()));
                }
                a.checked_div(b)
            }
            BinOp::Mod => {
                if b == 0 {
                    return Err(HdmError::Execution("division by zero".into()));
                }
                a.checked_rem(b)
            }
            _ => unreachable!(),
        };
        return v
            .map(Datum::Int)
            .ok_or_else(|| HdmError::Execution("integer overflow".into()));
    }
    let (a, b) = match (l.as_float(), r.as_float()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(HdmError::Execution(format!(
                "cannot apply {} to {l} and {r}",
                op.symbol()
            )))
        }
    };
    let v = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Err(HdmError::Execution("division by zero".into()));
            }
            a / b
        }
        BinOp::Mod => a % b,
        _ => unreachable!(),
    };
    Ok(Datum::Float(v))
}

fn scalar_func(name: &str, args: &[Datum]) -> Result<Datum> {
    match (name, args) {
        ("abs", [Datum::Int(v)]) => Ok(Datum::Int(v.abs())),
        ("abs", [Datum::Float(v)]) => Ok(Datum::Float(v.abs())),
        ("abs", [Datum::Null]) => Ok(Datum::Null),
        ("length", [Datum::Text(s)]) => Ok(Datum::Int(s.len() as i64)),
        ("length", [Datum::Null]) => Ok(Datum::Null),
        ("upper", [Datum::Text(s)]) => Ok(Datum::Text(s.to_ascii_uppercase())),
        ("lower", [Datum::Text(s)]) => Ok(Datum::Text(s.to_ascii_lowercase())),
        _ => Err(HdmError::Unsupported(format!(
            "scalar function {name}/{}",
            args.len()
        ))),
    }
}

/// Bind an AST expression against a schema (aggregates are NOT allowed here;
/// the planner splits them out first).
pub fn bind(e: &Expr, schema: &BoundSchema) -> Result<SExpr> {
    match e {
        Expr::Column(q, n) => Ok(SExpr::Col(schema.resolve(q.as_deref(), n)?)),
        Expr::Literal(l) => Ok(SExpr::Lit(lit_to_datum(l))),
        Expr::Binary { op, left, right } => Ok(SExpr::Binary(
            *op,
            Box::new(bind(left, schema)?),
            Box::new(bind(right, schema)?),
        )),
        Expr::Unary { op, expr } => Ok(SExpr::Unary(*op, Box::new(bind(expr, schema)?))),
        Expr::Func { name, args, star } => {
            if *star || e.has_aggregate() {
                return Err(HdmError::Plan(format!(
                    "aggregate {name} not allowed in this context"
                )));
            }
            Ok(SExpr::Func(
                name.clone(),
                args.iter().map(|a| bind(a, schema)).collect::<Result<_>>()?,
            ))
        }
        Expr::Param(i) => Ok(SExpr::Param(*i)),
    }
}

/// Convert an AST literal to a datum.
pub fn lit_to_datum(l: &Literal) -> Datum {
    match l {
        Literal::Int(v) => Datum::Int(*v),
        Literal::Float(v) => Datum::Float(*v),
        Literal::Str(s) => Datum::Text(s.clone()),
        Literal::Bool(b) => Datum::Bool(*b),
        Literal::Null => Datum::Null,
    }
}

/// Infer the output type of a bound expression (best effort; NULL-typed
/// expressions report Int).
pub fn infer_type(e: &SExpr, schema: &BoundSchema) -> DataType {
    match e {
        SExpr::Col(i) => schema.cols[*i].ty,
        SExpr::Lit(d) => d.data_type().unwrap_or(DataType::Int),
        SExpr::Unary(UnOp::Not, _) => DataType::Bool,
        SExpr::Unary(UnOp::Neg, x) => infer_type(x, schema),
        SExpr::Binary(op, l, r) => match op {
            BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::And
            | BinOp::Or => DataType::Bool,
            _ => {
                if infer_type(l, schema) == DataType::Float
                    || infer_type(r, schema) == DataType::Float
                {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
        },
        SExpr::Func(name, _) => match name.as_str() {
            "length" => DataType::Int,
            "upper" | "lower" => DataType::Text,
            _ => DataType::Int,
        },
        SExpr::Param(_) => DataType::Int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::Schema;

    fn schema() -> BoundSchema {
        BoundSchema::from_table(
            "olap.t1",
            "t1",
            &Schema::from_pairs(&[("a1", DataType::Int), ("b1", DataType::Int)]),
        )
    }

    #[test]
    fn resolve_by_alias_real_name_or_bare() {
        let s = schema();
        assert_eq!(s.resolve(Some("t1"), "a1").unwrap(), 0);
        assert_eq!(s.resolve(Some("olap.t1"), "b1").unwrap(), 1);
        assert_eq!(s.resolve(None, "b1").unwrap(), 1);
        assert!(s.resolve(Some("t2"), "a1").is_err());
        assert!(s.resolve(None, "zz").is_err());
    }

    #[test]
    fn ambiguity_detected_after_join() {
        let s = schema().join(&BoundSchema::from_table(
            "olap.t2",
            "t2",
            &Schema::from_pairs(&[("a1", DataType::Int)]),
        ));
        assert!(s.resolve(None, "a1").is_err(), "a1 exists on both sides");
        assert_eq!(s.resolve(Some("t2"), "a1").unwrap(), 2);
    }

    #[test]
    fn eval_arithmetic_and_comparison() {
        let s = schema();
        let e = bind(
            &crate::parser_test_expr("a1 + 2 * b1 > 10"),
            &s,
        )
        .unwrap();
        let row = [Datum::Int(4), Datum::Int(3)];
        assert_eq!(e.eval(&row).unwrap(), Datum::Bool(false));
        let row = [Datum::Int(5), Datum::Int(3)];
        assert_eq!(e.eval(&row).unwrap(), Datum::Bool(true));
    }

    #[test]
    fn null_propagates_and_filters_reject_unknown() {
        let s = schema();
        let e = bind(&crate::parser_test_expr("a1 > 10"), &s).unwrap();
        let row = [Datum::Null, Datum::Int(0)];
        assert_eq!(e.eval(&row).unwrap(), Datum::Null);
        assert!(!e.eval_filter(&row).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let s = schema();
        let e = bind(&crate::parser_test_expr("a1 > 0 or b1 > 0"), &s).unwrap();
        // NULL OR TRUE = TRUE
        assert_eq!(
            e.eval(&[Datum::Null, Datum::Int(5)]).unwrap(),
            Datum::Bool(true)
        );
        let e = bind(&crate::parser_test_expr("a1 > 0 and b1 > 0"), &s).unwrap();
        // NULL AND FALSE = FALSE
        assert_eq!(
            e.eval(&[Datum::Null, Datum::Int(-5)]).unwrap(),
            Datum::Bool(false)
        );
        // NULL AND TRUE = NULL
        assert_eq!(
            e.eval(&[Datum::Null, Datum::Int(5)]).unwrap(),
            Datum::Null
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let s = schema();
        let e = bind(&crate::parser_test_expr("a1 / b1"), &s).unwrap();
        assert!(e.eval(&[Datum::Int(1), Datum::Int(0)]).is_err());
    }

    #[test]
    fn canonical_orders_commutative_operands() {
        let s = schema().join(&BoundSchema::from_table(
            "olap.t2",
            "t2",
            &Schema::from_pairs(&[("a2", DataType::Int)]),
        ));
        let e1 = bind(&crate::parser_test_expr("t1.a1 = t2.a2"), &s).unwrap();
        let e2 = bind(&crate::parser_test_expr("t2.a2 = t1.a1"), &s).unwrap();
        assert_eq!(e1.canonical(&s), e2.canonical(&s));
        assert_eq!(e1.canonical(&s), "OLAP.T1.A1=OLAP.T2.A2");
    }

    #[test]
    fn canonical_keeps_noncommutative_order() {
        let s = schema();
        let e = bind(&crate::parser_test_expr("b1 > 10"), &s).unwrap();
        assert_eq!(e.canonical(&s), "OLAP.T1.B1>?");
        assert_eq!(e.display(&s), "OLAP.T1.B1>10");
    }

    #[test]
    fn canonical_unifies_literals_and_params() {
        let s = schema();
        let lit = bind(&crate::parser_test_expr("b1 > 10"), &s).unwrap();
        let param = bind(&crate::parser_test_expr("b1 > ?"), &s).unwrap();
        assert_eq!(lit.canonical(&s), param.canonical(&s));
        // Reversed commutative forms unify too: `3 = b1` and `b1 = 3`.
        let a = bind(&crate::parser_test_expr("3 = b1"), &s).unwrap();
        let b = bind(&crate::parser_test_expr("b1 = 3"), &s).unwrap();
        assert_eq!(a.canonical(&s), b.canonical(&s));
    }

    #[test]
    fn params_substitute_and_error_when_unbound() {
        let s = schema();
        let e = bind(&crate::parser_test_expr("b1 > ?"), &s).unwrap();
        assert!(e.has_params());
        assert!(e.eval(&[Datum::Int(1), Datum::Int(2)]).is_err());
        let bound = e.substitute_params(&[Datum::Int(1)]).unwrap();
        assert!(!bound.has_params());
        assert_eq!(
            bound.eval(&[Datum::Int(0), Datum::Int(2)]).unwrap(),
            Datum::Bool(true)
        );
        assert!(e.substitute_params(&[]).is_err());
    }

    #[test]
    fn scalar_funcs() {
        let s = BoundSchema::from_table(
            "t",
            "t",
            &Schema::from_pairs(&[("x", DataType::Text)]),
        );
        let e = bind(&crate::parser_test_expr("upper(x)"), &s).unwrap();
        assert_eq!(
            e.eval(&[Datum::Text("ab".into())]).unwrap(),
            Datum::Text("AB".into())
        );
        let e = bind(&crate::parser_test_expr("length(x)"), &s).unwrap();
        assert_eq!(e.eval(&[Datum::Text("abc".into())]).unwrap(), Datum::Int(3));
    }
}

//! Flat op-array compilation of simple cached plans.
//!
//! The tree executor walks boxed plan nodes and re-derives canonical step
//! text on every statement; for the point-query shapes that dominate
//! prepared-statement workloads that overhead dwarfs the actual row work.
//! [`compile`] lowers a linear plan chain — `Limit? → Project? →
//! (SeqScan | IndexScan)` — into a [`CompiledProgram`]: a `Vec<Op>` over
//! explicit register slots, with per-step canonical text and estimates
//! frozen at compile time so executions still feed the plan store and the
//! `sys.prepared` view. Anything non-linear (joins, aggregates, sorts, set
//! ops) returns `None` and keeps using the tree executor.

use crate::backend::ExecBackend;
use crate::expr::{BoundSchema, SExpr};
use crate::plan::{eq_key_value, PlanNode, PlanOp, StepKind, StepObservation};
use hdm_common::{Datum, HdmError, Result, Row};

/// One instruction. Expression operands index [`CompiledProgram::exprs`];
/// `dst`/`src`/`reg` are register slots holding materialized row batches.
#[derive(Debug, Clone)]
pub enum Op {
    SeqScan {
        table: String,
        pred: Option<u16>,
        dst: u8,
    },
    IndexProbe {
        table: String,
        index_id: usize,
        /// Equality key expressions, in index column order; the probe value
        /// is extracted per execution after parameter substitution.
        keys: Vec<u16>,
        residual: Option<u16>,
        dst: u8,
    },
    Project {
        exprs: Vec<u16>,
        src: u8,
        dst: u8,
    },
    Limit {
        n: u64,
        reg: u8,
    },
}

/// Canonical step metadata for the observation an op emits, anchored to the
/// op by index. Estimates are the compile-time values; the engine rehints
/// them against the plan store before each run.
#[derive(Debug, Clone)]
pub struct StepTemplate {
    pub kind: StepKind,
    pub text: String,
    pub est_rows: f64,
    pub op_index: usize,
}

/// A compiled statement body: ops, the shared (possibly parameterized)
/// expression pool, and the output schema.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub ops: Vec<Op>,
    pub exprs: Vec<SExpr>,
    pub n_regs: usize,
    pub steps: Vec<StepTemplate>,
    pub schema: BoundSchema,
}

/// Lower `plan` to a flat program, or `None` when the shape is not a linear
/// `Limit? → Project? → scan` chain.
pub fn compile(plan: &PlanNode) -> Option<CompiledProgram> {
    let mut exprs: Vec<SExpr> = Vec::new();
    let push = |exprs: &mut Vec<SExpr>, e: &SExpr| -> u16 {
        exprs.push(e.clone());
        (exprs.len() - 1) as u16
    };

    let (limit_node, rest) = match &plan.op {
        PlanOp::Limit { .. } => (Some(plan), &plan.children[0]),
        _ => (None, plan),
    };
    let (project_node, scan_node) = match &rest.op {
        PlanOp::Project { .. } => (Some(rest), &rest.children[0]),
        _ => (None, rest),
    };

    let mut ops = Vec::new();
    let mut steps = Vec::new();
    let scan_op = match &scan_node.op {
        PlanOp::SeqScan { table, predicate } => Op::SeqScan {
            table: table.clone(),
            pred: predicate.as_ref().map(|p| push(&mut exprs, p)),
            dst: 0,
        },
        PlanOp::IndexScan {
            table,
            index_id,
            key_exprs,
            residual,
            ..
        } => Op::IndexProbe {
            table: table.clone(),
            index_id: *index_id,
            keys: key_exprs.iter().map(|k| push(&mut exprs, k)).collect(),
            residual: residual.as_ref().map(|r| push(&mut exprs, r)),
            dst: 0,
        },
        _ => return None,
    };
    steps.push(StepTemplate {
        kind: StepKind::Scan,
        text: scan_node.canonical()?,
        est_rows: scan_node.est_rows(),
        op_index: ops.len(),
    });
    ops.push(scan_op);

    let mut out_reg = 0u8;
    if let Some(p) = project_node {
        let PlanOp::Project { exprs: pes } = &p.op else {
            unreachable!()
        };
        let idxs: Vec<u16> = pes.iter().map(|e| push(&mut exprs, e)).collect();
        ops.push(Op::Project {
            exprs: idxs,
            src: out_reg,
            dst: 1,
        });
        out_reg = 1;
    }
    if let Some(l) = limit_node {
        let PlanOp::Limit { n } = &l.op else {
            unreachable!()
        };
        steps.push(StepTemplate {
            kind: StepKind::Limit,
            text: l.canonical()?,
            est_rows: l.est_rows(),
            op_index: ops.len(),
        });
        ops.push(Op::Limit {
            n: *n,
            reg: out_reg,
        });
    }

    Some(CompiledProgram {
        ops,
        exprs,
        n_regs: out_reg as usize + 1,
        steps,
        schema: plan.schema.clone(),
    })
}

impl CompiledProgram {
    /// Number of ops (surfaced by `sys.prepared`).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Execute against `backend` with `params` bound into the expression
    /// pool. `ests` carries the per-step estimates (rehinted by the caller,
    /// parallel to [`Self::steps`]); observations land in `obs` in the same
    /// post-order the tree executor produces.
    pub fn run(
        &self,
        params: &[Datum],
        ests: &[f64],
        backend: &mut dyn ExecBackend,
        obs: &mut Vec<StepObservation>,
    ) -> Result<Vec<Row>> {
        let exprs: Vec<SExpr> = self
            .exprs
            .iter()
            .map(|e| {
                if e.has_params() {
                    e.substitute_params(params)
                } else {
                    Ok(e.clone())
                }
            })
            .collect::<Result<_>>()?;
        let mut regs: Vec<Vec<Row>> = vec![Vec::new(); self.n_regs];
        let mut out = 0usize;
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                Op::SeqScan { table, pred, dst } => {
                    let p = pred.map(|x| &exprs[x as usize]);
                    regs[*dst as usize] = backend.scan(table, p)?;
                    out = *dst as usize;
                }
                Op::IndexProbe {
                    table,
                    index_id,
                    keys,
                    residual,
                    dst,
                } => {
                    let key_values: Vec<Datum> = keys
                        .iter()
                        .map(|&k| {
                            eq_key_value(&exprs[k as usize]).ok_or_else(|| {
                                HdmError::Execution(
                                    "index probe key is not a column = value equality"
                                        .into(),
                                )
                            })
                        })
                        .collect::<Result<_>>()?;
                    let r = residual.map(|x| &exprs[x as usize]);
                    regs[*dst as usize] =
                        backend.point_get(table, *index_id, &key_values, r)?;
                    out = *dst as usize;
                }
                Op::Project {
                    exprs: pes,
                    src,
                    dst,
                } => {
                    let input = std::mem::take(&mut regs[*src as usize]);
                    let mut rows = Vec::with_capacity(input.len());
                    for row in &input {
                        let vals: Vec<Datum> = pes
                            .iter()
                            .map(|&e| exprs[e as usize].eval(row.values()))
                            .collect::<Result<_>>()?;
                        rows.push(Row::new(vals));
                    }
                    regs[*dst as usize] = rows;
                    out = *dst as usize;
                }
                Op::Limit { n, reg } => {
                    let r = &mut regs[*reg as usize];
                    if (r.len() as u64) > *n {
                        r.truncate(*n as usize);
                    }
                    out = *reg as usize;
                }
            }
            for (si, st) in self.steps.iter().enumerate() {
                if st.op_index == i {
                    obs.push(StepObservation {
                        kind: st.kind,
                        text: st.text.clone(),
                        estimated: ests.get(si).copied().unwrap_or(st.est_rows),
                        actual: regs[out].len() as u64,
                    });
                }
            }
        }
        Ok(std::mem::take(&mut regs[out]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;

    fn setup() -> Database {
        let mut db = Database::new();
        db.execute("create table t (a int, b int)").unwrap();
        db.execute("insert into t values (1, 10), (2, 20), (3, 30)")
            .unwrap();
        db.execute("analyze").unwrap();
        db
    }

    #[test]
    fn compiles_linear_chains_only() {
        let mut db = setup();
        let plan = db.plan_only("select a + 1 from t where b > 10 limit 2").unwrap();
        let prog = compile(&plan).expect("linear chain compiles");
        assert!(prog.op_count() >= 2);
        assert_eq!(prog.steps.len(), 2); // scan + limit
        let join = db
            .plan_only("select * from t x, t y where x.a = y.a")
            .unwrap();
        assert!(compile(&join).is_none(), "joins stay on the tree executor");
    }

    #[test]
    fn compiled_run_matches_tree_execution() {
        let mut db = setup();
        let sql = "select a + 1 from t where b > 10 limit 2";
        let plan = db.plan_only(sql).unwrap();
        let prog = compile(&plan).expect("compiles");
        let expected = db.execute(sql).unwrap();
        let ests: Vec<f64> = prog.steps.iter().map(|s| s.est_rows).collect();
        let mut obs = Vec::new();
        let rows = {
            let (catalog, mgr) = db.storage_parts();
            let mut be = crate::backend::LocalBackend::new(catalog, mgr);
            prog.run(&[], &ests, &mut be, &mut obs).unwrap()
        };
        assert_eq!(rows, expected.rows);
        assert_eq!(obs.len(), expected.steps.len());
        for (a, b) in obs.iter().zip(&expected.steps) {
            assert_eq!(a.text, b.text);
            assert_eq!(a.actual, b.actual);
        }
    }
}

//! Abstract syntax for the SQL subset.

use hdm_common::DataType;

/// A literal value in SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    /// Token used in canonical step text.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }

    /// Operand order does not affect the result.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::And | BinOp::Or | BinOp::Add | BinOp::Mul
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
}

/// An unresolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `qualifier.name` or bare `name`.
    Column(Option<String>, String),
    Literal(Literal),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    /// Function call; `star` marks `COUNT(*)`.
    Func {
        name: String,
        args: Vec<Expr>,
        star: bool,
    },
    /// `?` — the n-th positional statement parameter (0-based), bound to a
    /// concrete value at execution time by the prepared-statement layer.
    Param(u16),
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column(None, name.to_string())
    }

    pub fn qcol(q: &str, name: &str) -> Expr {
        Expr::Column(Some(q.to_string()), name.to_string())
    }

    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// Split a conjunction into its conjuncts.
    pub fn conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                let mut v = left.conjuncts();
                v.extend(right.conjuncts());
                v
            }
            e => vec![e],
        }
    }

    /// All column references in the expression.
    pub fn columns(&self) -> Vec<(&Option<String>, &str)> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<(&'a Option<String>, &'a str)>) {
        match self {
            Expr::Column(q, n) => out.push((q, n)),
            Expr::Literal(_) | Expr::Param(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// Does this expression contain an aggregate function call?
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Func { name, .. } => {
                matches!(name.as_str(), "count" | "sum" | "avg" | "min" | "max")
            }
            Expr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::Unary { expr, .. } => expr.has_aggregate(),
            _ => false,
        }
    }
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Star,
    Expr { expr: Expr, alias: Option<String> },
}

/// A relation in FROM.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Named {
        name: String,
        alias: Option<String>,
    },
    /// A table-valued function call, e.g. `gtimeseries('cars', 30)`.
    Function {
        name: String,
        args: Vec<Expr>,
        alias: Option<String>,
    },
    /// Parenthesized subquery with mandatory alias.
    Subquery {
        query: Box<SelectStmt>,
        alias: String,
    },
    /// `left JOIN right ON cond` (inner joins only).
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        on: Expr,
    },
}

/// Set-operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    Union,
    Intersect,
    Except,
}

impl SetOpKind {
    pub fn name(self) -> &'static str {
        match self {
            SetOpKind::Union => "UNION",
            SetOpKind::Intersect => "INTERSECT",
            SetOpKind::Except => "EXCEPT",
        }
    }
}

/// A SELECT statement (possibly the head of a set-operation chain).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// `WITH name AS (select), ...` — non-recursive CTEs.
    pub with: Vec<(String, SelectStmt)>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    pub projections: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate over the aggregated output.
    pub having: Option<Expr>,
    pub order_by: Vec<(Expr, bool)>,
    pub limit: Option<u64>,
    /// `self <set-op> rhs`.
    pub set_op: Option<(SetOpKind, bool, Box<SelectStmt>)>,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    CreateIndex {
        table: String,
        columns: Vec<String>,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    },
    Delete {
        table: String,
        where_clause: Option<Expr>,
    },
    Select(SelectStmt),
    Explain {
        /// `EXPLAIN ANALYZE`: execute the statement and annotate the plan
        /// with actual per-operator rows and timings.
        analyze: bool,
        stmt: Box<Statement>,
    },
    Analyze {
        table: Option<String>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::And, Expr::col("a"), Expr::col("b")),
            Expr::col("c"),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn or_is_a_single_conjunct() {
        let e = Expr::bin(BinOp::Or, Expr::col("a"), Expr::col("b"));
        assert_eq!(e.conjuncts().len(), 1);
    }

    #[test]
    fn columns_are_collected_depth_first() {
        let e = Expr::bin(
            BinOp::Eq,
            Expr::qcol("t1", "a"),
            Expr::bin(BinOp::Add, Expr::col("b"), Expr::int(1)),
        );
        let cols = e.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].1, "a");
        assert_eq!(cols[1].1, "b");
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Func {
            name: "count".into(),
            args: vec![],
            star: true,
        };
        assert!(agg.has_aggregate());
        assert!(Expr::bin(BinOp::Add, agg, Expr::int(1)).has_aggregate());
        assert!(!Expr::col("x").has_aggregate());
    }

    #[test]
    fn commutativity_table() {
        assert!(BinOp::Eq.is_commutative());
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Lt.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
    }
}

//! The table catalog.

use hdm_common::{HdmError, Result, Schema};
use hdm_storage::Table;
use std::collections::BTreeMap;

/// Named tables with their storage and statistics. Names may be
/// schema-qualified (`olap.t1`); matching is case-insensitive (names are
/// normalized to lower case on entry).
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    fn norm(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        let key = Self::norm(name);
        if self.tables.contains_key(&key) {
            return Err(HdmError::Catalog(format!("table {name} already exists")));
        }
        self.tables.insert(key.clone(), Table::new(key, schema));
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.tables
            .remove(&Self::norm(name))
            .map(|_| ())
            .ok_or_else(|| HdmError::Catalog(format!("no table {name}")))
    }

    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&Self::norm(name))
            .ok_or_else(|| HdmError::Catalog(format!("no table {name}")))
    }

    pub fn get_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&Self::norm(name))
            .ok_or_else(|| HdmError::Catalog(format!("no table {name}")))
    }

    pub fn exists(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::norm(name))
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    pub fn tables_mut(&mut self) -> impl Iterator<Item = &mut Table> {
        self.tables.values_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::DataType;

    #[test]
    fn create_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.create_table("OLAP.T1", Schema::from_pairs(&[("a", DataType::Int)]))
            .unwrap();
        assert!(c.get("olap.t1").is_ok());
        assert!(c.get("OLAP.t1").is_ok());
        assert!(c.exists("olap.T1"));
        assert!(c.get("olap.t2").is_err());
    }

    #[test]
    fn duplicate_rejected() {
        let mut c = Catalog::new();
        c.create_table("t", Schema::from_pairs(&[("a", DataType::Int)]))
            .unwrap();
        assert!(c
            .create_table("T", Schema::from_pairs(&[("a", DataType::Int)]))
            .is_err());
    }

    #[test]
    fn drop_removes() {
        let mut c = Catalog::new();
        c.create_table("t", Schema::from_pairs(&[("a", DataType::Int)]))
            .unwrap();
        c.drop_table("t").unwrap();
        assert!(!c.exists("t"));
        assert!(c.drop_table("t").is_err());
    }
}

//! Plan execution.
//!
//! Executors materialize child results (sufficient at this scale and keeps
//! actual-cardinality accounting trivial). After each cardinality-bearing
//! node runs, an observation `(canonical step text, estimated, actual)` is
//! recorded — the plan-store *producer*'s raw material ("the executor
//! captures only those steps that have a big differential between actual and
//! estimated row counts" — that differential policy lives in the store, not
//! here; we record everything and let the store filter, §II-C).

use crate::ast::SetOpKind;
use crate::backend::ExecBackend;
use crate::plan::{AggCall, AggFunc, PlanNode, PlanOp, StepObservation};
use crate::profile::Profiler;
use hdm_common::{Datum, HdmError, Result, Row};
use std::collections::HashMap;

/// Execute a plan against a storage backend, appending step observations.
pub fn execute(
    plan: &PlanNode,
    backend: &mut dyn ExecBackend,
    obs: &mut Vec<StepObservation>,
) -> Result<Vec<Row>> {
    let rows = execute_inner(plan, backend, obs, None)?;
    Ok(rows)
}

/// Execute a plan with the operator profiler riding along. Rows, step
/// observations and plan choice are identical to [`execute`]; the profiler
/// only *additionally* mirrors the tree into an
/// [`hdm_telemetry::OpProfile`] (take it with [`Profiler::finish`]).
pub fn execute_with_profiler(
    plan: &PlanNode,
    backend: &mut dyn ExecBackend,
    obs: &mut Vec<StepObservation>,
    prof: &mut Profiler,
) -> Result<Vec<Row>> {
    let rows = execute_inner(plan, backend, obs, Some(prof))?;
    Ok(rows)
}

fn execute_inner(
    plan: &PlanNode,
    backend: &mut dyn ExecBackend,
    obs: &mut Vec<StepObservation>,
    mut prof: Option<&mut Profiler>,
) -> Result<Vec<Row>> {
    if let Some(p) = prof.as_deref_mut() {
        p.enter();
    }
    let rows = match &plan.op {
        PlanOp::SeqScan { table, predicate } => backend.scan(table, predicate.as_ref())?,
        PlanOp::IndexScan {
            table,
            index_id,
            key_values,
            residual,
            ..
        } => backend.point_get(table, *index_id, key_values, residual.as_ref())?,
        PlanOp::IndexRange {
            table,
            index_id,
            lo,
            hi,
            residual,
            ..
        } => backend.index_range(table, *index_id, lo, hi, residual.as_ref())?,
        PlanOp::Exchange {
            table,
            predicate,
            shards,
            probe,
        } => backend.scan_shards(table, predicate.as_ref(), shards, probe.as_ref())?,
        PlanOp::Values { rows, .. } => rows.clone(),
        PlanOp::Filter { predicate } => {
            let input = execute_inner(&plan.children[0], backend, obs, prof.as_deref_mut())?;
            let mut out = Vec::new();
            for r in input {
                if predicate.eval_filter(r.values())? {
                    out.push(r);
                }
            }
            out
        }
        PlanOp::NestedLoopJoin { on } => {
            let left = execute_inner(&plan.children[0], backend, obs, prof.as_deref_mut())?;
            let right = execute_inner(&plan.children[1], backend, obs, prof.as_deref_mut())?;
            let mut out = Vec::new();
            for l in &left {
                for r in &right {
                    let joined = l.concat(r);
                    let keep = match on {
                        None => true,
                        Some(p) => p.eval_filter(joined.values())?,
                    };
                    if keep {
                        out.push(joined);
                    }
                }
            }
            out
        }
        PlanOp::HashJoin {
            left_keys,
            right_keys,
            residual,
        } => {
            let left = execute_inner(&plan.children[0], backend, obs, prof.as_deref_mut())?;
            let right = execute_inner(&plan.children[1], backend, obs, prof.as_deref_mut())?;
            // Build on the right input.
            let mut table: HashMap<Vec<Datum>, Vec<&Row>> = HashMap::new();
            for r in &right {
                let key: Vec<Datum> = right_keys
                    .iter()
                    .map(|&k| r.values()[k].clone())
                    .collect();
                if key.iter().any(Datum::is_null) {
                    continue; // NULL never equi-joins.
                }
                table.entry(key).or_default().push(r);
            }
            let mut out = Vec::new();
            for l in &left {
                let key: Vec<Datum> =
                    left_keys.iter().map(|&k| l.values()[k].clone()).collect();
                if key.iter().any(Datum::is_null) {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for r in matches {
                        let joined = l.concat(r);
                        let keep = match residual {
                            None => true,
                            Some(p) => p.eval_filter(joined.values())?,
                        };
                        if keep {
                            out.push(joined);
                        }
                    }
                }
            }
            out
        }
        PlanOp::Project { exprs } => {
            let input = execute_inner(&plan.children[0], backend, obs, prof.as_deref_mut())?;
            let mut out = Vec::with_capacity(input.len());
            for r in input {
                let vals: Vec<Datum> = exprs
                    .iter()
                    .map(|e| e.eval(r.values()))
                    .collect::<Result<_>>()?;
                out.push(Row::new(vals));
            }
            out
        }
        PlanOp::HashAgg { group, aggs } => {
            let input = execute_inner(&plan.children[0], backend, obs, prof.as_deref_mut())?;
            run_hash_agg(group, aggs, &input)?
        }
        PlanOp::Sort { keys } => {
            let mut input = execute_inner(&plan.children[0], backend, obs, prof.as_deref_mut())?;
            // Precompute sort keys to keep comparator infallible.
            let mut keyed: Vec<(Vec<Datum>, Row)> = Vec::with_capacity(input.len());
            for r in input.drain(..) {
                let k: Vec<Datum> = keys
                    .iter()
                    .map(|(e, _)| e.eval(r.values()))
                    .collect::<Result<_>>()?;
                keyed.push((k, r));
            }
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, (_, desc)) in keys.iter().enumerate() {
                    let ord = a[i].total_cmp(&b[i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            keyed.into_iter().map(|(_, r)| r).collect()
        }
        PlanOp::Limit { n } => {
            let mut input = execute_inner(&plan.children[0], backend, obs, prof.as_deref_mut())?;
            input.truncate(*n as usize);
            input
        }
        PlanOp::Distinct => {
            let input = execute_inner(&plan.children[0], backend, obs, prof.as_deref_mut())?;
            let mut seen = std::collections::HashSet::new();
            input
                .into_iter()
                .filter(|r| seen.insert(r.clone()))
                .collect()
        }
        PlanOp::SetOp { kind, all } => {
            let left = execute_inner(&plan.children[0], backend, obs, prof.as_deref_mut())?;
            let right = execute_inner(&plan.children[1], backend, obs, prof.as_deref_mut())?;
            run_set_op(*kind, *all, left, right)
        }
    };

    if let Some(p) = prof {
        // Exchange nodes carry the per-shard legs the backend just ran.
        let shards = if matches!(plan.op, PlanOp::Exchange { .. }) {
            backend.take_exchange_profile()
        } else {
            Vec::new()
        };
        p.exit(plan, rows.len() as u64, shards);
    }
    if let Some(text) = plan.canonical() {
        obs.push(StepObservation {
            kind: plan.step_kind(),
            text,
            estimated: plan.est_rows(),
            actual: rows.len() as u64,
        });
    }
    Ok(rows)
}

enum Acc {
    Count(i64),
    SumI(Option<i64>),
    SumF(Option<f64>),
    Avg { sum: f64, n: i64 },
    Min(Option<Datum>),
    Max(Option<Datum>),
}

impl Acc {
    fn new(call: &AggCall) -> Acc {
        match call.func {
            AggFunc::CountStar | AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::SumI(None), // upgraded to SumF on first float
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    fn update(&mut self, call: &AggCall, row: &Row) -> Result<()> {
        let arg = match (&call.func, &call.arg) {
            (AggFunc::CountStar, _) => None,
            (_, Some(e)) => Some(e.eval(row.values())?),
            (_, None) => {
                return Err(HdmError::Execution(format!(
                    "{} without argument",
                    call.func.name()
                )))
            }
        };
        match self {
            Acc::Count(n) => match (&call.func, &arg) {
                (AggFunc::CountStar, _) => *n += 1,
                (_, Some(v)) if !v.is_null() => *n += 1,
                _ => {}
            },
            Acc::SumI(cur) => {
                if let Some(v) = &arg {
                    match v {
                        Datum::Null => {}
                        Datum::Int(x) => *cur = Some(cur.unwrap_or(0) + x),
                        Datum::Float(x) => {
                            // Upgrade to float accumulation.
                            let so_far = cur.unwrap_or(0) as f64;
                            *self = Acc::SumF(Some(so_far + x));
                        }
                        other => {
                            return Err(HdmError::Execution(format!(
                                "SUM over non-numeric {other}"
                            )))
                        }
                    }
                }
            }
            Acc::SumF(cur) => {
                if let Some(v) = &arg {
                    if let Some(x) = v.as_float() {
                        *cur = Some(cur.unwrap_or(0.0) + x);
                    } else if !v.is_null() {
                        return Err(HdmError::Execution(format!("SUM over non-numeric {v}")));
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(v) = &arg {
                    if let Some(x) = v.as_float() {
                        *sum += x;
                        *n += 1;
                    }
                }
            }
            Acc::Min(cur) => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        let better = cur.as_ref().map(|c| v < *c).unwrap_or(true);
                        if better {
                            *cur = Some(v);
                        }
                    }
                }
            }
            Acc::Max(cur) => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        let better = cur.as_ref().map(|c| v > *c).unwrap_or(true);
                        if better {
                            *cur = Some(v);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Datum {
        match self {
            Acc::Count(n) => Datum::Int(n),
            Acc::SumI(v) => v.map(Datum::Int).unwrap_or(Datum::Null),
            Acc::SumF(v) => v.map(Datum::Float).unwrap_or(Datum::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Datum::Null
                } else {
                    Datum::Float(sum / n as f64)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Datum::Null),
        }
    }
}

fn run_hash_agg(
    group: &[crate::expr::SExpr],
    aggs: &[AggCall],
    input: &[Row],
) -> Result<Vec<Row>> {
    let mut groups: HashMap<Vec<Datum>, Vec<Acc>> = HashMap::new();
    let mut order: Vec<Vec<Datum>> = Vec::new(); // deterministic output order
    for r in input {
        let key: Vec<Datum> = group
            .iter()
            .map(|g| g.eval(r.values()))
            .collect::<Result<_>>()?;
        let accs = match groups.get_mut(&key) {
            Some(a) => a,
            None => {
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| aggs.iter().map(Acc::new).collect())
            }
        };
        for (acc, call) in accs.iter_mut().zip(aggs) {
            acc.update(call, r)?;
        }
    }
    // Global aggregate over empty input still yields one row.
    if group.is_empty() && groups.is_empty() {
        let accs: Vec<Acc> = aggs.iter().map(Acc::new).collect();
        let vals: Vec<Datum> = accs.into_iter().map(Acc::finish).collect();
        return Ok(vec![Row::new(vals)]);
    }
    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let accs = groups.remove(&key).expect("key recorded");
        let mut vals = key;
        vals.extend(accs.into_iter().map(Acc::finish));
        out.push(Row::new(vals));
    }
    Ok(out)
}

fn run_set_op(kind: SetOpKind, all: bool, left: Vec<Row>, right: Vec<Row>) -> Vec<Row> {
    use std::collections::HashSet;
    match (kind, all) {
        (SetOpKind::Union, true) => {
            let mut out = left;
            out.extend(right);
            out
        }
        (SetOpKind::Union, false) => {
            let mut seen: HashSet<Row> = HashSet::new();
            let mut out = Vec::new();
            for r in left.into_iter().chain(right) {
                if seen.insert(r.clone()) {
                    out.push(r);
                }
            }
            out
        }
        (SetOpKind::Intersect, _) => {
            let rset: HashSet<Row> = right.into_iter().collect();
            let mut seen: HashSet<Row> = HashSet::new();
            left.into_iter()
                .filter(|r| rset.contains(r) && seen.insert(r.clone()))
                .collect()
        }
        (SetOpKind::Except, _) => {
            let rset: HashSet<Row> = right.into_iter().collect();
            let mut seen: HashSet<Row> = HashSet::new();
            left.into_iter()
                .filter(|r| !rset.contains(r) && seen.insert(r.clone()))
                .collect()
        }
    }
}

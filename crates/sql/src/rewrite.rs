//! The query rewrite engine.
//!
//! §II-C: "Query rewrite is another major ongoing enhancement to our
//! optimizer, including establishing a query rewrite engine and adding
//! additional rewrites which are critical to complex OLAP queries."
//!
//! Rewrites run on the AST before planning:
//!
//! * **constant folding** — literal arithmetic and comparisons evaluate at
//!   plan time (`b1 > 5 + 5` → `b1 > 10`);
//! * **boolean simplification** — `x AND true → x`, `x OR true → true`,
//!   `NOT NOT x → x`, `NOT (a < b) → a >= b`;
//! * **trivial-predicate elimination** — `WHERE true` disappears.
//!
//! Beyond speed, rewriting *normalizes* queries: two spellings of the same
//! predicate produce the same canonical step text, so the learning plan
//! store's exact-match lookup (§II-C) hits across spellings.

use crate::ast::{BinOp, Expr, Literal, SelectItem, SelectStmt, Statement, TableRef, UnOp};
use crate::expr::{bind, BoundSchema};
use crate::plan::PlanNode;

/// Compare alternative physical plans for the same logical step on their
/// weighted [`crate::plan::CostEstimate::total`] and keep the cheapest.
/// Ties keep the earliest candidate, so callers list the safe default
/// (sequential scan) first and an index path must be *strictly* cheaper to
/// win.
pub fn pick_cheapest(candidates: Vec<PlanNode>) -> PlanNode {
    candidates
        .into_iter()
        .reduce(|best, cand| {
            if cand.cost.total() < best.cost.total() {
                cand
            } else {
                best
            }
        })
        .expect("at least one candidate plan")
}

/// Rewrite a whole statement in place.
pub fn rewrite_statement(stmt: &mut Statement) {
    match stmt {
        Statement::Select(s) => rewrite_select(s),
        Statement::Update {
            sets,
            where_clause,
            ..
        } => {
            for (_, e) in sets.iter_mut() {
                *e = fold(std::mem::replace(e, Expr::int(0)));
            }
            rewrite_where(where_clause);
        }
        Statement::Delete { where_clause, .. } => rewrite_where(where_clause),
        Statement::Explain { stmt, .. } => rewrite_statement(stmt),
        _ => {}
    }
}

/// Rewrite a SELECT (recursing into CTEs, subqueries and set-op arms).
pub fn rewrite_select(s: &mut SelectStmt) {
    for (_, sub) in &mut s.with {
        rewrite_select(sub);
    }
    for item in &mut s.projections {
        if let SelectItem::Expr { expr, .. } = item {
            *expr = fold(std::mem::replace(expr, Expr::int(0)));
        }
    }
    for t in &mut s.from {
        rewrite_table_ref(t);
    }
    rewrite_where(&mut s.where_clause);
    for g in &mut s.group_by {
        *g = fold(std::mem::replace(g, Expr::int(0)));
    }
    if let Some(h) = &mut s.having {
        *h = fold(std::mem::replace(h, Expr::int(0)));
    }
    for (e, _) in &mut s.order_by {
        *e = fold(std::mem::replace(e, Expr::int(0)));
    }
    if let Some((_, _, rhs)) = &mut s.set_op {
        rewrite_select(rhs);
    }
}

fn rewrite_table_ref(t: &mut TableRef) {
    match t {
        TableRef::Join { left, right, on } => {
            rewrite_table_ref(left);
            rewrite_table_ref(right);
            *on = fold(std::mem::replace(on, Expr::int(0)));
        }
        TableRef::Subquery { query, .. } => rewrite_select(query),
        TableRef::Function { args, .. } => {
            for a in args {
                *a = fold(std::mem::replace(a, Expr::int(0)));
            }
        }
        TableRef::Named { .. } => {}
    }
}

fn rewrite_where(w: &mut Option<Expr>) {
    if let Some(e) = w.take() {
        match fold(e) {
            // WHERE true disappears entirely.
            Expr::Literal(Literal::Bool(true)) => {}
            other => *w = Some(other),
        }
    }
}

/// Is this a pure literal expression (no columns, no functions)?
fn is_const(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Binary { left, right, .. } => is_const(left) && is_const(right),
        Expr::Unary { expr, .. } => is_const(expr),
        _ => false,
    }
}

/// One bottom-up folding pass.
pub fn fold(e: Expr) -> Expr {
    let e = match e {
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(fold(*left)),
            right: Box::new(fold(*right)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(fold(*expr)),
        },
        Expr::Func { name, args, star } => Expr::Func {
            name,
            args: args.into_iter().map(fold).collect(),
            star,
        },
        other => other,
    };

    // Evaluate closed literal subtrees (guarding against runtime errors:
    // division by zero stays unfolded and fails at execution, as it should).
    if is_const(&e) && !matches!(e, Expr::Literal(_)) {
        if let Ok(bound) = bind(&e, &BoundSchema::default()) {
            if let Ok(v) = bound.eval(&[]) {
                if let Some(lit) = datum_to_literal(&v) {
                    return Expr::Literal(lit);
                }
            }
        }
        return e;
    }

    // Boolean algebra.
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => match (*left, *right) {
            (Expr::Literal(Literal::Bool(true)), x) | (x, Expr::Literal(Literal::Bool(true))) => x,
            (f @ Expr::Literal(Literal::Bool(false)), _)
            | (_, f @ Expr::Literal(Literal::Bool(false))) => f,
            (l, r) => Expr::bin(BinOp::And, l, r),
        },
        Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => match (*left, *right) {
            (t @ Expr::Literal(Literal::Bool(true)), _)
            | (_, t @ Expr::Literal(Literal::Bool(true))) => t,
            (Expr::Literal(Literal::Bool(false)), x)
            | (x, Expr::Literal(Literal::Bool(false))) => x,
            (l, r) => Expr::bin(BinOp::Or, l, r),
        },
        Expr::Unary {
            op: UnOp::Not,
            expr,
        } => match *expr {
            // Double negation.
            Expr::Unary {
                op: UnOp::Not,
                expr: inner,
            } => *inner,
            Expr::Literal(Literal::Bool(b)) => Expr::Literal(Literal::Bool(!b)),
            // De-negate comparisons: NOT (a < b) → a >= b.
            Expr::Binary { op, left, right } if negatable(op) => Expr::Binary {
                op: negate(op),
                left,
                right,
            },
            other => Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(other),
            },
        },
        other => other,
    }
}

fn negatable(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

fn negate(op: BinOp) -> BinOp {
    match op {
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        other => other,
    }
}

pub(crate) fn datum_to_literal(d: &hdm_common::Datum) -> Option<Literal> {
    use hdm_common::Datum;
    Some(match d {
        Datum::Null => Literal::Null,
        Datum::Int(v) => Literal::Int(*v),
        Datum::Float(v) => Literal::Float(*v),
        Datum::Text(s) => Literal::Str(s.clone()),
        Datum::Bool(b) => Literal::Bool(*b),
        Datum::Timestamp(v) => Literal::Int(*v),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser_test_expr;

    fn folded(text: &str) -> Expr {
        fold(parser_test_expr(text))
    }

    #[test]
    fn literal_arithmetic_folds() {
        assert_eq!(folded("5 + 5"), Expr::int(10));
        assert_eq!(folded("2 * 3 + 4"), Expr::int(10));
        assert_eq!(folded("10 > 3"), Expr::Literal(Literal::Bool(true)));
        assert_eq!(folded("'a' = 'b'"), Expr::Literal(Literal::Bool(false)));
    }

    #[test]
    fn folding_reaches_inside_predicates() {
        // b1 > 5 + 5  →  b1 > 10
        let e = folded("b1 > 5 + 5");
        assert_eq!(e, parser_test_expr("b1 > 10"));
    }

    #[test]
    fn division_by_zero_stays_unfolded() {
        let e = folded("1 / 0");
        assert!(matches!(e, Expr::Binary { op: BinOp::Div, .. }));
    }

    #[test]
    fn boolean_identities() {
        assert_eq!(folded("a > 1 and 1 = 1"), parser_test_expr("a > 1"));
        assert_eq!(folded("a > 1 and 1 = 2"), Expr::Literal(Literal::Bool(false)));
        assert_eq!(folded("a > 1 or 1 = 1"), Expr::Literal(Literal::Bool(true)));
        assert_eq!(folded("a > 1 or false"), parser_test_expr("a > 1"));
    }

    #[test]
    fn negation_rewrites() {
        assert_eq!(folded("not not a > 1"), parser_test_expr("a > 1"));
        assert_eq!(folded("not a < 5"), parser_test_expr("a >= 5"));
        assert_eq!(folded("not a = 5"), parser_test_expr("a <> 5"));
        assert_eq!(folded("not true"), Expr::Literal(Literal::Bool(false)));
    }

    #[test]
    fn where_true_is_eliminated() {
        let mut w = Some(parser_test_expr("1 = 1"));
        rewrite_where(&mut w);
        assert!(w.is_none());
        let mut w = Some(parser_test_expr("a > 1 and true"));
        rewrite_where(&mut w);
        assert_eq!(w, Some(parser_test_expr("a > 1")));
    }

    #[test]
    fn select_rewrites_every_clause() {
        let crate::ast::Statement::Select(mut s) = crate::parser::parse(
            "select a + 0 * 2 from t where b > 2 + 3 group by a having count(*) > 1 + 1 \
             order by a",
        )
        .unwrap() else {
            panic!()
        };
        rewrite_select(&mut s);
        assert_eq!(s.where_clause, Some(parser_test_expr("b > 5")));
        assert_eq!(s.having, Some(parser_test_expr("count(*) > 2")));
    }
}

//! The embedded database facade: parse → plan → execute with autocommit
//! transactions, plus the three extension hooks the rest of the workspace
//! plugs into (plan store consumer/producer, table functions).

use crate::ast::{SelectItem, SelectStmt, Statement};
use crate::backend::LocalBackend;
use crate::catalog::Catalog;
use crate::compile::{compile, CompiledProgram, StepTemplate};
use crate::exec::{execute, execute_with_profiler};
use crate::expr::{bind, BoundSchema};
use crate::parser::parse;
use crate::plan::{PlanNode, StepObservation};
use crate::planner::{Planner, PlanningInfo, TempRels};
use crate::prepared::{
    bind_slots, canonicalize, collect_param_types, count_params, substitute_statement_params,
    ExecOptions, PlanCache, QueryApi, StmtHandle, PLAN_CACHE_CAP,
};
use crate::profile::{observations, render_analyze, Profiler};
use crate::sys::{self, PlanStoreDump, SysSnapshot};
use hdm_common::{DataType, Datum, HdmError, Result, Row, Schema};
use hdm_telemetry::{
    CaptureInput, MetricsRegistry, SharedClock, SharedHistory, SharedRecorder, StatementProfile,
    WallClock,
};
use hdm_txn::{LocalTxnManager, SnapshotVisibility, TxnStatus};
use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// Plan-store *consumer* hook: the optimizer asks for the actual cardinality
/// of a canonical step before trusting its own estimate (§II-C).
pub trait CardinalityHints {
    fn lookup(&self, step_text: &str) -> Option<u64>;

    /// Monotone counter that advances whenever a stored actual changes
    /// (capture or update). Lets cached-plan drift checks skip the keyed
    /// lookups entirely while the store is quiescent. `None` (the default)
    /// means the store cannot report one and callers must re-check every
    /// time.
    fn generation(&self) -> Option<u64> {
        None
    }
}

/// Plan-store *producer* hook: receives every executed step with its
/// estimated and actual cardinality; the store decides what to keep.
pub trait StepObserver {
    fn observe(&self, steps: &[StepObservation]);
}

/// A table-valued function callable in FROM — the integration point the
/// multi-model engines use for `gtimeseries(...)` / `ggraph(...)` (§II-B).
pub trait TableFunction {
    fn eval(&self, args: &[Datum]) -> Result<(Schema, Vec<Row>)>;
}

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    /// Rows touched by DML (INSERT/UPDATE/DELETE).
    pub affected: u64,
    /// Step observations from SELECT execution.
    pub steps: Vec<StepObservation>,
    /// Hint usage during planning.
    pub planning: PlanningInfo,
    /// Runtime profile of the statement (present when profiling is on or a
    /// flight recorder is attached; always present for `EXPLAIN ANALYZE`).
    pub profile: Option<StatementProfile>,
}

impl QueryResult {
    fn empty() -> Self {
        Self {
            columns: vec![],
            rows: vec![],
            affected: 0,
            steps: vec![],
            planning: PlanningInfo::default(),
            profile: None,
        }
    }

    /// First column of the first row as an integer (test convenience).
    pub fn scalar_int(&self) -> Option<i64> {
        self.rows.first().and_then(|r| r.get(0)).and_then(Datum::as_int)
    }
}

/// One plan-cache payload for the embedded engine: the parameterized plan,
/// the parameter types the plan constrains, and (for linear chains) the
/// compiled flat op-array.
struct CachedStmt {
    plan: PlanNode,
    param_types: Vec<Option<DataType>>,
    program: Option<CompiledProgram>,
    /// Precomputed re-plan-on-drift probes: (store keys, planning-time
    /// estimate) per canonical node; see [`crate::prepared::max_drift`].
    drift: Vec<(Vec<String>, f64)>,
    /// Last `(store generation, drifted?)` verdict, so quiescent stores skip
    /// the keyed lookups entirely; see [`crate::prepared::drift_exceeds`].
    drift_state: Cell<Option<(u64, bool)>>,
}

/// An embedded single-node SQL database.
pub struct Database {
    catalog: Catalog,
    mgr: LocalTxnManager,
    hints: Option<Rc<dyn CardinalityHints>>,
    observer: Option<Rc<dyn StepObserver>>,
    table_funcs: HashMap<String, Box<dyn TableFunction>>,
    /// Clock the query profiler stamps operator times with (wall by
    /// default; tests install a [`hdm_telemetry::VirtualClock`]).
    clock: SharedClock,
    recorder: Option<SharedRecorder>,
    profiling: bool,
    misestimate_ratio: f64,
    /// Registry backing `sys.metrics` (scans empty when none is attached).
    metrics: Option<MetricsRegistry>,
    /// Learned-cardinality source backing `sys.plan_store`.
    sys_plan_store: Option<Rc<dyn PlanStoreDump>>,
    /// Prepared-statement plan cache, keyed by canonical statement text.
    cache: PlanCache<Rc<CachedStmt>>,
    /// Workload-history snapshot engine backing `sys.history_*` (windows are
    /// cut after the statement that crosses the window boundary).
    history: Option<SharedHistory>,
    /// Cached `HistoryConfig::every_stmts` (0 = clock-driven windows). In
    /// stride mode the per-statement hook is a plain counter bump on
    /// `history_pending`, flushed into the engine only at window cuts.
    history_stride: u64,
    /// Statements completed since the last flush into the snapshot engine.
    history_pending: u64,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    pub fn new() -> Self {
        Self {
            catalog: Catalog::new(),
            mgr: LocalTxnManager::new(),
            hints: None,
            observer: None,
            table_funcs: HashMap::new(),
            clock: Arc::new(WallClock::new()),
            profiling: false,
            recorder: None,
            misestimate_ratio: 2.0,
            metrics: None,
            sys_plan_store: None,
            cache: PlanCache::new(PLAN_CACHE_CAP),
            history: None,
            history_stride: 0,
            history_pending: 0,
        }
    }

    /// Use `clock` for profiler timestamps (deterministic profiles under a
    /// shared [`hdm_telemetry::VirtualClock`]).
    pub fn set_clock(&mut self, clock: SharedClock) {
        self.clock = clock;
    }

    /// Record every statement's profile into `recorder` (implies profiling).
    /// The recorder also backs `sys.statements`.
    pub fn attach_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = Some(recorder);
    }

    /// Serve `sys.metrics` from `registry` (cheap: the registry handle is a
    /// shared `Arc`; a snapshot is only taken when a statement references
    /// the view).
    pub fn attach_metrics(&mut self, registry: MetricsRegistry) {
        self.metrics = Some(registry);
    }

    /// Serve `sys.plan_store` from `dump` (usually the same
    /// `SharedPlanStore` installed via [`Self::set_plan_store`]; kept as a
    /// separate hook so the plan-store API is unchanged).
    pub fn attach_sys_plan_store(&mut self, dump: Rc<dyn PlanStoreDump>) {
        self.sys_plan_store = Some(dump);
    }

    /// Record AWR-style workload-history windows into `history` (which also
    /// backs `sys.history_*`). Capture is observation-only: statements are
    /// counted at this facade and a window is cut after the statement that
    /// crosses the configured boundary. Statement/co-access detail appears
    /// only while a recorder is attached.
    pub fn attach_history(&mut self, history: SharedHistory) {
        self.history_stride = history.with(|e| e.config().every_stmts);
        self.history_pending = 0;
        self.history = Some(history);
    }

    /// Stop capturing workload history. Statements executed since the last
    /// window cut are discarded rather than flushed into a partial window.
    pub fn detach_history(&mut self) {
        self.history = None;
        self.history_stride = 0;
        self.history_pending = 0;
    }

    /// Force a window capture now (harnesses cut windows at deterministic
    /// points; no-op without an attached history engine).
    pub fn capture_history_now(&mut self) {
        if let Some(h) = self.history.clone() {
            self.capture_history(&h);
        }
    }

    fn capture_history(&mut self, h: &SharedHistory) {
        let pending = std::mem::take(&mut self.history_pending);
        let input = self.history_capture_input();
        h.with(|e| {
            if pending > 0 {
                e.note_statements(pending, input.now_us);
            }
            e.capture(input, self.recorder.as_ref())
        });
    }

    fn history_capture_input(&self) -> CaptureInput {
        let (cache_hits, cache_misses) = self.cache.stats();
        CaptureInput {
            now_us: self.clock.now_us(),
            metrics: self.metrics.as_ref().map(|m| m.snapshot()),
            shards: Vec::new(),
            cache_hits,
            cache_misses,
            cache_len: self.cache.len() as u64,
            plan_store_len: self
                .sys_plan_store
                .as_ref()
                .map(|d| d.dump_entries().len() as u64)
                .unwrap_or(0),
        }
    }

    /// Per-statement history hook: count the statement and cut a window
    /// when one is due. In stride mode the hot path is a single local
    /// counter bump; clock-driven mode reads the clock and asks the engine.
    /// Either way the capture itself runs once per window.
    fn maybe_capture_history(&mut self) {
        if self.history.is_none() {
            return;
        }
        if self.history_stride > 0 {
            self.history_pending += 1;
            if self.history_pending < self.history_stride {
                return;
            }
            let h = self.history.clone().expect("checked above");
            self.capture_history(&h);
        } else {
            let now = self.clock.now_us();
            let h = self.history.clone().expect("checked above");
            if h.with(|e| e.note_statement(now)) {
                let input = self.history_capture_input();
                h.with(|e| e.capture(input, self.recorder.as_ref()));
            }
        }
    }

    /// Profile every SELECT even without a recorder attached, surfacing
    /// [`QueryResult::profile`].
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Ratio at which `EXPLAIN ANALYZE` flags a misestimate. Defaults to 2.0
    /// — the plan store's capture threshold, so flags and captures agree.
    pub fn set_misestimate_ratio(&mut self, ratio: f64) {
        self.misestimate_ratio = ratio;
    }

    fn profiling_enabled(&self) -> bool {
        self.profiling || self.recorder.is_some()
    }

    /// Install the learning plan store (usually one object serving both
    /// roles — see `hdm-learnopt`).
    pub fn set_plan_store(
        &mut self,
        hints: Rc<dyn CardinalityHints>,
        observer: Rc<dyn StepObserver>,
    ) {
        self.hints = Some(hints);
        self.observer = Some(observer);
    }

    /// Disable the learning plan store.
    pub fn clear_plan_store(&mut self) {
        self.hints = None;
        self.observer = None;
    }

    /// Register a table-valued function usable in FROM.
    pub fn register_table_function(&mut self, name: &str, f: Box<dyn TableFunction>) {
        self.table_funcs.insert(name.to_ascii_lowercase(), f);
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Execute one SQL statement (rewritten before planning). Cacheable
    /// SELECTs are canonicalized and served through the prepared-statement
    /// plan cache, so repeat statements that differ only in literal values
    /// skip the parser and planner entirely.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let result = if let Some(c) = canonicalize(sql)? {
            self.execute_canonical(&c.text, &c.slots, &[], sql)
        } else {
            let mut stmt = parse(sql)?;
            crate::rewrite::rewrite_statement(&mut stmt);
            self.execute_statement_inner(&stmt, Some(sql))
        }?;
        self.maybe_capture_history();
        Ok(result)
    }

    /// Convenience: execute and return rows.
    pub fn query(&mut self, sql: &str) -> Result<Vec<Row>> {
        Ok(self.execute(sql)?.rows)
    }

    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult> {
        self.execute_statement_inner(stmt, None)
    }

    fn execute_statement_inner(&mut self, stmt: &Statement, sql: Option<&str>) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                if sys::is_sys_name(name) {
                    return Err(HdmError::Catalog(format!(
                        "the sys. namespace is reserved for system views (cannot create {name})"
                    )));
                }
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| {
                            let col = hdm_common::Column::new(c.name.clone(), c.data_type);
                            if c.not_null {
                                col.not_null()
                            } else {
                                col
                            }
                        })
                        .collect(),
                );
                self.catalog.create_table(name, schema)?;
                self.cache.bump_epoch();
                Ok(QueryResult::empty())
            }
            Statement::CreateIndex { table, columns } => {
                let t = self.catalog.get_mut(table)?;
                let idxs: Vec<usize> = columns
                    .iter()
                    .map(|c| {
                        t.schema()
                            .index_of(c)
                            .ok_or_else(|| HdmError::Catalog(format!("no column {c} in {table}")))
                    })
                    .collect::<Result<_>>()?;
                t.create_index(idxs)?;
                self.cache.bump_epoch();
                Ok(QueryResult::empty())
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.run_insert(table, columns.as_deref(), rows),
            Statement::Update {
                table,
                sets,
                where_clause,
            } => self.run_update(table, sets, where_clause.as_ref()),
            Statement::Delete {
                table,
                where_clause,
            } => self.run_delete(table, where_clause.as_ref()),
            Statement::Analyze { table } => {
                let snap = self.mgr.local_snapshot();
                let judge = SnapshotVisibility::new(&snap, self.mgr.clog(), None);
                match table {
                    Some(t) => self.catalog.get_mut(t)?.analyze(&judge),
                    None => {
                        for t in self.catalog.tables_mut() {
                            t.analyze(&judge);
                        }
                    }
                }
                // Fresh statistics change plan choices; cached plans are stale.
                self.cache.bump_epoch();
                Ok(QueryResult::empty())
            }
            Statement::Select(s) => self.run_select(s, sql),
            Statement::Explain { analyze, stmt } => self.run_explain(*analyze, stmt, sql),
        }
    }

    /// Freeze the statement-start state of every `sys.*` view `s`
    /// references. `None` (the overwhelmingly common case) means the
    /// statement never touches the introspection plane and pays nothing.
    fn sys_snapshot_for(&self, s: &SelectStmt) -> Option<SysSnapshot> {
        let wanted = sys::referenced_views_in_select(s);
        if wanted.is_empty() {
            return None;
        }
        let mut snap = SysSnapshot::new();
        for view in wanted {
            let rows = match view.as_str() {
                "sys.metrics" => self.metric_rows(),
                "sys.statements" => self
                    .recorder
                    .as_ref()
                    .map(sys::statement_rows)
                    .unwrap_or_default(),
                "sys.txns" => self.txn_rows(),
                "sys.plan_store" => self
                    .sys_plan_store
                    .as_ref()
                    .map(|d| sys::plan_store_rows(d.as_ref()))
                    .unwrap_or_default(),
                "sys.prepared" => self.prepared_rows(),
                "sys.indexes" => self.index_rows(),
                "sys.config" => self.config_rows(),
                "sys.history_windows" => self
                    .history
                    .as_ref()
                    .map(sys::history_window_rows)
                    .unwrap_or_default(),
                "sys.history_metrics" => self
                    .history
                    .as_ref()
                    .map(sys::history_metric_rows)
                    .unwrap_or_default(),
                "sys.history_statements" => self
                    .history
                    .as_ref()
                    .map(sys::history_statement_rows)
                    .unwrap_or_default(),
                "sys.history_coaccess" => self
                    .history
                    .as_ref()
                    .map(sys::history_coaccess_rows)
                    .unwrap_or_default(),
                // The embedded engine has no shards, replicas, or event
                // journal: those views exist (same schema as distributed)
                // but scan empty.
                _ => Vec::new(),
            };
            snap.insert(&view, rows);
        }
        Some(snap)
    }

    /// `sys.metrics` rows: the attached registry's snapshot, plus the
    /// synthetic `recorder.dropped` ring-eviction counter when a recorder is
    /// attached (the registry itself is untouched, so telemetry exports stay
    /// byte-identical).
    fn metric_rows(&self) -> Vec<Row> {
        let mut snap = self
            .metrics
            .as_ref()
            .map(|m| m.snapshot())
            .unwrap_or_default();
        let mut synthetic = false;
        if let Some(r) = &self.recorder {
            snap.counters.insert("recorder.dropped".into(), r.dropped());
            synthetic = true;
        }
        if self.metrics.is_none() && !synthetic {
            return Vec::new();
        }
        sys::metrics_rows(&snap)
    }

    /// `sys.config` rows: the embedded engine's effective knobs, one row per
    /// knob in a fixed order (engine, then telemetry, then history).
    fn config_rows(&self) -> Vec<Row> {
        let mut rows = vec![
            sys::config_row("misestimate_ratio", self.misestimate_ratio, "float", "engine"),
            sys::config_row("plan_cache.cap", PLAN_CACHE_CAP, "int", "engine"),
            sys::config_row("profiling", self.profiling, "bool", "engine"),
        ];
        if let Some(r) = &self.recorder {
            let (cap, slow) = r.with(|r| (r.config().capacity, r.config().slow_threshold_us));
            rows.push(sys::config_row("recorder.capacity", cap, "int", "telemetry"));
            rows.push(sys::config_row(
                "recorder.slow_threshold_us",
                slow,
                "int",
                "telemetry",
            ));
        }
        if let Some(h) = &self.history {
            let cfg = h.with(|e| e.config());
            rows.push(sys::config_row("history.baseline", cfg.baseline, "int", "history"));
            rows.push(sys::config_row("history.capacity", cfg.capacity, "int", "history"));
            rows.push(sys::config_row(
                "history.every_stmts",
                cfg.every_stmts,
                "int",
                "history",
            ));
            rows.push(sys::config_row("history.top_k", cfg.top_k, "int", "history"));
            rows.push(sys::config_row("history.window_us", cfg.window_us, "int", "history"));
        }
        rows
    }

    /// `sys.txns` rows for the embedded engine: the local manager's active
    /// transactions (shard is NULL — there is no placement here).
    fn txn_rows(&self) -> Vec<Row> {
        let snap = self.mgr.local_snapshot();
        snap.active
            .iter()
            .map(|xid| {
                let state = match self.mgr.status(*xid) {
                    TxnStatus::InProgress => "in_progress",
                    TxnStatus::Prepared => "prepared",
                    TxnStatus::Committed => "committed",
                    TxnStatus::Aborted => "aborted",
                };
                let gxid = self
                    .mgr
                    .gxid_of(*xid)
                    .map(|g| Datum::Int(g.raw() as i64))
                    .unwrap_or(Datum::Null);
                Row::new(vec![
                    Datum::Null,
                    Datum::Int(xid.raw() as i64),
                    gxid,
                    Datum::Text(state.into()),
                ])
            })
            .collect()
    }

    fn plan_with_ctes(
        &mut self,
        s: &SelectStmt,
        sys_snap: Option<&SysSnapshot>,
    ) -> Result<(PlanNode, PlanningInfo)> {
        // Materialize CTEs in order; later CTEs may reference earlier ones.
        let mut temp: TempRels = TempRels::new();
        for (name, sub) in &s.with {
            let (plan, _) = {
                let mut p = Planner::new(
                    &self.catalog,
                    self.hints.as_deref(),
                    &self.table_funcs,
                )
                .with_sys(sys_snap);
                (p.plan_select(sub, &temp)?, p.info)
            };
            let mut obs = Vec::new();
            let rows = {
                let mut be =
                    LocalBackend::new(&mut self.catalog, &mut self.mgr).with_sys(sys_snap);
                execute(&plan, &mut be, &mut obs)?
            };
            if let Some(o) = &self.observer {
                o.observe(&obs);
            }
            temp.insert(name.to_ascii_lowercase(), (plan.schema.clone(), rows));
        }
        let mut p = Planner::new(&self.catalog, self.hints.as_deref(), &self.table_funcs)
            .with_sys(sys_snap);
        let plan = p.plan_select(s, &temp)?;
        Ok((plan, p.info))
    }

    fn run_select(&mut self, s: &SelectStmt, sql: Option<&str>) -> Result<QueryResult> {
        if self.profiling_enabled() {
            return self.run_select_profiled(s, sql);
        }
        let sys_snap = self.sys_snapshot_for(s);
        let (plan, planning) = self.plan_with_ctes(s, sys_snap.as_ref())?;
        let mut steps = Vec::new();
        let rows = {
            let mut be =
                LocalBackend::new(&mut self.catalog, &mut self.mgr).with_sys(sys_snap.as_ref());
            execute(&plan, &mut be, &mut steps)?
        };
        if let Some(o) = &self.observer {
            o.observe(&steps);
        }
        Ok(QueryResult {
            columns: plan.schema.cols.iter().map(|c| c.name.clone()).collect(),
            rows,
            affected: 0,
            steps,
            planning,
            profile: None,
        })
    }

    /// The profiled SELECT path: identical plan, rows and observation list to
    /// the plain path, plus a [`StatementProfile`] mirroring the plan tree.
    /// The plan store is fed from the profile-derived observations — the
    /// same artifact `EXPLAIN ANALYZE` and the flight recorder expose, so
    /// the Fig 6 capture loop is auditable end to end.
    fn run_select_profiled(&mut self, s: &SelectStmt, sql: Option<&str>) -> Result<QueryResult> {
        let start = self.clock.now_us();
        let sys_snap = self.sys_snapshot_for(s);
        let (plan, planning) = self.plan_with_ctes(s, sys_snap.as_ref())?;
        let planned = self.clock.now_us();
        let mut steps = Vec::new();
        let mut prof = Profiler::new(self.clock.clone());
        let rows = {
            let mut be =
                LocalBackend::new(&mut self.catalog, &mut self.mgr).with_sys(sys_snap.as_ref());
            execute_with_profiler(&plan, &mut be, &mut steps, &mut prof)?
        };
        let done = self.clock.now_us();
        let profile = StatementProfile {
            sql: sql.unwrap_or("").to_string(),
            scope: "local".to_string(),
            start_us: start,
            plan_us: planned.saturating_sub(start),
            exec_us: done.saturating_sub(planned),
            total_us: done.saturating_sub(start),
            rows_out: rows.len() as u64,
            gtm_interactions: 0,
            twopc_legs: 0,
            root: prof.finish(),
        };
        let derived = observations(profile.root.as_ref());
        debug_assert_eq!(derived, steps, "profile must derive the executor's own observations");
        if let Some(o) = &self.observer {
            o.observe(&derived);
        }
        if let Some(r) = &self.recorder {
            r.record(profile.clone());
        }
        Ok(QueryResult {
            columns: plan.schema.cols.iter().map(|c| c.name.clone()).collect(),
            rows,
            affected: 0,
            steps: derived,
            planning,
            profile: Some(profile),
        })
    }

    /// Fetch (or build) the cache entry for canonical statement text.
    fn ensure_cached(&mut self, canonical: &str) -> Result<Rc<CachedStmt>> {
        if let Some(e) = self.cache.get(canonical) {
            return Ok(e);
        }
        let mut stmt = parse(canonical)?;
        crate::rewrite::rewrite_statement(&mut stmt);
        let n_params = count_params(&stmt);
        let Statement::Select(s) = stmt else {
            return Err(HdmError::Plan(
                "plan cache holds SELECT statements only".into(),
            ));
        };
        let (plan, _) = self.plan_with_ctes(&s, None)?;
        let entry = Rc::new(CachedStmt {
            param_types: collect_param_types(&plan, n_params),
            program: compile(&plan),
            drift: crate::prepared::drift_probes(&plan),
            drift_state: Cell::new(None),
            plan,
        });
        self.cache.insert(canonical.to_string(), Rc::clone(&entry));
        Ok(entry)
    }

    /// Execute a canonicalized statement through the plan cache: bind the
    /// lifted/user parameters, rehint estimates against the plan store, and
    /// run either the compiled op-array (profiling off) or the plan tree.
    fn execute_canonical(
        &mut self,
        text: &str,
        slots: &[Option<Datum>],
        user_params: &[Datum],
        sql: &str,
    ) -> Result<QueryResult> {
        let mut cached = self.ensure_cached(text)?;
        // Re-plan on drift: when the plan store's captured actuals diverge
        // from the cached plan's planning-time estimates past the
        // misestimate ratio, the cached access-path and join-order choices
        // are suspect — drop the entry and plan fresh against current hints.
        let mut replans = 0u64;
        if let Some(hints) = self.hints.as_deref() {
            if crate::prepared::drift_exceeds(
                &cached.drift,
                &cached.drift_state,
                hints,
                self.misestimate_ratio,
            ) {
                self.cache.remove(text);
                cached = self.ensure_cached(text)?;
                replans = 1;
            }
        }
        let params = bind_slots(slots, &cached.param_types, user_params)?;
        if self.profiling_enabled() {
            return self.run_cached_profiled(&cached, &params, sql, replans);
        }
        if let Some(prog) = &cached.program {
            let (ests, mut planning) = self.rehint_steps(&prog.steps);
            planning.replans = replans;
            let mut steps = Vec::new();
            let rows = {
                let mut be = LocalBackend::new(&mut self.catalog, &mut self.mgr);
                prog.run(&params, &ests, &mut be, &mut steps)?
            };
            if let Some(o) = &self.observer {
                o.observe(&steps);
            }
            return Ok(QueryResult {
                columns: prog.schema.cols.iter().map(|c| c.name.clone()).collect(),
                rows,
                affected: 0,
                steps,
                planning,
                profile: None,
            });
        }
        let mut plan = cached.plan.substitute_params(&params)?;
        let mut planning = PlanningInfo {
            replans,
            ..Default::default()
        };
        self.rehint_plan(&mut plan, &mut planning);
        let mut steps = Vec::new();
        let rows = {
            let mut be = LocalBackend::new(&mut self.catalog, &mut self.mgr);
            execute(&plan, &mut be, &mut steps)?
        };
        if let Some(o) = &self.observer {
            o.observe(&steps);
        }
        Ok(QueryResult {
            columns: plan.schema.cols.iter().map(|c| c.name.clone()).collect(),
            rows,
            affected: 0,
            steps,
            planning,
            profile: None,
        })
    }

    /// The profiled flavor of cached execution: same substituted plan, tree
    /// executor with the profiler attached — identical machinery to the
    /// unprofiled tree path, so profiles derive the executor's observations
    /// exactly as the fresh-planned path does.
    fn run_cached_profiled(
        &mut self,
        cached: &CachedStmt,
        params: &[Datum],
        sql: &str,
        replans: u64,
    ) -> Result<QueryResult> {
        let start = self.clock.now_us();
        let mut plan = cached.plan.substitute_params(params)?;
        let mut planning = PlanningInfo {
            replans,
            ..Default::default()
        };
        self.rehint_plan(&mut plan, &mut planning);
        let planned = self.clock.now_us();
        let mut steps = Vec::new();
        let mut prof = Profiler::new(self.clock.clone());
        let rows = {
            let mut be = LocalBackend::new(&mut self.catalog, &mut self.mgr);
            execute_with_profiler(&plan, &mut be, &mut steps, &mut prof)?
        };
        let done = self.clock.now_us();
        let profile = StatementProfile {
            sql: sql.to_string(),
            scope: "local".to_string(),
            start_us: start,
            plan_us: planned.saturating_sub(start),
            exec_us: done.saturating_sub(planned),
            total_us: done.saturating_sub(start),
            rows_out: rows.len() as u64,
            gtm_interactions: 0,
            twopc_legs: 0,
            root: prof.finish(),
        };
        let derived = observations(profile.root.as_ref());
        debug_assert_eq!(derived, steps, "profile must derive the executor's own observations");
        if let Some(o) = &self.observer {
            o.observe(&derived);
        }
        if let Some(r) = &self.recorder {
            r.record(profile.clone());
        }
        Ok(QueryResult {
            columns: plan.schema.cols.iter().map(|c| c.name.clone()).collect(),
            rows,
            affected: 0,
            steps: derived,
            planning,
            profile: Some(profile),
        })
    }

    /// Re-apply plan-store hints to a cached plan before execution — the
    /// cached-path counterpart of the planner's per-node hint lookup, so
    /// [`PlanningInfo`] counts match fresh planning.
    fn rehint_plan(&self, plan: &mut PlanNode, info: &mut PlanningInfo) {
        let Some(hints) = self.hints.as_deref() else {
            return;
        };
        crate::prepared::rehint_plan(plan, hints, info);
    }

    /// Rehint the step templates of a compiled program (same hit/miss
    /// accounting as [`Self::rehint_plan`] — templates mirror the plan's
    /// canonical-bearing nodes one to one).
    fn rehint_steps(&self, steps: &[StepTemplate]) -> (Vec<f64>, PlanningInfo) {
        let mut info = PlanningInfo::default();
        let mut ests: Vec<f64> = steps.iter().map(|s| s.est_rows).collect();
        if let Some(hints) = self.hints.as_deref() {
            for (i, st) in steps.iter().enumerate() {
                match hints.lookup(&st.text) {
                    Some(v) => {
                        info.hint_hits += 1;
                        ests[i] = v as f64;
                    }
                    None => info.hint_misses += 1,
                }
            }
        }
        (ests, info)
    }

    /// `sys.indexes` rows: one per secondary index, sorted by table name
    /// then index id. The embedded engine has no shards, so the backing
    /// shard set renders as `-`.
    fn index_rows(&self) -> Vec<Row> {
        let mut names: Vec<&str> = self.catalog.names().collect();
        names.sort_unstable();
        let mut rows = Vec::new();
        for name in names {
            let Ok(t) = self.catalog.get(name) else {
                continue;
            };
            for (ix_id, ix) in t.indexes().iter().enumerate() {
                let cols: Vec<&str> = ix
                    .key_columns()
                    .iter()
                    .map(|&c| t.schema().columns()[c].name.as_str())
                    .collect();
                rows.push(Row::new(vec![
                    Datum::Text(format!("{name}_ix{ix_id}")),
                    Datum::Text(name.to_string()),
                    Datum::Text(cols.join(",")),
                    Datum::Int(ix.len() as i64),
                    Datum::Text("-".into()),
                ]));
            }
        }
        rows
    }

    /// `sys.prepared` rows: one per cached plan, sorted by canonical text.
    fn prepared_rows(&self) -> Vec<Row> {
        self.cache
            .snapshot()
            .into_iter()
            .map(|(text, e)| {
                let ops = e.payload.program.as_ref().map_or(0, CompiledProgram::op_count);
                Row::new(vec![
                    Datum::Text(text.to_string()),
                    Datum::Int(e.hits as i64),
                    Datum::Int(ops as i64),
                    Datum::Int(e.last_used as i64),
                ])
            })
            .collect()
    }

    /// Split borrow of the storage halves (tests and the compiled runner).
    #[cfg(test)]
    pub(crate) fn storage_parts(&mut self) -> (&mut Catalog, &mut LocalTxnManager) {
        (&mut self.catalog, &mut self.mgr)
    }

    fn run_explain(
        &mut self,
        analyze: bool,
        inner: &Statement,
        sql: Option<&str>,
    ) -> Result<QueryResult> {
        let Statement::Select(s) = inner else {
            return Err(HdmError::Unsupported("EXPLAIN supports SELECT only".into()));
        };
        if analyze {
            // Execute for real (observing into the plan store as usual) and
            // render the annotated tree instead of the result rows.
            let r = self.run_select_profiled(s, sql)?;
            let profile = r.profile.expect("profiled select carries a profile");
            let rows: Vec<Row> = render_analyze(&profile, self.misestimate_ratio)
                .into_iter()
                .map(|l| Row::new(vec![Datum::Text(l)]))
                .collect();
            return Ok(QueryResult {
                columns: vec!["plan".into()],
                rows,
                affected: 0,
                steps: r.steps,
                planning: r.planning,
                profile: Some(profile),
            });
        }
        let sys_snap = self.sys_snapshot_for(s);
        let (plan, planning) = self.plan_with_ctes(s, sys_snap.as_ref())?;
        let text = plan.explain();
        let rows: Vec<Row> = text
            .lines()
            .map(|l| Row::new(vec![Datum::Text(l.to_string())]))
            .collect();
        Ok(QueryResult {
            columns: vec!["plan".into()],
            rows,
            affected: 0,
            steps: vec![],
            planning,
            profile: None,
        })
    }

    fn run_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<crate::ast::Expr>],
    ) -> Result<QueryResult> {
        sys::check_read_only(table)?;
        // Evaluate all rows before writing anything.
        let t = self.catalog.get(table)?;
        let width = t.schema().len();
        let col_map: Vec<usize> = match columns {
            None => (0..width).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| {
                    t.schema()
                        .index_of(c)
                        .ok_or_else(|| HdmError::Catalog(format!("no column {c} in {table}")))
                })
                .collect::<Result<_>>()?,
        };
        let empty = BoundSchema::default();
        let mut materialized: Vec<Row> = Vec::with_capacity(rows.len());
        for r in rows {
            if r.len() != col_map.len() {
                return Err(HdmError::Execution(format!(
                    "INSERT row has {} values, expected {}",
                    r.len(),
                    col_map.len()
                )));
            }
            let mut vals = vec![Datum::Null; width];
            for (expr, &slot) in r.iter().zip(&col_map) {
                vals[slot] = bind(expr, &empty)?.eval(&[])?;
            }
            materialized.push(Row::new(vals));
        }

        let mut be = LocalBackend::new(&mut self.catalog, &mut self.mgr);
        let affected = crate::backend::ExecBackend::insert(&mut be, table, materialized)?;
        Ok(QueryResult {
            affected,
            ..QueryResult::empty()
        })
    }

    fn run_update(
        &mut self,
        table: &str,
        sets: &[(String, crate::ast::Expr)],
        where_clause: Option<&crate::ast::Expr>,
    ) -> Result<QueryResult> {
        sys::check_read_only(table)?;
        let t = self.catalog.get(table)?;
        let schema = BoundSchema::from_table(
            &table.to_ascii_lowercase(),
            &table.to_ascii_lowercase(),
            t.schema(),
        );
        let pred = where_clause.map(|w| bind(w, &schema)).transpose()?;
        let set_bound: Vec<(usize, crate::expr::SExpr)> = sets
            .iter()
            .map(|(c, e)| {
                let idx = t
                    .schema()
                    .index_of(c)
                    .ok_or_else(|| HdmError::Catalog(format!("no column {c} in {table}")))?;
                Ok((idx, bind(e, &schema)?))
            })
            .collect::<Result<_>>()?;

        let mut be = LocalBackend::new(&mut self.catalog, &mut self.mgr);
        let affected =
            crate::backend::ExecBackend::update(&mut be, table, &set_bound, pred.as_ref())?;
        Ok(QueryResult {
            affected,
            ..QueryResult::empty()
        })
    }

    fn run_delete(
        &mut self,
        table: &str,
        where_clause: Option<&crate::ast::Expr>,
    ) -> Result<QueryResult> {
        sys::check_read_only(table)?;
        let t = self.catalog.get(table)?;
        let schema = BoundSchema::from_table(
            &table.to_ascii_lowercase(),
            &table.to_ascii_lowercase(),
            t.schema(),
        );
        let pred = where_clause.map(|w| bind(w, &schema)).transpose()?;
        let mut be = LocalBackend::new(&mut self.catalog, &mut self.mgr);
        let affected = crate::backend::ExecBackend::delete(&mut be, table, pred.as_ref())?;
        Ok(QueryResult {
            affected,
            ..QueryResult::empty()
        })
    }

    /// Parse + plan a SELECT and return the plan without executing —
    /// exposes estimates to tests and the Table I harness.
    pub fn plan_only(&mut self, sql: &str) -> Result<PlanNode> {
        let mut stmt = parse(sql)?;
        crate::rewrite::rewrite_statement(&mut stmt);
        let Statement::Select(s) = stmt else {
            return Err(HdmError::Plan("plan_only expects SELECT".into()));
        };
        let sys_snap = self.sys_snapshot_for(&s);
        Ok(self.plan_with_ctes(&s, sys_snap.as_ref())?.0)
    }
}

impl QueryApi for Database {
    fn prepare_handle(&mut self, sql: &str) -> Result<StmtHandle> {
        if let Some(c) = canonicalize(sql)? {
            // Validate (and warm the cache) by planning once up front, so
            // unknown tables/columns surface at prepare time.
            self.ensure_cached(&c.text)?;
            let n_open = c.open_params();
            return Ok(StmtHandle::Cached {
                canonical: c.text,
                slots: c.slots,
                n_open,
            });
        }
        let mut stmt = parse(sql)?;
        crate::rewrite::rewrite_statement(&mut stmt);
        let n_params = count_params(&stmt);
        Ok(StmtHandle::Ast {
            stmt: Box::new(stmt),
            n_params,
            sql: sql.to_string(),
        })
    }

    fn execute_prepared(&mut self, handle: &StmtHandle, params: &[Datum]) -> Result<QueryResult> {
        let result = match handle {
            StmtHandle::Cached {
                canonical, slots, ..
            } => self.execute_canonical(canonical, slots, params, canonical),
            StmtHandle::Ast {
                stmt,
                n_params,
                sql,
            } => {
                if params.len() != *n_params {
                    return Err(HdmError::Execution(format!(
                        "statement has {n_params} parameters; got {}",
                        params.len()
                    )));
                }
                let bound = substitute_statement_params(stmt, params)?;
                self.execute_statement_inner(&bound, Some(sql))
            }
        }?;
        self.maybe_capture_history();
        Ok(result)
    }

    /// The embedded engine has no replication to retry against; options are
    /// accepted for API parity with the distributed engine.
    fn execute_opts(&mut self, sql: &str, _opts: ExecOptions) -> Result<QueryResult> {
        self.execute(sql)
    }
}

/// Free helper: evaluate SELECT items when validating star-expansion (used
/// by tests; kept public-in-crate for the planner tests).
#[allow(dead_code)]
fn is_star(items: &[SelectItem]) -> bool {
    matches!(items, [SelectItem::Star])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::row;

    fn setup() -> Database {
        let mut db = Database::new();
        db.execute("create table olap.t1 (a1 int, b1 int)").unwrap();
        db.execute("create table olap.t2 (a2 int)").unwrap();
        // t1: 1000 rows, b1 skewed: 0..=99 repeating, a1 = i % 200.
        for chunk in (0..1000i64).collect::<Vec<_>>().chunks(100) {
            let values: Vec<String> = chunk
                .iter()
                .map(|i| format!("({}, {})", i % 200, i % 100))
                .collect();
            db.execute(&format!(
                "insert into olap.t1 values {}",
                values.join(", ")
            ))
            .unwrap();
        }
        // t2: 200 rows, a2 = i.
        let values: Vec<String> = (0..200i64).map(|i| format!("({i})")).collect();
        db.execute(&format!("insert into olap.t2 values {}", values.join(", ")))
            .unwrap();
        db.execute("analyze").unwrap();
        db
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut db = Database::new();
        db.execute("create table t (a int, b text)").unwrap();
        let r = db
            .execute("insert into t values (1, 'x'), (2, 'y')")
            .unwrap();
        assert_eq!(r.affected, 2);
        let rows = db.query("select a, b from t order by a desc").unwrap();
        assert_eq!(rows, vec![row![2, "y"], row![1, "x"]]);
    }

    #[test]
    fn where_filtering_and_projection_exprs() {
        let mut db = setup();
        let rows = db
            .query("select a1 + 1 from olap.t1 where b1 = 7 order by a1 limit 3")
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], row![8]); // a1=7 -> 8
    }

    #[test]
    fn the_table1_join_runs_and_counts() {
        let mut db = setup();
        let r = db
            .execute(
                "select * from olap.t1, olap.t2 \
                 where olap.t1.a1 = olap.t2.a2 and olap.t1.b1 > 10",
            )
            .unwrap();
        // b1 > 10: 890 of 1000 rows; all a1 values < 200 join t2 exactly once.
        assert_eq!(r.rows.len(), 890);
        // Steps observed: two scans and a join.
        let kinds: Vec<_> = r.steps.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&crate::plan::StepKind::Scan));
        assert!(kinds.contains(&crate::plan::StepKind::Join));
        let join = r
            .steps
            .iter()
            .find(|s| s.kind == crate::plan::StepKind::Join)
            .unwrap();
        assert_eq!(join.actual, 890);
    }

    #[test]
    fn group_by_aggregates() {
        let mut db = setup();
        let rows = db
            .query(
                "select b1, count(*), sum(a1) from olap.t1 \
                 where b1 < 2 group by b1 order by b1",
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        // b1 = 0: rows i in {0,100,...,900}, count 10.
        assert_eq!(rows[0].get(1).unwrap().as_int(), Some(10));
    }

    #[test]
    fn global_aggregate_without_group() {
        let mut db = setup();
        let r = db.execute("select count(*), min(b1), max(b1) from olap.t1").unwrap();
        assert_eq!(r.rows[0], row![1000, 0, 99]);
    }

    #[test]
    fn update_and_delete() {
        let mut db = Database::new();
        db.execute("create table t (a int, b int)").unwrap();
        db.execute("insert into t values (1, 10), (2, 20), (3, 30)")
            .unwrap();
        let r = db.execute("update t set b = b + 1 where a >= 2").unwrap();
        assert_eq!(r.affected, 2);
        let r = db.execute("delete from t where a = 1").unwrap();
        assert_eq!(r.affected, 1);
        let rows = db.query("select b from t order by b").unwrap();
        assert_eq!(rows, vec![row![21], row![31]]);
    }

    #[test]
    fn index_scan_is_chosen_for_equality() {
        let mut db = setup();
        db.execute("create index on olap.t2 (a2)").unwrap();
        let plan = db.plan_only("select * from olap.t2 where a2 = 7").unwrap();
        assert!(
            matches!(plan.op, crate::plan::PlanOp::IndexScan { .. }),
            "expected index scan, got {:?}",
            plan.op
        );
        let rows = db.query("select * from olap.t2 where a2 = 7").unwrap();
        assert_eq!(rows, vec![row![7]]);
    }

    #[test]
    fn index_and_seq_scans_share_canonical_text() {
        let mut db = setup();
        let seq = db.plan_only("select * from olap.t2 where a2 = 7").unwrap();
        let seq_text = seq.canonical().unwrap();
        db.execute("create index on olap.t2 (a2)").unwrap();
        let ix = db.plan_only("select * from olap.t2 where a2 = 7").unwrap();
        assert_eq!(ix.canonical().unwrap(), seq_text);
    }

    #[test]
    fn set_operations() {
        let mut db = Database::new();
        db.execute("create table a (x int)").unwrap();
        db.execute("create table b (x int)").unwrap();
        db.execute("insert into a values (1), (2), (2), (3)").unwrap();
        db.execute("insert into b values (2), (3), (4)").unwrap();
        let rows = db
            .query("select x from a union select x from b order by x")
            .unwrap();
        assert_eq!(rows, vec![row![1], row![2], row![3], row![4]]);
        let rows = db
            .query("select x from a intersect select x from b order by x")
            .unwrap();
        assert_eq!(rows, vec![row![2], row![3]]);
        let rows = db
            .query("select x from a except select x from b order by x")
            .unwrap();
        assert_eq!(rows, vec![row![1]]);
        let rows = db
            .query("select x from a union all select x from b")
            .unwrap();
        assert_eq!(rows.len(), 7);
    }

    #[test]
    fn ctes_materialize_and_join() {
        let mut db = setup();
        let rows = db
            .query(
                "with big as (select a1 from olap.t1 where b1 > 95) \
                 select count(*) from big",
            )
            .unwrap();
        assert_eq!(rows[0], row![40]); // b1 in {96..99}: 4 * 10 rows
    }

    #[test]
    fn explain_returns_plan_text() {
        let mut db = setup();
        let r = db
            .execute("explain select * from olap.t1 where b1 > 10")
            .unwrap();
        let text: Vec<String> = r
            .rows
            .iter()
            .map(|row| row.get(0).unwrap().as_text().unwrap().to_string())
            .collect();
        assert!(text[0].contains("Seq Scan on olap.t1"));
    }

    #[test]
    fn hints_override_estimates() {
        struct Fixed;
        impl CardinalityHints for Fixed {
            fn lookup(&self, step: &str) -> Option<u64> {
                step.starts_with("SCAN(OLAP.T1").then_some(123_456)
            }
        }
        struct Nop;
        impl StepObserver for Nop {
            fn observe(&self, _: &[StepObservation]) {}
        }
        let mut db = setup();
        db.set_plan_store(Rc::new(Fixed), Rc::new(Nop));
        let plan = db
            .plan_only("select * from olap.t1 where b1 > 10")
            .unwrap();
        assert_eq!(plan.est_rows(), 123_456.0);
    }

    #[test]
    fn observer_receives_steps() {
        use std::cell::RefCell;
        #[derive(Default)]
        struct Capture(RefCell<Vec<StepObservation>>);
        impl StepObserver for Capture {
            fn observe(&self, steps: &[StepObservation]) {
                self.0.borrow_mut().extend(steps.iter().cloned());
            }
        }
        struct NoHints;
        impl CardinalityHints for NoHints {
            fn lookup(&self, _: &str) -> Option<u64> {
                None
            }
        }
        let mut db = setup();
        let cap = Rc::new(Capture::default());
        db.set_plan_store(Rc::new(NoHints), cap.clone());
        db.query("select * from olap.t1 where b1 > 10").unwrap();
        assert!(!cap.0.borrow().is_empty());
    }

    #[test]
    fn table_functions_feed_from() {
        struct Doubler;
        impl TableFunction for Doubler {
            fn eval(&self, args: &[Datum]) -> Result<(Schema, Vec<Row>)> {
                let n = args[0].as_int().unwrap_or(0);
                let schema = Schema::from_pairs(&[("v", hdm_common::DataType::Int)]);
                let rows = (0..n).map(|i| row![i * 2]).collect();
                Ok((schema, rows))
            }
        }
        let mut db = Database::new();
        db.register_table_function("doubler", Box::new(Doubler));
        let rows = db
            .query("select v from doubler(3) d where v > 0 order by v")
            .unwrap();
        assert_eq!(rows, vec![row![2], row![4]]);
    }

    #[test]
    fn subquery_in_from() {
        let mut db = setup();
        let rows = db
            .query(
                "select count(*) from \
                 (select a1 from olap.t1 where b1 = 0) s where s.a1 < 100",
            )
            .unwrap();
        assert_eq!(rows[0], row![5]); // i in {0,100,...,900}, a1=i%200<100: i=0,100,400,500,800,900 -> wait
    }

    #[test]
    fn select_distinct_deduplicates() {
        let mut db = Database::new();
        db.execute("create table t (a int, b int)").unwrap();
        db.execute("insert into t values (1,1), (1,1), (1,2), (2,1)")
            .unwrap();
        let rows = db.query("select distinct a from t order by a").unwrap();
        assert_eq!(rows, vec![row![1], row![2]]);
        let rows = db.query("select distinct a, b from t order by a, b").unwrap();
        assert_eq!(rows.len(), 3);
        // Non-distinct control.
        assert_eq!(db.query("select a from t").unwrap().len(), 4);
    }

    #[test]
    fn having_filters_groups() {
        let mut db = setup();
        // Groups of b1 with at least 11 members (none: each b1 has 10).
        let rows = db
            .query("select b1, count(*) from olap.t1 group by b1 having count(*) > 10")
            .unwrap();
        assert!(rows.is_empty());
        let rows = db
            .query(
                "select b1, count(*) from olap.t1 where b1 < 5 \
                 group by b1 having sum(a1) > 400 order by b1",
            )
            .unwrap();
        // Each b1 group: a1 values five x and five x+100 → sum = 10x + 500.
        // sum > 400 always holds (x >= 0): all 5 groups pass.
        assert_eq!(rows.len(), 5);
        // Tighter: sum > 530 → 10x + 500 > 530 → x > 3 → only b1 = 4.
        let rows = db
            .query(
                "select b1 from olap.t1 where b1 < 5 \
                 group by b1 having sum(a1) > 530",
            )
            .unwrap();
        assert_eq!(rows, vec![row![4]]);
    }

    #[test]
    fn having_with_fresh_aggregate_not_in_select() {
        let mut db = setup();
        let rows = db
            .query(
                "select b1 from olap.t1 group by b1 \
                 having max(a1) >= 199 order by b1 limit 3",
            )
            .unwrap();
        // max(a1) per b1 group: values b1 and b1+100 and ... a1 = i % 200;
        // groups with i%100==b1: a1 ∈ {b1, b1+100} → max = b1 + 100.
        // max >= 199 → b1 >= 99 → only b1 = 99.
        assert_eq!(rows, vec![row![99]]);
    }

    #[test]
    fn errors_are_reported() {
        let mut db = Database::new();
        assert!(db.execute("select * from missing").is_err());
        db.execute("create table t (a int)").unwrap();
        assert!(db.execute("select b from t").is_err());
        assert!(db.execute("insert into t values (1, 2)").is_err());
        assert!(db.execute("select a, count(*) from t").is_err(), "a not grouped");
    }
}

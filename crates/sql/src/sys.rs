//! The `sys.*` introspection plane: virtual system views served through the
//! [`ExecBackend`](crate::backend::ExecBackend) seam.
//!
//! The views are not catalog tables. At statement start the engine (embedded
//! `Db` or the distributed coordinator) materializes a [`SysSnapshot`] — a
//! name → rows map frozen on the pluggable clock — but **only** when the
//! statement's FROM trees actually reference a `sys.` name, so the hot path
//! never pays for introspection it did not ask for. The planner synthesizes
//! an ordinary `SeqScan` for a snapshotted view (no shard annotation, no
//! index probing) and the backend serves the frozen rows from the snapshot,
//! which means filters, projections, aggregates, and joins against user
//! tables all work unchanged — the executor cannot tell a system view from
//! a heap table.
//!
//! Determinism rules (golden-file pinnable output):
//! * a view's rows are computed once, at statement start, from engine state
//!   plus the pluggable clock — never lazily mid-execution;
//! * row order is fixed (metrics sorted by rendered series name, shards by
//!   shard id, statements by flight-recorder sequence, events by journal
//!   sequence, plan-store entries MRU-first as `PlanStore::dump` yields
//!   them, transactions by `(shard, xid)`);
//! * floating-point columns are derived from integer engine state, so equal
//!   inputs render equal output.
//!
//! Views are read-only: INSERT/UPDATE/DELETE against a `sys.` name and
//! CREATE TABLE of a `sys.`-prefixed name are rejected by both engines.

use crate::ast::{SelectStmt, Statement, TableRef};
use hdm_common::{Column, DataType, Datum, Row, Schema};
use hdm_telemetry::{MetricsSnapshot, SharedHistory, SharedRecorder, StatementProfile};
use std::collections::{BTreeMap, BTreeSet};

/// Reserved prefix for system views (and rejected for user table names).
pub const SYS_PREFIX: &str = "sys.";

/// Every view the introspection plane serves.
pub const SYS_VIEWS: &[&str] = &[
    "sys.metrics",
    "sys.statements",
    "sys.shards",
    "sys.txns",
    "sys.events",
    "sys.plan_store",
    "sys.prepared",
    "sys.indexes",
    "sys.config",
    "sys.history_windows",
    "sys.history_metrics",
    "sys.history_statements",
    "sys.history_coaccess",
];

/// Is `name` (any case) one of the served `sys.*` views?
pub fn is_sys_view(name: &str) -> bool {
    let key = name.to_ascii_lowercase();
    SYS_VIEWS.contains(&key.as_str())
}

/// Does `name` (any case) sit in the reserved `sys.` namespace?
pub fn is_sys_name(name: &str) -> bool {
    name.to_ascii_lowercase().starts_with(SYS_PREFIX)
}

/// DML against the `sys.` namespace is rejected identically by both engines.
pub fn check_read_only(table: &str) -> hdm_common::Result<()> {
    if is_sys_name(table) {
        return Err(hdm_common::HdmError::Execution(format!(
            "{table} is a read-only system view"
        )));
    }
    Ok(())
}

/// The fixed schema of a `sys.*` view, `None` for non-sys names.
pub fn view_schema(name: &str) -> Option<Schema> {
    let cols: &[(&str, DataType)] = match name.to_ascii_lowercase().as_str() {
        "sys.metrics" => &[
            ("name", DataType::Text),
            ("kind", DataType::Text),
            ("value", DataType::Int),
            ("count", DataType::Int),
            ("mean_us", DataType::Float),
            ("p50_us", DataType::Int),
            ("p95_us", DataType::Int),
            ("p99_us", DataType::Int),
            ("max_us", DataType::Int),
        ],
        "sys.statements" => &[
            ("seq", DataType::Int),
            ("sql", DataType::Text),
            ("scope", DataType::Text),
            ("start_us", DataType::Int),
            ("plan_us", DataType::Int),
            ("exec_us", DataType::Int),
            ("total_us", DataType::Int),
            ("rows_est", DataType::Float),
            ("rows_out", DataType::Int),
            ("gtm_interactions", DataType::Int),
            ("twopc_legs", DataType::Int),
        ],
        "sys.shards" => &[
            ("shard", DataType::Int),
            ("up", DataType::Int),
            ("epoch", DataType::Int),
            ("log_head", DataType::Int),
            ("followers", DataType::Int),
            ("replica_csn", DataType::Int),
            ("lag", DataType::Int),
        ],
        "sys.txns" => &[
            ("shard", DataType::Int),
            ("xid", DataType::Int),
            ("gxid", DataType::Int),
            ("state", DataType::Text),
        ],
        "sys.events" => &[
            ("seq", DataType::Int),
            ("time_us", DataType::Int),
            ("kind", DataType::Text),
            ("shard", DataType::Int),
            ("detail", DataType::Text),
        ],
        "sys.plan_store" => &[
            ("step", DataType::Text),
            ("kind", DataType::Text),
            ("estimated", DataType::Float),
            ("actual", DataType::Int),
            ("hits", DataType::Int),
            ("misestimate", DataType::Float),
        ],
        "sys.prepared" => &[
            ("canonical", DataType::Text),
            ("hits", DataType::Int),
            ("ops", DataType::Int),
            ("last_used", DataType::Int),
        ],
        "sys.indexes" => &[
            ("name", DataType::Text),
            ("tbl", DataType::Text),
            ("col", DataType::Text),
            ("entries", DataType::Int),
            ("shards", DataType::Text),
        ],
        "sys.config" => &[
            ("name", DataType::Text),
            ("value", DataType::Text),
            ("kind", DataType::Text),
            ("source", DataType::Text),
        ],
        "sys.history_windows" => &[
            ("window", DataType::Int),
            ("start_us", DataType::Int),
            ("end_us", DataType::Int),
            ("stmts", DataType::Int),
            ("twopc_legs", DataType::Int),
            ("p95_us", DataType::Int),
            ("cache_hits", DataType::Int),
            ("cache_misses", DataType::Int),
            ("cache_len", DataType::Int),
            ("plan_store_len", DataType::Int),
        ],
        "sys.history_metrics" => &[
            ("window", DataType::Int),
            ("name", DataType::Text),
            ("kind", DataType::Text),
            ("value", DataType::Int),
        ],
        "sys.history_statements" => &[
            ("window", DataType::Int),
            ("stmt", DataType::Text),
            ("scope", DataType::Text),
            ("execs", DataType::Int),
            ("total_us", DataType::Int),
            ("rows_out", DataType::Int),
            ("twopc_legs", DataType::Int),
            ("misestimate", DataType::Float),
        ],
        "sys.history_coaccess" => &[
            ("window", DataType::Int),
            ("stmt", DataType::Text),
            ("shards", DataType::Text),
            ("count", DataType::Int),
        ],
        _ => return None,
    };
    Some(Schema::new(
        cols.iter()
            .map(|(n, t)| Column::new(*n, *t))
            .collect::<Vec<_>>(),
    ))
}

/// The frozen statement-start state of every referenced view.
///
/// A view absent from the snapshot (not referenced, or the engine has no
/// source wired for it) scans as empty rather than erroring, so
/// `SELECT * FROM sys.events` is well-defined on an engine with no journal.
#[derive(Debug, Clone, Default)]
pub struct SysSnapshot {
    views: BTreeMap<String, Vec<Row>>,
}

impl SysSnapshot {
    pub fn new() -> Self {
        Self::default()
    }

    /// Freeze `rows` as the statement-lifetime content of `view`.
    pub fn insert(&mut self, view: &str, rows: Vec<Row>) {
        self.views.insert(view.to_ascii_lowercase(), rows);
    }

    /// The frozen rows of `view` (empty slice when nothing was captured).
    pub fn rows(&self, view: &str) -> &[Row] {
        self.views
            .get(&view.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Every `sys.*` view referenced by `stmt`'s FROM trees — through joins,
/// subqueries, set-operation branches, and CTE bodies. Empty for statements
/// that never touch the introspection plane, which is the signal to skip
/// snapshot capture entirely.
pub fn referenced_views(stmt: &Statement) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    match stmt {
        Statement::Select(s) => collect_select(s, &mut out),
        Statement::Explain { stmt, .. } => return referenced_views(stmt),
        _ => {}
    }
    out
}

/// [`referenced_views`] for a bare SELECT (the engines' inner query paths
/// hold a `SelectStmt`, not a `Statement`, by the time they plan).
pub fn referenced_views_in_select(s: &SelectStmt) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_select(s, &mut out);
    out
}

fn collect_select(s: &SelectStmt, out: &mut BTreeSet<String>) {
    for (_, body) in &s.with {
        collect_select(body, out);
    }
    for tr in &s.from {
        collect_table_ref(tr, out);
    }
    if let Some((_, _, rhs)) = &s.set_op {
        collect_select(rhs, out);
    }
}

fn collect_table_ref(tr: &TableRef, out: &mut BTreeSet<String>) {
    match tr {
        TableRef::Named { name, .. } => {
            let key = name.to_ascii_lowercase();
            if SYS_VIEWS.contains(&key.as_str()) {
                out.insert(key);
            }
        }
        TableRef::Function { .. } => {}
        TableRef::Subquery { query, .. } => collect_select(query, out),
        TableRef::Join { left, right, .. } => {
            collect_table_ref(left, out);
            collect_table_ref(right, out);
        }
    }
}

/// One learned-cardinality entry, decoupled from the `learnopt` crate so the
/// dependency keeps pointing learnopt → sql. `SharedPlanStore` implements
/// [`PlanStoreDump`] over its MRU dump.
#[derive(Debug, Clone)]
pub struct PlanStoreEntry {
    pub step: String,
    pub kind: String,
    pub estimated: f64,
    pub actual: u64,
    pub hits: u64,
}

/// A source of learned-cardinality entries for `sys.plan_store`.
pub trait PlanStoreDump {
    fn dump_entries(&self) -> Vec<PlanStoreEntry>;
}

/// `sys.metrics` rows from a registry snapshot: counters, gauges, then
/// histograms, each group sorted by rendered series name (the snapshot's
/// BTreeMap order). Histogram percentiles ride in the `p50/p95/p99/max`
/// columns; scalar series leave them NULL.
pub fn metrics_rows(snap: &MetricsSnapshot) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, v) in &snap.counters {
        rows.push(Row::new(vec![
            Datum::Text(name.clone()),
            Datum::Text("counter".into()),
            Datum::Int(*v as i64),
            Datum::Null,
            Datum::Null,
            Datum::Null,
            Datum::Null,
            Datum::Null,
            Datum::Null,
        ]));
    }
    for (name, v) in &snap.gauges {
        rows.push(Row::new(vec![
            Datum::Text(name.clone()),
            Datum::Text("gauge".into()),
            Datum::Int(*v),
            Datum::Null,
            Datum::Null,
            Datum::Null,
            Datum::Null,
            Datum::Null,
            Datum::Null,
        ]));
    }
    for (name, h) in &snap.histograms {
        rows.push(Row::new(vec![
            Datum::Text(name.clone()),
            Datum::Text("histogram".into()),
            Datum::Null,
            Datum::Int(h.count as i64),
            Datum::Float(h.mean_us),
            Datum::Int(h.p50_us as i64),
            Datum::Int(h.p95_us as i64),
            Datum::Int(h.p99_us as i64),
            Datum::Int(h.max_us as i64),
        ]));
    }
    rows
}

fn statement_row(seq: u64, p: &StatementProfile) -> Row {
    let rows_est = p
        .root
        .as_ref()
        .map(|r| Datum::Float(r.est_rows))
        .unwrap_or(Datum::Null);
    Row::new(vec![
        Datum::Int(seq as i64),
        Datum::Text(p.sql.clone()),
        Datum::Text(p.scope.clone()),
        Datum::Int(p.start_us as i64),
        Datum::Int(p.plan_us as i64),
        Datum::Int(p.exec_us as i64),
        Datum::Int(p.total_us as i64),
        rows_est,
        Datum::Int(p.rows_out as i64),
        Datum::Int(p.gtm_interactions as i64),
        Datum::Int(p.twopc_legs as i64),
    ])
}

/// `sys.statements` rows from the flight recorder, oldest first by sequence.
pub fn statement_rows(rec: &SharedRecorder) -> Vec<Row> {
    rec.with(|r| r.iter().map(|(seq, p)| statement_row(seq, p)).collect())
}

/// `sys.plan_store` rows from any dump source, MRU-first. `misestimate` is
/// the symmetric ratio `max(est/actual, actual/est)` (1.0 = perfect, NULL
/// until an actual cardinality has been observed).
pub fn plan_store_rows(dump: &dyn PlanStoreDump) -> Vec<Row> {
    dump.dump_entries()
        .into_iter()
        .map(|e| {
            let mis = if e.actual > 0 && e.estimated > 0.0 {
                let est = e.estimated;
                let act = e.actual as f64;
                Datum::Float((est / act).max(act / est))
            } else {
                Datum::Null
            };
            Row::new(vec![
                Datum::Text(e.step),
                Datum::Text(e.kind),
                Datum::Float(e.estimated),
                Datum::Int(e.actual as i64),
                Datum::Int(e.hits as i64),
                mis,
            ])
        })
        .collect()
}

/// One `sys.config` row: a knob name, its rendered value, the value's kind
/// (`int`/`bool`/`text`), and the layer it came from (`cluster`, `engine`,
/// `telemetry`, `history`).
pub fn config_row(name: &str, value: impl ToString, kind: &str, source: &str) -> Row {
    Row::new(vec![
        Datum::Text(name.to_string()),
        Datum::Text(value.to_string()),
        Datum::Text(kind.to_string()),
        Datum::Text(source.to_string()),
    ])
}

/// `sys.history_windows` rows: one per retained window, oldest first.
pub fn history_window_rows(h: &SharedHistory) -> Vec<Row> {
    h.with(|e| {
        e.windows()
            .map(|w| {
                Row::new(vec![
                    Datum::Int(w.window as i64),
                    Datum::Int(w.start_us as i64),
                    Datum::Int(w.end_us as i64),
                    Datum::Int(w.stmts as i64),
                    Datum::Int(w.twopc_legs as i64),
                    Datum::Int(w.p95_us as i64),
                    Datum::Int(w.cache_hits as i64),
                    Datum::Int(w.cache_misses as i64),
                    Datum::Int(w.cache_len as i64),
                    Datum::Int(w.plan_store_len as i64),
                ])
            })
            .collect()
    })
}

/// `sys.history_metrics` rows: per window, counter deltas then gauge levels
/// then histogram count deltas, each group in series-name order.
pub fn history_metric_rows(h: &SharedHistory) -> Vec<Row> {
    h.with(|e| {
        let mut rows = Vec::new();
        for w in e.windows() {
            let win = Datum::Int(w.window as i64);
            for (name, v) in &w.counters {
                rows.push(Row::new(vec![
                    win.clone(),
                    Datum::Text(name.clone()),
                    Datum::Text("counter".into()),
                    Datum::Int(*v as i64),
                ]));
            }
            for (name, v) in &w.gauges {
                rows.push(Row::new(vec![
                    win.clone(),
                    Datum::Text(name.clone()),
                    Datum::Text("gauge".into()),
                    Datum::Int(*v),
                ]));
            }
            for (name, v) in &w.histogram_counts {
                rows.push(Row::new(vec![
                    win.clone(),
                    Datum::Text(name.clone()),
                    Datum::Text("histogram".into()),
                    Datum::Int(*v as i64),
                ]));
            }
        }
        rows
    })
}

/// `sys.history_statements` rows: each window's top-K statement aggregates
/// in statement-text order.
pub fn history_statement_rows(h: &SharedHistory) -> Vec<Row> {
    h.with(|e| {
        let mut rows = Vec::new();
        for w in e.windows() {
            for s in &w.statements {
                rows.push(Row::new(vec![
                    Datum::Int(w.window as i64),
                    Datum::Text(s.stmt.clone()),
                    Datum::Text(s.scope.clone()),
                    Datum::Int(s.execs as i64),
                    Datum::Int(s.total_us as i64),
                    Datum::Int(s.rows_out as i64),
                    Datum::Int(s.twopc_legs as i64),
                    Datum::Float(s.max_misestimate),
                ]));
            }
        }
        rows
    })
}

/// `sys.history_coaccess` rows: each window's `(statement, shard set)`
/// observations in (statement, shard-set) order — the placement substrate.
pub fn history_coaccess_rows(h: &SharedHistory) -> Vec<Row> {
    h.with(|e| {
        let mut rows = Vec::new();
        for w in e.windows() {
            for c in &w.coaccess {
                rows.push(Row::new(vec![
                    Datum::Int(w.window as i64),
                    Datum::Text(c.stmt.clone()),
                    Datum::Text(c.shards.clone()),
                    Datum::Int(c.count as i64),
                ]));
            }
        }
        rows
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn view_names_round_trip() {
        for v in SYS_VIEWS {
            assert!(is_sys_view(v), "{v}");
            assert!(is_sys_name(v), "{v}");
            let schema = view_schema(v).expect("schema");
            assert!(schema.columns().len() >= 4, "{v}");
        }
        assert!(!is_sys_view("orders"));
        assert!(!is_sys_view("sys.nope"));
        assert!(is_sys_view("SYS.SHARDS"));
        assert!(is_sys_name("sys.anything"));
    }

    #[test]
    fn referenced_views_walks_joins_subqueries_ctes_and_setops() {
        let cases: &[(&str, &[&str])] = &[
            ("select * from orders", &[]),
            ("select * from sys.shards", &["sys.shards"]),
            (
                "select * from sys.shards join sys.events on seq = shard",
                &["sys.events", "sys.shards"],
            ),
            (
                "select * from (select shard from sys.txns) t",
                &["sys.txns"],
            ),
            (
                "with m as (select name from sys.metrics) select * from m",
                &["sys.metrics"],
            ),
            (
                "select sql from sys.statements union select step from sys.plan_store",
                &["sys.plan_store", "sys.statements"],
            ),
            (
                "explain select lag from sys.shards",
                &["sys.shards"],
            ),
        ];
        for (sql, want) in cases {
            let stmt = parse(sql).expect(sql);
            let got: Vec<String> = referenced_views(&stmt).into_iter().collect();
            assert_eq!(got, *want, "{sql}");
        }
    }

    #[test]
    fn snapshot_serves_empty_for_missing_views() {
        let mut s = SysSnapshot::new();
        s.insert("sys.shards", vec![Row::new(vec![Datum::Int(0)])]);
        assert_eq!(s.rows("SYS.SHARDS").len(), 1);
        assert!(s.rows("sys.events").is_empty());
    }
}

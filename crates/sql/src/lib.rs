//! # hdm-sql
//!
//! A single-node SQL engine in the shape of FI-MPPDB's per-node query stack
//! (paper §II, §II-C): lexer → parser → catalog-bound logical plan →
//! cost-based physical plan → executor. Built specifically to host the
//! learning-optimizer experiment (Table I): the planner produces *estimated*
//! cardinalities per step, the executor observes *actual* cardinalities, and
//! both speak the **canonical logical step form** (`SCAN(…)`, `JOIN(…)`,
//! `AGG(…)`, …) that the plan store is keyed on.
//!
//! Supported SQL subset: `CREATE TABLE`, `CREATE INDEX`, `INSERT`, `UPDATE`,
//! `DELETE`, `ANALYZE`, `EXPLAIN`, and `SELECT` with WITH (non-recursive
//! CTEs), comma/INNER joins, WHERE, GROUP BY with COUNT/SUM/AVG/MIN/MAX,
//! ORDER BY, LIMIT, UNION/INTERSECT/EXCEPT, and *table functions* in FROM
//! (the extension point the multi-model engine of §II-B plugs
//! `gtimeseries(...)`/`ggraph(...)` into).
//!
//! A query **rewrite engine** (constant folding, boolean simplification,
//! comparison de-negation) normalizes statements before planning — §II-C's
//! "establishing a query rewrite engine" — which doubles as plan-store
//! normalization: different spellings of one predicate share canonical text.
//!
//! Extension hooks:
//! * [`db::CardinalityHints`] — the optimizer consults it before using its
//!   own estimate (the plan-store *consumer*).
//! * [`db::StepObserver`] — receives `(step text, estimated, actual)` after
//!   execution (the plan-store *producer*).
//! * [`db::TableFunction`] — named table-valued functions callable in FROM.

pub mod ast;
pub mod backend;
pub mod catalog;
pub mod compile;
pub mod db;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod planner;
pub mod prepared;
pub mod profile;
pub mod rewrite;
pub mod sys;

pub use ast::Statement;
pub use backend::{ExecBackend, LocalBackend};
pub use catalog::Catalog;
pub use compile::CompiledProgram;
pub use db::{CardinalityHints, Database, QueryResult, StepObserver, TableFunction};
pub use plan::{PlanNode, StepKind, StepObservation};
pub use prepared::{
    canonicalize, CanonicalSql, ExecOptions, PlanCache, Prepared, QueryApi, StmtHandle,
};
pub use profile::Profiler;
pub use sys::{PlanStoreDump, PlanStoreEntry, SysSnapshot};
// Profile data types live in `hdm-telemetry` (the recorder owns the
// schema); re-exported here so SQL-layer users need no extra import.
pub use hdm_telemetry::{OpProfile, ShardLeg, StatementProfile};

/// Test helper: parse a standalone scalar expression (used by unit tests in
/// several modules; hidden from the public API surface).
#[doc(hidden)]
pub fn parser_test_expr(text: &str) -> ast::Expr {
    let stmt = parser::parse(&format!("select {text}")).expect("test expression parses");
    let Statement::Select(s) = stmt else {
        panic!("not a select");
    };
    let ast::SelectItem::Expr { expr, .. } = s.projections.into_iter().next().unwrap() else {
        panic!("star projection in test expression");
    };
    expr
}

//! Pluggable execution backends.
//!
//! The executor ([`crate::exec::execute`]) is written against [`ExecBackend`]
//! rather than against [`crate::catalog::Catalog`] directly, so the same plan
//! tree can run over two very different storage layers:
//!
//! * [`LocalBackend`] — the embedded single-node heap (the original
//!   behaviour, bit-for-bit: one statement snapshot, autocommitted local
//!   transactions, undo-on-error);
//! * `cluster::dist::DistExec` (in `hdm-cluster`) — the CN-side scatter-
//!   gather backend, where `Exchange` leaves fan scan fragments out to data
//!   nodes under a GTM-lite or 2PC transaction.
//!
//! The trait is the paper's CN/DN seam (§II, Fig 2): everything above it —
//! joins, aggregation, set ops, limit, the canonical-step observations the
//! learning optimizer feeds on — is backend-agnostic coordinator work;
//! everything below it is shard-local storage access under some snapshot.

use crate::catalog::Catalog;
use crate::expr::SExpr;
use crate::sys::{self, SysSnapshot};
use hdm_common::{Datum, Result, Row};
use hdm_storage::TableStats;
use hdm_telemetry::ShardLeg;
use hdm_txn::{LocalTxnManager, Snapshot, SnapshotVisibility};

/// Storage access for the executor: scans and point gets under the backend's
/// statement snapshot, DML as autocommitted transactions, and a statistics
/// handle for planners that want backend-truth row counts.
pub trait ExecBackend {
    /// Rows of `table` visible under the backend's snapshot that pass
    /// `predicate` (all rows when `None`).
    fn scan(&mut self, table: &str, predicate: Option<&SExpr>) -> Result<Vec<Row>>;

    /// Equality index probe on `index_id` with `key_values`, filtered by the
    /// `residual` predicate.
    fn point_get(
        &mut self,
        table: &str,
        index_id: usize,
        key_values: &[Datum],
        residual: Option<&SExpr>,
    ) -> Result<Vec<Row>>;

    /// Ordered range walk over the single-column index `index_id` between
    /// `lo` and `hi`, filtered by the `residual` predicate. Hits come back
    /// in heap (tuple id) order so index and sequential plans for the same
    /// query produce identically ordered rows.
    fn index_range(
        &mut self,
        table: &str,
        index_id: usize,
        lo: &std::ops::Bound<Datum>,
        hi: &std::ops::Bound<Datum>,
        residual: Option<&SExpr>,
    ) -> Result<Vec<Row>> {
        let _ = (table, index_id, lo, hi, residual);
        Err(hdm_common::HdmError::Unsupported(
            "this backend does not support index range scans".into(),
        ))
    }

    /// Scan restricted to the given shard set — the `Exchange` fragment
    /// entry point. Backends without a notion of placement run a plain scan.
    /// When the planner chose an index access path, `probe` carries the
    /// concrete equality key or range bounds so each shard leg can consult
    /// its local index instead of walking its whole slice; the full
    /// `predicate` still applies to every returned row, so a backend may
    /// ignore `probe` without affecting results.
    ///
    /// Replica-aware routing contract: `shards` names *logical* shards, not
    /// machines. A backend with replicated placement may serve a fragment
    /// from whichever replica currently acts as the shard's primary (e.g. a
    /// follower promoted after a crash), provided the rows come from a
    /// snapshot consistent with the fragment's transaction. Planners above
    /// this seam must not assume a shard id pins a physical node.
    fn scan_shards(
        &mut self,
        table: &str,
        predicate: Option<&SExpr>,
        shards: &[u64],
        probe: Option<&crate::plan::ExchangeProbe>,
    ) -> Result<Vec<Row>> {
        let _ = (shards, probe);
        self.scan(table, predicate)
    }

    /// Insert pre-materialized rows as one autocommitted transaction.
    /// Returns the number of rows inserted.
    fn insert(&mut self, table: &str, rows: Vec<Row>) -> Result<u64>;

    /// Update rows matching `predicate`, assigning each `(column, expr)` in
    /// `sets` (exprs evaluated over the old row). Returns rows updated.
    fn update(
        &mut self,
        table: &str,
        sets: &[(usize, SExpr)],
        predicate: Option<&SExpr>,
    ) -> Result<u64>;

    /// Delete rows matching `predicate`. Returns rows deleted.
    fn delete(&mut self, table: &str, predicate: Option<&SExpr>) -> Result<u64>;

    /// Optimizer statistics for `table`, if the backend has any.
    fn stats(&self, table: &str) -> Option<TableStats>;

    /// Drain the per-shard breakdown of the most recent [`Self::scan_shards`]
    /// call, for the query profiler. Distributed backends fill one
    /// [`ShardLeg`] per fragment; backends without placement (or with
    /// profiling off) return an empty vector.
    fn take_exchange_profile(&mut self) -> Vec<ShardLeg> {
        Vec::new()
    }
}

/// The embedded single-node backend: the catalog's heap judged by one
/// statement snapshot taken at construction, with DML running exactly the
/// autocommit protocol `Database` always used (begin local → write →
/// undo-on-error → commit).
pub struct LocalBackend<'a> {
    catalog: &'a mut Catalog,
    mgr: &'a mut LocalTxnManager,
    snap: Snapshot,
    /// Statement-start `sys.*` view state; scans of sys names serve these
    /// frozen rows instead of touching the catalog.
    sys: Option<&'a SysSnapshot>,
}

impl<'a> LocalBackend<'a> {
    /// Capture the statement snapshot now; reads through this backend do not
    /// see transactions that commit later.
    pub fn new(catalog: &'a mut Catalog, mgr: &'a mut LocalTxnManager) -> Self {
        let snap = mgr.local_snapshot();
        Self {
            catalog,
            mgr,
            snap,
            sys: None,
        }
    }

    /// Serve `sys.*` scans from `snapshot` (frozen at statement start).
    pub fn with_sys(mut self, snapshot: Option<&'a SysSnapshot>) -> Self {
        self.sys = snapshot;
        self
    }
}

/// Lift a datum bound to a one-column index-key bound.
pub fn bound_key(b: &std::ops::Bound<Datum>) -> std::ops::Bound<Vec<Datum>> {
    use std::ops::Bound;
    match b {
        Bound::Included(d) => Bound::Included(vec![d.clone()]),
        Bound::Excluded(d) => Bound::Excluded(vec![d.clone()]),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Borrow an owned key bound (`BTreeMap::range` wants `Bound<&K>`).
pub fn bound_ref(b: &std::ops::Bound<Vec<Datum>>) -> std::ops::Bound<&Vec<Datum>> {
    use std::ops::Bound;
    match b {
        Bound::Included(k) => Bound::Included(k),
        Bound::Excluded(k) => Bound::Excluded(k),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Filter a sys view's frozen rows through the scan predicate — shared by
/// both backends so the two engines agree on sys-view semantics.
pub fn scan_sys_rows(
    snapshot: &SysSnapshot,
    table: &str,
    predicate: Option<&SExpr>,
) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    for row in snapshot.rows(table) {
        let keep = match predicate {
            None => true,
            Some(p) => p.eval_filter(row.values())?,
        };
        if keep {
            out.push(row.clone());
        }
    }
    Ok(out)
}

impl ExecBackend for LocalBackend<'_> {
    fn scan(&mut self, table: &str, predicate: Option<&SExpr>) -> Result<Vec<Row>> {
        if let Some(snapshot) = self.sys {
            if sys::is_sys_view(table) {
                return scan_sys_rows(snapshot, table, predicate);
            }
        }
        let judge = SnapshotVisibility::new(&self.snap, self.mgr.clog(), None);
        let t = self.catalog.get(table)?;
        let mut out = Vec::new();
        for (_tid, row) in t.scan(&judge) {
            let keep = match predicate {
                None => true,
                Some(p) => p.eval_filter(row.values())?,
            };
            if keep {
                out.push(row.clone());
            }
        }
        Ok(out)
    }

    fn point_get(
        &mut self,
        table: &str,
        index_id: usize,
        key_values: &[Datum],
        residual: Option<&SExpr>,
    ) -> Result<Vec<Row>> {
        let judge = SnapshotVisibility::new(&self.snap, self.mgr.clog(), None);
        let t = self.catalog.get(table)?;
        let hits = t.probe(index_id, &key_values.to_vec(), &judge)?;
        let mut out = Vec::new();
        for (_tid, row) in hits {
            let keep = match residual {
                None => true,
                Some(p) => p.eval_filter(row.values())?,
            };
            if keep {
                out.push(row.clone());
            }
        }
        Ok(out)
    }

    fn index_range(
        &mut self,
        table: &str,
        index_id: usize,
        lo: &std::ops::Bound<Datum>,
        hi: &std::ops::Bound<Datum>,
        residual: Option<&SExpr>,
    ) -> Result<Vec<Row>> {
        let judge = SnapshotVisibility::new(&self.snap, self.mgr.clog(), None);
        let t = self.catalog.get(table)?;
        let lo_key = bound_key(lo);
        let hi_key = bound_key(hi);
        let mut hits = t.range_probe(
            index_id,
            bound_ref(&lo_key),
            bound_ref(&hi_key),
            &judge,
        )?;
        // Index order → heap order, matching the sequential plan's output.
        hits.sort_unstable_by_key(|&(tid, _)| tid);
        let mut out = Vec::new();
        for (_tid, row) in hits {
            let keep = match residual {
                None => true,
                Some(p) => p.eval_filter(row.values())?,
            };
            if keep {
                out.push(row.clone());
            }
        }
        Ok(out)
    }

    fn insert(&mut self, table: &str, rows: Vec<Row>) -> Result<u64> {
        let xid = self.mgr.begin_local();
        let t = self.catalog.get_mut(table)?;
        let mut inserted = Vec::new();
        for row in rows {
            match t.insert(xid, row) {
                Ok(tid) => inserted.push(tid),
                Err(e) => {
                    for tid in inserted {
                        t.undo_insert(xid, tid)?;
                    }
                    self.mgr.abort(xid)?;
                    return Err(e);
                }
            }
        }
        self.mgr.commit(xid)?;
        Ok(inserted.len() as u64)
    }

    fn update(
        &mut self,
        table: &str,
        sets: &[(usize, SExpr)],
        predicate: Option<&SExpr>,
    ) -> Result<u64> {
        let xid = self.mgr.begin_local();
        let snap = self.mgr.local_snapshot();
        // Collect targets first (snapshot view), then write.
        let targets: Vec<(hdm_storage::heap::TupleId, Row)> = {
            let judge = SnapshotVisibility::new(&snap, self.mgr.clog(), Some(xid));
            let t = self.catalog.get(table)?;
            let mut v = Vec::new();
            for (tid, row) in t.scan(&judge) {
                let hit = match predicate {
                    None => true,
                    Some(p) => p.eval_filter(row.values())?,
                };
                if hit {
                    v.push((tid, row.clone()));
                }
            }
            v
        };
        let t = self.catalog.get_mut(table)?;
        let mut n = 0;
        for (tid, old) in targets {
            let mut vals = old.into_values();
            for (idx, e) in sets {
                vals[*idx] = e.eval(&vals)?;
            }
            match t.update(xid, tid, Row::new(vals)) {
                Ok(_) => n += 1,
                Err(e) => {
                    // Write-write conflict mid-statement: abort the lot.
                    self.mgr.abort(xid)?;
                    return Err(e);
                }
            }
        }
        self.mgr.commit(xid)?;
        Ok(n)
    }

    fn delete(&mut self, table: &str, predicate: Option<&SExpr>) -> Result<u64> {
        let xid = self.mgr.begin_local();
        let snap = self.mgr.local_snapshot();
        let targets: Vec<hdm_storage::heap::TupleId> = {
            let judge = SnapshotVisibility::new(&snap, self.mgr.clog(), Some(xid));
            let t = self.catalog.get(table)?;
            let mut v = Vec::new();
            for (tid, row) in t.scan(&judge) {
                let hit = match predicate {
                    None => true,
                    Some(p) => p.eval_filter(row.values())?,
                };
                if hit {
                    v.push(tid);
                }
            }
            v
        };
        let t = self.catalog.get_mut(table)?;
        let mut n = 0;
        for tid in targets {
            match t.delete(xid, tid) {
                Ok(()) => n += 1,
                Err(e) => {
                    self.mgr.abort(xid)?;
                    return Err(e);
                }
            }
        }
        self.mgr.commit(xid)?;
        Ok(n)
    }

    fn stats(&self, table: &str) -> Option<TableStats> {
        self.catalog.get(table).ok().and_then(|t| t.stats().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdm_common::{row, DataType, Schema};

    fn setup() -> (Catalog, LocalTxnManager) {
        let mut catalog = Catalog::new();
        catalog
            .create_table(
                "t",
                Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]),
            )
            .unwrap();
        (catalog, LocalTxnManager::new())
    }

    #[test]
    fn insert_then_scan_roundtrip() {
        let (mut catalog, mut mgr) = setup();
        {
            let mut be = LocalBackend::new(&mut catalog, &mut mgr);
            assert_eq!(be.insert("t", vec![row![1, 10], row![2, 20]]).unwrap(), 2);
        }
        let mut be = LocalBackend::new(&mut catalog, &mut mgr);
        let rows = be.scan("t", None).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn snapshot_is_fixed_at_construction() {
        let (mut catalog, mut mgr) = setup();
        {
            let mut be = LocalBackend::new(&mut catalog, &mut mgr);
            be.insert("t", vec![row![1, 10]]).unwrap();
        }
        // A backend created before a later insert must not see it.
        let early_snap = {
            let be = LocalBackend::new(&mut catalog, &mut mgr);
            be.snap.clone()
        };
        {
            let mut be = LocalBackend::new(&mut catalog, &mut mgr);
            be.insert("t", vec![row![2, 20]]).unwrap();
        }
        let mut be = LocalBackend::new(&mut catalog, &mut mgr);
        be.snap = early_snap;
        assert_eq!(be.scan("t", None).unwrap().len(), 1);
    }

    #[test]
    fn update_and_delete_autocommit() {
        let (mut catalog, mut mgr) = setup();
        let mut be = LocalBackend::new(&mut catalog, &mut mgr);
        be.insert("t", vec![row![1, 10], row![2, 20]]).unwrap();
        let sets = vec![(1usize, SExpr::Lit(Datum::Int(99)))];
        let pred = SExpr::Binary(
            crate::ast::BinOp::Eq,
            Box::new(SExpr::Col(0)),
            Box::new(SExpr::Lit(Datum::Int(1))),
        );
        assert_eq!(be.update("t", &sets, Some(&pred)).unwrap(), 1);
        assert_eq!(be.delete("t", Some(&pred)).unwrap(), 1);
        let mut be = LocalBackend::new(&mut catalog, &mut mgr);
        let rows = be.scan("t", None).unwrap();
        assert_eq!(rows, vec![row![2, 20]]);
    }
}

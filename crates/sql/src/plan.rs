//! Physical plans with canonical logical step text.
//!
//! Each cardinality-bearing node renders a **canonical step definition**:
//! "a prefix expression representing the logical operator and its
//! operand(s). Only the logical operator (join instead of hash join or scan
//! instead of index scan) is needed … The step definition for an execution
//! operator captures the whole query tree underneath the operator"
//! (paper §II-C, Table I). Operand and predicate ordering is normalized so
//! equivalent queries produce byte-identical step text.

use crate::ast::SetOpKind;
use crate::expr::{BoundSchema, SExpr};
use hdm_common::{Datum, Row};
use std::ops::Bound;

/// Which logical operator class a step belongs to. The paper captures
/// exactly the cardinality-affecting classes: "scans, joins, aggregation
/// steps, set operations and limit operator steps".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    Scan,
    Join,
    Agg,
    SetOp,
    Limit,
    /// Non-cardinality-bearing plumbing (project, sort, filter-on-top).
    Other,
}

/// One `(step, estimated, actual)` record produced by executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct StepObservation {
    pub kind: StepKind,
    /// Canonical step text (the plan-store key material).
    pub text: String,
    pub estimated: f64,
    pub actual: u64,
}

/// Multi-objective plan cost. Every [`PlanNode`] carries one; the planner
/// builds it bottom-up (each operator adds its own increment to the summed
/// work of its children) and alternatives are compared on the weighted
/// [`CostEstimate::total`]. `rows` is the node's estimated output
/// cardinality — the quantity the learned plan store corrects with captured
/// actuals; the work terms are what access-path and join-order choices are
/// gated on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostEstimate {
    /// Estimated output cardinality of this subtree.
    pub rows: f64,
    /// Tuples touched / hashed / compared (CN- or DN-local compute).
    pub cpu: f64,
    /// Tuples fetched from storage; random fetches are pre-multiplied by
    /// [`CostEstimate::RANDOM_IO`] at the access path that incurs them.
    pub io: f64,
    /// Tuples shipped between CN and DN legs, plus per-leg fan-out setup.
    pub net: f64,
}

impl CostEstimate {
    /// Weight vector collapsing the objective terms into one comparable
    /// scalar. IO is pricier than CPU, network pricier than IO — the same
    /// ordering Greenplum's motion-aware cost model uses.
    pub const W_CPU: f64 = 1.0;
    pub const W_IO: f64 = 2.0;
    pub const W_NET: f64 = 4.0;
    /// Penalty multiplier for a random (index-probe) fetch vs one sequential
    /// scan step. Makes a non-selective index lose to a full scan: the
    /// break-even is roughly one third of the table.
    pub const RANDOM_IO: f64 = 4.0;
    /// Per-shard fan-out setup charge for an Exchange leg.
    pub const NET_FANOUT: f64 = 8.0;

    /// A cost that only carries a cardinality (no work terms). Used for
    /// synthetic nodes (Values, test literals) where work is negligible.
    pub fn rows_only(rows: f64) -> CostEstimate {
        CostEstimate {
            rows,
            ..CostEstimate::default()
        }
    }

    /// Sum of the work terms accumulated in `children` (rows = 0): the
    /// starting point for a parent operator's own cost.
    pub fn of_children(children: &[PlanNode]) -> CostEstimate {
        let mut c = CostEstimate::default();
        for ch in children {
            c.cpu += ch.cost.cpu;
            c.io += ch.cost.io;
            c.net += ch.cost.net;
        }
        c
    }

    /// This operator's increment on top of the already-summed child work:
    /// sets the output cardinality and adds the work deltas.
    pub fn with(mut self, rows: f64, cpu: f64, io: f64, net: f64) -> CostEstimate {
        self.rows = rows;
        self.cpu += cpu;
        self.io += io;
        self.net += net;
        self
    }

    /// Weighted scalar total used to compare alternative plans. Output
    /// cardinality is deliberately excluded: rows are what downstream
    /// operators pay for, not work this subtree performs.
    pub fn total(&self) -> f64 {
        self.cpu * Self::W_CPU + self.io * Self::W_IO + self.net * Self::W_NET
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One aggregate call in a HashAgg node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    /// Argument expression over the input schema (None for COUNT(*)).
    pub arg: Option<SExpr>,
}

/// Physical operators.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Full scan with an optional pushed-down predicate.
    SeqScan {
        table: String,
        predicate: Option<SExpr>,
    },
    /// Equality index probe plus residual predicate. Logically still a SCAN.
    IndexScan {
        table: String,
        index_id: usize,
        /// The full equality conjuncts consumed by the probe (for canonical
        /// text, so index and sequential plans render identically).
        key_exprs: Vec<SExpr>,
        /// The literal probe values, in index column order.
        key_values: Vec<hdm_common::Datum>,
        residual: Option<SExpr>,
    },
    /// Ordered range walk over a single-column index plus residual
    /// predicate. Logically still a SCAN (same canonical text as the
    /// equivalent SeqScan), chosen over it only when the weighted cost says
    /// the bounded walk is cheaper.
    IndexRange {
        table: String,
        index_id: usize,
        /// The range conjuncts consumed by the walk (for canonical text).
        bound_exprs: Vec<SExpr>,
        /// Concrete lower/upper bounds on the indexed column, recomputed
        /// from `bound_exprs` after parameter substitution.
        lo: Bound<Datum>,
        hi: Bound<Datum>,
        residual: Option<SExpr>,
    },
    /// Materialized rows (CTE results, table functions, VALUES).
    Values {
        label: String,
        rows: Vec<Row>,
    },
    /// A scatter-gather scan fragment: the CN ships `SCAN(table, predicate)`
    /// to every shard in `shards` and gathers the union of their results.
    /// Produced only by distributed planners (the shard list comes from
    /// pruning the predicate against the cluster's shard map); logically
    /// still a SCAN, but its canonical text names the shard set so the plan
    /// store keys distributed cardinalities separately from local ones.
    Exchange {
        table: String,
        predicate: Option<SExpr>,
        shards: Vec<u64>,
        /// When the CN-side plan chose an index access path, the DN legs
        /// probe their local index instead of scanning the shard slice. The
        /// probe never appears in canonical text (access paths must not
        /// leak into step definitions) and is always concrete: Exchange
        /// nodes are produced per-execution after parameter substitution.
        probe: Option<ExchangeProbe>,
    },
    Filter {
        predicate: SExpr,
    },
    NestedLoopJoin {
        on: Option<SExpr>,
    },
    HashJoin {
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: Option<SExpr>,
    },
    Project {
        exprs: Vec<SExpr>,
    },
    HashAgg {
        group: Vec<SExpr>,
        aggs: Vec<AggCall>,
    },
    Sort {
        keys: Vec<(SExpr, bool)>,
    },
    Limit {
        n: u64,
    },
    SetOp {
        kind: SetOpKind,
        all: bool,
    },
    /// SELECT DISTINCT deduplication.
    Distinct,
}

/// How an Exchange leg reads its shard slice when an index access path was
/// chosen: an equality probe or a bounded range walk over a DN-local index.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeProbe {
    /// Probe the DN-local index whose key columns match `columns` with the
    /// concrete `key`.
    Eq { columns: Vec<usize>, key: Vec<Datum> },
    /// Walk the DN-local single-column index on `column` between the
    /// concrete bounds.
    Range {
        column: usize,
        lo: Bound<Datum>,
        hi: Bound<Datum>,
    },
}

/// A plan tree node annotated with its multi-objective cost (including the
/// estimated output cardinality) and bound output schema.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    pub op: PlanOp,
    pub children: Vec<PlanNode>,
    pub cost: CostEstimate,
    pub schema: BoundSchema,
}

impl PlanNode {
    /// Estimated output cardinality of this subtree — the scalar the plan
    /// store corrects with captured actuals.
    pub fn est_rows(&self) -> f64 {
        self.cost.rows
    }

    /// Overwrite the cardinality estimate (hint substitution / rehinting);
    /// the work terms keep their planning-time values.
    pub fn set_est_rows(&mut self, rows: f64) {
        self.cost.rows = rows;
    }

    /// The logical step class of this operator.
    pub fn step_kind(&self) -> StepKind {
        match &self.op {
            PlanOp::SeqScan { .. }
            | PlanOp::IndexScan { .. }
            | PlanOp::IndexRange { .. }
            | PlanOp::Exchange { .. } => StepKind::Scan,
            PlanOp::NestedLoopJoin { .. } | PlanOp::HashJoin { .. } => StepKind::Join,
            PlanOp::HashAgg { .. } => StepKind::Agg,
            PlanOp::SetOp { .. } => StepKind::SetOp,
            PlanOp::Limit { .. } => StepKind::Limit,
            _ => StepKind::Other,
        }
    }

    /// Canonical logical step text for this subtree (Table I's notation), or
    /// `None` for operators the plan store does not capture.
    pub fn canonical(&self) -> Option<String> {
        match self.step_kind() {
            StepKind::Other => None,
            _ => Some(self.canonical_inner()),
        }
    }

    fn canonical_inner(&self) -> String {
        match &self.op {
            PlanOp::SeqScan { table, predicate } => {
                canon_scan(table, predicate.as_ref(), &self.schema)
            }
            PlanOp::IndexScan {
                table,
                key_exprs,
                residual,
                ..
            } => {
                // Logically a SCAN: merge the probe's equality conjuncts and
                // the residual into one ordered predicate list so index and
                // sequential plans for the same query render identically.
                let mut preds: Vec<String> = key_exprs
                    .iter()
                    .map(|k| k.canonical(&self.schema))
                    .collect();
                if let Some(r) = residual {
                    preds.extend(conjunct_texts(r, &self.schema));
                }
                preds.sort();
                render_scan(table, &preds)
            }
            PlanOp::IndexRange {
                table,
                bound_exprs,
                residual,
                ..
            } => {
                // Same treatment as IndexScan: the range conjuncts and the
                // residual merge into one ordered predicate list, so the
                // range walk renders identically to the sequential plan.
                let mut preds: Vec<String> = bound_exprs
                    .iter()
                    .map(|k| k.canonical(&self.schema))
                    .collect();
                if let Some(r) = residual {
                    preds.extend(conjunct_texts(r, &self.schema));
                }
                preds.sort();
                render_scan(table, &preds)
            }
            PlanOp::Values { label, rows } => {
                format!("VALUES({},{})", label.to_ascii_uppercase(), rows.len())
            }
            PlanOp::Exchange {
                table,
                predicate,
                shards,
                ..
            } => {
                let shard_list: Vec<String> = shards.iter().map(u64::to_string).collect();
                format!(
                    "EXCHANGE({}, SHARDS({}))",
                    canon_scan(table, predicate.as_ref(), &self.schema),
                    shard_list.join(",")
                )
            }
            PlanOp::Filter { predicate } => {
                // A filter directly above X is canonicalized as part of X's
                // enclosing step only when X is a scan; standalone it wraps.
                format!(
                    "FILTER({}, PREDICATE({}))",
                    self.children[0].canonical_inner(),
                    ordered_predicate(predicate, &self.children[0].schema)
                )
            }
            PlanOp::NestedLoopJoin { on } => {
                canon_join(&self.children, on.as_ref(), &self.schema)
            }
            PlanOp::HashJoin {
                left_keys,
                right_keys,
                residual,
            } => {
                // Reconstruct the equi-join predicate text from key columns.
                let l = &self.children[0].schema;
                let r = &self.children[1].schema;
                let mut preds: Vec<String> = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(&lk, &rk)| {
                        let mut a = l.cols[lk].canonical();
                        let mut b = r.cols[rk].canonical();
                        if a > b {
                            std::mem::swap(&mut a, &mut b);
                        }
                        format!("{a}={b}")
                    })
                    .collect();
                if let Some(res) = residual {
                    preds.extend(conjunct_texts(res, &self.schema));
                }
                preds.sort();
                let mut kids: Vec<String> = self
                    .children
                    .iter()
                    .map(|c| c.canonical_inner())
                    .collect();
                kids.sort();
                format!(
                    "JOIN({}, PREDICATE({}))",
                    kids.join(", "),
                    preds.join(" AND ")
                )
            }
            PlanOp::Project { .. } | PlanOp::Sort { .. } => self.children[0].canonical_inner(),
            PlanOp::Distinct => format!("DISTINCT({})", self.children[0].canonical_inner()),
            PlanOp::HashAgg { group, aggs } => {
                let input = self.children[0].canonical_inner();
                let ischema = &self.children[0].schema;
                let mut groups: Vec<String> =
                    group.iter().map(|g| g.canonical(ischema)).collect();
                groups.sort();
                let mut fns: Vec<String> = aggs
                    .iter()
                    .map(|a| match (&a.func, &a.arg) {
                        (AggFunc::CountStar, _) => "COUNT(*)".to_string(),
                        (f, Some(e)) => format!("{}({})", f.name(), e.canonical(ischema)),
                        (f, None) => format!("{}()", f.name()),
                    })
                    .collect();
                fns.sort();
                format!(
                    "AGG({input}, GROUP({}), FUNCS({}))",
                    groups.join(","),
                    fns.join(",")
                )
            }
            PlanOp::Limit { n } => {
                format!("LIMIT({}, {n})", self.children[0].canonical_inner())
            }
            PlanOp::SetOp { kind, all } => {
                let mut kids: Vec<String> = self
                    .children
                    .iter()
                    .map(|c| c.canonical_inner())
                    .collect();
                // UNION and INTERSECT are commutative; EXCEPT is not.
                if !matches!(kind, SetOpKind::Except) {
                    kids.sort();
                }
                let tag = if *all {
                    format!("{} ALL", kind.name())
                } else {
                    kind.name().to_string()
                };
                format!("{}({})", tag, kids.join(", "))
            }
        }
    }

    /// Pretty tree rendering (EXPLAIN output, paper Fig 6).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    /// One-line human label for this operator (the EXPLAIN line without
    /// indentation or cardinality annotations). Shared by [`Self::explain`]
    /// and the runtime profiler, so EXPLAIN and EXPLAIN ANALYZE name
    /// operators identically.
    pub fn describe(&self) -> String {
        match &self.op {
            PlanOp::SeqScan { table, predicate } => match predicate {
                Some(p) => format!("Seq Scan on {table} (filter: {})", p.display(&self.schema)),
                None => format!("Seq Scan on {table}"),
            },
            PlanOp::IndexScan { table, .. } => format!("Index Scan on {table}"),
            PlanOp::IndexRange { table, .. } => format!("Index Range Scan on {table}"),
            PlanOp::Values { label, rows } => format!("Values {label} ({} rows)", rows.len()),
            PlanOp::Exchange {
                table,
                predicate,
                shards,
                probe,
            } => {
                let pred = match predicate {
                    Some(p) => format!(" (filter: {})", p.display(&self.schema)),
                    None => String::new(),
                };
                let access = match probe {
                    Some(ExchangeProbe::Eq { .. }) => "Exchange Index Scan",
                    Some(ExchangeProbe::Range { .. }) => "Exchange Index Range Scan",
                    None => "Exchange Scan",
                };
                format!("{access} on {table}{pred} (shards: {shards:?})")
            }
            PlanOp::Filter { predicate } => format!(
                "Filter ({})",
                predicate.display(&self.children[0].schema)
            ),
            PlanOp::NestedLoopJoin { .. } => "Nested Loop Join".to_string(),
            PlanOp::HashJoin { .. } => "Hash Join".to_string(),
            PlanOp::Project { .. } => "Project".to_string(),
            PlanOp::HashAgg { group, .. } => format!("HashAggregate (groups: {})", group.len()),
            PlanOp::Sort { .. } => "Sort".to_string(),
            PlanOp::Limit { n } => format!("Limit {n}"),
            PlanOp::SetOp { kind, all } => {
                format!("{}{}", kind.name(), if *all { " ALL" } else { "" })
            }
            PlanOp::Distinct => "Distinct".to_string(),
        }
    }

    /// Does any expression in this subtree reference an unbound parameter?
    pub fn has_params(&self) -> bool {
        let op_has = match &self.op {
            PlanOp::SeqScan { predicate, .. } | PlanOp::Exchange { predicate, .. } => {
                predicate.as_ref().is_some_and(SExpr::has_params)
            }
            PlanOp::IndexScan {
                key_exprs,
                residual,
                ..
            } => {
                key_exprs.iter().any(SExpr::has_params)
                    || residual.as_ref().is_some_and(SExpr::has_params)
            }
            PlanOp::IndexRange {
                bound_exprs,
                residual,
                ..
            } => {
                bound_exprs.iter().any(SExpr::has_params)
                    || residual.as_ref().is_some_and(SExpr::has_params)
            }
            PlanOp::Filter { predicate } => predicate.has_params(),
            PlanOp::NestedLoopJoin { on } => on.as_ref().is_some_and(SExpr::has_params),
            PlanOp::HashJoin { residual, .. } => {
                residual.as_ref().is_some_and(SExpr::has_params)
            }
            PlanOp::Project { exprs } => exprs.iter().any(SExpr::has_params),
            PlanOp::HashAgg { group, aggs } => {
                group.iter().any(SExpr::has_params)
                    || aggs
                        .iter()
                        .any(|a| a.arg.as_ref().is_some_and(SExpr::has_params))
            }
            PlanOp::Sort { keys } => keys.iter().any(|(k, _)| k.has_params()),
            PlanOp::Values { .. }
            | PlanOp::Limit { .. }
            | PlanOp::SetOp { .. }
            | PlanOp::Distinct => false,
        };
        op_has || self.children.iter().any(PlanNode::has_params)
    }

    /// Rebuild this plan with every `Param(i)` replaced by `Lit(params[i])`.
    /// Index-probe key values deferred at plan time are recomputed from the
    /// now-concrete key expressions.
    pub fn substitute_params(&self, params: &[hdm_common::Datum]) -> hdm_common::Result<PlanNode> {
        let sub_opt = |e: &Option<SExpr>| -> hdm_common::Result<Option<SExpr>> {
            e.as_ref().map(|p| p.substitute_params(params)).transpose()
        };
        let op = match &self.op {
            PlanOp::SeqScan { table, predicate } => PlanOp::SeqScan {
                table: table.clone(),
                predicate: sub_opt(predicate)?,
            },
            PlanOp::IndexScan {
                table,
                index_id,
                key_exprs,
                residual,
                ..
            } => {
                let key_exprs: Vec<SExpr> = key_exprs
                    .iter()
                    .map(|k| k.substitute_params(params))
                    .collect::<hdm_common::Result<_>>()?;
                let key_values = key_exprs
                    .iter()
                    .map(|k| {
                        eq_key_value(k).ok_or_else(|| {
                            hdm_common::HdmError::Execution(
                                "index probe key is not a column = value equality".into(),
                            )
                        })
                    })
                    .collect::<hdm_common::Result<_>>()?;
                PlanOp::IndexScan {
                    table: table.clone(),
                    index_id: *index_id,
                    key_exprs,
                    key_values,
                    residual: sub_opt(residual)?,
                }
            }
            PlanOp::IndexRange {
                table,
                index_id,
                bound_exprs,
                residual,
                ..
            } => {
                let bound_exprs: Vec<SExpr> = bound_exprs
                    .iter()
                    .map(|k| k.substitute_params(params))
                    .collect::<hdm_common::Result<_>>()?;
                let (lo, hi) = range_bounds_from_exprs(&bound_exprs)?;
                PlanOp::IndexRange {
                    table: table.clone(),
                    index_id: *index_id,
                    bound_exprs,
                    lo,
                    hi,
                    residual: sub_opt(residual)?,
                }
            }
            PlanOp::Exchange {
                table,
                predicate,
                shards,
                probe,
            } => PlanOp::Exchange {
                table: table.clone(),
                predicate: sub_opt(predicate)?,
                shards: shards.clone(),
                probe: probe.clone(),
            },
            PlanOp::Filter { predicate } => PlanOp::Filter {
                predicate: predicate.substitute_params(params)?,
            },
            PlanOp::NestedLoopJoin { on } => PlanOp::NestedLoopJoin { on: sub_opt(on)? },
            PlanOp::HashJoin {
                left_keys,
                right_keys,
                residual,
            } => PlanOp::HashJoin {
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
                residual: sub_opt(residual)?,
            },
            PlanOp::Project { exprs } => PlanOp::Project {
                exprs: exprs
                    .iter()
                    .map(|e| e.substitute_params(params))
                    .collect::<hdm_common::Result<_>>()?,
            },
            PlanOp::HashAgg { group, aggs } => PlanOp::HashAgg {
                group: group
                    .iter()
                    .map(|g| g.substitute_params(params))
                    .collect::<hdm_common::Result<_>>()?,
                aggs: aggs
                    .iter()
                    .map(|a| {
                        Ok(AggCall {
                            func: a.func,
                            arg: sub_opt(&a.arg)?,
                        })
                    })
                    .collect::<hdm_common::Result<_>>()?,
            },
            PlanOp::Sort { keys } => PlanOp::Sort {
                keys: keys
                    .iter()
                    .map(|(k, desc)| Ok((k.substitute_params(params)?, *desc)))
                    .collect::<hdm_common::Result<_>>()?,
            },
            PlanOp::Values { .. }
            | PlanOp::Limit { .. }
            | PlanOp::SetOp { .. }
            | PlanOp::Distinct => self.op.clone(),
        };
        let children = self
            .children
            .iter()
            .map(|c| c.substitute_params(params))
            .collect::<hdm_common::Result<_>>()?;
        Ok(PlanNode {
            op,
            children,
            cost: self.cost,
            schema: self.schema.clone(),
        })
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&format!(
            "{pad}{}  (rows={:.0} cost={:.1})\n",
            self.describe(),
            self.cost.rows,
            self.cost.total()
        ));
        for c in &self.children {
            c.explain_into(out, depth + 1);
        }
    }
}

/// Extract the probe value from a `col = value` (or `value = col`) equality
/// whose value side is already concrete.
pub(crate) fn eq_key_value(e: &SExpr) -> Option<hdm_common::Datum> {
    if let SExpr::Binary(crate::ast::BinOp::Eq, l, r) = e {
        match (&**l, &**r) {
            (SExpr::Col(_), SExpr::Lit(d)) | (SExpr::Lit(d), SExpr::Col(_)) => {
                return Some(d.clone())
            }
            _ => {}
        }
    }
    None
}

/// Decompose a range comparison into `(column, op-with-column-on-the-left,
/// value side)`. `10 < col` normalizes to `col > 10`. The value side may
/// still be a parameter at plan time.
pub(crate) fn range_bound_parts(e: &SExpr) -> Option<(usize, crate::ast::BinOp, &SExpr)> {
    use crate::ast::BinOp;
    let SExpr::Binary(op, l, r) = e else {
        return None;
    };
    let flipped = |op: BinOp| match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    };
    match (op, &**l, &**r) {
        (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, SExpr::Col(c), v)
            if matches!(v, SExpr::Lit(_) | SExpr::Param(_)) =>
        {
            Some((*c, *op, v))
        }
        (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, v, SExpr::Col(c))
            if matches!(v, SExpr::Lit(_) | SExpr::Param(_)) =>
        {
            Some((*c, flipped(*op), v))
        }
        _ => None,
    }
}

/// Fold concrete range conjuncts (all on the same column) into the tightest
/// `(lo, hi)` bound pair for an ordered-index walk. Errors if any value is
/// still unbound.
pub(crate) fn range_bounds_from_exprs(
    exprs: &[SExpr],
) -> hdm_common::Result<(Bound<Datum>, Bound<Datum>)> {
    use crate::ast::BinOp;
    let mut lo: Bound<Datum> = Bound::Unbounded;
    let mut hi: Bound<Datum> = Bound::Unbounded;
    for e in exprs {
        let Some((_, op, v)) = range_bound_parts(e) else {
            return Err(hdm_common::HdmError::Execution(
                "index range bound is not a column/value comparison".into(),
            ));
        };
        let SExpr::Lit(d) = v else {
            return Err(hdm_common::HdmError::Execution(
                "index range bound is not concrete".into(),
            ));
        };
        match op {
            BinOp::Gt => lo = tighter_lo(lo, Bound::Excluded(d.clone())),
            BinOp::Ge => lo = tighter_lo(lo, Bound::Included(d.clone())),
            BinOp::Lt => hi = tighter_hi(hi, Bound::Excluded(d.clone())),
            BinOp::Le => hi = tighter_hi(hi, Bound::Included(d.clone())),
            _ => unreachable!("range_bound_parts only yields comparisons"),
        }
    }
    Ok((lo, hi))
}

fn tighter_lo(a: Bound<Datum>, b: Bound<Datum>) -> Bound<Datum> {
    use std::cmp::Ordering;
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match x.cmp(y) {
                Ordering::Greater => a,
                Ordering::Less => b,
                // Same value: Excluded is the tighter lower bound.
                Ordering::Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

fn tighter_hi(a: Bound<Datum>, b: Bound<Datum>) -> Bound<Datum> {
    use std::cmp::Ordering;
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match x.cmp(y) {
                Ordering::Less => a,
                Ordering::Greater => b,
                // Same value: Excluded is the tighter upper bound.
                Ordering::Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

fn conjunct_texts(e: &SExpr, schema: &BoundSchema) -> Vec<String> {
    // Split bound AND chains into canonical conjunct strings.
    match e {
        SExpr::Binary(crate::ast::BinOp::And, l, r) => {
            let mut v = conjunct_texts(l, schema);
            v.extend(conjunct_texts(r, schema));
            v
        }
        other => vec![other.canonical(schema)],
    }
}

fn ordered_predicate(e: &SExpr, schema: &BoundSchema) -> String {
    let mut parts = conjunct_texts(e, schema);
    parts.sort();
    parts.join(" AND ")
}

fn canon_scan(table: &str, predicate: Option<&SExpr>, schema: &BoundSchema) -> String {
    let preds = match predicate {
        None => vec![],
        Some(p) => {
            let mut v = conjunct_texts(p, schema);
            v.sort();
            v
        }
    };
    render_scan(table, &preds)
}

fn render_scan(table: &str, preds: &[String]) -> String {
    if preds.is_empty() {
        format!("SCAN({})", table.to_ascii_uppercase())
    } else {
        format!(
            "SCAN({}, PREDICATE({}))",
            table.to_ascii_uppercase(),
            preds.join(" AND ")
        )
    }
}

fn canon_join(children: &[PlanNode], on: Option<&SExpr>, schema: &BoundSchema) -> String {
    let mut kids: Vec<String> = children.iter().map(|c| c.canonical_inner()).collect();
    kids.sort();
    match on {
        Some(p) => format!(
            "JOIN({}, PREDICATE({}))",
            kids.join(", "),
            ordered_predicate(p, schema)
        ),
        None => format!("JOIN({})", kids.join(", ")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{bind, BoundSchema};
    use hdm_common::{DataType, Schema};

    fn t1_schema() -> BoundSchema {
        BoundSchema::from_table(
            "olap.t1",
            "olap.t1",
            &Schema::from_pairs(&[("a1", DataType::Int), ("b1", DataType::Int)]),
        )
    }

    fn t2_schema() -> BoundSchema {
        BoundSchema::from_table(
            "olap.t2",
            "olap.t2",
            &Schema::from_pairs(&[("a2", DataType::Int)]),
        )
    }

    fn scan_t1() -> PlanNode {
        let schema = t1_schema();
        let pred = bind(&crate::parser_test_expr("b1 > 10"), &schema).unwrap();
        PlanNode {
            op: PlanOp::SeqScan {
                table: "olap.t1".into(),
                predicate: Some(pred),
            },
            children: vec![],
            cost: CostEstimate::rows_only(50.0),
            schema,
        }
    }

    fn scan_t2() -> PlanNode {
        PlanNode {
            op: PlanOp::SeqScan {
                table: "olap.t2".into(),
                predicate: None,
            },
            children: vec![],
            cost: CostEstimate::rows_only(100.0),
            schema: t2_schema(),
        }
    }

    /// Table I row 1, with literal values masked to `?` so every binding of
    /// the same statement shape shares one plan-store entry.
    #[test]
    fn scan_step_matches_table1() {
        assert_eq!(
            scan_t1().canonical().unwrap(),
            "SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>?))"
        );
    }

    /// Table I row 2: the join step embeds the full child definitions.
    #[test]
    fn join_step_matches_table1() {
        let left = scan_t1();
        let right = scan_t2();
        let schema = left.schema.join(&right.schema);
        let on = bind(
            &crate::parser_test_expr("olap.t1.a1 = olap.t2.a2"),
            &schema,
        )
        .unwrap();
        let join = PlanNode {
            op: PlanOp::NestedLoopJoin { on: Some(on) },
            children: vec![left, right],
            cost: CostEstimate::rows_only(50.0),
            schema,
        };
        assert_eq!(
            join.canonical().unwrap(),
            "JOIN(SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>?)), SCAN(OLAP.T2), \
             PREDICATE(OLAP.T1.A1=OLAP.T2.A2))"
        );
    }

    /// Join children and commutative predicates are order-normalized: the
    /// same join written both ways produces identical text.
    #[test]
    fn join_children_order_insensitive() {
        let mk = |flip: bool| {
            let (l, r) = if flip {
                (scan_t2(), scan_t1())
            } else {
                (scan_t1(), scan_t2())
            };
            let schema = l.schema.join(&r.schema);
            let on_text = if flip {
                "olap.t2.a2 = olap.t1.a1"
            } else {
                "olap.t1.a1 = olap.t2.a2"
            };
            let on = bind(&crate::parser_test_expr(on_text), &schema).unwrap();
            PlanNode {
                op: PlanOp::NestedLoopJoin { on: Some(on) },
                children: vec![l, r],
                cost: CostEstimate::rows_only(1.0),
                schema,
            }
            .canonical()
            .unwrap()
        };
        assert_eq!(mk(false), mk(true));
    }

    /// Hash join and nested loop render the same logical JOIN text.
    #[test]
    fn physical_operator_does_not_leak_into_step_text() {
        let left = scan_t1();
        let right = scan_t2();
        let schema = left.schema.join(&right.schema);
        let nl_on = bind(
            &crate::parser_test_expr("olap.t1.a1 = olap.t2.a2"),
            &schema,
        )
        .unwrap();
        let nl = PlanNode {
            op: PlanOp::NestedLoopJoin { on: Some(nl_on) },
            children: vec![left.clone(), right.clone()],
            cost: CostEstimate::rows_only(1.0),
            schema: schema.clone(),
        };
        let hj = PlanNode {
            op: PlanOp::HashJoin {
                left_keys: vec![0],
                right_keys: vec![0],
                residual: None,
            },
            children: vec![left, right],
            cost: CostEstimate::rows_only(1.0),
            schema,
        };
        assert_eq!(nl.canonical(), hj.canonical());
    }

    #[test]
    fn limit_and_agg_steps() {
        let scan = scan_t2();
        let ischema = scan.schema.clone();
        let g = bind(&crate::parser_test_expr("a2"), &ischema).unwrap();
        let agg = PlanNode {
            op: PlanOp::HashAgg {
                group: vec![g],
                aggs: vec![AggCall {
                    func: AggFunc::CountStar,
                    arg: None,
                }],
            },
            children: vec![scan],
            cost: CostEstimate::rows_only(10.0),
            schema: ischema,
        };
        assert_eq!(
            agg.canonical().unwrap(),
            "AGG(SCAN(OLAP.T2), GROUP(OLAP.T2.A2), FUNCS(COUNT(*)))"
        );
        let limit = PlanNode {
            op: PlanOp::Limit { n: 5 },
            children: vec![agg],
            cost: CostEstimate::rows_only(5.0),
            schema: BoundSchema::default(),
        };
        assert!(limit.canonical().unwrap().starts_with("LIMIT(AGG("));
    }

    #[test]
    fn project_and_sort_are_transparent() {
        let scan = scan_t1();
        let text = scan.canonical().unwrap();
        let sorted = PlanNode {
            op: PlanOp::Sort { keys: vec![] },
            children: vec![scan],
            cost: CostEstimate::rows_only(50.0),
            schema: t1_schema(),
        };
        // Sort itself isn't captured, but its canonical_inner passes through.
        assert_eq!(sorted.canonical(), None);
        assert_eq!(sorted.canonical_inner(), text);
    }

    #[test]
    fn explain_renders_a_tree() {
        let left = scan_t1();
        let right = scan_t2();
        let schema = left.schema.join(&right.schema);
        let join = PlanNode {
            op: PlanOp::NestedLoopJoin { on: None },
            children: vec![left, right],
            cost: CostEstimate::rows_only(5000.0),
            schema,
        };
        let text = join.explain();
        assert!(text.contains("Nested Loop Join"));
        assert!(text.contains("Seq Scan on olap.t1"));
        assert!(text.lines().count() >= 3);
    }
}
